// Engine-level crash recovery (DESIGN.md §7): kill/restore/resume must be
// indistinguishable from never having crashed. The differential runs a
// deletion-heavy stream uninterrupted, then re-runs it through the
// RunSgaCheckpointKill harness (checkpoint → keep running → simulated
// SIGKILL → fresh engine → Restore → resume) and demands *byte-identical*
// results at workers=1 — at every batch boundary, across PathImpl × batch
// size. The fault-injection half mutilates real engine snapshots (per-
// section corruption, truncation at every frame boundary, identity skew,
// vocabulary conflicts) and demands a positioned rejection with no crash
// and no partial restore observable.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "model/checkpoint.h"
#include "model/stream_io.h"
#include "workload/generators.h"
#include "workload/harness.h"
#include "workload/queries.h"

namespace sgq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// \brief Deletion-heavy stream: deletions land on live window state, so
/// checkpoints capture truncated intervals, scrubbed PATTERN ports, and
/// lazily enabled reverse indexes — the state most likely to diverge.
InputStream DeletionHeavyStream(Vocabulary* vocab, std::uint64_t seed,
                                std::size_t num_edges) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 10;
  opt.num_labels = 3;
  opt.num_edges = num_edges;
  opt.max_gap = 2;
  opt.deletion_probability = 0.25;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return *stream;
}

/// \brief The uninterrupted reference: same engine configuration, never
/// crashed, full stream.
std::vector<Sgt> ReferenceRun(const InputStream& stream,
                              const StreamingGraphQuery& query,
                              const Vocabulary& vocab,
                              const EngineOptions& options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

/// \brief Field-wise, *order-sensitive* comparison: the byte-identical bar
/// of the determinism ladder, not just multiset equality.
void ExpectIdenticalResults(const std::vector<Sgt>& expected,
                            const std::vector<Sgt>& actual,
                            const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Sgt& e = expected[i];
    const Sgt& a = actual[i];
    ASSERT_TRUE(e.src == a.src && e.trg == a.trg && e.label == a.label &&
                e.validity.ts == a.validity.ts &&
                e.validity.exp == a.validity.exp &&
                e.is_deletion == a.is_deletion)
        << what << ": result " << i << " diverged";
  }
}

// PATH + PATTERN in one plan: reaches WindowEdgeStore, PatternOp levels,
// the coalescer, and the shared window partitions.
constexpr char kQuery[] = "Answer(x,y) <- a+(x,y), b(x,m), c(m,y)";

// ---------------------------------------------------------------------------
// Differential: kill/restore/resume == uninterrupted
// ---------------------------------------------------------------------------

TEST(EngineCheckpointTest, KillRestoreResumeMatchesUninterrupted) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 21, 160);
  auto query = MakeQuery(kQuery, WindowSpec(20, 2), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  int config = 0;
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{7}}) {
      EngineOptions options;
      options.path_impl = impl;
      options.batch_size = batch;
      const std::vector<Sgt> expected =
          ReferenceRun(stream, *query, vocab, options);
      ASSERT_FALSE(expected.empty());

      const std::string path =
          TempPath("ckpt_matrix_" + std::to_string(config++) + ".sgqc");
      std::vector<Sgt> resumed;
      auto metrics = RunSgaCheckpointKill(
          stream, *query, vocab, options, path, stream.size() / 3,
          2 * stream.size() / 3, "kill", &resumed);
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
      EXPECT_GT(metrics->checkpoint_bytes, 0u);
      ExpectIdenticalResults(expected, resumed,
                             "impl=" + std::to_string(static_cast<int>(impl)) +
                                 " batch=" + std::to_string(batch));
      std::remove(path.c_str());
    }
  }
}

TEST(EngineCheckpointTest, EveryBatchBoundaryIsACleanRecoveryPoint) {
  // Satellite bar: checkpoint at *every* batch boundary of a deletion-heavy
  // stream, restore each, resume, and diff against the uninterrupted run.
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 9, 60);
  auto query = MakeQuery(kQuery, WindowSpec(14, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  const std::vector<Sgt> expected =
      ReferenceRun(stream, *query, vocab, options);

  const std::string path = TempPath("ckpt_boundary.sgqc");
  for (std::size_t at = 1; at < stream.size(); ++at) {
    std::vector<Sgt> resumed;
    const std::size_t kill = std::min(at + 9, stream.size());
    auto metrics = RunSgaCheckpointKill(stream, *query, vocab, options, path,
                                        at, kill, "boundary", &resumed);
    ASSERT_TRUE(metrics.ok())
        << "checkpoint at " << at << ": " << metrics.status().ToString();
    ExpectIdenticalResults(expected, resumed,
                           "checkpoint at element " + std::to_string(at));
  }
  std::remove(path.c_str());
}

TEST(EngineCheckpointTest, ShardedResumeStaysDeterministic) {
  // workers>1 relaxes the bar from byte-identical to the sharded contract:
  // the resumed run must equal the *uninterrupted sharded* run, which is
  // itself deterministic — so plain equality still holds, run to run.
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 33, 140);
  auto query = MakeQuery(kQuery, WindowSpec(18, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  options.num_workers = 2;
  const std::vector<Sgt> expected =
      ReferenceRun(stream, *query, vocab, options);

  const std::string path = TempPath("ckpt_sharded.sgqc");
  std::vector<Sgt> resumed;
  auto metrics = RunSgaCheckpointKill(stream, *query, vocab, options, path,
                                      stream.size() / 2,
                                      3 * stream.size() / 4, "sharded",
                                      &resumed);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ExpectIdenticalResults(expected, resumed, "workers=2");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Refusals: wrong engine, wrong vocab, dirty engine
// ---------------------------------------------------------------------------

/// \brief Builds a processor, pushes a prefix, checkpoints, and returns the
/// snapshot path.
std::string SnapshotAfterPrefix(const InputStream& stream,
                                const StreamingGraphQuery& query,
                                Vocabulary* vocab,
                                const EngineOptions& options,
                                const std::string& name) {
  auto qp = QueryProcessor::FromQuery(query, *vocab, options);
  EXPECT_TRUE(qp.ok());
  for (std::size_t i = 0; i < stream.size() / 2; ++i) {
    (*qp)->Push(stream[i]);
  }
  const std::string path = TempPath(name);
  Status st = (*qp)->engine().Checkpoint(path, vocab);
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = (*qp)->engine().WaitForCheckpoint();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

TEST(EngineCheckpointTest, OptionsIdentityMismatchRefused) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 4, 80);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions spath;
  spath.path_impl = PathImpl::kSPath;
  const std::string path =
      SnapshotAfterPrefix(stream, *query, &vocab, spath, "ckpt_id.sgqc");

  EngineOptions delta;
  delta.path_impl = PathImpl::kDeltaPath;
  auto qp = QueryProcessor::FromQuery(*query, vocab, delta);
  ASSERT_TRUE(qp.ok());
  Status st = (*qp)->engine().Restore(path, &vocab);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("path_impl"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("identity mismatch"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(EngineCheckpointTest, VocabularyIsVerifiedAndAdopted) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 6, 80);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  const std::string path =
      SnapshotAfterPrefix(stream, *query, &vocab, options, "ckpt_vocab.sgqc");

  // A conflicting vocabulary — same names interned to different ids — must
  // be refused: restored label ids would silently mean different labels.
  {
    Vocabulary conflicting;
    ASSERT_TRUE(conflicting.InternInputLabel("z").ok());  // shifts ids
    ASSERT_TRUE(conflicting.InternInputLabel("a").ok());
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    Status st = (*qp)->engine().Restore(path, &conflicting);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("vocab"), std::string::npos)
        << st.ToString();
  }

  // The matching vocabulary restores cleanly.
  {
    Vocabulary same = vocab;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    Status st = (*qp)->engine().Restore(path, &same);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ((*qp)->engine().ingested(), stream.size() / 2);
  }
  std::remove(path.c_str());
}

TEST(EngineCheckpointTest, RestoreOnNonFreshEngineRefused) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 8, 80);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  const std::string path =
      SnapshotAfterPrefix(stream, *query, &vocab, options, "ckpt_dirty.sgqc");

  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  (*qp)->Push(stream[0]);  // no longer fresh
  Status st = (*qp)->engine().Restore(path, &vocab);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-fresh"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fault injection on real snapshots
// ---------------------------------------------------------------------------

TEST(EngineCheckpointTest, CorruptionInAnySectionRejectedPositioned) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 12, 100);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  const std::string path = SnapshotAfterPrefix(stream, *query, &vocab,
                                               options, "ckpt_corrupt.sgqc");
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  auto reader = CheckpointReader::Parse(*bytes, path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_GE(reader->sections().size(), 5u) << "expected a full engine image";

  const std::string bad_path = TempPath("ckpt_corrupt_bad.sgqc");
  for (const CheckpointSection& section : reader->sections()) {
    ASSERT_GT(section.length, 0u) << section.name;
    std::string bad = *bytes;
    bad[section.offset] = static_cast<char>(bad[section.offset] ^ 0x40);
    ASSERT_TRUE(WriteFileBytes(bad_path, bad).ok());

    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    Vocabulary fresh_vocab;
    Status st = (*qp)->engine().Restore(bad_path, &fresh_vocab);
    ASSERT_FALSE(st.ok()) << "corrupt '" << section.name << "' accepted";
    // Positioned: the whole-file CRC catches it first and names the file.
    EXPECT_NE(st.message().find("CRC"), std::string::npos)
        << section.name << ": " << st.ToString();
    EXPECT_NE(st.message().find(bad_path), std::string::npos)
        << section.name << ": " << st.ToString();
  }

  // No partial restore: a *rebuilt* engine still restores the good file
  // and resumes to the uninterrupted result.
  const std::vector<Sgt> expected =
      ReferenceRun(stream, *query, vocab, options);
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  ASSERT_TRUE((*qp)->engine().Restore(path, &vocab).ok());
  for (std::size_t i = (*qp)->engine().ingested(); i < stream.size(); ++i) {
    (*qp)->Push(stream[i]);
  }
  (*qp)->Flush();
  ExpectIdenticalResults(expected, (*qp)->results(), "after bad candidates");

  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(EngineCheckpointTest, TruncationAtEverySectionBoundaryRejected) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 14, 100);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  const std::string path = SnapshotAfterPrefix(stream, *query, &vocab,
                                               options, "ckpt_trunc.sgqc");
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  auto reader = CheckpointReader::Parse(*bytes, path);
  ASSERT_TRUE(reader.ok());

  const std::string bad_path = TempPath("ckpt_trunc_bad.sgqc");
  std::vector<std::size_t> cuts = {0, 4, 12};  // magic, header, first frame
  for (const CheckpointSection& section : reader->sections()) {
    cuts.push_back(section.offset);                   // before the payload
    cuts.push_back(section.offset + section.length);  // after the payload
  }
  cuts.push_back(bytes->size() - 1);  // inside the footer CRC
  for (std::size_t cut : cuts) {
    ASSERT_TRUE(WriteFileBytes(bad_path, bytes->substr(0, cut)).ok());
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    Status st = (*qp)->engine().Restore(bad_path);
    ASSERT_FALSE(st.ok()) << "truncation at byte " << cut << " accepted";
    EXPECT_NE(st.message().find("trunc"), std::string::npos)
        << "cut " << cut << ": " << st.ToString();
  }
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(EngineCheckpointTest, MissingFileIsACleanError) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 2, 40);
  auto query = MakeQuery(kQuery, WindowSpec(12, 2), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  Status st = (*qp)->engine().Restore(TempPath("no_such_ckpt.sgqc"));
  ASSERT_FALSE(st.ok());
}

// ---------------------------------------------------------------------------
// Metrics and extras
// ---------------------------------------------------------------------------

TEST(EngineCheckpointTest, MetricsAndExtrasRoundTrip) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(&vocab, 18, 80);
  auto query = MakeQuery(kQuery, WindowSpec(16, 2), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions options;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  for (std::size_t i = 0; i < stream.size() / 2; ++i) (*qp)->Push(stream[i]);

  const std::string path = TempPath("ckpt_extras.sgqc");
  std::string blob;
  PutU64(&blob, 12345);
  ASSERT_TRUE((*qp)
                  ->engine()
                  .Checkpoint(path, &vocab, {{"x-reorder", blob}})
                  .ok());
  ASSERT_TRUE((*qp)->engine().WaitForCheckpoint().ok());
  // checkpoint_bytes counts the encoded image == the durable file.
  auto on_disk = ReadFileBytes(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ((*qp)->engine().checkpoint_bytes(), on_disk->size());

  auto restored = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(restored.ok());
  std::unordered_map<std::string, std::string> extra;
  ASSERT_TRUE((*restored)->engine().Restore(path, &vocab, &extra).ok());
  ASSERT_EQ(extra.count("x-reorder"), 1u);
  ByteReader in(extra["x-reorder"], "extra");
  EXPECT_EQ(in.U64(), 12345u);
  EXPECT_TRUE(in.ExpectEnd().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgq

// Determinism and equivalence tests for sharded multi-worker execution
// (runtime/shard.h, DESIGN.md §2.4):
//
//  - num_workers = 1 is byte-identical to the default engine (it takes the
//    unsharded code paths untouched);
//  - num_workers > 1 is snapshot-equivalent to num_workers = 1 at every
//    sampled instant, across deletion-heavy streams, both PATH
//    implementations, and batch sizes {1, 64};
//  - repeated runs at the same worker count produce byte-identical result
//    streams (the shard-order merge is deterministic, not
//    schedule-dependent);
//  - the worker pool and shard-hash primitives behave as specified.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/query_processor.h"
#include "runtime/shard.h"
#include "runtime/worker_pool.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::OraclePairsAt;
using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPoolTest, CoversEveryIndexAcrossRepeatedWaves) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  for (int wave = 0; wave < 100; ++wave) {
    const std::size_t n = 1 + static_cast<std::size_t>(wave % 13);
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "wave " << wave << " index " << i;
    }
  }
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  WorkerPool pool(1);
  std::size_t sum = 0;
  pool.ParallelFor(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

// ---------------------------------------------------------------------------
// Shard hashing
// ---------------------------------------------------------------------------

TEST(ShardHashTest, StableAndInRange) {
  for (VertexId v = 0; v < 500; ++v) {
    for (std::size_t n : {2u, 3u, 8u}) {
      const ShardId s = ShardOfVertex(v, n);
      EXPECT_LT(s, n);
      EXPECT_EQ(s, ShardOfVertex(v, n));  // stable
      const ShardId e = ShardOfEdge(v, v + 1, n);
      EXPECT_LT(e, n);
      EXPECT_EQ(e, ShardOfEdge(v, v + 1, n));
    }
  }
}

TEST(ShardHashTest, EdgeShardIgnoresNothingButEndpoints) {
  // All shards must be reachable (sanity against a degenerate mixer).
  std::set<ShardId> seen;
  for (VertexId v = 0; v < 64; ++v) seen.insert(ShardOfEdge(v, v * 7, 8));
  EXPECT_EQ(seen.size(), 8u);
}

// ---------------------------------------------------------------------------
// Sharded engine equivalence
// ---------------------------------------------------------------------------

struct Config {
  const char* query;
  PathImpl path_impl;
};

const Config kConfigs[] = {
    {"Answer(x,z) <- a(x,y), b(y,z)", PathImpl::kSPath},
    {"Answer(x,w) <- a(x,y), b(y,z), c(z,w)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kDeltaPath},
    {"Answer(x,z) <- a+(x,y), b(y,z)", PathImpl::kSPath},
    {"Answer(x,z) <- a+(x,y), b(y,z)", PathImpl::kDeltaPath},
};

InputStream DeletionHeavyStream(uint64_t seed, Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 150;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;  // deletion-heavy: exercises coordination
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

std::vector<Sgt> RunEngine(const StreamingGraphQuery& query,
                     const Vocabulary& vocab, const InputStream& stream,
                     EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceTest, SnapshotsMatchSingleWorkerAndOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 131 + 17;
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(seed, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;

    EngineOptions reference_options;
    reference_options.path_impl = config.path_impl;
    const std::vector<Sgt> reference =
        RunEngine(*query, vocab, stream, reference_options);

    const std::vector<Timestamp> times = SampleTimes(stream, 8);
    for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        EngineOptions options;
        options.path_impl = config.path_impl;
        options.num_workers = workers;
        options.batch_size = batch;
        const std::vector<Sgt> sharded = RunEngine(*query, vocab, stream, options);
        for (Timestamp t : times) {
          ASSERT_EQ(ResultPairsAt(sharded, t), ResultPairsAt(reference, t))
              << config.query << " workers=" << workers
              << " batch=" << batch << " t=" << t << " seed=" << seed;
        }
      }
    }
    // The single-worker reference itself satisfies snapshot reducibility
    // against the one-time oracle at the final instant.
    if (!stream.empty()) {
      const Timestamp final_t = stream.back().t;
      EXPECT_EQ(ResultPairsAt(reference, final_t),
                OraclePairsAt(stream, *query, vocab, final_t))
          << config.query << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalenceTest,
                         ::testing::Range(0, 6));

TEST(ShardedDeterminismTest, RepeatedRunsAreByteIdentical) {
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(99, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;
    for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      EngineOptions options;
      options.path_impl = config.path_impl;
      options.num_workers = 4;
      options.batch_size = batch;
      const std::vector<Sgt> first = RunEngine(*query, vocab, stream, options);
      const std::vector<Sgt> second = RunEngine(*query, vocab, stream, options);
      // Full structural equality, order included: the merge is
      // deterministic, not thread-schedule-dependent.
      ASSERT_EQ(first.size(), second.size()) << config.query;
      for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(first[i] == second[i])
            << config.query << " batch=" << batch << " position " << i;
      }
    }
  }
}

TEST(ShardedDeterminismTest, ExplicitSingleWorkerIsByteIdenticalToDefault) {
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(7, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;
    EngineOptions default_options;
    default_options.path_impl = config.path_impl;
    EngineOptions single;
    single.path_impl = config.path_impl;
    single.num_workers = 1;
    const std::vector<Sgt> expected =
        RunEngine(*query, vocab, stream, default_options);
    const std::vector<Sgt> actual = RunEngine(*query, vocab, stream, single);
    ASSERT_EQ(expected.size(), actual.size()) << config.query;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(expected[i] == actual[i])
          << config.query << " position " << i;
    }
  }
}

TEST(ShardedTopologyTest, OperatorsCompileToWorkerManyInstances) {
  Vocabulary vocab;
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.num_workers = 4;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  const Executor& exec = (*qp)->executor();
  // Every operator is sharded 4 ways except the sink (last op), which
  // stays single so the merged result order is deterministic.
  ASSERT_GE(exec.NumOps(), 3u);
  for (std::size_t i = 0; i + 1 < exec.NumOps(); ++i) {
    EXPECT_EQ(exec.NumInstances(static_cast<OpId>(i)), 4u) << "op " << i;
  }
  EXPECT_EQ(exec.NumInstances(static_cast<OpId>(exec.NumOps() - 1)), 1u);
  EXPECT_NE((*qp)->Explain().find("x4"), std::string::npos);
}

}  // namespace
}  // namespace sgq

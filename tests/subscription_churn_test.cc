// Registration-churn stress (DESIGN.md §10): add/remove/re-add standing
// queries against a deletion-heavy stream, across PathImpl × workers
// {1,4} × batch {1,64}, and demand that
//
//  - a persistent subscriber's results stay byte-identical (workers=1) /
//    snapshot-equivalent (sharded) to a run that never saw the churn;
//  - operator refcounts and the live-operator count return to the
//    baseline after every churn cycle;
//  - StateBytes() tracks a churn-free control engine exactly across a
//    100-cycle soak — a removed query's state is released, not
//    tombstoned.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

InputStream ChurnStream(Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = 4242;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 240;
  opt.max_gap = 2;
  opt.deletion_probability = 0.3;  // deletion-heavy: retraction paths churn
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

TEST(SubscriptionChurnTest, RefcountsAndSurvivorsStableAcrossMatrix) {
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        Vocabulary vocab;
        const InputStream stream = ChurnStream(&vocab);
        auto persistent = MakeQuery("Answer(x,y) <- a+(x,y)",
                                    WindowSpec(12, 3), &vocab);
        ASSERT_TRUE(persistent.ok());
        // The churners overlap the persistent query (shared a+ chain) and
        // each other; one is disjoint.
        const char* churn_texts[] = {
            "Answer(x,z) <- a+(x,y), b(y,z)",
            "Answer(x,z) <- c(x,y), c(y,z)",
        };
        std::vector<StreamingGraphQuery> churners;
        for (const char* text : churn_texts) {
          auto query = MakeQuery(text, WindowSpec(12, 3), &vocab);
          ASSERT_TRUE(query.ok()) << text;
          churners.push_back(*query);
        }

        EngineOptions options;
        options.path_impl = impl;
        options.num_workers = workers;
        options.batch_size = batch;
        const std::string context =
            std::string(impl == PathImpl::kSPath ? "s-path" : "delta") +
            " workers " + std::to_string(workers) + " batch " +
            std::to_string(batch);

        Engine engine(options);
        ASSERT_TRUE(engine.AddQuery(*persistent, vocab).ok());
        ASSERT_TRUE(engine.Finalize().ok());
        const std::size_t baseline_ops = engine.NumOperators();
        std::vector<int> baseline_refs;
        for (OpId id = 0; id < static_cast<OpId>(baseline_ops); ++id) {
          baseline_refs.push_back(engine.OperatorRefCount(id));
        }

        // Per cycle: attach both churners, run a stream segment through
        // the widened topology, detach both, verify the baseline is back.
        constexpr std::size_t kCycles = 4;
        const std::size_t segment = stream.size() / kCycles;
        for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
          std::vector<QueryId> attached;
          for (const StreamingGraphQuery& query : churners) {
            auto id = engine.AddQuery(query, vocab);
            ASSERT_TRUE(id.ok()) << context << " cycle " << cycle;
            attached.push_back(*id);
          }
          const std::size_t begin = cycle * segment;
          const std::size_t end =
              cycle + 1 == kCycles ? stream.size() : begin + segment;
          for (std::size_t i = begin; i < end; ++i) engine.Push(stream[i]);
          // Detach in mixed order (last-added first half the time) so the
          // refcount walk sees both unlink directions.
          if (cycle % 2 == 0) {
            std::reverse(attached.begin(), attached.end());
          }
          for (QueryId id : attached) {
            ASSERT_TRUE(engine.RemoveQuery(id).ok())
                << context << " cycle " << cycle;
          }
          ASSERT_EQ(engine.NumOperators(), baseline_ops)
              << context << " cycle " << cycle;
          for (OpId id = 0; id < static_cast<OpId>(baseline_ops); ++id) {
            ASSERT_EQ(engine.OperatorRefCount(id), baseline_refs[id])
                << context << " cycle " << cycle << " op " << id;
          }
          ASSERT_EQ(engine.NumLiveQueries(), 1u) << context;
        }
        engine.Flush();

        // The persistent subscriber never noticed the churn.
        auto solo = QueryProcessor::FromQuery(*persistent, vocab, options);
        ASSERT_TRUE(solo.ok());
        (*solo)->PushAll(stream);
        const std::vector<Sgt>& reference = (*solo)->results();
        if (workers == 1 && batch == 1) {
          ASSERT_EQ(reference.size(), engine.results(0).size()) << context;
          for (std::size_t i = 0; i < reference.size(); ++i) {
            ASSERT_TRUE(reference[i] == engine.results(0)[i])
                << context << " position " << i;
          }
        } else {
          for (Timestamp t : SampleTimes(stream, 6)) {
            ASSERT_EQ(ResultPairsAt(engine.results(0), t),
                      ResultPairsAt(reference, t))
                << context << " t " << t;
          }
        }
      }
    }
  }
}

TEST(SubscriptionChurnTest, StateBytesStayFlatOverHundredCycles) {
  Vocabulary vocab;
  const InputStream base = ChurnStream(&vocab);
  auto persistent =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(persistent.ok());
  auto churner = MakeQuery("Answer(x,z) <- a+(x,y), b(y,z)",
                           WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(churner.ok());

  Engine engine{EngineOptions{}};
  ASSERT_TRUE(engine.AddQuery(*persistent, vocab).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  // The control engine runs the same persistent query over the same
  // stream but never sees the churn. StateBytes() counts pool high-water
  // marks and container capacities, which creep slowly under any long
  // run — so "flat" is defined against this control: if a removed
  // query's state were tombstoned instead of released, the churned
  // engine would diverge upward from the control, cycle after cycle.
  Engine control{EngineOptions{}};
  ASSERT_TRUE(control.AddQuery(*persistent, vocab).ok());
  ASSERT_TRUE(control.Finalize().ok());

  // Each cycle replays the same 40-element prefix shifted forward in time
  // (timestamps must be non-decreasing engine-wide), slide-aligned with
  // window-size clearance so every cycle touches identically shaped
  // window state.
  constexpr std::size_t kCycles = 100;
  constexpr std::size_t kSegment = 40;
  const Timestamp span = ((base[kSegment - 1].t + 24) / 3 + 1) * 3;
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    auto id = engine.AddQuery(*churner, vocab);
    ASSERT_TRUE(id.ok()) << "cycle " << cycle;
    const Timestamp shift = static_cast<Timestamp>(cycle) * span;
    for (std::size_t i = 0; i < kSegment; ++i) {
      Sge sge = base[i];
      sge.t += shift;
      engine.Push(sge);
      control.Push(sge);
    }
    ASSERT_TRUE(engine.RemoveQuery(*id).ok()) << "cycle " << cycle;
    // Drain the standing subscription like a real server would.
    engine.TakeResults(0);
    control.TakeResults(0);
    ASSERT_EQ(engine.StateBytes(), control.StateBytes())
        << "residue after detach, cycle " << cycle;
  }
  // QueryIds kept monotone: 100 churn registrations never reused an id.
  EXPECT_EQ(engine.num_queries(), 1u + kCycles);
  EXPECT_EQ(engine.NumLiveQueries(), 1u);
}

}  // namespace
}  // namespace sgq

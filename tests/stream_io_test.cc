// Hardened stream parsing: malformed or out-of-order lines surface a
// Status error naming the offending line instead of silently producing
// garbage. The SGQB binary format gets the same treatment with byte
// offsets in place of line numbers, plus exact round-trip guarantees and
// chunked-view coverage for the sharded parse stage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/string_util.h"
#include "model/stream_io.h"

namespace sgq {
namespace {

/// \brief Drains a cursor into an InputStream; asserts the cursor ends ok.
InputStream Drain(StreamCursor* cursor) {
  InputStream out;
  Sge buffer[7];  // odd capacity: exercises partial final batches
  for (;;) {
    const std::size_t n = cursor->Next(buffer, 7);
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  return out;
}

void ExpectSameElements(const InputStream& a, const InputStream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src) << i;
    EXPECT_EQ(a[i].trg, b[i].trg) << i;
    EXPECT_EQ(a[i].label, b[i].label) << i;
    EXPECT_EQ(a[i].t, b[i].t) << i;
    EXPECT_EQ(a[i].is_deletion, b[i].is_deletion) << i;
  }
}

TEST(ParseInt64Test, StrictFullFieldMatch) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);

  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("+", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));   // trailing garbage
  EXPECT_FALSE(ParseInt64("abc12", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));   // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));  // underflow
}

TEST(StreamIoTest, ParsesWellFormedStream) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("# header\nu,a,v,1\n v , b , w , 2 \nu,a,v,3,-\n",
                          &vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_FALSE((*r)[0].is_deletion);
  EXPECT_EQ((*r)[1].t, 2);
  EXPECT_TRUE((*r)[2].is_deletion);
}

TEST(StreamIoTest, TrailingGarbageTimestampErrorsWithLineNumber) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1\nu,a,v,2x\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("timestamp"), std::string::npos);
}

TEST(StreamIoTest, NegativeTimestampRejected) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,-4\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("negative"), std::string::npos);
}

TEST(StreamIoTest, EmptyFieldRejected) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,,v,1\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  auto r2 = ParseStreamCsv("u,a,v,1\n,a,v,2\n", &vocab);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);
}

TEST(StreamIoTest, OutOfOrderNamesBothTimestamps) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,5\nu,a,v,3\n", &vocab);
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3"), std::string::npos);
  EXPECT_NE(msg.find("5"), std::string::npos);
}

TEST(StreamIoTest, WrongFieldCountNamesLine) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  auto r2 = ParseStreamCsv("u,a,v,1,+,extra\n", &vocab);
  ASSERT_FALSE(r2.ok());
}

TEST(StreamIoTest, BadOpFieldNamesLine) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1,x\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(StreamIoTest, RoundTripsThroughFormat) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1\nv,b,w,2\nu,a,v,9,-\n", &vocab);
  ASSERT_TRUE(r.ok());
  const std::string csv = FormatStreamCsv(*r, vocab);
  Vocabulary vocab2;
  auto r2 = ParseStreamCsv(csv, &vocab2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), r->size());
  for (std::size_t i = 0; i < r->size(); ++i) {
    EXPECT_EQ((*r2)[i].t, (*r)[i].t);
    EXPECT_EQ((*r2)[i].is_deletion, (*r)[i].is_deletion);
  }
}

// ---------------------------------------------------------------------------
// SGQB binary format
// ---------------------------------------------------------------------------

const char kSampleCsv[] =
    "u,follows,v,7\n"
    "v,posts,b,10\n"
    "y,follows,u,13\n"
    "u,posts,a,22,-\n"
    "u,likes,b,29\n";

TEST(BinaryStreamTest, DetectsFormatByMagic) {
  EXPECT_EQ(DetectStreamFormat("u,a,v,1\n"), StreamFormat::kCsv);
  EXPECT_EQ(DetectStreamFormat(""), StreamFormat::kCsv);
  EXPECT_EQ(DetectStreamFormat("SGQ"), StreamFormat::kCsv);  // too short
  EXPECT_EQ(DetectStreamFormat(std::string("SGQB\x01\x00\x00\x00", 8)),
            StreamFormat::kBinary);
}

TEST(BinaryStreamTest, CsvToBinaryToCsvIsByteIdentical) {
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(DetectStreamFormat(*binary), StreamFormat::kBinary);

  // A *fresh* vocabulary decodes to the same ids: the dictionaries list
  // names in first-use order, exactly the order a CSV parse interns them.
  Vocabulary vocab2;
  auto decoded = ParseStreamBinary(*binary, &vocab2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameElements(*decoded, *parsed);
  EXPECT_EQ(FormatStreamCsv(*decoded, vocab2), kSampleCsv);

  // And re-encoding reproduces the same bytes.
  auto binary2 = FormatStreamBinary(*decoded, vocab2);
  ASSERT_TRUE(binary2.ok());
  EXPECT_EQ(*binary2, *binary);
}

TEST(BinaryStreamTest, RejectsBadMagicAndUnknownVersion) {
  Vocabulary vocab;
  auto bad_magic = ParseStreamBinary("SGQX\x01\x00\x00\x00 payload", &vocab);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("magic"), std::string::npos)
      << bad_magic.status().ToString();

  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());
  std::string future = *binary;
  future[4] = 2;  // version field
  Vocabulary vocab2;
  auto r = ParseStreamBinary(future, &vocab2);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version 2"), std::string::npos)
      << r.status().ToString();
}

TEST(BinaryStreamTest, RejectsTruncationAtEveryRegion) {
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());

  // Fixed header cut short.
  Vocabulary v1;
  auto r1 = ParseStreamBinary(binary->substr(0, 10), &v1);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("truncated header"),
            std::string::npos);

  // Mid-dictionary cut: still a header error.
  Vocabulary v2;
  auto r2 = ParseStreamBinary(binary->substr(0, 30), &v2);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("truncated header"),
            std::string::npos);

  // Record region short of the promised count.
  Vocabulary v3;
  auto r3 = ParseStreamBinary(binary->substr(0, binary->size() - 5), &v3);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("truncated records"),
            std::string::npos)
      << r3.status().ToString();

  // Trailing garbage after the promised records.
  Vocabulary v4;
  auto r4 = ParseStreamBinary(*binary + std::string(24, '\0'), &v4);
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("trailing garbage"),
            std::string::npos)
      << r4.status().ToString();
}

TEST(BinaryStreamTest, RecordErrorsNameTheAbsoluteByteOffset) {
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());
  Vocabulary header_vocab;
  auto header = ParseBinaryStreamHeader(*binary, &header_vocab);
  ASSERT_TRUE(header.ok());

  // Corrupt record 2's op byte (offset 20 within the record).
  const std::size_t bad_offset =
      header->records_offset + 2 * kBinaryRecordBytes;
  std::string corrupt = *binary;
  corrupt[bad_offset + 20] = 7;
  Vocabulary v1;
  auto r1 = ParseStreamBinary(corrupt, &v1);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("offset " +
                                       std::to_string(bad_offset)),
            std::string::npos)
      << r1.status().ToString();
  EXPECT_NE(r1.status().message().find("op byte"), std::string::npos);

  // Out-of-range dictionary index in record 1.
  std::string bad_index = *binary;
  const std::size_t rec1 = header->records_offset + kBinaryRecordBytes;
  bad_index[rec1 + 16] = '\xee';  // label index low byte
  Vocabulary v2;
  auto r2 = ParseStreamBinary(bad_index, &v2);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(
      r2.status().message().find("offset " + std::to_string(rec1)),
      std::string::npos)
      << r2.status().ToString();
  EXPECT_NE(r2.status().message().find("label index"), std::string::npos);
}

TEST(BinaryStreamTest, OutOfOrderRecordsRejectedUnlessDisorderAllowed) {
  // Hand-build a disordered stream (FormatStreamBinary encodes whatever
  // it is given; ordering is a read-side contract, as with CSV).
  Vocabulary vocab;
  auto ordered = ParseStreamCsv("u,a,v,5\nu,a,w,3\n", &vocab);
  // The CSV parser enforces ordering, so build the stream directly.
  ASSERT_FALSE(ordered.ok());
  auto first = ParseStreamCsv("u,a,v,5\n", &vocab);
  ASSERT_TRUE(first.ok());
  auto second = ParseStreamCsv("u,a,w,3\n", &vocab);
  ASSERT_TRUE(second.ok());
  InputStream disordered = *first;
  disordered.push_back((*second)[0]);
  auto binary = FormatStreamBinary(disordered, vocab);
  ASSERT_TRUE(binary.ok());

  Vocabulary v1;
  auto strict = ParseStreamBinary(*binary, &v1);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("non-decreasing"),
            std::string::npos)
      << strict.status().ToString();

  Vocabulary v2;
  BinaryStreamCursor lenient(*binary, &v2, /*allow_disorder=*/true);
  const InputStream drained = Drain(&lenient);
  EXPECT_TRUE(lenient.ok()) << lenient.status().ToString();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[1].t, 3);
}

TEST(BinaryStreamTest, CursorMatchesWholeParseAcrossChunkSizes) {
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());
  for (std::size_t cap : {std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
    Vocabulary v;
    BinaryStreamCursor cursor(*binary, &v);
    InputStream out;
    std::vector<Sge> buffer(cap);
    for (;;) {
      const std::size_t n = cursor.Next(buffer.data(), cap);
      if (n == 0) break;
      out.insert(out.end(), buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    ExpectSameElements(out, *parsed);
  }
}

// ---------------------------------------------------------------------------
// Chunked views (sharded parse input)
// ---------------------------------------------------------------------------

/// \brief Concatenates every chunk of a ChunkedStream in order; asserts
/// each chunk cursor ends ok.
InputStream DrainChunks(const ChunkedStream& chunked) {
  InputStream out;
  for (std::size_t c = 0; c < chunked.NumChunks(); ++c) {
    auto cursor = chunked.OpenChunk(c);
    InputStream part = Drain(cursor.get());
    EXPECT_TRUE(cursor->ok()) << "chunk " << c << ": "
                              << cursor->status().ToString();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::string RepeatedCsv(std::size_t lines) {
  std::string text;
  for (std::size_t i = 0; i < lines; ++i) {
    text += "v" + std::to_string(i % 17) + ",edge,w" +
            std::to_string(i % 13) + "," + std::to_string(i / 2) + "\n";
  }
  return text;
}

TEST(ChunkedStreamTest, CsvChunksConcatenateToTheSequentialParse) {
  const std::string text = RepeatedCsv(200);
  Vocabulary reference_vocab;
  auto reference = ParseStreamCsv(text, &reference_vocab);
  ASSERT_TRUE(reference.ok());

  Vocabulary vocab;
  auto chunked = MakeChunkedStream(text, StreamFormat::kCsv, &vocab,
                                   /*allow_disorder=*/false,
                                   /*min_chunks=*/5);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  EXPECT_GE((*chunked)->NumChunks(), 5u);
  ExpectSameElements(DrainChunks(**chunked), *reference);
}

TEST(ChunkedStreamTest, CsvChunkErrorsKeepGlobalLineNumbers) {
  std::string text = RepeatedCsv(200);
  // Break line 150 (1-based): replace its timestamp field with garbage.
  std::size_t pos = 0;
  for (int i = 0; i < 149; ++i) pos = text.find('\n', pos) + 1;
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "v0,edge,w0,notatime");

  Vocabulary vocab;
  auto chunked = MakeChunkedStream(text, StreamFormat::kCsv, &vocab,
                                   /*allow_disorder=*/false,
                                   /*min_chunks=*/6);
  ASSERT_TRUE(chunked.ok());
  bool saw_error = false;
  for (std::size_t c = 0; c < (*chunked)->NumChunks(); ++c) {
    auto cursor = (*chunked)->OpenChunk(c);
    Drain(cursor.get());
    if (!cursor->ok()) {
      saw_error = true;
      EXPECT_NE(cursor->status().message().find("line 150"),
                std::string::npos)
          << cursor->status().ToString();
    }
  }
  EXPECT_TRUE(saw_error);
}

TEST(ChunkedStreamTest, BinaryChunksConcatenateToTheSequentialParse) {
  const std::string text = RepeatedCsv(200);
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(text, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());

  Vocabulary fresh;
  auto chunked = MakeChunkedStream(*binary, StreamFormat::kBinary, &fresh,
                                   /*allow_disorder=*/false,
                                   /*min_chunks=*/4);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  EXPECT_GE((*chunked)->NumChunks(), 4u);
  EXPECT_EQ((*chunked)->format(), StreamFormat::kBinary);
  ExpectSameElements(DrainChunks(**chunked), *parsed);
}

TEST(ChunkedStreamTest, BinaryHeaderErrorsSurfaceAtConstruction) {
  Vocabulary vocab;
  auto chunked = MakeChunkedStream("SGQX garbage", StreamFormat::kBinary,
                                   &vocab, false, 2);
  EXPECT_FALSE(chunked.ok());
}

// ---------------------------------------------------------------------------
// Buffered file I/O
// ---------------------------------------------------------------------------

TEST(StreamFileTest, ReadWriteRoundTripsBinaryBytes) {
  const std::string path =
      ::testing::TempDir() + "/stream_io_test_bytes.bin";
  std::string payload = "SGQB";
  payload.push_back('\0');
  payload += std::string(kStreamIoBufferBytes + 17, 'x');  // spans buffers
  payload.push_back('\0');
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());

  EXPECT_FALSE(ReadFileBytes(path + ".does-not-exist").ok());
}

TEST(StreamFileTest, MissingFileErrorCarriesErrnoText) {
  const std::string path = ::testing::TempDir() + "/no_such_stream.csv";
  auto r = ReadFileBytes(path);
  ASSERT_FALSE(r.ok());
  // The message names the path and the strerror(ENOENT) text, so a user
  // staring at a failed ingest knows *which* file and *why*.
  EXPECT_NE(r.status().message().find(path), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("No such file"), std::string::npos)
      << r.status().ToString();
}

TEST(StreamFileTest, DirectoryInsteadOfFileIsInvalidArgument) {
  auto r = ReadFileBytes(::testing::TempDir());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("is a directory"), std::string::npos)
      << r.status().ToString();
}

TEST(StreamFileTest, ZeroLengthRoundTrip) {
  const std::string path = ::testing::TempDir() + "/stream_io_empty.bin";
  ASSERT_TRUE(WriteFileBytes(path, "").ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->empty());
  std::remove(path.c_str());
}

TEST(StreamFileTest, FileByteSinkSpansBufferFlushes) {
  const std::string path = ::testing::TempDir() + "/stream_io_sink.bin";
  std::string payload;
  for (int i = 0; i < 7; ++i) {
    payload += std::string(kStreamIoBufferBytes / 2 + 11,
                           static_cast<char>('a' + i));
  }
  {
    FileByteSink sink(path);
    // Appends deliberately straddle the staging-buffer boundary.
    std::string_view rest = payload;
    while (!rest.empty()) {
      const std::size_t n = std::min<std::size_t>(rest.size(), 1000);
      ASSERT_TRUE(sink.Append(rest.substr(0, n)).ok());
      rest.remove_prefix(n);
    }
    EXPECT_EQ(sink.bytes_written(), payload.size());
    ASSERT_TRUE(sink.Close().ok()) << sink.status().ToString();
  }
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());
}

TEST(StreamFileTest, FileByteSinkOpenFailureSticks) {
  FileByteSink sink(::testing::TempDir() + "/no/such/dir/out.bin");
  EXPECT_FALSE(sink.Append("x").ok());
  EXPECT_FALSE(sink.Close().ok());
  EXPECT_FALSE(sink.status().ok());
}

TEST(StreamFileTest, ReadStreamFileAutoDetectsFormat) {
  Vocabulary vocab;
  auto parsed = ParseStreamCsv(kSampleCsv, &vocab);
  ASSERT_TRUE(parsed.ok());
  auto binary = FormatStreamBinary(*parsed, vocab);
  ASSERT_TRUE(binary.ok());

  const std::string csv_path = ::testing::TempDir() + "/stream_auto.csv";
  const std::string bin_path = ::testing::TempDir() + "/stream_auto.sgqb";
  ASSERT_TRUE(WriteFileBytes(csv_path, kSampleCsv).ok());
  ASSERT_TRUE(WriteFileBytes(bin_path, *binary).ok());

  Vocabulary v1, v2;
  auto from_csv = ReadStreamFile(csv_path, &v1);
  auto from_bin = ReadStreamFile(bin_path, &v2);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ExpectSameElements(*from_bin, *from_csv);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace sgq

// Hardened stream parsing: malformed or out-of-order lines surface a
// Status error naming the offending line instead of silently producing
// garbage.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "model/stream_io.h"

namespace sgq {
namespace {

TEST(ParseInt64Test, StrictFullFieldMatch) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);

  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("+", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));   // trailing garbage
  EXPECT_FALSE(ParseInt64("abc12", &v));
  EXPECT_FALSE(ParseInt64("1 2", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));   // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));  // underflow
}

TEST(StreamIoTest, ParsesWellFormedStream) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("# header\nu,a,v,1\n v , b , w , 2 \nu,a,v,3,-\n",
                          &vocab);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_FALSE((*r)[0].is_deletion);
  EXPECT_EQ((*r)[1].t, 2);
  EXPECT_TRUE((*r)[2].is_deletion);
}

TEST(StreamIoTest, TrailingGarbageTimestampErrorsWithLineNumber) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1\nu,a,v,2x\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("timestamp"), std::string::npos);
}

TEST(StreamIoTest, NegativeTimestampRejected) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,-4\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(r.status().message().find("negative"), std::string::npos);
}

TEST(StreamIoTest, EmptyFieldRejected) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,,v,1\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  auto r2 = ParseStreamCsv("u,a,v,1\n,a,v,2\n", &vocab);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line 2"), std::string::npos);
}

TEST(StreamIoTest, OutOfOrderNamesBothTimestamps) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,5\nu,a,v,3\n", &vocab);
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3"), std::string::npos);
  EXPECT_NE(msg.find("5"), std::string::npos);
}

TEST(StreamIoTest, WrongFieldCountNamesLine) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  auto r2 = ParseStreamCsv("u,a,v,1,+,extra\n", &vocab);
  ASSERT_FALSE(r2.ok());
}

TEST(StreamIoTest, BadOpFieldNamesLine) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1,x\n", &vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(StreamIoTest, RoundTripsThroughFormat) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("u,a,v,1\nv,b,w,2\nu,a,v,9,-\n", &vocab);
  ASSERT_TRUE(r.ok());
  const std::string csv = FormatStreamCsv(*r, vocab);
  Vocabulary vocab2;
  auto r2 = ParseStreamCsv(csv, &vocab2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), r->size());
  for (std::size_t i = 0; i < r->size(); ++i) {
    EXPECT_EQ((*r2)[i].t, (*r)[i].t);
    EXPECT_EQ((*r2)[i].is_deletion, (*r)[i].is_deletion);
  }
}

}  // namespace
}  // namespace sgq

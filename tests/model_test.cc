// Unit tests for the streaming graph data model (paper §3): intervals,
// vocabulary, sgts, coalescing and snapshot graphs. The Figure 2/3/4
// running example is reproduced exactly.

#include <gtest/gtest.h>

#include "model/coalesce.h"
#include "model/interval.h"
#include "model/sgt.h"
#include "model/snapshot_graph.h"
#include "model/stream_io.h"
#include "model/vocabulary.h"
#include "model/window.h"

namespace sgq {
namespace {

TEST(IntervalTest, ContainsIsHalfOpen) {
  Interval iv(7, 31);
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_TRUE(iv.Contains(30));
  EXPECT_FALSE(iv.Contains(31));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, EmptyWhenDegenerate) {
  EXPECT_TRUE(Interval(5, 5).Empty());
  EXPECT_TRUE(Interval(6, 5).Empty());
  EXPECT_FALSE(Interval(5, 6).Empty());
}

TEST(IntervalTest, OverlapIsSymmetric) {
  Interval a(1, 5), b(4, 9), c(5, 9);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // half-open: [1,5) and [5,9) share nothing
  EXPECT_TRUE(a.Adjacent(c));
  EXPECT_TRUE(a.OverlapsOrAdjacent(c));
}

TEST(IntervalTest, IntersectUsesMaxMin) {
  // PATTERN semantics (Def. 19): ts = max, exp = min.
  Interval a(10, 34), b(13, 37);
  EXPECT_EQ(a.Intersect(b), Interval(13, 34));
  EXPECT_EQ(a.Span(b), Interval(10, 37));
}

TEST(IntervalTest, CoversAndEquality) {
  EXPECT_TRUE(Interval(1, 10).Covers(Interval(3, 7)));
  EXPECT_TRUE(Interval(1, 10).Covers(Interval(1, 10)));
  EXPECT_FALSE(Interval(3, 7).Covers(Interval(1, 10)));
}

TEST(WindowTest, ExpiryFormulaMatchesDefinition16) {
  // exp = floor(t / beta) * beta + T.
  WindowSpec w(24, 1);
  EXPECT_EQ(w.ExpiryFor(7), 31);
  EXPECT_EQ(w.ExpiryFor(10), 34);
  WindowSpec hourly(24, 6);
  EXPECT_EQ(hourly.ExpiryFor(7), 6 + 24);   // floor(7/6)*6 + 24
  EXPECT_EQ(hourly.ExpiryFor(13), 12 + 24);
}

TEST(VocabularyTest, InternmentIsStableAndPartitioned) {
  Vocabulary vocab;
  auto follows = vocab.InternInputLabel("follows");
  ASSERT_TRUE(follows.ok());
  EXPECT_EQ(*vocab.InternInputLabel("follows"), *follows);
  EXPECT_TRUE(vocab.IsInputLabel(*follows));

  auto notify = vocab.InternDerivedLabel("notify");
  ASSERT_TRUE(notify.ok());
  EXPECT_FALSE(vocab.IsInputLabel(*notify));

  // The EDB/IDB partition is enforced (Def. 13).
  EXPECT_FALSE(vocab.InternDerivedLabel("follows").ok());
  EXPECT_FALSE(vocab.InternInputLabel("notify").ok());
}

TEST(VocabularyTest, VertexInterning) {
  Vocabulary vocab;
  VertexId u = vocab.InternVertex("u");
  EXPECT_EQ(vocab.InternVertex("u"), u);
  EXPECT_NE(vocab.InternVertex("v"), u);
  EXPECT_EQ(vocab.VertexName(u), "u");
  EXPECT_FALSE(vocab.FindVertex("w").ok());
}

TEST(SgtTest, ValueEquivalenceIgnoresTemporalAttributes) {
  // Def. 10: equality of distinguished attributes only.
  Sgt a(1, 2, 0, Interval(29, 31), {EdgeRef(1, 2, 0)});
  Sgt b(1, 2, 0, Interval(30, 54), {EdgeRef(9, 9, 9)});
  Sgt c(1, 3, 0, Interval(29, 31));
  EXPECT_TRUE(a.ValueEquivalent(b));
  EXPECT_FALSE(a.ValueEquivalent(c));
  EXPECT_FALSE(a == b);
}

// The PATTERN example of the paper (Example 6): two value-equivalent
// (u, RL, v) tuples with intervals [29,31) and [30,31) coalesce into one.
TEST(CoalesceTest, MergesOverlappingValueEquivalentTuples) {
  std::vector<Sgt> tuples = {
      Sgt(1, 2, 5, Interval(29, 31)),
      Sgt(1, 2, 5, Interval(30, 31)),
  };
  std::vector<Sgt> merged = Coalesce(tuples);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].validity, Interval(29, 31));
}

TEST(CoalesceTest, KeepsDisjointIntervalsSeparate) {
  std::vector<Sgt> tuples = {
      Sgt(1, 2, 5, Interval(1, 4)),
      Sgt(1, 2, 5, Interval(6, 9)),
      Sgt(1, 2, 5, Interval(4, 5)),  // adjacent to the first
  };
  std::vector<Sgt> merged = Coalesce(tuples);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].validity, Interval(1, 5));
  EXPECT_EQ(merged[1].validity, Interval(6, 9));
}

TEST(CoalesceTest, AggregationKeepsLastExpiringPayload) {
  // f_agg = max over expiry (the S-PATH choice, §6.2.4).
  std::vector<Sgt> tuples = {
      Sgt(1, 2, 5, Interval(1, 4), {EdgeRef(1, 9, 0), EdgeRef(9, 2, 0)}),
      Sgt(1, 2, 5, Interval(2, 8), {EdgeRef(1, 2, 1)}),
  };
  std::vector<Sgt> merged = Coalesce(tuples);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].validity, Interval(1, 8));
  ASSERT_EQ(merged[0].payload.size(), 1u);
  EXPECT_EQ(merged[0].payload[0], EdgeRef(1, 2, 1));
}

TEST(StreamingCoalescerTest, SuppressesCoveredEmitsNovel) {
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(1, 10))));
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(3, 7))));   // covered
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(5, 15))));   // extends
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(1, 15))));  // now covered
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(20, 25))));  // disjoint
  // [12,22) adds [15,20): novel, must be emitted; afterwards [2,24) is
  // fully covered by the merged [1,25).
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(12, 22))));
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(2, 24))));
}

TEST(StreamingCoalescerTest, BridgingIntervalIsEmittedOnce) {
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(1, 5))));
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(8, 12))));
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(4, 9))));   // bridges the gap
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(1, 12))));  // fully covered now
}

TEST(StreamingCoalescerTest, PerKeyTracking) {
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(1, 10))));
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 1, Interval(1, 10))));  // different label
  EXPECT_TRUE(c.Offer(Sgt(2, 1, 0, Interval(1, 10))));  // reversed pair
  EXPECT_EQ(c.NumKeys(), 3u);
  c.PurgeBefore(50);
  EXPECT_EQ(c.NumKeys(), 0u);
}

// ---------------------------------------------------------------------------
// Figure 2/3/4: the running example of the paper.
// ---------------------------------------------------------------------------

class FigureExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Figure 2: the input graph stream of the social network example.
    const char* csv =
        "u,follows,v,7\n"
        "v,posts,b,10\n"
        "y,follows,u,13\n"
        "v,posts,c,17\n"
        "u,posts,a,22\n"
        "y,likes,a,28\n"
        "u,likes,b,29\n"
        "u,likes,c,30\n";
    auto parsed = ParseStreamCsv(csv, &vocab_);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    stream_ = *parsed;
  }

  Vocabulary vocab_;
  InputStream stream_;
};

TEST_F(FigureExampleTest, Figure3WindowAssignsValidityIntervals) {
  // W24 produces the streaming graph of Figure 3: [7,31), [10,34), ...
  WindowSpec w24(24, 1);
  std::vector<Interval> expected = {{7, 31},  {10, 34}, {13, 37}, {17, 41},
                                    {22, 46}, {28, 52}, {29, 53}, {30, 54}};
  ASSERT_EQ(stream_.size(), expected.size());
  for (std::size_t i = 0; i < stream_.size(); ++i) {
    EXPECT_EQ(Interval(stream_[i].t, w24.ExpiryFor(stream_[i].t)),
              expected[i]);
  }
}

TEST_F(FigureExampleTest, Figure4SnapshotAt25) {
  // The snapshot graph at t = 25 contains the first five edges only
  // (the likes edges arrive later).
  WindowSpec w24(24, 1);
  SgtStream windowed;
  for (const Sge& sge : stream_) {
    windowed.emplace_back(sge.src, sge.trg, sge.label,
                          Interval(sge.t, w24.ExpiryFor(sge.t)),
                          Payload{sge.edge()});
  }
  SnapshotGraph g = SnapshotGraph::At(windowed, 25);
  EXPECT_EQ(g.NumEdges(), 5u);
  const VertexId u = *vocab_.FindVertex("u");
  const VertexId v = *vocab_.FindVertex("v");
  const LabelId follows = *vocab_.FindLabel("follows");
  EXPECT_TRUE(g.HasEdge(EdgeRef(u, v, follows)));
  // At t = 50 only the three likes edges ([28,52), [29,53), [30,54))
  // remain valid.
  SnapshotGraph g50 = SnapshotGraph::At(windowed, 50);
  EXPECT_EQ(g50.NumEdges(), 3u);
}

TEST_F(FigureExampleTest, StreamIoRoundTrips) {
  const std::string csv = FormatStreamCsv(stream_, vocab_);
  Vocabulary vocab2;
  auto reparsed = ParseStreamCsv(csv, &vocab2);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), stream_.size());
  for (std::size_t i = 0; i < stream_.size(); ++i) {
    EXPECT_EQ((*reparsed)[i].t, stream_[i].t);
  }
}

TEST(StreamIoTest, RejectsDecreasingTimestamps) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("a,l,b,5\nb,l,c,3\n", &vocab);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(StreamIoTest, ParsesExplicitDeletions) {
  Vocabulary vocab;
  auto r = ParseStreamCsv("a,l,b,5\na,l,b,9,-\n", &vocab);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)[0].is_deletion);
  EXPECT_TRUE((*r)[1].is_deletion);
}

TEST(SnapshotEdgesTest, DeletionTruncatesValidity) {
  SgtStream stream = {
      Sgt(1, 2, 0, Interval(5, 50)),
      Sgt(1, 2, 0, Interval(20, kMaxTimestamp), {}, /*del=*/true),
  };
  EXPECT_EQ(SnapshotEdges(stream, 10).size(), 1u);
  EXPECT_EQ(SnapshotEdges(stream, 20).size(), 0u);
  EXPECT_EQ(SnapshotEdges(stream, 30).size(), 0u);
}

}  // namespace
}  // namespace sgq

// Shared helpers for the sgq test suite, built around the paper's
// snapshot-reducibility semantics (Def. 14): the streaming engines are
// validated by comparing their output snapshots against the one-time
// oracle evaluated on windowed input snapshots.

#ifndef SGQ_TESTS_TEST_UTIL_H_
#define SGQ_TESTS_TEST_UTIL_H_

#include <set>
#include <vector>

#include "model/coalesce.h"
#include "model/sgt.h"
#include "model/snapshot_graph.h"
#include "query/oracle.h"
#include "query/rq.h"

namespace sgq {
namespace testing_util {

/// \brief Applies the WSCAN semantics of `query` to an input stream,
/// producing the windowed streaming graph W(S) (per-label windows
/// respected). Deletions become negative sgts at their deletion instant.
inline SgtStream ApplyWScan(const InputStream& stream,
                            const StreamingGraphQuery& query) {
  SgtStream out;
  for (const Sge& sge : stream) {
    if (sge.is_deletion) {
      out.emplace_back(sge.src, sge.trg, sge.label,
                       Interval(sge.t, kMaxTimestamp), Payload{sge.edge()},
                       /*del=*/true);
      continue;
    }
    const WindowSpec& w = query.WindowFor(sge.label);
    out.emplace_back(sge.src, sge.trg, sge.label,
                     Interval(sge.t, w.ExpiryFor(sge.t)),
                     Payload{sge.edge()});
  }
  return out;
}

/// \brief Evaluates the one-time counterpart of `query` on the snapshot of
/// the windowed stream at instant `t` (the right-hand side of Def. 15).
inline VertexPairSet OraclePairsAt(const InputStream& stream,
                                   const StreamingGraphQuery& query,
                                   const Vocabulary& vocab, Timestamp t) {
  const SgtStream windowed = ApplyWScan(stream, query);
  const SnapshotGraph snapshot = SnapshotGraph::At(windowed, t);
  auto result = EvaluateOneTime(query.rq, snapshot, vocab);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : VertexPairSet{};
}

/// \brief Snapshot of an engine's result stream at instant `t`, as vertex
/// pairs (the left-hand side of Def. 15).
inline VertexPairSet ResultPairsAt(const SgtStream& results, Timestamp t) {
  VertexPairSet out;
  for (const EdgeRef& e : SnapshotEdges(results, t)) {
    out.insert({e.src, e.trg});
  }
  return out;
}

/// \brief Evenly spaced sample instants across the stream's time span
/// (plus the exact endpoints).
inline std::vector<Timestamp> SampleTimes(const InputStream& stream,
                                          int samples) {
  std::vector<Timestamp> out;
  if (stream.empty()) return out;
  const Timestamp lo = stream.front().t;
  const Timestamp hi = stream.back().t;
  out.push_back(lo);
  for (int i = 1; i < samples; ++i) {
    out.push_back(lo + (hi - lo) * i / samples);
  }
  out.push_back(hi);
  return out;
}

}  // namespace testing_util
}  // namespace sgq

#endif  // SGQ_TESTS_TEST_UTIL_H_

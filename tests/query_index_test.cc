// Tests for the label-discrimination query index (runtime/query_index.h,
// DESIGN.md §3.1) and the indexed dispatch built on it
// (ExecutorOptions::use_query_index):
//
//  - the posting-list container itself (insert order, wildcard bucket,
//    miss behavior);
//  - indexed dispatch is byte-identical to the legacy full-scan dispatch
//    at num_workers = 1, across batch sizes, both PATH implementations,
//    and deletion-heavy streams — the index prunes guaranteed-no-op
//    work, never semantics;
//  - sharded indexed runs are snapshot-equivalent to the single-worker
//    reference and byte-deterministic run-to-run;
//  - the index is maintained incrementally as queries are registered on
//    a live engine, and cross-query subtree sharing registers a shared
//    scan's posting exactly once;
//  - wildcard scans (kWScan with input_label = kInvalidLabel) land in
//    the always-on bucket and admit every label;
//  - posting coverage: every label in a registered plan's admission
//    predicate (algebra/translate.h PlanAdmission) is findable in the
//    executor's index, and the index holds no label outside the union
//    of registered admission predicates.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "algebra/translate.h"
#include "core/engine.h"
#include "core/query_processor.h"
#include "runtime/query_index.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

// ---------------------------------------------------------------------------
// QueryIndex container
// ---------------------------------------------------------------------------

TEST(QueryIndexTest, FindMissesReturnNullAndWildcardStartsEmpty) {
  QueryIndex index;
  EXPECT_EQ(index.Find(7), nullptr);
  EXPECT_TRUE(index.wildcard().empty());
  EXPECT_EQ(index.NumLabels(), 0u);
  EXPECT_EQ(index.NumPostings(), 0u);
  EXPECT_EQ(index.NumWildcard(), 0u);
}

TEST(QueryIndexTest, PostingsKeepRegistrationOrderPerLabel) {
  QueryIndex index;
  index.Add(3, /*op=*/5);
  index.Add(3, /*op=*/2, /*port=*/1);
  index.Add(9, /*op=*/7);
  const QueryIndex::PostingList* postings = index.Find(3);
  ASSERT_NE(postings, nullptr);
  ASSERT_EQ(postings->size(), 2u);
  // Registration order, not op-id order: the dispatch contract is "same
  // delivery order as the legacy per-label source list".
  EXPECT_EQ((*postings)[0].op, 5);
  EXPECT_EQ((*postings)[0].port, 0);
  EXPECT_EQ((*postings)[1].op, 2);
  EXPECT_EQ((*postings)[1].port, 1);
  EXPECT_EQ(index.NumLabels(), 2u);
  EXPECT_EQ(index.NumPostings(), 3u);
  EXPECT_EQ(index.Find(4), nullptr);
}

TEST(QueryIndexTest, WildcardBucketIsSeparateFromLabelPostings) {
  QueryIndex index;
  index.AddWildcard(11);
  index.Add(3, 5);
  index.AddWildcard(13);
  EXPECT_EQ(index.NumWildcard(), 2u);
  ASSERT_EQ(index.wildcard().size(), 2u);
  EXPECT_EQ(index.wildcard()[0].op, 11);
  EXPECT_EQ(index.wildcard()[1].op, 13);
  // Find() intentionally excludes the wildcard bucket: the dispatch
  // appends it after the label postings itself.
  const QueryIndex::PostingList* postings = index.Find(3);
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(postings->size(), 1u);
}

// ---------------------------------------------------------------------------
// Differential: indexed dispatch vs legacy full scan
// ---------------------------------------------------------------------------

struct Config {
  const char* query;
  PathImpl path_impl;
};

const Config kConfigs[] = {
    {"Answer(x,z) <- a(x,y), b(y,z)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kDeltaPath},
    {"Answer(x,z) <- a+(x,y), b(y,z)", PathImpl::kSPath},
    {"Answer(x,z) <- a+(x,y), b(y,z)", PathImpl::kDeltaPath},
};

InputStream DeletionHeavyStream(uint64_t seed, Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 150;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

std::vector<Sgt> RunEngine(const StreamingGraphQuery& query,
                           const Vocabulary& vocab,
                           const InputStream& stream,
                           EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

void ExpectByteIdentical(const std::vector<Sgt>& expected,
                         const std::vector<Sgt>& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i]) << context << " position " << i;
  }
}

TEST(IndexedDispatchTest, ByteIdenticalToLegacyAtSingleWorker) {
  for (uint64_t seed : {3u, 41u, 99u}) {
    for (const Config& config : kConfigs) {
      Vocabulary vocab;
      const InputStream stream = DeletionHeavyStream(seed, &vocab);
      auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
      ASSERT_TRUE(query.ok()) << config.query;
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        EngineOptions legacy;
        legacy.path_impl = config.path_impl;
        legacy.batch_size = batch;
        legacy.use_query_index = false;
        EngineOptions indexed = legacy;
        indexed.use_query_index = true;
        ExpectByteIdentical(
            RunEngine(*query, vocab, stream, legacy),
            RunEngine(*query, vocab, stream, indexed),
            std::string(config.query) + " batch=" + std::to_string(batch) +
                " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(IndexedDispatchTest, ShardedRunsAreSnapshotEquivalentToLegacy) {
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(17, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;

    EngineOptions reference;
    reference.path_impl = config.path_impl;
    reference.use_query_index = false;
    const std::vector<Sgt> expected =
        RunEngine(*query, vocab, stream, reference);

    const std::vector<Timestamp> times = SampleTimes(stream, 8);
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      EngineOptions options;
      options.path_impl = config.path_impl;
      options.num_workers = workers;
      options.batch_size = 64;
      options.use_query_index = true;
      const std::vector<Sgt> indexed =
          RunEngine(*query, vocab, stream, options);
      for (Timestamp t : times) {
        ASSERT_EQ(ResultPairsAt(indexed, t), ResultPairsAt(expected, t))
            << config.query << " workers=" << workers << " t=" << t;
      }
    }
  }
}

TEST(IndexedDispatchTest, ShardedIndexedRunsAreByteDeterministic) {
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(23, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;
    EngineOptions options;
    options.path_impl = config.path_impl;
    options.num_workers = 4;
    options.batch_size = 64;
    options.use_query_index = true;
    ExpectByteIdentical(RunEngine(*query, vocab, stream, options),
                        RunEngine(*query, vocab, stream, options),
                        std::string(config.query) + " repeat");
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance while queries are registered
// ---------------------------------------------------------------------------

TEST(IndexMaintenanceTest, PostingsGrowWithEachRegisteredQuery) {
  Vocabulary vocab;
  const WindowSpec window(12, 3);
  Engine engine{EngineOptions{}};

  auto q_a = MakeQuery("Answer(x,y) <- a(x,y)", window, &vocab);
  ASSERT_TRUE(q_a.ok());
  ASSERT_TRUE(engine.AddQuery(*q_a, vocab).ok());
  const LabelId a = *vocab.FindLabel("a");
  const QueryIndex& index = engine.executor().query_index();
  EXPECT_EQ(index.NumLabels(), 1u);
  ASSERT_NE(index.Find(a), nullptr);
  EXPECT_EQ(index.Find(a)->size(), 1u);

  auto q_b = MakeQuery("Answer(x,z) <- b(x,y), b(y,z)", window, &vocab);
  ASSERT_TRUE(q_b.ok());
  ASSERT_TRUE(engine.AddQuery(*q_b, vocab).ok());
  const LabelId b = *vocab.FindLabel("b");
  EXPECT_EQ(index.NumLabels(), 2u);
  ASSERT_NE(index.Find(b), nullptr);
  EXPECT_EQ(index.Find(b)->size(), 1u);

  // Re-registering the a query dedups its scan against the live topology
  // (cross-query sharing), so the shared source's posting is NOT
  // duplicated: the index tracks operators, not subscriptions.
  ASSERT_TRUE(engine.AddQuery(*q_a, vocab).ok());
  EXPECT_EQ(index.NumLabels(), 2u);
  EXPECT_EQ(index.Find(a)->size(), 1u);
  EXPECT_EQ(index.NumWildcard(), 0u);

  // With sharing disabled every registration compiles private sources,
  // and the posting list for the label grows with the population.
  EngineOptions unshared;
  unshared.cross_query_sharing = false;
  Engine ablation{unshared};
  ASSERT_TRUE(ablation.AddQuery(*q_a, vocab).ok());
  ASSERT_TRUE(ablation.AddQuery(*q_a, vocab).ok());
  const QueryIndex& ablation_index = ablation.executor().query_index();
  ASSERT_NE(ablation_index.Find(a), nullptr);
  EXPECT_EQ(ablation_index.Find(a)->size(), 2u);
}

// ---------------------------------------------------------------------------
// Wildcard scans
// ---------------------------------------------------------------------------

TEST(WildcardSourceTest, WildcardScanAdmitsEveryLabel) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.num_labels = 3;
  opt.num_edges = 60;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  for (const bool use_index : {false, true}) {
    EngineOptions options;
    options.use_query_index = use_index;
    Engine engine{options};
    // A bare wildcard scan: input_label = kInvalidLabel admits every
    // label; WScanOp re-emits each arriving element under its own label.
    auto added =
        engine.AddPlan(*MakeWScan(kInvalidLabel, WindowSpec(1000, 10)),
                       vocab);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
    ASSERT_TRUE(engine.Finalize().ok());
    EXPECT_EQ(engine.executor().query_index().NumWildcard(), 1u);
    EXPECT_EQ(engine.executor().query_index().NumLabels(), 0u);
    engine.PushAll(*stream);
    // Every non-deletion element is admitted and emitted (the window
    // outlives the stream, so nothing expires).
    EXPECT_EQ(engine.results(*added).size(), stream->size());
    for (std::size_t i = 0; i < engine.results(*added).size(); ++i) {
      EXPECT_EQ(engine.results(*added)[i].label, (*stream)[i].label);
    }
  }
}

TEST(WildcardSourceTest, WildcardAndLabelQueriesCoexistByteIdentically) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = 5;
  opt.num_labels = 3;
  opt.num_edges = 120;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  auto labeled =
      MakeQuery("Answer(x,z) <- a(x,y), b(y,z)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(labeled.ok());

  std::vector<std::vector<Sgt>> runs;
  for (const bool use_index : {false, true}) {
    EngineOptions options;
    options.use_query_index = use_index;
    Engine engine{options};
    auto wildcard =
        engine.AddPlan(*MakeWScan(kInvalidLabel, WindowSpec(12, 3)), vocab);
    ASSERT_TRUE(wildcard.ok());
    auto q = engine.AddQuery(*labeled, vocab);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine.Finalize().ok());
    engine.PushAll(*stream);
    std::vector<Sgt> combined = engine.results(*wildcard);
    const std::vector<Sgt>& rest = engine.results(*q);
    combined.insert(combined.end(), rest.begin(), rest.end());
    EXPECT_FALSE(engine.results(*wildcard).empty());
    runs.push_back(std::move(combined));
  }
  ExpectByteIdentical(runs[0], runs[1], "wildcard + labeled mix");
}

// ---------------------------------------------------------------------------
// Posting coverage: compile-time admission predicates vs the live index
// ---------------------------------------------------------------------------

TEST(PostingCoverageTest, AdmissionPredicateMatchesPlanLeaves) {
  Vocabulary vocab;
  ASSERT_TRUE(vocab.InternInputLabel("a").ok());
  ASSERT_TRUE(vocab.InternInputLabel("b").ok());
  auto query =
      MakeQuery("Answer(x,z) <- a+(x,y), b(y,z)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  auto plan = TranslateToCanonicalPlan(*query, vocab);
  ASSERT_TRUE(plan.ok());
  const AdmissionPredicate admission = PlanAdmission(**plan);
  EXPECT_FALSE(admission.wildcard);
  std::vector<LabelId> expected = {*vocab.FindLabel("a"),
                                   *vocab.FindLabel("b")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(admission.labels, expected);

  const AdmissionPredicate wild =
      PlanAdmission(*MakeWScan(kInvalidLabel, WindowSpec(12, 3)));
  EXPECT_TRUE(wild.wildcard);
  EXPECT_TRUE(wild.labels.empty());
}

TEST(PostingCoverageTest, IndexCoversExactlyTheRegisteredAdmissions) {
  const char* kTexts[] = {
      "Answer(x,y) <- a(x,y)",
      "Answer(x,z) <- a(x,y), b(y,z)",
      "Answer(x,y) <- b+(x,y)",
      "Answer(x,z) <- c+(x,y), a(y,z)",
      "Answer(x,w) <- a(x,y), b(y,z), c(z,w)",
  };
  Vocabulary vocab;
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(vocab.InternInputLabel(name).ok());
  }

  Engine engine{EngineOptions{}};
  std::set<LabelId> admitted;
  bool any_wildcard = false;
  for (const char* text : kTexts) {
    auto query = MakeQuery(text, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << text;
    auto plan = TranslateToCanonicalPlan(*query, vocab);
    ASSERT_TRUE(plan.ok()) << text;
    const AdmissionPredicate admission = PlanAdmission(**plan);
    admitted.insert(admission.labels.begin(), admission.labels.end());
    any_wildcard |= admission.wildcard;
    ASSERT_TRUE(engine.AddPlan(**plan, vocab).ok()) << text;

    // Invariant at every registration point, not just at the end: each
    // admission label is findable with at least one valid posting.
    const QueryIndex& index = engine.executor().query_index();
    for (LabelId label : admission.labels) {
      const QueryIndex::PostingList* postings = index.Find(label);
      ASSERT_NE(postings, nullptr)
          << text << " label " << vocab.LabelName(label);
      EXPECT_FALSE(postings->empty());
      for (const SourcePosting& posting : *postings) {
        EXPECT_GE(posting.op, 0);
        EXPECT_LT(static_cast<std::size_t>(posting.op),
                  engine.executor().NumOps());
      }
    }
  }

  // No stray postings: the index's label set is exactly the union of the
  // registered plans' admission predicates, and nothing registered a
  // wildcard bucket entry.
  const QueryIndex& index = engine.executor().query_index();
  const std::vector<LabelId> labels = index.Labels();
  const std::set<LabelId> indexed(labels.begin(), labels.end());
  EXPECT_EQ(indexed, admitted);
  EXPECT_EQ(index.NumWildcard(), any_wildcard ? 1u : 0u);
}

}  // namespace
}  // namespace sgq

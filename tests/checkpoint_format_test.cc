// SGQC checkpoint container (model/checkpoint.h, DESIGN.md §7): encoding
// round trips, and — the crash-consistency bar — fault injection. Every
// mutilation of a valid checkpoint (truncation at every byte, a flipped
// bit in any section, version skew, trailing garbage) must be rejected
// with a *positioned* error before any payload is handed out, and every
// write-side failure (ENOSPC, short write) must surface verbatim from
// the injected sink. Also covers the durable-write protocol (temp file +
// fsync + atomic rename leaves the previous good file untouched) and the
// FileByteSink Flush/Sync hardening it rides on.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "model/checkpoint.h"
#include "model/stream_io.h"

namespace sgq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// \brief A three-section image with non-trivial payloads (NULs, high
/// bytes) — the fixture every fault-injection test mutates.
std::string SampleImage() {
  CheckpointWriter writer;
  std::string clock;
  PutI64(&clock, -17);
  PutU64(&clock, 42);
  writer.AddSection("clock", clock);
  std::string ops(300, '\0');
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i] = static_cast<char>(i * 7);
  }
  writer.AddSection("ops", ops);
  writer.AddSection("engine", std::string("\xff\x00payload", 9));
  return writer.Encode();
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, ChunkedMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::uint32_t first = Crc32(data.substr(0, split));
    EXPECT_EQ(Crc32(data.substr(split), first), whole) << "split " << split;
  }
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(CheckpointFormatTest, EncodeParseRoundTrip) {
  const std::string image = SampleImage();
  auto reader = CheckpointReader::Parse(image, "test");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->version(), kCheckpointVersion);
  ASSERT_EQ(reader->sections().size(), 3u);
  EXPECT_EQ(reader->sections()[0].name, "clock");
  EXPECT_EQ(reader->sections()[1].name, "ops");
  EXPECT_EQ(reader->sections()[2].name, "engine");
  EXPECT_EQ(reader->payload(reader->sections()[2]),
            std::string_view("\xff\x00payload", 9));
  EXPECT_EQ(reader->Find("ops")->length, 300u);
  EXPECT_EQ(reader->Find("nope"), nullptr);

  auto clock = reader->Open("clock");
  ASSERT_TRUE(clock.ok());
  EXPECT_EQ(clock->I64(), -17);
  EXPECT_EQ(clock->U64(), 42u);
  EXPECT_TRUE(clock->ExpectEnd().ok());
  EXPECT_FALSE(reader->Open("nope").ok());
}

TEST(CheckpointFormatTest, EmptyImageParses) {
  CheckpointWriter writer;
  auto reader = CheckpointReader::Parse(writer.Encode(), "empty");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->sections().empty());
}

TEST(CheckpointFormatTest, EncodingIsDeterministic) {
  EXPECT_EQ(SampleImage(), SampleImage());
}

// ---------------------------------------------------------------------------
// Fault injection: every bad image rejected, always with a position
// ---------------------------------------------------------------------------

TEST(CheckpointFaultTest, TruncationAtEveryByteRejected) {
  const std::string image = SampleImage();
  for (std::size_t len = 0; len < image.size(); ++len) {
    auto reader = CheckpointReader::Parse(image.substr(0, len), "trunc");
    ASSERT_FALSE(reader.ok()) << "truncated to " << len << " bytes parsed";
    EXPECT_NE(reader.status().message().find("trunc"), std::string::npos)
        << reader.status().ToString();
  }
}

TEST(CheckpointFaultTest, SingleBitFlipAnywhereRejected) {
  const std::string image = SampleImage();
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string bad = image;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    auto reader = CheckpointReader::Parse(std::move(bad), "flip");
    EXPECT_FALSE(reader.ok()) << "bit flip at byte " << i << " parsed";
  }
}

TEST(CheckpointFaultTest, ErrorsCarryByteOffsets) {
  std::string bad = SampleImage();
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  auto reader = CheckpointReader::Parse(std::move(bad), "positioned");
  ASSERT_FALSE(reader.ok());
  // The message must localize the damage: context plus an offset.
  EXPECT_NE(reader.status().message().find("positioned"), std::string::npos)
      << reader.status().ToString();
  EXPECT_NE(reader.status().message().find("offset"), std::string::npos)
      << reader.status().ToString();
}

TEST(CheckpointFaultTest, VersionSkewRejected) {
  std::string image = SampleImage();
  // Patch the version field (offset 4) and repair the whole-file CRC so
  // the *version check* does the rejecting, not the integrity check.
  image[4] = static_cast<char>(kCheckpointVersion + 1);
  const std::uint32_t crc = Crc32(image.data(), image.size() - 4);
  for (int i = 0; i < 4; ++i) {
    image[image.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  auto reader = CheckpointReader::Parse(std::move(image), "skew");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos)
      << reader.status().ToString();
}

TEST(CheckpointFaultTest, TrailingGarbageRejected) {
  auto reader =
      CheckpointReader::Parse(SampleImage() + "extra", "trailing");
  EXPECT_FALSE(reader.ok());
}

TEST(CheckpointFaultTest, WrongMagicRejected) {
  std::string image = SampleImage();
  image[0] = 'X';
  EXPECT_FALSE(CheckpointReader::Parse(std::move(image), "magic").ok());
}

// ---------------------------------------------------------------------------
// ByteReader discipline
// ---------------------------------------------------------------------------

TEST(ByteReaderTest, StickyErrorAndPosition) {
  std::string payload;
  PutU32(&payload, 7);
  ByteReader in(payload, "sticky");
  EXPECT_EQ(in.U32(), 7u);
  EXPECT_EQ(in.U64(), 0u);  // past the end: zero, error sticks
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.U8(), 0u);  // still stuck
  EXPECT_NE(in.status().message().find("sticky"), std::string::npos);
}

TEST(ByteReaderTest, ExpectEndRejectsTrailingBytes) {
  std::string payload;
  PutU32(&payload, 1);
  PutU8(&payload, 2);
  ByteReader in(payload, "tail");
  EXPECT_EQ(in.U32(), 1u);
  EXPECT_FALSE(in.ExpectEnd().ok());
}

TEST(ByteReaderTest, SgeSgtCodecsRoundTrip) {
  Sge e{3, 9, 2, 44, /*del=*/true};
  Sgt t(5, 6, 1, Interval(10, 70), Payload{EdgeRef{5, 7, 1},
                                           EdgeRef{7, 6, 1}},
        /*del=*/false);
  std::string payload;
  PutSge(&payload, e);
  PutSgt(&payload, t);
  ByteReader in(payload, "codec");
  const Sge e2 = GetSge(&in);
  const Sgt t2 = GetSgt(&in);
  ASSERT_TRUE(in.ExpectEnd().ok()) << in.status().ToString();
  EXPECT_EQ(e2.src, e.src);
  EXPECT_EQ(e2.trg, e.trg);
  EXPECT_EQ(e2.label, e.label);
  EXPECT_EQ(e2.t, e.t);
  EXPECT_EQ(e2.is_deletion, e.is_deletion);
  EXPECT_EQ(t2.src, t.src);
  EXPECT_EQ(t2.trg, t.trg);
  EXPECT_EQ(t2.validity.ts, t.validity.ts);
  EXPECT_EQ(t2.validity.exp, t.validity.exp);
  ASSERT_EQ(t2.payload.size(), 2u);
  EXPECT_EQ(t2.payload[1].src, 7u);
}

// ---------------------------------------------------------------------------
// Write-side fault injection
// ---------------------------------------------------------------------------

/// \brief ByteSink that fails after accepting `budget` bytes — ENOSPC /
/// short-write at an arbitrary byte, injected deterministically.
class FailingByteSink : public ByteSink {
 public:
  explicit FailingByteSink(std::size_t budget) : budget_(budget) {}

  Status Append(std::string_view bytes) override {
    if (accepted_ + bytes.size() > budget_) {
      return Status::Internal("injected: no space left on device");
    }
    accepted_ += bytes.size();
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::size_t budget_;
  std::size_t accepted_ = 0;
};

TEST(CheckpointWriteTest, SinkFailureAtEveryBudgetSurfaces) {
  CheckpointWriter writer;
  writer.AddSection("clock", "0123456789");
  writer.AddSection("ops", std::string(100, 'z'));
  const std::string image = writer.Encode();
  for (std::size_t budget = 0; budget < image.size(); budget += 7) {
    FailingByteSink sink(budget);
    Status st = writer.WriteTo(&sink);
    ASSERT_FALSE(st.ok()) << "budget " << budget << " succeeded";
    EXPECT_NE(st.message().find("no space left"), std::string::npos);
  }
  StringByteSink ok_sink;
  ASSERT_TRUE(writer.WriteTo(&ok_sink).ok());
  EXPECT_EQ(ok_sink.bytes(), image);
}

TEST(CheckpointWriteTest, DurableWriteIsAtomicOverPreviousFile) {
  const std::string path = TempPath("ckpt_atomic.sgqc");
  CheckpointWriter first;
  first.AddSection("clock", "first");
  ASSERT_TRUE(first.WriteFile(path).ok());
  auto parsed = CheckpointReader::ParseFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Overwrite through the same protocol: the new image replaces the old
  // atomically and no ".tmp" residue survives a successful write.
  CheckpointWriter second;
  second.AddSection("clock", "second, longer than the first payload");
  ASSERT_TRUE(second.WriteFile(path).ok());
  auto reparsed = CheckpointReader::ParseFile(path);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->payload(reparsed->sections()[0]),
            "second, longer than the first payload");
  EXPECT_FALSE(ReadFileBytes(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(CheckpointWriteTest, UnwritableDirectoryFailsWithErrnoText) {
  CheckpointWriter writer;
  writer.AddSection("clock", "x");
  Status st = writer.WriteFile(TempPath("no/such/dir/ckpt.sgqc"));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("No such file"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// FileByteSink hardening (satellite: Flush/Sync + injected failures)
// ---------------------------------------------------------------------------

TEST(FileByteSinkTest, FlushAndSyncMakeBytesVisible) {
  const std::string path = TempPath("sink_sync.bin");
  FileByteSink sink(path);
  ASSERT_TRUE(sink.Append("durable").ok());
  ASSERT_TRUE(sink.Flush().ok());
  ASSERT_TRUE(sink.Sync().ok()) << sink.status().ToString();
  // Sync() forces the staged tail through the stdio buffer: the bytes
  // must be readable *before* Close().
  auto visible = ReadFileBytes(path);
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(*visible, "durable");
  ASSERT_TRUE(sink.Close().ok());
  std::remove(path.c_str());
}

TEST(FileByteSinkTest, SyncAfterOpenFailureSticks) {
  FileByteSink sink(TempPath("no/such/dir/out.bin"));
  EXPECT_FALSE(sink.Append("x").ok());
  EXPECT_FALSE(sink.Flush().ok());
  EXPECT_FALSE(sink.Sync().ok());
  // The sticky error carries the errno text and the path.
  EXPECT_NE(sink.status().message().find("No such file"),
            std::string::npos)
      << sink.status().ToString();
}

}  // namespace
}  // namespace sgq

// End-to-end tests: canonical plans for Table 1-style queries evaluated
// incrementally and compared, at sampled instants, against the one-time
// oracle on window snapshots (Def. 15). Also: equivalence of rewritten
// plans (§5.4), the S-PATH vs Δ-tree engine configurations, explicit
// deletions through full plans, and the G-CORE front-end end to end.

#include <gtest/gtest.h>

#include "algebra/transform.h"
#include "algebra/translate.h"
#include "core/query_processor.h"
#include "query/gcore.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::OraclePairsAt;
using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

struct E2eCase {
  const char* name;
  const char* text;  // rq.h Datalog syntax over labels a, b, c
  int seed;
};

class EndToEndTest : public ::testing::TestWithParam<E2eCase> {};

TEST_P(EndToEndTest, CanonicalPlanMatchesOracle) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed);
  opt.num_vertices = 9;
  opt.num_labels = 3;
  opt.num_edges = 100;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query = MakeQuery(GetParam().text, WindowSpec(18, 1), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    EngineOptions options;
    options.path_impl = impl;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok()) << qp.status().ToString();
    (*qp)->PushAll(*stream);
    for (Timestamp t : SampleTimes(*stream, 12)) {
      EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
                OraclePairsAt(*stream, *query, vocab, t))
          << GetParam().name << " impl=" << static_cast<int>(impl)
          << " t=" << t;
    }
  }
}

TEST_P(EndToEndTest, EnumeratedPlansAreEquivalent) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed) + 77;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 70;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query = MakeQuery(GetParam().text, WindowSpec(15, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto canonical = TranslateToCanonicalPlan(*query, vocab);
  ASSERT_TRUE(canonical.ok());

  // Reference run: the canonical plan.
  auto reference = QueryProcessor::Compile(**canonical, vocab, {});
  ASSERT_TRUE(reference.ok());
  (*reference)->PushAll(*stream);
  const std::vector<Timestamp> times = SampleTimes(*stream, 8);
  std::vector<VertexPairSet> expected;
  for (Timestamp t : times) {
    expected.push_back(ResultPairsAt((*reference)->results(), t));
  }

  // Every plan found by the transformation rules must agree (Def. 14:
  // the rules are equivalences).
  std::vector<LogicalPlan> plans = EnumeratePlans(**canonical, &vocab, 10);
  ASSERT_GE(plans.size(), 1u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    auto qp = QueryProcessor::Compile(*plans[i], vocab, {});
    ASSERT_TRUE(qp.ok()) << plans[i]->ToString(vocab);
    (*qp)->PushAll(*stream);
    for (std::size_t j = 0; j < times.size(); ++j) {
      EXPECT_EQ(ResultPairsAt((*qp)->results(), times[j]), expected[j])
          << GetParam().name << " plan#" << i << " t=" << times[j] << "\n"
          << plans[i]->ToString(vocab);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1Shapes, EndToEndTest,
    ::testing::Values(
        E2eCase{"Q1", "Answer(x,y) <- a*(x,y)", 11},
        E2eCase{"Q2", "Answer(x,y) <- a(x,z), b*(z,y)", 12},
        E2eCase{"Q3", "Answer(x,y) <- a(x,z), b*(z,w), c*(w,y)", 13},
        E2eCase{"Q4",
                "D(x,y) <- a(x,z1), b(z1,z2), c(z2,y)\n"
                "Answer(x,y) <- D+(x,y)",
                14},
        E2eCase{"Q5",
                "Answer(m1,m2) <- a(x,y), b(m1,x), b(m2,y), c(m2,m1)", 15},
        E2eCase{"Q6", "Answer(x,y) <- a+(x,y), b(x,m), c(m,y)", 16},
        E2eCase{"Q7",
                "RL(x,y) <- a+(x,y), b(x,m), c(m,y)\n"
                "Answer(x,m) <- RL+(x,y), c(m,y)",
                17},
        E2eCase{"Union",
                "R(x,y) <- a(x,y)\nR(x,y) <- b(x,y)\n"
                "Answer(x,y) <- R+(x,y)",
                18},
        E2eCase{"SelfJoin", "Answer(x,y) <- a(x,y), b(x,y)", 19}),
    [](const ::testing::TestParamInfo<E2eCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Explicit deletions through full plans
// ---------------------------------------------------------------------------

class DeletionCase : public ::testing::TestWithParam<int> {};

TEST_P(DeletionCase, EngineMatchesOracleUnderExplicitDeletions) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam());
  opt.num_vertices = 8;
  opt.num_labels = 2;
  opt.num_edges = 80;
  opt.max_gap = 2;
  opt.deletion_probability = 0.15;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(16, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(*stream);
  for (Timestamp t : SampleTimes(*stream, 10)) {
    EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
              OraclePairsAt(*stream, *query, vocab, t))
        << "seed=" << GetParam() << " t=" << t;
  }
}

TEST_P(DeletionCase, PatternPlanMatchesOracleUnderDeletions) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam()) + 500;
  opt.num_vertices = 8;
  opt.num_labels = 2;
  opt.num_edges = 80;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query =
      MakeQuery("Answer(x,y) <- a(x,z), b(z,y)", WindowSpec(14, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(*stream);
  for (Timestamp t : SampleTimes(*stream, 10)) {
    EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
              OraclePairsAt(*stream, *query, vocab, t))
        << "seed=" << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeletionCase, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Composability and the G-CORE front-end, end to end
// ---------------------------------------------------------------------------

TEST(ComposabilityTest, QueryOutputFeedsAnotherQuery) {
  // SGA closedness (§5.3): run Q over S, feed its output stream into Q'.
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = 99;
  opt.num_vertices = 8;
  opt.num_labels = 2;
  opt.num_edges = 60;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  // Q: Ans1 = a . b (derived edges labelled Ans1).
  auto q1 = MakeQuery("Answer(x,y) <- a(x,z), b(z,y)", WindowSpec(20, 1),
                      &vocab);
  ASSERT_TRUE(q1.ok());
  auto qp1 = QueryProcessor::FromQuery(*q1, vocab, {});
  ASSERT_TRUE(qp1.ok());
  (*qp1)->PushAll(*stream);

  // Q': transitive closure over the derived Answer edges, evaluated as a
  // PATH plan over the (already windowed) output streaming graph.
  LabelId ans = (*q1).rq.answer();
  LabelId out2 = *vocab.InternDerivedLabel("Closure");
  std::vector<LogicalPlan> children;
  children.push_back(MakeWScan(ans, WindowSpec(20, 1)));
  auto plan2 =
      MakePath(out2, Regex::Plus(Regex::Label(ans)), std::move(children));
  // Compile with a scan that simply forwards (the output tuples already
  // carry validity intervals, so we feed them directly as sgts).
  auto qp2 = QueryProcessor::Compile(*plan2, vocab, {});
  ASSERT_TRUE(qp2.ok());
  // Directly inject the first query's output via the scan's OnTuple hook:
  // here we reuse PushAll by converting sgts back to sges would lose the
  // intervals, so instead verify closedness through the oracle: the
  // composed semantics equals TC over Q's snapshot output.
  const std::vector<Sgt>& results1 = (*qp1)->results();
  for (Timestamp t : SampleTimes(*stream, 6)) {
    VertexPairSet q1_pairs = ResultPairsAt(results1, t);
    VertexPairSet composed = TransitiveClosure(q1_pairs);
    // Oracle for the composition: TC of the oracle of Q.
    VertexPairSet oracle_pairs = OraclePairsAt(*stream, *q1, vocab, t);
    EXPECT_EQ(composed, TransitiveClosure(oracle_pairs)) << " t=" << t;
  }
}

TEST(GCoreEndToEndTest, Figure6QueryRunsOnRunningExample) {
  Vocabulary vocab;
  auto query = ParseGCore(
      "PATH RL = (u1)-/<:follows+>/->(u2), "
      "(u1)-[:likes]->(m1)<-[:posts]-(u2)\n"
      "CONSTRUCT (u)-[:notify]->(m)\n"
      "MATCH (u)-/<~RL+>/->(v), (v)-[:posts]->(m)\n"
      "ON social_stream WINDOW (24 HOURS)",
      &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // The Figure 2 stream (vertices interned into the same vocabulary).
  InputStream stream;
  auto add = [&](const char* s, const char* l, const char* g, Timestamp t) {
    stream.emplace_back(vocab.InternVertex(s), vocab.InternVertex(g),
                        *vocab.FindLabel(l), t);
  };
  add("u", "follows", "v", 7);
  add("v", "posts", "b", 10);
  add("y", "follows", "u", 13);
  add("v", "posts", "c", 17);
  add("u", "posts", "a", 22);
  add("y", "likes", "a", 28);
  add("u", "likes", "b", 29);
  add("u", "likes", "c", 30);

  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(stream);

  // Example 1's notification: y is notified of v's posts via the
  // recentLiker path y -> u -> v, and of u's posts via y -> u.
  const VertexId y = *vocab.FindVertex("y");
  const VertexId u = *vocab.FindVertex("u");
  const VertexId a = *vocab.FindVertex("a");
  const VertexId b = *vocab.FindVertex("b");
  const VertexId c = *vocab.FindVertex("c");
  VertexPairSet pairs = ResultPairsAt((*qp)->results(), 30);
  EXPECT_TRUE(pairs.count({y, a}) > 0);  // u posted a; y recentLikes u
  EXPECT_TRUE(pairs.count({y, b}) > 0);  // v posted b; path y->u->v
  EXPECT_TRUE(pairs.count({y, c}) > 0);
  EXPECT_TRUE(pairs.count({u, b}) > 0);  // u recentLikes v directly
  // Snapshot reducibility for the whole G-CORE query.
  for (Timestamp t : {25, 28, 29, 30}) {
    EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
              OraclePairsAt(stream, *query, vocab, t))
        << " t=" << t;
  }
}

TEST(MultiWindowTest, PerLabelWindowsChangeExpiry) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,z), b(z,y)", WindowSpec(10, 1),
                         &vocab);
  ASSERT_TRUE(query.ok());
  // b tuples live much longer than a tuples.
  query->per_label_windows[*vocab.FindLabel("b")] = WindowSpec(100, 1);

  InputStream stream = {
      Sge(1, 2, *vocab.FindLabel("a"), 0),
      Sge(2, 3, *vocab.FindLabel("b"), 1),
  };
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(stream);
  // Join valid only while BOTH are alive: a expires at 10.
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 5).size(), 1u);
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 10).size(), 0u);
  for (Timestamp t : {0, 5, 9, 10, 11}) {
    EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
              OraclePairsAt(stream, *query, vocab, t))
        << " t=" << t;
  }
}

}  // namespace
}  // namespace sgq

// Per-operator SerializeState/DeserializeState round trips (DESIGN.md §7).
// The property under test is behavioral, not just structural: a restored
// operator must (a) re-serialize to byte-identical state and (b) behave
// identically to the original on every subsequent input — probes, purges,
// suppression decisions, releases. Byte-equal re-serialization is the
// cheap proxy the engine-level differential leans on, so it is pinned
// here at the smallest scope.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/reorder_buffer.h"
#include "core/window_store.h"
#include "model/checkpoint.h"
#include "model/coalesce.h"

namespace sgq {
namespace {

/// \brief Serialize → restore into a fresh instance → assert the restored
/// bytes match. Returns the restored instance through `out`.
template <typename Op>
std::string RoundTrip(const Op& original, Op* out) {
  std::string bytes;
  original.SerializeState(&bytes);
  ByteReader in(bytes, "round-trip");
  Status st = out->DeserializeState(&in);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(in.ExpectEnd().ok()) << in.status().ToString();
  std::string again;
  out->SerializeState(&again);
  EXPECT_EQ(bytes, again) << "restored state re-serializes differently";
  return bytes;
}

// ---------------------------------------------------------------------------
// WindowEdgeStore
// ---------------------------------------------------------------------------

/// \brief A store exercised through inserts, coalescing overlaps, explicit
/// deletions, value scrubs, and purges — every mutation path.
void ChurnStore(WindowEdgeStore* store, std::uint32_t seed,
                bool with_in_index) {
  if (with_in_index) store->EnableInIndex();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<VertexId> vertex(0, 9);
  std::uniform_int_distribution<LabelId> label(0, 2);
  std::uniform_int_distribution<Timestamp> ts(0, 80);
  for (int i = 0; i < 200; ++i) {
    const VertexId src = vertex(rng);
    const VertexId trg = vertex(rng);
    const LabelId l = label(rng);
    const Timestamp t = ts(rng);
    const int action = i % 10;
    if (action < 7) {
      store->Insert(src, trg, l, Interval(t, t + 20));
    } else if (action < 9) {
      store->DeleteAt(src, trg, l, t);
    } else {
      store->RemoveValue(src, trg, l);
    }
  }
  store->PurgeExpired(40);
}

void ExpectSameEdges(const WindowEdgeStore::EdgeRun& a,
                     const WindowEdgeStore::EdgeRun& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trg, b[i].trg) << what << " entry " << i;
    EXPECT_EQ(a[i].validity.ts, b[i].validity.ts) << what << " entry " << i;
    EXPECT_EQ(a[i].validity.exp, b[i].validity.exp) << what << " entry " << i;
  }
}

TEST(WindowEdgeStoreCheckpointTest, RoundTripPreservesProbesAndPurges) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    WindowEdgeStore original;
    ChurnStore(&original, seed, /*with_in_index=*/true);

    WindowEdgeStore restored;
    restored.EnableInIndex();
    RoundTrip(original, &restored);
    EXPECT_EQ(restored.NumEntries(), original.NumEntries());

    // Identical probe results — including run *order*, which downstream
    // traversals and probe loops depend on for byte-identical output.
    for (VertexId v = 0; v < 10; ++v) {
      for (LabelId l = 0; l < 3; ++l) {
        ExpectSameEdges(original.OutEdges(v, l), restored.OutEdges(v, l),
                        "out-edges");
        ExpectSameEdges(original.InEdges(v, l), restored.InEdges(v, l),
                        "in-edges");
      }
    }

    // Identical behavior from here on: purge both at the same instant and
    // compare the drops, then the surviving adjacency.
    const std::vector<Sgt> d1 = original.PurgeExpired(70);
    const std::vector<Sgt> d2 = restored.PurgeExpired(70);
    ASSERT_EQ(d1.size(), d2.size()) << "seed " << seed;
    for (std::size_t i = 0; i < d1.size(); ++i) {
      EXPECT_EQ(d1[i].src, d2[i].src);
      EXPECT_EQ(d1[i].trg, d2[i].trg);
      EXPECT_EQ(d1[i].validity.ts, d2[i].validity.ts);
    }
    std::string a, b;
    original.SerializeState(&a);
    restored.SerializeState(&b);
    EXPECT_EQ(a, b) << "post-purge state diverged, seed " << seed;
  }
}

TEST(WindowEdgeStoreCheckpointTest, AdoptsLazilyEnabledInIndex) {
  // PATH consumers enable the reverse index lazily on the first delete, so
  // a snapshot can carry in_index=true while the fresh restore-target store
  // has it false. Restore must adopt the flag and the index content.
  WindowEdgeStore original;
  original.Insert(1, 2, 0, Interval(0, 50));
  original.Insert(3, 2, 0, Interval(5, 50));
  original.EnableInIndex();  // the lazy enable, mid-run

  WindowEdgeStore restored;  // fresh: flag off
  RoundTrip(original, &restored);
  EXPECT_TRUE(restored.in_index_enabled());
  ExpectSameEdges(original.InEdges(2, 0), restored.InEdges(2, 0),
                  "adopted in-edges");
}

TEST(WindowEdgeStoreCheckpointTest, NonEmptyTargetRefused) {
  WindowEdgeStore original;
  original.Insert(1, 2, 0, Interval(0, 10));
  std::string bytes;
  original.SerializeState(&bytes);

  WindowEdgeStore dirty;
  dirty.Insert(5, 6, 1, Interval(0, 10));
  ByteReader in(bytes, "dirty");
  Status st = dirty.DeserializeState(&in);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not empty"), std::string::npos)
      << st.ToString();
}

TEST(WindowEdgeStoreCheckpointTest, TruncatedStateRejected) {
  WindowEdgeStore original;
  ChurnStore(&original, 3, /*with_in_index=*/false);
  std::string bytes;
  original.SerializeState(&bytes);
  for (std::size_t len : {std::size_t{0}, bytes.size() / 3,
                          bytes.size() - 1}) {
    WindowEdgeStore target;
    ByteReader in(std::string_view(bytes.data(), len), "trunc");
    Status st = target.DeserializeState(&in);
    if (st.ok()) st = in.ExpectEnd();
    EXPECT_FALSE(st.ok()) << "accepted " << len << " of " << bytes.size();
  }
}

// ---------------------------------------------------------------------------
// StreamingCoalescer
// ---------------------------------------------------------------------------

TEST(StreamingCoalescerCheckpointTest, RoundTripPreservesSuppression) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<VertexId> vertex(0, 5);
  std::uniform_int_distribution<Timestamp> ts(0, 60);

  StreamingCoalescer original;
  for (int i = 0; i < 150; ++i) {
    const Timestamp t = ts(rng);
    original.Offer(Sgt(vertex(rng), vertex(rng), 0, Interval(t, t + 10)));
  }
  original.PurgeBefore(20);
  original.Forget(EdgeRef{1, 2, 0}, 30);

  StreamingCoalescer restored;
  RoundTrip(original, &restored);
  EXPECT_EQ(restored.NumKeys(), original.NumKeys());

  // The restored coalescer must make the *same* accept/suppress decision
  // as the original on every further offer.
  std::mt19937 probe_rng(99);
  for (int i = 0; i < 300; ++i) {
    const Timestamp t = ts(probe_rng);
    const Sgt probe(vertex(probe_rng), vertex(probe_rng), 0,
                    Interval(t, t + 5));
    EXPECT_EQ(original.Offer(probe), restored.Offer(probe))
        << "offer " << i << " diverged";
  }
  std::string a, b;
  original.SerializeState(&a);
  restored.SerializeState(&b);
  EXPECT_EQ(a, b);
}

TEST(StreamingCoalescerCheckpointTest, NonEmptyTargetRefused) {
  StreamingCoalescer original;
  original.Offer(Sgt(1, 2, 0, Interval(0, 10)));
  std::string bytes;
  original.SerializeState(&bytes);

  StreamingCoalescer dirty;
  dirty.Offer(Sgt(3, 4, 0, Interval(0, 10)));
  ByteReader in(bytes, "dirty");
  EXPECT_FALSE(dirty.DeserializeState(&in).ok());
}

// ---------------------------------------------------------------------------
// ReorderBuffer
// ---------------------------------------------------------------------------

TEST(ReorderBufferCheckpointTest, RoundTripPreservesReleases) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<Timestamp> jitter(0, 8);

  ReorderBuffer original(/*slack=*/8);
  for (Timestamp base = 0; base < 40; ++base) {
    const Timestamp t = base + jitter(rng) - 4;
    original.Offer(Sge{static_cast<VertexId>(base % 7),
                       static_cast<VertexId>(base % 5), 0,
                       t < 0 ? 0 : t, false});
  }

  ReorderBuffer restored(/*slack=*/8);
  RoundTrip(original, &restored);
  EXPECT_EQ(restored.Buffered(), original.Buffered());
  EXPECT_EQ(restored.Watermark(), original.Watermark());
  EXPECT_EQ(restored.LateCount(), original.LateCount());

  // Identical releases for every further offer, then identical flushes.
  std::mt19937 probe_rng(17);
  for (Timestamp base = 40; base < 70; ++base) {
    const Timestamp t = base + jitter(probe_rng) - 4;
    const Sge sge{static_cast<VertexId>(base % 7),
                  static_cast<VertexId>(base % 5), 0, t, false};
    const std::vector<Sge> r1 = original.Offer(sge);
    const std::vector<Sge> r2 = restored.Offer(sge);
    ASSERT_EQ(r1.size(), r2.size()) << "offer at base " << base;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].t, r2[i].t);
      EXPECT_EQ(r1[i].src, r2[i].src);
      EXPECT_EQ(r1[i].trg, r2[i].trg);
    }
  }
  const std::vector<Sge> f1 = original.Flush();
  const std::vector<Sge> f2 = restored.Flush();
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].t, f2[i].t);
    EXPECT_EQ(f1[i].src, f2[i].src);
  }
}

TEST(ReorderBufferCheckpointTest, CorruptStateRejected) {
  ReorderBuffer original(4);
  original.Offer(Sge{1, 2, 0, 10, false});
  original.Offer(Sge{2, 3, 0, 12, false});
  std::string bytes;
  original.SerializeState(&bytes);
  // Truncate inside the buffered-elements array.
  ReorderBuffer target(4);
  ByteReader in(std::string_view(bytes.data(), bytes.size() - 3), "trunc");
  Status st = target.DeserializeState(&in);
  if (st.ok()) st = in.ExpectEnd();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace sgq

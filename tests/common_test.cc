// Unit tests for the common module: Status/Result, metrics, string utils.

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace sgq {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyAndEquality) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == Status::OK());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseResult(int x, int* out) {
  SGQ_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 4);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseResult(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseResult(-2, &out).ok());
}

TEST(LatencyRecorderTest, NearestRankPercentile) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.Record(i / 1000.0);
  EXPECT_DOUBLE_EQ(r.Percentile(0.99), 0.099);
  EXPECT_DOUBLE_EQ(r.Percentile(1.0), 0.100);
  EXPECT_DOUBLE_EQ(r.Percentile(0.0), 0.001);
  EXPECT_NEAR(r.Mean(), 0.0505, 1e-9);
  EXPECT_DOUBLE_EQ(r.Max(), 0.100);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_EQ(r.Percentile(0.99), 0);
  EXPECT_EQ(r.Mean(), 0);
}

TEST(RunMetricsTest, Throughput) {
  RunMetrics m;
  m.edges_processed = 500;
  m.elapsed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(m.Throughput(), 250.0);
  m.elapsed_seconds = 0;
  EXPECT_DOUBLE_EQ(m.Throughput(), 0.0);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, TrimAndStartsWith) {
  EXPECT_EQ(TrimString("  x y  "), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_TRUE(StartsWith("WINDOW(24h)", "WINDOW"));
  EXPECT_FALSE(StartsWith("WIN", "WINDOW"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace sgq

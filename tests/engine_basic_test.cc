// Tests for the physical operators on the paper's running example:
// WSCAN/FILTER/UNION unit behaviour, PATTERN on Example 6, PATH on
// Example 7, and first-class path payloads.

#include <gtest/gtest.h>

#include "core/basic_ops.h"
#include "core/pattern_op.h"
#include "core/query_processor.h"
#include "core/spath_op.h"
#include "model/stream_io.h"
#include "test_util.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;

// Collects everything pushed into it.
class CollectOp : public PhysicalOp {
 public:
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    tuples.push_back(tuple);
  }
  std::string Name() const override { return "COLLECT"; }
  std::vector<Sgt> tuples;
};

TEST(WScanOpTest, AssignsValidityIntervals) {
  CollectOp sink;
  WScanOp scan(/*label=*/3, WindowSpec(24, 1));
  OutputChannel scan_wire(&sink, 0);
  scan.BindOutput(&scan_wire);
  scan.OnSge(Sge(1, 2, 3, 7));
  ASSERT_EQ(sink.tuples.size(), 1u);
  EXPECT_EQ(sink.tuples[0].validity, Interval(7, 31));
  EXPECT_EQ(sink.tuples[0].label, 3u);
  ASSERT_EQ(sink.tuples[0].payload.size(), 1u);
}

TEST(WScanOpTest, SlideCoarsensExpiry) {
  CollectOp sink;
  WScanOp scan(3, WindowSpec(24, 6));
  OutputChannel scan_wire(&sink, 0);
  scan.BindOutput(&scan_wire);
  scan.OnSge(Sge(1, 2, 3, 7));   // floor(7/6)*6 + 24 = 30
  scan.OnSge(Sge(1, 2, 3, 13));  // floor(13/6)*6 + 24 = 36
  EXPECT_EQ(sink.tuples[0].validity.exp, 30);
  EXPECT_EQ(sink.tuples[1].validity.exp, 36);
}

TEST(WScanOpTest, DeletionBecomesNegativeTuple) {
  CollectOp sink;
  WScanOp scan(3, WindowSpec(24, 1));
  OutputChannel scan_wire(&sink, 0);
  scan.BindOutput(&scan_wire);
  scan.OnSge(Sge(1, 2, 3, 9, /*del=*/true));
  ASSERT_EQ(sink.tuples.size(), 1u);
  EXPECT_TRUE(sink.tuples[0].is_deletion);
  EXPECT_EQ(sink.tuples[0].validity.ts, 9);
}

TEST(FilterOpTest, EvaluatesConjunction) {
  CollectOp sink;
  FilterPredicate self_loop;
  self_loop.kind = FilterPredicate::Kind::kSrcEqualsTrg;
  FilterOp filter({self_loop});
  OutputChannel filter_wire(&sink, 0);
  filter.BindOutput(&filter_wire);
  filter.OnTuple(0, Sgt(1, 1, 0, Interval(0, 5)));
  filter.OnTuple(0, Sgt(1, 2, 0, Interval(0, 5)));
  EXPECT_EQ(sink.tuples.size(), 1u);
}

TEST(UnionOpTest, RelabelsWhenConfigured) {
  CollectOp sink;
  UnionOp u(/*output_label=*/9);
  OutputChannel u_wire(&sink, 0);
  u.BindOutput(&u_wire);
  u.OnTuple(0, Sgt(1, 2, 3, Interval(0, 5)));
  ASSERT_EQ(sink.tuples.size(), 1u);
  EXPECT_EQ(sink.tuples[0].label, 9u);
}

// ---------------------------------------------------------------------------
// The running example (Figure 2 stream; Examples 6 and 7).
// ---------------------------------------------------------------------------

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* csv =
        "u,follows,v,7\n"
        "v,posts,b,10\n"
        "y,follows,u,13\n"
        "v,posts,c,17\n"
        "u,posts,a,22\n"
        "y,likes,a,28\n"
        "u,likes,b,29\n"
        "u,likes,c,30\n";
    auto parsed = ParseStreamCsv(csv, &vocab_);
    ASSERT_TRUE(parsed.ok());
    stream_ = *parsed;
  }

  VertexId V(const char* name) { return *vocab_.FindVertex(name); }

  Vocabulary vocab_;
  InputStream stream_;
};

TEST_F(RunningExampleTest, Example6PatternFindsRecentLikers) {
  // RL(u1,u2) <- likes(u1,m1), follows+(u1,u2), posts(u2,m1); W = 24h.
  auto query = MakeQuery(
      "Answer(u1,u2) <- likes(u1,m1), follows+(u1,u2), posts(u2,m1)",
      WindowSpec(24, 1), &vocab_);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab_, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(stream_);

  const std::vector<Sgt>& results = (*qp)->results();
  // Example 6: exactly the derived edges (y, RL, u, [28,37)) and
  // (u, RL, v, [29,31)) (the [30,31) duplicate coalesces away).
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].src, V("y"));
  EXPECT_EQ(results[0].trg, V("u"));
  EXPECT_EQ(results[0].validity, Interval(28, 37));
  EXPECT_EQ(results[1].src, V("u"));
  EXPECT_EQ(results[1].trg, V("v"));
  EXPECT_EQ(results[1].validity, Interval(29, 31));
}

TEST_F(RunningExampleTest, Example7PathOverRecentLikers) {
  // Adds PATH over the derived RL edges; Example 7 expects three results,
  // including the length-2 materialized path (y -> u -> v).
  auto query = MakeQuery(
      "RL(u1,u2) <- likes(u1,m1), follows+(u1,u2), posts(u2,m1)\n"
      "Answer(x,y) <- RL+(x,y)",
      WindowSpec(24, 1), &vocab_);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab_, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(stream_);

  const VertexId u = V("u"), v = V("v"), y = V("y");
  VertexPairSet pairs = ResultPairsAt((*qp)->results(), 29);
  VertexPairSet expected = {{y, u}, {u, v}, {y, v}};
  EXPECT_EQ(pairs, expected);

  // The (y, v) result is a materialized path of two RL edges (R3: paths
  // are first-class citizens and are returned).
  bool found_path = false;
  for (const Sgt& r : (*qp)->results()) {
    if (r.src == y && r.trg == v) {
      found_path = true;
      ASSERT_EQ(r.payload.size(), 2u);
      EXPECT_EQ(r.payload[0].src, y);
      EXPECT_EQ(r.payload[0].trg, u);
      EXPECT_EQ(r.payload[1].src, u);
      EXPECT_EQ(r.payload[1].trg, v);
      EXPECT_EQ(r.validity, Interval(29, 31));
    }
  }
  EXPECT_TRUE(found_path);
}

TEST_F(RunningExampleTest, SnapshotReducibilityOnRunningExample) {
  auto query = MakeQuery(
      "RL(u1,u2) <- likes(u1,m1), follows+(u1,u2), posts(u2,m1)\n"
      "Answer(x,y) <- RL+(x,y)",
      WindowSpec(24, 1), &vocab_);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab_, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(stream_);
  for (Timestamp t : {7, 13, 22, 25, 28, 29, 30}) {
    EXPECT_EQ(ResultPairsAt((*qp)->results(), t),
              testing_util::OraclePairsAt(stream_, *query, vocab_, t))
        << "at t=" << t;
  }
}

// ---------------------------------------------------------------------------
// PATTERN operator specifics
// ---------------------------------------------------------------------------

class PatternOpTest : public ::testing::Test {
 protected:
  // Builds a two-atom join pattern a(x,y), b(y,z) -> out(x,z).
  void SetUp() override {
    a_ = *vocab_.InternInputLabel("a");
    b_ = *vocab_.InternInputLabel("b");
    out_ = *vocab_.InternDerivedLabel("out");
    std::vector<LogicalPlan> children;
    children.push_back(MakeWScan(a_, WindowSpec(10, 1)));
    children.push_back(MakeWScan(b_, WindowSpec(10, 1)));
    logical_ = MakePattern(out_, {{"x", "y"}, {"y", "z"}}, "x", "z",
                           std::move(children));
    op_ = std::make_unique<PatternOp>(*logical_);
    wire_ = OutputChannel(&sink_, 0);
    op_->BindOutput(&wire_);
  }

  Vocabulary vocab_;
  LabelId a_, b_, out_;
  LogicalPlan logical_;
  OutputChannel wire_;
  std::unique_ptr<PatternOp> op_;
  CollectOp sink_;
};

TEST_F(PatternOpTest, JoinsOnSharedVariableWithIntervalIntersection) {
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(0, 10)));
  EXPECT_TRUE(sink_.tuples.empty());
  op_->OnTuple(1, Sgt(2, 3, b_, Interval(5, 15)));
  ASSERT_EQ(sink_.tuples.size(), 1u);
  EXPECT_EQ(sink_.tuples[0].src, 1u);
  EXPECT_EQ(sink_.tuples[0].trg, 3u);
  EXPECT_EQ(sink_.tuples[0].validity, Interval(5, 10));
  EXPECT_EQ(sink_.tuples[0].label, out_);
}

TEST_F(PatternOpTest, DisjointIntervalsDoNotJoin) {
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(0, 5)));
  op_->OnTuple(1, Sgt(2, 3, b_, Interval(7, 15)));
  EXPECT_TRUE(sink_.tuples.empty());
}

TEST_F(PatternOpTest, SymmetricArrivalOrder) {
  // b before a: the symmetric hash join must still find the match.
  op_->OnTuple(1, Sgt(2, 3, b_, Interval(5, 15)));
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(0, 10)));
  ASSERT_EQ(sink_.tuples.size(), 1u);
  EXPECT_EQ(sink_.tuples[0].validity, Interval(5, 10));
}

TEST_F(PatternOpTest, ExplicitDeletionRetractsJoinResults) {
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(0, 10)));
  op_->OnTuple(1, Sgt(2, 3, b_, Interval(0, 10)));
  ASSERT_EQ(sink_.tuples.size(), 1u);
  // Delete the a-edge: a negative (1,3) result must be emitted.
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(4, kMaxTimestamp), {},
                      /*del=*/true));
  ASSERT_EQ(sink_.tuples.size(), 2u);
  EXPECT_TRUE(sink_.tuples[1].is_deletion);
  EXPECT_EQ(sink_.tuples[1].src, 1u);
  EXPECT_EQ(sink_.tuples[1].trg, 3u);
  // And the join state is gone: a new b-partner finds nothing.
  op_->OnTuple(1, Sgt(2, 9, b_, Interval(5, 10)));
  EXPECT_EQ(sink_.tuples.size(), 2u);
}

TEST_F(PatternOpTest, PurgeDropsExpiredState) {
  op_->OnTuple(0, Sgt(1, 2, a_, Interval(0, 10)));
  op_->OnTuple(0, Sgt(7, 8, a_, Interval(0, 30)));
  EXPECT_EQ(op_->StateSize(), 2u);
  op_->Purge(20);
  EXPECT_EQ(op_->StateSize(), 1u);
}

TEST(PatternOpSelfJoinTest, IntraAtomConstraint) {
  // Pattern loop(x,x) keeps only self-loops.
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  LabelId out = *vocab.InternDerivedLabel("out");
  std::vector<LogicalPlan> children;
  children.push_back(MakeWScan(a, WindowSpec(10, 1)));
  auto logical =
      MakePattern(out, {{"x", "x"}}, "x", "x", std::move(children));
  PatternOp op(*logical);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  op.OnTuple(0, Sgt(1, 2, a, Interval(0, 10)));
  op.OnTuple(0, Sgt(3, 3, a, Interval(0, 10)));
  ASSERT_EQ(sink.tuples.size(), 1u);
  EXPECT_EQ(sink.tuples[0].src, 3u);
}

TEST(PatternOpTriangleTest, CyclicJoinProducesTriangles) {
  // t(x,y), t(y,z), t(z,x): a directed triangle query (GraphS-style cycle
  // detection via PATTERN).
  Vocabulary vocab;
  LabelId t = *vocab.InternInputLabel("t");
  LabelId out = *vocab.InternDerivedLabel("out");
  std::vector<LogicalPlan> children;
  for (int i = 0; i < 3; ++i) {
    children.push_back(MakeWScan(t, WindowSpec(100, 1)));
  }
  auto logical = MakePattern(out, {{"x", "y"}, {"y", "z"}, {"z", "x"}}, "x",
                             "x", std::move(children));
  PatternOp op(*logical);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  auto feed = [&](VertexId s, VertexId g, Interval iv) {
    // The same input stream feeds all three ports (self-join).
    for (int port = 0; port < 3; ++port) {
      op.OnTuple(port, Sgt(s, g, t, iv));
    }
  };
  feed(1, 2, Interval(0, 50));
  feed(2, 3, Interval(1, 50));
  EXPECT_TRUE(sink.tuples.empty());
  feed(3, 1, Interval(2, 50));
  // Three rotations of the triangle (x bound to 1, 2 and 3).
  ASSERT_EQ(sink.tuples.size(), 3u);
  for (const Sgt& r : sink.tuples) {
    EXPECT_EQ(r.src, r.trg);
    EXPECT_EQ(r.validity, Interval(2, 50));
  }
}

}  // namespace
}  // namespace sgq

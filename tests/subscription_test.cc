// Live attach/detach of standing queries (Engine::AddPlan after
// Finalize, Engine::RemoveQuery — DESIGN.md §10):
//
//  - removing a query mid-stream leaves every surviving query's result
//    stream byte-identical to an engine the removed query never joined
//    (workers=1), snapshot-equivalent sharded;
//  - shared operators are reference-counted: removal decrements, only
//    zero-reference operators are destroyed, NumOperators() returns to
//    the never-added count;
//  - a re-added (or live-attached) query with a fresh subtree sees the
//    stream suffix exactly as a static run over that suffix would;
//  - live attach of a window slide finer than the running granularity is
//    refused without disturbing the engine;
//  - removing a query prunes its label postings: stream elements only it
//    consumed stop counting as processed edges;
//  - checkpoints record the removal history — a snapshot restores only
//    into an engine that replayed the same RemoveQuery calls, and refuses
//    (by name) one whose live set diverged.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

InputStream RandomStream(uint64_t seed, Vocabulary* vocab,
                         std::size_t num_edges = 150) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = num_edges;
  opt.max_gap = 2;
  opt.deletion_probability = 0.25;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

/// q0/q1 overlap (both compile the a-scan + a+ PATH chain), q2 is
/// disjoint (c-scans only).
std::vector<StreamingGraphQuery> MixedQueries(Vocabulary* vocab) {
  const char* texts[] = {
      "Answer(x,y) <- a+(x,y)",
      "Answer(x,z) <- a+(x,y), b(y,z)",
      "Answer(x,z) <- c(x,y), c(y,z)",
  };
  std::vector<StreamingGraphQuery> queries;
  for (const char* text : texts) {
    auto query = MakeQuery(text, WindowSpec(12, 3), vocab);
    EXPECT_TRUE(query.ok()) << text;
    if (query.ok()) queries.push_back(*query);
  }
  return queries;
}

std::vector<Sgt> RunSolo(const StreamingGraphQuery& query,
                         const Vocabulary& vocab, const InputStream& stream,
                         EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

void ExpectByteIdentical(const std::vector<Sgt>& expected,
                         const std::vector<Sgt>& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i]) << context << " position " << i;
  }
}

// ---------------------------------------------------------------------------
// Survivor byte-identity / snapshot equivalence
// ---------------------------------------------------------------------------

class RemoveQueryDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RemoveQueryDifferentialTest, SurvivorsMatchNeverAddedRun) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 131 + 7;
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    for (bool sharing : {true, false}) {
      Vocabulary vocab;
      const InputStream stream = RandomStream(seed, &vocab);
      std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
      ASSERT_EQ(queries.size(), 3u);
      const std::size_t half = stream.size() / 2;

      EngineOptions options;
      options.path_impl = impl;
      options.cross_query_sharing = sharing;
      const std::string context =
          "seed " + std::to_string(seed) +
          (impl == PathImpl::kSPath ? " s-path" : " delta") +
          (sharing ? " shared" : " unshared");

      // The removal run: all three queries, q1 detached mid-stream.
      Engine engine(options);
      for (const StreamingGraphQuery& query : queries) {
        ASSERT_TRUE(engine.AddQuery(query, vocab).ok());
      }
      ASSERT_TRUE(engine.Finalize().ok());
      const std::size_t all_ops = engine.NumOperators();
      for (std::size_t i = 0; i < half; ++i) engine.Push(stream[i]);
      ASSERT_TRUE(engine.RemoveQuery(1).ok()) << context;
      EXPECT_FALSE(engine.IsLive(1));
      EXPECT_TRUE(engine.IsLive(0));
      EXPECT_EQ(engine.NumLiveQueries(), 2u);
      EXPECT_LT(engine.NumOperators(), all_ops) << context;
      for (std::size_t i = half; i < stream.size(); ++i) {
        engine.Push(stream[i]);
      }
      engine.Flush();

      // The never-added reference: q0 and q2 only, full stream.
      Engine reference(options);
      ASSERT_TRUE(reference.AddQuery(queries[0], vocab).ok());
      ASSERT_TRUE(reference.AddQuery(queries[2], vocab).ok());
      ASSERT_TRUE(reference.Finalize().ok());
      reference.PushAll(stream);

      // Removal is invisible to survivors: results byte-identical AND the
      // post-removal operator population matches the never-added engine's.
      ExpectByteIdentical(reference.results(0), engine.results(0),
                          context + " q0");
      ExpectByteIdentical(reference.results(1), engine.results(2),
                          context + " q2");
      EXPECT_EQ(engine.NumOperators(), reference.NumOperators()) << context;

      // A second removal of the same id is refused.
      EXPECT_FALSE(engine.RemoveQuery(1).ok());
      EXPECT_FALSE(engine.RemoveQuery(99).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemoveQueryDifferentialTest,
                         ::testing::Range(0, 3));

TEST(RemoveQueryShardedTest, SurvivorsStaySnapshotEquivalent) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(55, &vocab);
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  ASSERT_EQ(queries.size(), 3u);
  const std::size_t half = stream.size() / 2;

  const std::vector<Sgt> reference =
      RunSolo(queries[0], vocab, stream, EngineOptions{});
  const std::vector<Timestamp> times = SampleTimes(stream, 6);

  for (std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      EngineOptions options;
      options.num_workers = workers;
      options.batch_size = batch;
      Engine engine(options);
      for (const StreamingGraphQuery& query : queries) {
        ASSERT_TRUE(engine.AddQuery(query, vocab).ok());
      }
      ASSERT_TRUE(engine.Finalize().ok());
      for (std::size_t i = 0; i < half; ++i) engine.Push(stream[i]);
      ASSERT_TRUE(engine.RemoveQuery(1).ok());
      for (std::size_t i = half; i < stream.size(); ++i) {
        engine.Push(stream[i]);
      }
      engine.Flush();
      for (Timestamp t : times) {
        ASSERT_EQ(ResultPairsAt(engine.results(0), t),
                  ResultPairsAt(reference, t))
            << "workers " << workers << " batch " << batch << " t " << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Refcounts
// ---------------------------------------------------------------------------

TEST(OperatorRefCountTest, SharedSubtreeSurvivesUntilLastSubscriber) {
  Vocabulary vocab;
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  Engine engine{EngineOptions{}};
  ASSERT_TRUE(engine.AddQuery(queries[0], vocab).ok());  // a+
  ASSERT_TRUE(engine.AddQuery(queries[1], vocab).ok());  // a+ . b
  ASSERT_TRUE(engine.Finalize().ok());

  // The a+ chain (WSCAN + PATH) below q0's projection is shared by both
  // plans; find it by its refcount. The per-query PATTERN roots are not
  // shared even when their inputs are.
  std::vector<OpId> shared;
  for (OpId id = 0; id < static_cast<OpId>(engine.NumOperators()); ++id) {
    if (engine.OperatorRefCount(id) == 2) shared.push_back(id);
  }
  ASSERT_FALSE(shared.empty());
  EXPECT_EQ(engine.OperatorRefCount(engine.QueryRoot(0)), 1);
  // q1's private suffix is referenced by q1 alone.
  const OpId q1_root = engine.QueryRoot(1);
  EXPECT_EQ(engine.OperatorRefCount(q1_root), 1);

  const InputStream stream = RandomStream(13, &vocab);
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) engine.Push(stream[i]);

  // Removing q1 keeps the shared chain (refcount 2 -> 1) and destroys
  // only q1's private suffix.
  ASSERT_TRUE(engine.RemoveQuery(1).ok());
  for (OpId id : shared) EXPECT_EQ(engine.OperatorRefCount(id), 1);
  EXPECT_EQ(engine.OperatorRefCount(q1_root), 0);

  // The surviving subscriber still answers through the shared chain.
  for (std::size_t i = half; i < stream.size(); ++i) engine.Push(stream[i]);
  engine.Flush();
  ExpectByteIdentical(RunSolo(queries[0], vocab, stream, EngineOptions{}),
                      engine.results(0), "survivor through shared chain");

  // Removing the last subscriber releases everything.
  ASSERT_TRUE(engine.RemoveQuery(0).ok());
  for (OpId id : shared) EXPECT_EQ(engine.OperatorRefCount(id), 0);
  EXPECT_EQ(engine.NumOperators(), 0u);
  EXPECT_EQ(engine.NumLiveQueries(), 0u);
}

// ---------------------------------------------------------------------------
// Live attach
// ---------------------------------------------------------------------------

TEST(LiveAttachTest, FreshSubtreeMatchesStaticRunOverSuffix) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(29, &vocab);
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  const std::size_t k = stream.size() / 3;
  const InputStream suffix(stream.begin() + static_cast<std::ptrdiff_t>(k),
                           stream.end());

  Engine engine{EngineOptions{}};
  ASSERT_TRUE(engine.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  for (std::size_t i = 0; i < k; ++i) engine.Push(stream[i]);

  // q2 shares nothing with q0: its subtree attaches fresh mid-stream and
  // must behave exactly like a static engine fed only the suffix.
  auto attached = engine.AddQuery(queries[2], vocab);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  for (std::size_t i = k; i < stream.size(); ++i) engine.Push(stream[i]);
  engine.Flush();

  ExpectByteIdentical(RunSolo(queries[2], vocab, suffix, EngineOptions{}),
                      engine.results(*attached), "live attach suffix");
  // The original subscriber never noticed.
  ExpectByteIdentical(RunSolo(queries[0], vocab, stream, EngineOptions{}),
                      engine.results(0), "pre-attached survivor");
}

TEST(LiveAttachTest, ReSubscribeAfterFullDetachStartsFresh) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(47, &vocab);
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  const std::size_t third = stream.size() / 3;

  Engine engine{EngineOptions{}};
  auto first = engine.AddQuery(queries[2], vocab);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(engine.Finalize().ok());
  for (std::size_t i = 0; i < third; ++i) engine.Push(stream[i]);
  ASSERT_TRUE(engine.RemoveQuery(*first).ok());

  // Detached interval: elements only the removed query consumed.
  for (std::size_t i = third; i < 2 * third; ++i) engine.Push(stream[i]);

  // Re-subscribe: the operators were destroyed at detach, so the new
  // registration compiles fresh state and its id is new.
  auto second = engine.AddQuery(queries[2], vocab);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(*second, *first);
  EXPECT_FALSE(engine.IsLive(*first));
  for (std::size_t i = 2 * third; i < stream.size(); ++i) {
    engine.Push(stream[i]);
  }
  engine.Flush();

  const InputStream suffix(
      stream.begin() + static_cast<std::ptrdiff_t>(2 * third), stream.end());
  ExpectByteIdentical(RunSolo(queries[2], vocab, suffix, EngineOptions{}),
                      engine.results(*second), "re-subscribed suffix");
}

TEST(LiveAttachTest, FinerSlideIsRefusedWithoutDisturbingTheEngine) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(61, &vocab);
  auto coarse = MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(coarse.ok());
  auto fine = MakeQuery("Answer(x,z) <- c(x,y), c(y,z)", WindowSpec(12, 1),
                        &vocab);
  ASSERT_TRUE(fine.ok());

  Engine engine{EngineOptions{}};
  ASSERT_TRUE(engine.AddQuery(*coarse, vocab).ok());
  ASSERT_TRUE(engine.Finalize().ok());  // fixes the granularity at slide 3
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) engine.Push(stream[i]);

  auto refused = engine.AddQuery(*fine, vocab);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("finer"), std::string::npos)
      << refused.status().ToString();
  EXPECT_EQ(engine.NumLiveQueries(), 1u);

  // The refusal had no side effects: the engine keeps running and the
  // surviving query's output is untouched.
  for (std::size_t i = half; i < stream.size(); ++i) engine.Push(stream[i]);
  engine.Flush();
  ExpectByteIdentical(RunSolo(*coarse, vocab, stream, EngineOptions{}),
                      engine.results(0), "after refused attach");
}

// ---------------------------------------------------------------------------
// Query-index pruning
// ---------------------------------------------------------------------------

TEST(RemoveQueryDispatchTest, RemovedLabelsStopCountingAsProcessed) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(83, &vocab);
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  const std::size_t half = stream.size() / 2;

  // Reference: q0 alone — its processed-edge count over the full stream.
  Engine solo{EngineOptions{}};
  ASSERT_TRUE(solo.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(solo.Finalize().ok());
  solo.PushAll(stream);

  // q2 is the only consumer of label c: after its removal, c-edges must
  // stop counting as processed — the posting list (and the label's empty
  // source entry) is gone, not just bypassed.
  Engine engine{EngineOptions{}};
  ASSERT_TRUE(engine.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(engine.AddQuery(queries[2], vocab).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  for (std::size_t i = 0; i < half; ++i) engine.Push(stream[i]);
  ASSERT_TRUE(engine.RemoveQuery(1).ok());
  const std::size_t at_removal = engine.edges_processed();

  Engine solo_suffix{EngineOptions{}};
  ASSERT_TRUE(solo_suffix.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(solo_suffix.Finalize().ok());
  for (std::size_t i = half; i < stream.size(); ++i) {
    engine.Push(stream[i]);
    solo_suffix.Push(stream[i]);
  }
  engine.Flush();
  solo_suffix.Flush();

  EXPECT_EQ(engine.edges_processed() - at_removal,
            solo_suffix.edges_processed());
}

// ---------------------------------------------------------------------------
// Checkpoint after removal
// ---------------------------------------------------------------------------

TEST(RemoveQueryCheckpointTest, RestoresOnlyIntoMatchingRemovalHistory) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(97, &vocab);
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  const std::size_t half = stream.size() / 2;

  // Uninterrupted reference with the same add/remove history.
  Engine reference{EngineOptions{}};
  ASSERT_TRUE(reference.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(reference.AddQuery(queries[1], vocab).ok());
  ASSERT_TRUE(reference.Finalize().ok());
  for (std::size_t i = 0; i < half; ++i) reference.Push(stream[i]);
  ASSERT_TRUE(reference.RemoveQuery(1).ok());
  for (std::size_t i = half; i < stream.size(); ++i) {
    reference.Push(stream[i]);
  }
  reference.Flush();

  // Checkpoint right after the removal.
  const std::string path = TempPath("removal.sgqc");
  Engine original{EngineOptions{}};
  ASSERT_TRUE(original.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(original.AddQuery(queries[1], vocab).ok());
  ASSERT_TRUE(original.Finalize().ok());
  for (std::size_t i = 0; i < half; ++i) original.Push(stream[i]);
  ASSERT_TRUE(original.RemoveQuery(1).ok());
  ASSERT_TRUE(original.Checkpoint(path, &vocab).ok());
  ASSERT_TRUE(original.WaitForCheckpoint().ok());

  // Restore target that replayed the same removal: accepted, and the
  // resumed run is byte-identical to the uninterrupted one.
  Engine resumed{EngineOptions{}};
  ASSERT_TRUE(resumed.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(resumed.AddQuery(queries[1], vocab).ok());
  ASSERT_TRUE(resumed.Finalize().ok());
  ASSERT_TRUE(resumed.RemoveQuery(1).ok());
  Status restore = resumed.Restore(path, &vocab);
  ASSERT_TRUE(restore.ok()) << restore.ToString();
  for (std::size_t i = half; i < stream.size(); ++i) {
    resumed.Push(stream[i]);
  }
  resumed.Flush();
  ExpectByteIdentical(reference.results(0), resumed.results(0),
                      "resumed after removal");

  // Restore target whose query set is still fully live: refused by name.
  Engine mismatched{EngineOptions{}};
  ASSERT_TRUE(mismatched.AddQuery(queries[0], vocab).ok());
  ASSERT_TRUE(mismatched.AddQuery(queries[1], vocab).ok());
  ASSERT_TRUE(mismatched.Finalize().ok());
  Status refused = mismatched.Restore(path, &vocab);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("removed in the checkpoint"),
            std::string::npos)
      << refused.ToString();
}

}  // namespace
}  // namespace sgq

// Additional G-CORE front-end coverage: quantifier spellings, day-based
// windows, WHERE conjunctions, chained reversed edges, and translation of
// parsed queries all the way into runnable plans.

#include <gtest/gtest.h>

#include "algebra/translate.h"
#include "core/query_processor.h"
#include "query/gcore.h"

namespace sgq {
namespace {

TEST(GCoreExtraTest, AcceptsCaretQuantifiers) {
  // Figure 6 uses <:follows^*>; both '^*' and '*' must parse.
  for (const char* q : {"<:f^*>", "<:f*>", "<:f^+>", "<:f+>"}) {
    Vocabulary vocab;
    std::string text = std::string("CONSTRUCT (x)-[:o]->(y)\n") +
                       "MATCH (x)-/" + q + "/->(y)\n" +
                       "ON s WINDOW (2 HOURS)";
    auto parsed = ParseGCore(text, &vocab);
    ASSERT_TRUE(parsed.ok()) << q << ": " << parsed.status().ToString();
  }
}

TEST(GCoreExtraTest, DayWindowsConvertToHours) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (x)-[:o]->(y)\n"
      "MATCH (x)-[:e]->(y)\n"
      "ON s WINDOW (30 DAYS) SLIDE (1 DAYS)",
      &vocab);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->window.size, 30 * 24);
  EXPECT_EQ(q->window.slide, 24);
}

TEST(GCoreExtraTest, WhereWithAndUnifiesSeveralVariables) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (a)-[:o]->(d)\n"
      "MATCH (a)-[:e]->(b)\n"
      "ON s1 WINDOW (2 HOURS)\n"
      "MATCH (c)-[:f]->(d)\n"
      "ON s2 WINDOW (4 HOURS)\n"
      "WHERE (b) = (c)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // The unification makes the body a connected chain a-e->b-f->d.
  bool found = false;
  for (const Rule& r : q->rq.rules()) {
    if (r.body.size() == 2) {
      EXPECT_EQ(r.body[0].trg, r.body[1].src);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GCoreExtraTest, LongChainedPatternParses) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (a)-[:o]->(e)\n"
      "MATCH (a)-[:p]->(b)<-[:q]-(c)-[:r]->(d)<-[:s]-(e)\n"
      "ON s WINDOW (2 HOURS)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Four atoms, with reversed ones swapped: p(a,b), q(c,b), r(c,d), s(e,d).
  const Rule* rule = nullptr;
  for (const Rule& r : q->rq.rules()) {
    if (r.body.size() == 4) rule = &r;
  }
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->body[0].src, "a");
  EXPECT_EQ(rule->body[1].src, "c");
  EXPECT_EQ(rule->body[1].trg, "b");
  EXPECT_EQ(rule->body[3].src, "e");
}

TEST(GCoreExtraTest, ParsedQueriesTranslateAndCompile) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "PATH P = (x)-/<:e+>/->(y)\n"
      "CONSTRUCT (x)-[:o]->(y)\n"
      "MATCH (x)-/<~P+>/->(z), (z)-[:f]->(y)\n"
      "ON s WINDOW (6 HOURS)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto plan = TranslateToCanonicalPlan(*q, vocab);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto qp = QueryProcessor::Compile(**plan, vocab, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  // Smoke: run a tiny stream through it.
  LabelId e = *vocab.FindLabel("e");
  LabelId f = *vocab.FindLabel("f");
  (*qp)->Push(Sge(1, 2, e, 0));
  (*qp)->Push(Sge(2, 3, e, 1));
  (*qp)->Push(Sge(3, 9, f, 2));
  EXPECT_GE((*qp)->results_emitted(), 1u);
}

TEST(GCoreExtraTest, RejectsPathConstruct) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (x)-/<:e+>/->(y)\n"
      "MATCH (x)-[:e]->(y)\n"
      "ON s WINDOW (2 HOURS)",
      &vocab);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kUnsupported);
}

TEST(GCoreExtraTest, RejectsBadWindowUnit) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (x)-[:o]->(y)\n"
      "MATCH (x)-[:e]->(y)\n"
      "ON s WINDOW (2 FORTNIGHTS)",
      &vocab);
  EXPECT_FALSE(q.ok());
}

}  // namespace
}  // namespace sgq

// Bounded-memory file ingest (model/file_chunk_source.h, DESIGN.md §6.3):
//
//  - the windowed file source reproduces the materialized
//    MakeChunkedStream view byte-for-byte — chunk count, per-chunk
//    element sequence, CSV global line numbers and binary byte offsets in
//    error text — in both serving modes and both formats;
//  - engine results through RunPipelinedSharded are identical between the
//    file source and the in-memory source across format × parsers, and
//    the RunSgaFile harness matches RunSgaText in every parse placement;
//  - peak resident chunk bytes are O(readahead window), independent of
//    file size (the bounded-memory contract);
//  - aborting runs (early parse error, multi-parser) terminate instead of
//    hanging on the readahead window;
//  - degenerate inputs (zero-length files, retired-chunk reopens) behave
//    exactly like the materialized path.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "model/file_chunk_source.h"
#include "model/stream_io.h"
#include "workload/generators.h"
#include "workload/harness.h"
#include "workload/queries.h"

namespace sgq {
namespace {

/// \brief Drains a cursor; asserts nothing (callers check status).
InputStream Drain(StreamCursor* cursor) {
  InputStream out;
  Sge buffer[7];  // odd capacity: exercises partial final batches
  for (;;) {
    const std::size_t n = cursor->Next(buffer, 7);
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  return out;
}

void ExpectSameElements(const InputStream& a, const InputStream& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].src, b[i].src) << what << " element " << i;
    ASSERT_EQ(a[i].trg, b[i].trg) << what << " element " << i;
    ASSERT_EQ(a[i].label, b[i].label) << what << " element " << i;
    ASSERT_EQ(a[i].t, b[i].t) << what << " element " << i;
    ASSERT_EQ(a[i].is_deletion, b[i].is_deletion) << what << " element "
                                                  << i;
  }
}

InputStream TestStream(Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = 4242;
  opt.num_vertices = 40;
  opt.num_labels = 3;
  opt.num_edges = 4000;  // enough bytes for several chunks at min_chunks=8
  opt.max_gap = 2;
  opt.deletion_probability = 0.1;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

std::string WriteTemp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteFileBytes(path, bytes).ok());
  return path;
}

const FileIngestMode kModes[] = {FileIngestMode::kBuffered,
                                 FileIngestMode::kMmap};

const char* ModeName(FileIngestMode mode) {
  return mode == FileIngestMode::kMmap ? "mmap" : "buffered";
}

// ---------------------------------------------------------------------------
// Chunk-view parity with the materialized source
// ---------------------------------------------------------------------------

TEST(FileChunkSourceTest, ChunksMatchMaterializedSourceExactly) {
  Vocabulary vocab;
  const InputStream stream = TestStream(&vocab);
  const std::string csv = FormatStreamCsv(stream, vocab);
  auto binary = FormatStreamBinary(stream, vocab);
  ASSERT_TRUE(binary.ok());

  for (const bool use_binary : {false, true}) {
    const std::string& bytes = use_binary ? *binary : csv;
    const StreamFormat format =
        use_binary ? StreamFormat::kBinary : StreamFormat::kCsv;
    const std::string path = WriteTemp(
        use_binary ? "chunk_parity.sgqb" : "chunk_parity.csv", bytes);
    auto reference =
        MakeChunkedStream(bytes, format, &vocab, false, /*min_chunks=*/8);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const FileIngestMode mode : kModes) {
      FileChunkOptions fco;
      fco.mode = mode;
      fco.min_chunks = 8;
      auto source = MakeFileChunkSource(path, format, &vocab, fco);
      ASSERT_TRUE(source.ok()) << source.status().ToString();
      EXPECT_EQ((*source)->mode(), mode);
      EXPECT_EQ((*source)->file_size(), bytes.size());
      ASSERT_EQ((*source)->NumChunks(), (*reference)->NumChunks())
          << ModeName(mode);
      // Sequential open/drain/close respects the readahead window and
      // compares every chunk's element sequence against the same chunk of
      // the materialized source.
      for (std::size_t c = 0; c < (*source)->NumChunks(); ++c) {
        auto got = (*source)->OpenChunk(c);
        auto want = (*reference)->OpenChunk(c);
        const InputStream got_elems = Drain(got.get());
        const InputStream want_elems = Drain(want.get());
        ASSERT_TRUE(got->status().ok())
            << ModeName(mode) << " chunk " << c << ": "
            << got->status().ToString();
        ASSERT_TRUE(want->status().ok());
        ExpectSameElements(got_elems, want_elems, ModeName(mode));
      }
    }
    std::remove(path.c_str());
  }
}

TEST(FileChunkSourceTest, RetiredChunksReopenWithIdenticalContents) {
  Vocabulary vocab;
  const InputStream stream = TestStream(&vocab);
  const std::string csv = FormatStreamCsv(stream, vocab);
  const std::string path = WriteTemp("reopen.csv", csv);
  auto reference = MakeChunkedStream(csv, StreamFormat::kCsv, &vocab, false,
                                     /*min_chunks=*/6);
  ASSERT_TRUE(reference.ok());
  for (const FileIngestMode mode : kModes) {
    FileChunkOptions fco;
    fco.mode = mode;
    fco.min_chunks = 6;
    fco.readahead_chunks = 2;  // clamp floor: tightest legal window
    auto source = MakeFileChunkSource(path, StreamFormat::kCsv, &vocab, fco);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    EXPECT_EQ((*source)->window_chunks(), 2u);
    // Walk everything once (each chunk retires when its cursor drops)...
    for (std::size_t c = 0; c < (*source)->NumChunks(); ++c) {
      auto cursor = (*source)->OpenChunk(c);
      Drain(cursor.get());
      ASSERT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    }
    // ...then reopen a retired middle chunk: buffered mode reloads the
    // bytes from disk, mmap re-touches MADV_DONTNEEDed pages.
    auto again = (*source)->OpenChunk(2);
    auto want = (*reference)->OpenChunk(2);
    ExpectSameElements(Drain(again.get()), Drain(want.get()),
                       ModeName(mode));
    ASSERT_TRUE(again->status().ok()) << again->status().ToString();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Error-text parity (global line numbers / byte offsets)
// ---------------------------------------------------------------------------

TEST(FileChunkSourceTest, CsvErrorsCarryGlobalLineNumbers) {
  // A malformed record deep in the file: its line number is global, which
  // the lazy boundary resolution must accumulate chunk by chunk.
  std::string csv;
  for (int i = 0; i < 400; ++i) {
    csv += "u" + std::to_string(i % 50) + ",a,v" + std::to_string(i % 50) +
           "," + std::to_string(i / 4) + "\n";
  }
  csv += "u1,a,v1,not-a-timestamp\n";  // line 401
  const std::string path = WriteTemp("line_numbers.csv", csv);

  Vocabulary ref_vocab;
  auto reference = MakeChunkedStream(csv, StreamFormat::kCsv, &ref_vocab,
                                     false, /*min_chunks=*/8);
  ASSERT_TRUE(reference.ok());
  ChunkWalkCursor want(**reference, false);
  Drain(&want);
  ASSERT_FALSE(want.status().ok());
  ASSERT_NE(want.status().message().find("line 401"), std::string::npos)
      << want.status().ToString();

  for (const FileIngestMode mode : kModes) {
    Vocabulary vocab;
    FileChunkOptions fco;
    fco.mode = mode;
    fco.min_chunks = 8;
    auto source = MakeFileChunkSource(path, StreamFormat::kCsv, &vocab, fco);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    ChunkWalkCursor got(**source, false);
    Drain(&got);
    ASSERT_FALSE(got.status().ok()) << ModeName(mode);
    EXPECT_EQ(got.status().message(), want.status().message())
        << ModeName(mode);
  }
  std::remove(path.c_str());
}

TEST(FileChunkSourceTest, BinaryHeaderErrorsMatchMaterializedPath) {
  const std::string bad = "SGQX not a real header";
  const std::string path = WriteTemp("bad_header.sgqb", bad);
  Vocabulary vocab;
  auto reference =
      MakeChunkedStream(bad, StreamFormat::kBinary, &vocab, false, 1);
  ASSERT_FALSE(reference.ok());
  for (const FileIngestMode mode : kModes) {
    FileChunkOptions fco;
    fco.mode = mode;
    auto source =
        MakeFileChunkSource(path, StreamFormat::kBinary, &vocab, fco);
    ASSERT_FALSE(source.ok()) << ModeName(mode);
    EXPECT_EQ(source.status().message(), reference.status().message())
        << ModeName(mode);
  }
  std::remove(path.c_str());
}

TEST(FileChunkSourceTest, ZeroLengthFileMatchesMaterializedPath) {
  const std::string path = WriteTemp("empty_stream.csv", "");
  Vocabulary vocab;
  for (const FileIngestMode mode : kModes) {
    FileChunkOptions fco;
    fco.mode = mode;
    // CSV: zero elements, clean end (an empty mapping is degenerate, so
    // the source degrades to a resident empty buffer in either mode).
    auto source = MakeFileChunkSource(path, StreamFormat::kCsv, &vocab, fco);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    ChunkWalkCursor cursor(**source, false);
    EXPECT_TRUE(Drain(&cursor).empty());
    EXPECT_TRUE(cursor.status().ok()) << cursor.status().ToString();
    // Binary: same truncated-header error as parsing empty bytes.
    auto ref =
        MakeChunkedStream("", StreamFormat::kBinary, &vocab, false, 1);
    ASSERT_FALSE(ref.ok());
    auto bin = MakeFileChunkSource(path, StreamFormat::kBinary, &vocab, fco);
    ASSERT_FALSE(bin.ok()) << ModeName(mode);
    EXPECT_EQ(bin.status().message(), ref.status().message());
  }
  std::remove(path.c_str());
}

TEST(FileChunkSourceTest, MissingFileAndDirectoryErrors) {
  Vocabulary vocab;
  auto missing = MakeFileChunkSource(::testing::TempDir() + "/nope.csv",
                                     StreamFormat::kCsv, &vocab);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto dir =
      MakeFileChunkSource(::testing::TempDir(), StreamFormat::kCsv, &vocab);
  ASSERT_FALSE(dir.ok());
  EXPECT_NE(dir.status().message().find("is a directory"),
            std::string::npos);
}

TEST(FileChunkSourceTest, DetectStreamFileFormatSniffsMagic) {
  Vocabulary vocab;
  const InputStream stream = TestStream(&vocab);
  auto binary = FormatStreamBinary(stream, vocab);
  ASSERT_TRUE(binary.ok());
  const std::string csv_path =
      WriteTemp("detect.csv", FormatStreamCsv(stream, vocab));
  const std::string bin_path = WriteTemp("detect.sgqb", *binary);
  auto csv_format = DetectStreamFileFormat(csv_path);
  auto bin_format = DetectStreamFileFormat(bin_path);
  ASSERT_TRUE(csv_format.ok());
  ASSERT_TRUE(bin_format.ok());
  EXPECT_EQ(*csv_format, StreamFormat::kCsv);
  EXPECT_EQ(*bin_format, StreamFormat::kBinary);
  EXPECT_FALSE(DetectStreamFileFormat(csv_path + ".gone").ok());
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

// ---------------------------------------------------------------------------
// Engine differential: file source vs in-memory source
// ---------------------------------------------------------------------------

std::vector<Sgt> RunShardedOver(const StreamingGraphQuery& query,
                                Vocabulary* vocab,
                                const ChunkedStream& chunks,
                                EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, *vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  Status run = (*qp)->engine().RunPipelinedSharded(chunks);
  EXPECT_TRUE(run.ok()) << run.ToString();
  return (*qp)->results();
}

TEST(FileIngestDifferentialTest, ResultsIdenticalToInMemorySource) {
  // The hard contract: same chunk boundaries, same merge order, so the
  // result stream through RunPipelinedSharded is *identical* (order
  // included) between the file source and the materialized source, for
  // every format × parsers × mode cell. (The vocabulary is pre-populated
  // by the generator, so concurrent CSV interning resolves fixed ids.)
  Vocabulary vocab;
  const InputStream stream = TestStream(&vocab);
  const std::string csv = FormatStreamCsv(stream, vocab);
  auto binary = FormatStreamBinary(stream, vocab);
  ASSERT_TRUE(binary.ok());
  auto query =
      MakeQuery("Answer(x,z) <- a(x,y), b(y,z)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  for (const bool use_binary : {false, true}) {
    const std::string& bytes = use_binary ? *binary : csv;
    const StreamFormat format =
        use_binary ? StreamFormat::kBinary : StreamFormat::kCsv;
    const std::string path = WriteTemp(
        use_binary ? "differential.sgqb" : "differential.csv", bytes);
    for (std::size_t parsers : {std::size_t{1}, std::size_t{4}}) {
      const std::size_t min_chunks = parsers > 1 ? parsers * 2 : 1;
      EngineOptions options;
      options.batch_size = 16;
      options.async_ingest = true;
      options.ingest_parsers = parsers;
      auto reference =
          MakeChunkedStream(bytes, format, &vocab, false, min_chunks);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      const std::vector<Sgt> expected =
          RunShardedOver(*query, &vocab, **reference, options);
      for (const FileIngestMode mode : kModes) {
        FileChunkOptions fco;
        fco.mode = mode;
        fco.min_chunks = min_chunks;
        fco.readahead_chunks = parsers + 1;
        auto source = MakeFileChunkSource(path, format, &vocab, fco);
        ASSERT_TRUE(source.ok()) << source.status().ToString();
        const std::vector<Sgt> actual =
            RunShardedOver(*query, &vocab, **source, options);
        ASSERT_EQ(actual.size(), expected.size())
            << ModeName(mode) << " format="
            << (use_binary ? "binary" : "csv") << " parsers=" << parsers;
        for (std::size_t i = 0; i < expected.size(); ++i) {
          ASSERT_TRUE(actual[i] == expected[i])
              << ModeName(mode) << " format="
              << (use_binary ? "binary" : "csv") << " parsers=" << parsers
              << " position " << i;
        }
      }
    }
    std::remove(path.c_str());
  }
}

TEST(FileIngestDifferentialTest, RunSgaFileMatchesRunSgaText) {
  // Harness-level parity in every parse placement RunSgaText supports:
  // sync inline parse, async single producer, async sharded.
  Vocabulary vocab;
  const InputStream stream = TestStream(&vocab);
  const std::string csv = FormatStreamCsv(stream, vocab);
  auto binary = FormatStreamBinary(stream, vocab);
  ASSERT_TRUE(binary.ok());
  auto query = MakeQuery("Answer(x,y) <- a(x,y)\nAnswer(x,y) <- c(x,y)",
                         WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  const std::string csv_path = WriteTemp("harness.csv", csv);
  const std::string bin_path = WriteTemp("harness.sgqb", *binary);

  struct Placement {
    bool async;
    std::size_t parsers;
  };
  const Placement placements[] = {{false, 1}, {true, 1}, {true, 4}};
  for (const bool use_binary : {false, true}) {
    for (const Placement& p : placements) {
      EngineOptions options;
      options.batch_size = 16;
      options.async_ingest = p.async;
      options.ingest_parsers = p.parsers;
      options.ingest_format =
          use_binary ? StreamFormat::kBinary : StreamFormat::kCsv;
      auto text = RunSgaText(use_binary ? *binary : csv, *query, &vocab,
                             options, "text");
      ASSERT_TRUE(text.ok()) << text.status().ToString();
      for (const FileIngestMode mode : kModes) {
        options.ingest_file_mode = mode;
        auto file = RunSgaFile(use_binary ? bin_path : csv_path, *query,
                               &vocab, options, "file");
        ASSERT_TRUE(file.ok()) << file.status().ToString();
        EXPECT_EQ(file->results_emitted, text->results_emitted)
            << ModeName(mode) << " format="
            << (use_binary ? "binary" : "csv") << " async=" << p.async
            << " parsers=" << p.parsers;
        EXPECT_EQ(file->edges_processed, text->edges_processed);
      }
    }
  }
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

// ---------------------------------------------------------------------------
// Bounded memory and abort safety
// ---------------------------------------------------------------------------

TEST(FileIngestBoundedMemoryTest, PeakResidentBytesIndependentOfFileSize) {
  // Two synthetic CSV files, one 4x the other; at a fixed readahead
  // window the feeder's high-water resident payload must not scale with
  // the file (the whole point of the windowed source). The in-memory
  // path, by contrast, holds every byte.
  auto make_csv = [](std::size_t target_bytes) {
    std::string csv;
    csv.reserve(target_bytes + 64);
    std::size_t i = 0;
    while (csv.size() < target_bytes) {
      csv += "u" + std::to_string(i % 500) + ",a,v" +
             std::to_string((i * 7) % 500) + "," + std::to_string(i / 50) +
             "\n";
      ++i;
    }
    return csv;
  };
  const std::string small_csv = make_csv(2u << 20);   // ~2 MiB: 8 chunks
  const std::string large_csv = make_csv(8u << 20);   // ~8 MiB: 32 chunks
  const std::string small_path = WriteTemp("rss_small.csv", small_csv);
  const std::string large_path = WriteTemp("rss_large.csv", large_csv);

  for (const FileIngestMode mode : kModes) {
    std::uint64_t peak[2] = {0, 0};
    int idx = 0;
    for (const std::string* path : {&small_path, &large_path}) {
      Vocabulary vocab;
      FileChunkOptions fco;
      fco.mode = mode;
      fco.readahead_chunks = 4;
      auto source =
          MakeFileChunkSource(*path, StreamFormat::kCsv, &vocab, fco);
      ASSERT_TRUE(source.ok()) << source.status().ToString();
      ASSERT_GE((*source)->NumChunks(), 8u);
      ChunkWalkCursor cursor(**source, false);
      EXPECT_FALSE(Drain(&cursor).empty());
      ASSERT_TRUE(cursor.status().ok()) << cursor.status().ToString();
      peak[idx++] = (*source)->peak_resident_bytes();
    }
    // The window is 4 chunks of ~256 KiB: both peaks sit near ~1 MiB.
    // Identical boundaries modulo newline slack, so "independent of file
    // size" is a tight relation, not a loose threshold.
    EXPECT_GT(peak[0], 0u) << ModeName(mode);
    EXPECT_LE(peak[1], peak[0] + peak[0] / 4) << ModeName(mode)
        << ": peak grew with file size (" << peak[0] << " -> " << peak[1]
        << ")";
    // And absolutely bounded far below the large file itself.
    EXPECT_LT(peak[1], large_csv.size() / 4) << ModeName(mode);
  }
  std::remove(small_path.c_str());
  std::remove(large_path.c_str());
}

TEST(FileIngestAbortTest, EarlyParseErrorTerminatesShardedRun) {
  // A malformed record in the first chunk while 4 parsers contend for a
  // tight window: the merge's abort must wake any parser blocked in
  // OpenChunk (ChunkedStream::Abort) or this test hangs.
  std::string csv = "u0,a,v0,not-a-timestamp\n";  // line 1: poison
  for (int i = 0; i < 20000; ++i) {
    csv += "u" + std::to_string(i % 50) + ",a,v" + std::to_string(i % 50) +
           "," + std::to_string(i / 100) + "\n";
  }
  const std::string path = WriteTemp("abort.csv", csv);
  for (const FileIngestMode mode : kModes) {
    Vocabulary vocab;
    auto query =
        MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok());
    EngineOptions options;
    options.async_ingest = true;
    options.ingest_parsers = 4;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    FileChunkOptions fco;
    fco.mode = mode;
    fco.min_chunks = 8;
    fco.readahead_chunks = 2;
    auto source = MakeFileChunkSource(path, StreamFormat::kCsv, &vocab, fco);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    Status run = (*qp)->engine().RunPipelinedSharded(**source);
    ASSERT_FALSE(run.ok()) << ModeName(mode);
    EXPECT_NE(run.message().find("line 1"), std::string::npos)
        << run.ToString();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgq

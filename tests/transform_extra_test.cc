// Additional transformation-rule coverage: executable round-trips for
// every rewrite, WSCAN commutation semantics, and stress on the plan
// enumerator's deduplication.

#include <gtest/gtest.h>

#include "algebra/transform.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

class TransformExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *vocab_.InternInputLabel("a");
    b_ = *vocab_.InternInputLabel("b");
    c_ = *vocab_.InternInputLabel("c");
    out_ = *vocab_.InternDerivedLabel("out");
    RandomStreamOptions opt;
    opt.seed = 77;
    opt.num_vertices = 8;
    opt.num_labels = 3;
    opt.num_edges = 80;
    opt.max_gap = 2;
    auto stream = GenerateRandomStream(opt, &vocab_);
    ASSERT_TRUE(stream.ok());
    stream_ = *stream;
  }

  LogicalPlan Scan(LabelId l) { return MakeWScan(l, WindowSpec(15, 1)); }

  /// Runs both plans on the shared stream and asserts equal snapshots.
  void ExpectEquivalent(const LogicalOp& p1, const LogicalOp& p2) {
    auto q1 = QueryProcessor::Compile(p1, vocab_, {});
    auto q2 = QueryProcessor::Compile(p2, vocab_, {});
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    ASSERT_TRUE(q2.ok()) << q2.status().ToString();
    (*q1)->PushAll(stream_);
    (*q2)->PushAll(stream_);
    for (Timestamp t : SampleTimes(stream_, 8)) {
      ASSERT_EQ(ResultPairsAt((*q1)->results(), t),
                ResultPairsAt((*q2)->results(), t))
          << "plans diverge at t=" << t << "\n"
          << p1.ToString(vocab_) << "vs\n"
          << p2.ToString(vocab_);
    }
  }

  Vocabulary vocab_;
  LabelId a_, b_, c_, out_;
  InputStream stream_;
};

TEST_F(TransformExecTest, AlternationSplitExecutesEquivalently) {
  std::vector<LogicalPlan> kids;
  kids.push_back(Scan(a_));
  kids.push_back(Scan(b_));
  auto path = MakePath(
      out_,
      Regex::Plus(Regex::Alt({Regex::Label(a_), Regex::Label(b_)})),
      std::move(kids));
  // Split applies to a top-level Alt only: build (a|b) without closure.
  std::vector<LogicalPlan> kids2;
  kids2.push_back(Scan(a_));
  kids2.push_back(Scan(b_));
  auto alt = MakePath(out_, Regex::Alt({Regex::Label(a_), Regex::Label(b_)}),
                      std::move(kids2));
  LogicalPlan split = TrySplitPathAlternation(*alt);
  ASSERT_NE(split, nullptr);
  ExpectEquivalent(*alt, *split);
  (void)path;
}

TEST_F(TransformExecTest, ConcatSplitExecutesEquivalently) {
  std::vector<LogicalPlan> kids;
  kids.push_back(Scan(a_));
  kids.push_back(Scan(b_));
  kids.push_back(Scan(c_));
  auto path = MakePath(out_,
                       Regex::Concat({Regex::Label(a_), Regex::Label(b_),
                                      Regex::Label(c_)}),
                       std::move(kids));
  LogicalPlan split = TrySplitPathConcat(*path, &vocab_);
  ASSERT_NE(split, nullptr);
  ExpectEquivalent(*path, *split);
}

TEST_F(TransformExecTest, FusePatternChainExecutesEquivalently) {
  std::vector<LogicalPlan> kids;
  kids.push_back(Scan(a_));
  kids.push_back(Scan(b_));
  auto pattern = MakePattern(out_, {{"x", "y"}, {"y", "z"}}, "x", "z",
                             std::move(kids));
  LogicalPlan fused = TryFusePatternChain(*pattern);
  ASSERT_NE(fused, nullptr);
  ExpectEquivalent(*pattern, *fused);
}

TEST_F(TransformExecTest, EnumerationTerminatesAndDeduplicates) {
  // A plan with several applicable rules must not enumerate duplicates or
  // blow past the budget.
  std::vector<LogicalPlan> kids;
  kids.push_back(Scan(a_));
  kids.push_back(Scan(b_));
  kids.push_back(Scan(c_));
  auto pattern = MakePattern(
      *vocab_.InternDerivedLabel("base"),
      {{"x0", "x1"}, {"x1", "x2"}, {"x2", "x3"}}, "x0", "x3",
      std::move(kids));
  std::vector<LogicalPlan> closure_kids;
  closure_kids.push_back(std::move(pattern));
  auto root = MakePath(out_,
                       Regex::Plus(Regex::Label(*vocab_.FindLabel("base"))),
                       std::move(closure_kids));
  std::vector<LogicalPlan> plans = EnumeratePlans(*root, &vocab_, 24);
  EXPECT_LE(plans.size(), 24u);
  EXPECT_GE(plans.size(), 2u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    for (std::size_t j = i + 1; j < plans.size(); ++j) {
      EXPECT_FALSE(plans[i]->Equals(*plans[j]))
          << "duplicate plans at " << i << "," << j;
    }
  }
}

TEST_F(TransformExecTest, FilterCommutesWithUnionExecutably) {
  std::vector<LogicalPlan> kids;
  kids.push_back(Scan(a_));
  kids.push_back(Scan(b_));
  auto u = MakeUnion(out_, std::move(kids));
  FilterPredicate self;
  self.kind = FilterPredicate::Kind::kSrcEqualsTrg;
  auto filtered = MakeFilter({self}, std::move(u));
  LogicalPlan pushed = TryPushFilterBelowUnion(*filtered);
  ASSERT_NE(pushed, nullptr);
  ExpectEquivalent(*filtered, *pushed);
}

}  // namespace
}  // namespace sgq

// Tests for the out-of-order ingestion extension (core/reorder_buffer.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/query_processor.h"
#include "core/reorder_buffer.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

Sge E(Timestamp t) { return Sge(1, 2, 0, t); }

TEST(ReorderBufferTest, InOrderStreamPassesThrough) {
  ReorderBuffer buf(/*slack=*/2);
  std::vector<Sge> out;
  for (Timestamp t : {0, 1, 2, 3, 4, 5}) {
    for (const Sge& e : buf.Offer(E(t))) out.push_back(e);
  }
  for (const Sge& e : buf.Flush()) out.push_back(e);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].t, out[i].t);
  }
}

TEST(ReorderBufferTest, ReordersWithinSlack) {
  ReorderBuffer buf(/*slack=*/3);
  std::vector<Sge> out;
  for (Timestamp t : {2, 0, 1, 5, 3, 4, 8, 6, 7}) {
    for (const Sge& e : buf.Offer(E(t))) out.push_back(e);
  }
  for (const Sge& e : buf.Flush()) out.push_back(e);
  ASSERT_EQ(out.size(), 9u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].t, static_cast<Timestamp>(i));
  }
  EXPECT_EQ(buf.LateCount(), 0u);
}

TEST(ReorderBufferTest, DropsAndReportsLateElements) {
  ReorderBuffer buf(/*slack=*/1);
  std::vector<Sge> late;
  buf.OnLate([&](const Sge& e) { late.push_back(e); });
  (void)buf.Offer(E(10));
  (void)buf.Offer(E(3));  // 7 units late with slack 1: dropped
  EXPECT_EQ(buf.LateCount(), 1u);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].t, 3);
}

TEST(ReorderBufferTest, WatermarkAdvancesMonotonically) {
  ReorderBuffer buf(/*slack=*/5);
  EXPECT_EQ(buf.Watermark(), kMinTimestamp);
  (void)buf.Offer(E(10));
  EXPECT_EQ(buf.Watermark(), 5);
  (void)buf.Offer(E(7));  // within slack, watermark unchanged
  EXPECT_EQ(buf.Watermark(), 5);
  (void)buf.Offer(E(20));
  EXPECT_EQ(buf.Watermark(), 15);
}

class ShuffledStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(ShuffledStreamTest, EngineBehindBufferMatchesOrderedRun) {
  // Shuffle a stream within bounded windows; feeding it through the
  // reorder buffer must reproduce the ordered run's snapshots exactly.
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam()) + 90;
  opt.num_vertices = 8;
  opt.num_labels = 2;
  opt.num_edges = 90;
  opt.max_gap = 1;
  auto ordered = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(ordered.ok());

  // Local shuffles bounded by `disorder` positions (timestamps drift by at
  // most max_gap * disorder).
  const Timestamp disorder = 4;
  InputStream shuffled = *ordered;
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    if (rng() % 2 == 0) std::swap(shuffled[i], shuffled[i + 1]);
  }

  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 1), &vocab);
  ASSERT_TRUE(query.ok());

  auto reference = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(reference.ok());
  (*reference)->PushAll(*ordered);

  auto buffered = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(buffered.ok());
  ReorderBuffer buf(disorder * (opt.max_gap + 1));
  for (const Sge& sge : shuffled) {
    for (const Sge& released : buf.Offer(sge)) (*buffered)->Push(released);
  }
  for (const Sge& released : buf.Flush()) (*buffered)->Push(released);
  EXPECT_EQ(buf.LateCount(), 0u);

  for (Timestamp t : testing_util::SampleTimes(*ordered, 10)) {
    EXPECT_EQ(testing_util::ResultPairsAt((*reference)->results(), t),
              testing_util::ResultPairsAt((*buffered)->results(), t))
        << "seed=" << GetParam() << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffledStreamTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace sgq

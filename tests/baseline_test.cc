// Tests for the DD-style baseline engine (§7.2.2): epoch-batched counting
// IVM + semi-naive/DRed transitive closure, validated against the one-time
// oracle at epoch boundaries and against the SGA engine.

#include <gtest/gtest.h>

#include "baseline/engine.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::OraclePairsAt;
using testing_util::ResultPairsAt;

/// Oracle for epoch semantics: at boundary B the DD engine has applied
/// exactly the arrivals with t < B (the batch of the closed epoch), so the
/// reference is the snapshot at B of the stream truncated to t < B.
VertexPairSet EpochOracle(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, Timestamp boundary) {
  InputStream truncated;
  for (const Sge& sge : stream) {
    if (sge.t < boundary) truncated.push_back(sge);
  }
  return OraclePairsAt(truncated, query, vocab, boundary);
}

TEST(RelationVersionTest, InsertEraseContains) {
  baseline::RelationVersion rel;
  rel.Insert(1, 2);
  rel.Insert(1, 3);
  EXPECT_TRUE(rel.Contains(1, 2));
  EXPECT_EQ(rel.TargetsOf(1).size(), 2u);
  EXPECT_EQ(rel.SourcesOf(2).size(), 1u);
  rel.Erase(1, 2);
  EXPECT_FALSE(rel.Contains(1, 2));
  EXPECT_EQ(rel.Size(), 1u);
  rel.Insert(1, 3);  // idempotent
  EXPECT_EQ(rel.Size(), 1u);
}

TEST(VersionedRelationTest, DeltaAndCommit) {
  baseline::VersionedRelation rel;
  rel.Apply(1, 2, +1);
  rel.Apply(1, 2, +1);  // no-op (set semantics)
  EXPECT_EQ(rel.delta().size(), 1u);
  EXPECT_TRUE(rel.new_version().Contains(1, 2));
  EXPECT_FALSE(rel.old_version().Contains(1, 2));
  rel.Commit();
  EXPECT_TRUE(rel.old_version().Contains(1, 2));
  EXPECT_FALSE(rel.HasDelta());
  rel.Apply(1, 2, -1);
  EXPECT_FALSE(rel.new_version().Contains(1, 2));
  EXPECT_TRUE(rel.old_version().Contains(1, 2));
}

struct BaselineCase {
  const char* name;
  const char* text;
  int seed;
  Timestamp slide;
};

class BaselineOracleTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineOracleTest, AnswersMatchOracleAtEpochBoundaries) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed);
  opt.num_vertices = 9;
  opt.num_labels = 3;
  opt.num_edges = 90;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query = MakeQuery(GetParam().text,
                         WindowSpec(16, GetParam().slide), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto engine = baseline::DifferentialEngine::Create(*query, vocab);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Feed incrementally; at each epoch boundary compare with the oracle
  // evaluated on the snapshot at that boundary.
  Timestamp boundary = ((*stream)[0].t / GetParam().slide) *
                           GetParam().slide +
                       GetParam().slide;
  for (const Sge& sge : *stream) {
    while (sge.t >= boundary) {
      (*engine)->AdvanceTo(boundary);
      EXPECT_EQ((*engine)->Answers(),
                EpochOracle(*stream, *query, vocab, boundary))
          << GetParam().name << " boundary=" << boundary;
      boundary += GetParam().slide;
    }
    (*engine)->Push(sge);
  }
  (*engine)->AdvanceTo(boundary);
  EXPECT_EQ((*engine)->Answers(),
            EpochOracle(*stream, *query, vocab, boundary));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BaselineOracleTest,
    ::testing::Values(
        BaselineCase{"TC", "Answer(x,y) <- a+(x,y)", 3, 1},
        BaselineCase{"TCslide4", "Answer(x,y) <- a+(x,y)", 4, 4},
        BaselineCase{"Join", "Answer(x,y) <- a(x,z), b(z,y)", 5, 2},
        BaselineCase{"Star", "Answer(x,y) <- a(x,z), b*(z,y)", 6, 2},
        BaselineCase{"Triangle",
                     "Answer(x,y) <- a(x,y), b(y,z), c(z,x)", 7, 3},
        BaselineCase{"TCJoin", "Answer(x,y) <- a+(x,z), b(z,y)", 8, 2},
        BaselineCase{"UnionHeads",
                     "R(x,y) <- a(x,y)\nR(x,y) <- b(x,y)\n"
                     "Answer(x,y) <- R+(x,y)",
                     9, 2},
        BaselineCase{"Q7shape",
                     "RL(x,y) <- a+(x,y), b(x,m), c(m,y)\n"
                     "Answer(x,m) <- RL+(x,y), c(m,y)",
                     10, 4}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.name;
    });

TEST(BaselineVsSgaTest, BothEnginesAgreeAtBoundaries) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = 21;
  opt.num_vertices = 8;
  opt.num_labels = 2;
  opt.num_edges = 80;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  const Timestamp slide = 4;
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,z), b(z,y)", WindowSpec(16, slide),
                &vocab);
  ASSERT_TRUE(query.ok());

  // Compare at a boundary: feed both engines exactly the edges of closed
  // epochs (t < boundary) so their views coincide.
  const Timestamp end = (*stream).back().t;
  const Timestamp boundary = (end / slide) * slide;
  InputStream closed;
  for (const Sge& sge : *stream) {
    if (sge.t < boundary) closed.push_back(sge);
  }

  auto sga = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(sga.ok());
  (*sga)->PushAll(closed);

  auto dd = baseline::DifferentialEngine::Create(*query, vocab);
  ASSERT_TRUE(dd.ok());
  for (const Sge& sge : closed) (*dd)->Push(sge);
  (*dd)->AdvanceTo(boundary);
  EXPECT_EQ(ResultPairsAt((*sga)->results(), boundary), (*dd)->Answers());
}

TEST(BaselineDeletionTest, ExplicitDeletionsHandled) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = 31;
  opt.num_vertices = 7;
  opt.num_labels = 2;
  opt.num_edges = 60;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  auto engine = baseline::DifferentialEngine::Create(*query, vocab);
  ASSERT_TRUE(engine.ok());
  for (const Sge& sge : *stream) (*engine)->Push(sge);
  const Timestamp boundary = ((*stream).back().t / 3) * 3 + 3;
  (*engine)->AdvanceTo(boundary);
  EXPECT_EQ((*engine)->Answers(),
            EpochOracle(*stream, *query, vocab, boundary));
}

}  // namespace
}  // namespace sgq

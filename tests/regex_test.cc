// Unit and property tests for the regex -> NFA -> DFA pipeline that powers
// the PATH operators.

#include <gtest/gtest.h>

#include <random>

#include "regex/dfa.h"
#include "regex/nfa.h"
#include "regex/regex.h"

namespace sgq {
namespace {

class RegexTest : public ::testing::Test {
 protected:
  LabelId L(const char* name) {
    auto r = vocab_.InternInputLabel(name);
    EXPECT_TRUE(r.ok());
    return *r;
  }
  Result<Regex> Parse(const char* text) { return ParseRegex(text, &vocab_); }

  Vocabulary vocab_;
};

TEST_F(RegexTest, ParsesConcatenationByJuxtaposition) {
  auto r = Parse("a b c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, RegexKind::kConcat);
  EXPECT_EQ(r->children.size(), 3u);
}

TEST_F(RegexTest, ParsesAlternationAndPrecedence) {
  // Concatenation binds tighter than alternation.
  auto r = Parse("a b | c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->kind, RegexKind::kAlt);
  ASSERT_EQ(r->children.size(), 2u);
  EXPECT_EQ(r->children[0].kind, RegexKind::kConcat);
  EXPECT_EQ(r->children[1].kind, RegexKind::kLabel);
}

TEST_F(RegexTest, ParsesQuantifiersAndGroups) {
  auto r = Parse("(a b)+ c* d?");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->kind, RegexKind::kConcat);
  EXPECT_EQ(r->children[0].kind, RegexKind::kPlus);
  EXPECT_EQ(r->children[1].kind, RegexKind::kStar);
  EXPECT_EQ(r->children[2].kind, RegexKind::kOpt);
}

TEST_F(RegexTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("(a").ok());
  EXPECT_FALSE(Parse("a )").ok());
  EXPECT_FALSE(Parse("|a").ok());
  EXPECT_FALSE(Parse("a §").ok());
}

TEST_F(RegexTest, AlphabetCollectsDistinctLabels) {
  auto r = Parse("a (b | a)* c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Alphabet().size(), 3u);
}

TEST_F(RegexTest, NfaAcceptsSimpleLanguages) {
  LabelId a = L("a"), b = L("b");
  auto r = Parse("a b*");
  ASSERT_TRUE(r.ok());
  Nfa nfa = Nfa::FromRegex(*r);
  EXPECT_TRUE(nfa.Accepts({a}));
  EXPECT_TRUE(nfa.Accepts({a, b}));
  EXPECT_TRUE(nfa.Accepts({a, b, b, b}));
  EXPECT_FALSE(nfa.Accepts({}));
  EXPECT_FALSE(nfa.Accepts({b}));
  EXPECT_FALSE(nfa.Accepts({a, a}));
}

TEST_F(RegexTest, DfaMatchesNfaOnHandPickedCases) {
  LabelId a = L("a"), b = L("b"), c = L("c");
  auto r = Parse("(a b c)+");
  ASSERT_TRUE(r.ok());
  Dfa dfa = Dfa::FromRegex(*r);
  EXPECT_TRUE(dfa.Accepts({a, b, c}));
  EXPECT_TRUE(dfa.Accepts({a, b, c, a, b, c}));
  EXPECT_FALSE(dfa.Accepts({a, b}));
  EXPECT_FALSE(dfa.Accepts({a, b, c, a}));
  EXPECT_FALSE(dfa.AcceptsEmpty());
}

TEST_F(RegexTest, DfaStartCanRead) {
  LabelId a = L("a");
  LabelId b = L("b");
  auto r = Parse("a b*");
  ASSERT_TRUE(r.ok());
  Dfa dfa = Dfa::FromRegex(*r);
  EXPECT_TRUE(dfa.StartCanRead(a));
  EXPECT_FALSE(dfa.StartCanRead(b));
}

TEST_F(RegexTest, MinimizationPreservesLanguage) {
  LabelId a = L("a"), b = L("b");
  // (a|b)* a (a|b): classic exponential-subset language; minimized DFA for
  // "second-to-last symbol is a" over 2 letters has 4 states.
  auto r = Parse("(a|b)* a (a|b)");
  ASSERT_TRUE(r.ok());
  Dfa unmin = Dfa::FromNfa(Nfa::FromRegex(*r));
  Dfa min = unmin.Minimize();
  EXPECT_LE(min.NumStates(), unmin.NumStates());
  EXPECT_EQ(min.NumStates(), 4u);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<LabelId> word;
    const int len = static_cast<int>(rng() % 8);
    for (int j = 0; j < len; ++j) word.push_back(rng() % 2 == 0 ? a : b);
    EXPECT_EQ(min.Accepts(word), unmin.Accepts(word));
  }
}

TEST_F(RegexTest, EmptyLanguageHandled) {
  // "a" minimized keeps the start state; over an unrelated word it dies.
  LabelId a = L("a"), b = L("b");
  auto r = Parse("a");
  ASSERT_TRUE(r.ok());
  Dfa dfa = Dfa::FromRegex(*r);
  EXPECT_TRUE(dfa.Accepts({a}));
  EXPECT_FALSE(dfa.Accepts({b}));
  EXPECT_EQ(dfa.Next(dfa.start(), b), Dfa::kNoState);
}

// Property: minimized DFA and NFA agree on random words for random
// regexes. Parameterized over seeds (property-style sweep).
class RegexPropertyTest : public ::testing::TestWithParam<int> {};

Regex RandomRegex(std::mt19937_64* rng, const std::vector<LabelId>& labels,
                  int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 0 : 5);
  switch (kind_dist(*rng)) {
    case 1: {
      std::vector<Regex> parts;
      for (int i = 0; i < 2; ++i) {
        parts.push_back(RandomRegex(rng, labels, depth - 1));
      }
      return Regex::Concat(std::move(parts));
    }
    case 2: {
      std::vector<Regex> parts;
      for (int i = 0; i < 2; ++i) {
        parts.push_back(RandomRegex(rng, labels, depth - 1));
      }
      return Regex::Alt(std::move(parts));
    }
    case 3:
      return Regex::Star(RandomRegex(rng, labels, depth - 1));
    case 4:
      return Regex::Plus(RandomRegex(rng, labels, depth - 1));
    case 5:
      return Regex::Opt(RandomRegex(rng, labels, depth - 1));
    default:
      return Regex::Label(labels[(*rng)() % labels.size()]);
  }
}

TEST_P(RegexPropertyTest, DfaEquivalentToNfaOracle) {
  Vocabulary vocab;
  std::vector<LabelId> labels = {*vocab.InternInputLabel("a"),
                                 *vocab.InternInputLabel("b"),
                                 *vocab.InternInputLabel("c")};
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  Regex regex = RandomRegex(&rng, labels, 4);
  Nfa nfa = Nfa::FromRegex(regex);
  Dfa dfa = Dfa::FromRegex(regex);
  for (int i = 0; i < 120; ++i) {
    std::vector<LabelId> word;
    const int len = static_cast<int>(rng() % 7);
    for (int j = 0; j < len; ++j) {
      word.push_back(labels[rng() % labels.size()]);
    }
    ASSERT_EQ(dfa.Accepts(word), nfa.Accepts(word))
        << "seed=" << GetParam() << " word length " << word.size();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRegexes, RegexPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace sgq

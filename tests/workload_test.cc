// Tests for the workload module: generator determinism, the structural
// properties the evaluation relies on (SO cyclicity/skew, SNB's
// forest-shaped replyOf), the Table 1 query set, and the harness.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generators.h"
#include "workload/harness.h"
#include "workload/queries.h"

namespace sgq {
namespace {

TEST(SoGeneratorTest, DeterministicForSeed) {
  Vocabulary v1, v2;
  SoOptions opt;
  opt.num_edges = 500;
  auto s1 = GenerateSoStream(opt, &v1);
  auto s2 = GenerateSoStream(opt, &v2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  for (std::size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ((*s1)[i].src, (*s2)[i].src);
    EXPECT_EQ((*s1)[i].t, (*s2)[i].t);
  }
}

TEST(SoGeneratorTest, TimestampsOrderedAndLabelsValid) {
  Vocabulary vocab;
  SoOptions opt;
  opt.num_edges = 2000;
  auto stream = GenerateSoStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), opt.num_edges);
  Timestamp last = 0;
  std::set<LabelId> labels;
  for (const Sge& e : *stream) {
    EXPECT_GE(e.t, last);
    last = e.t;
    labels.insert(e.label);
    EXPECT_NE(e.src, e.trg);  // the generator avoids trivial self-loops
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(SoGeneratorTest, PreferentialAttachmentSkewsDegrees) {
  Vocabulary vocab;
  SoOptions opt;
  opt.num_edges = 5000;
  opt.num_vertices = 500;
  auto stream = GenerateSoStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  std::map<VertexId, int> degree;
  for (const Sge& e : *stream) {
    ++degree[e.src];
    ++degree[e.trg];
  }
  int max_degree = 0;
  long total = 0;
  for (const auto& [_, d] : degree) {
    max_degree = std::max(max_degree, d);
    total += d;
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(degree.size());
  // Heavy tail: the hottest vertex far exceeds the mean degree.
  EXPECT_GT(max_degree, 5 * mean);
}

TEST(SnbGeneratorTest, ReplyOfIsForestShaped) {
  Vocabulary vocab;
  SnbOptions opt;
  opt.num_events = 4000;
  auto stream = GenerateSnbStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  const LabelId reply_of = *vocab.FindLabel("replyOf");
  std::set<VertexId> reply_sources;
  for (const Sge& e : *stream) {
    if (e.label != reply_of) continue;
    // Forest shape: each message replies at most once (unique out-edge).
    EXPECT_TRUE(reply_sources.insert(e.src).second)
        << "message with two replyOf edges";
  }
  EXPECT_GT(reply_sources.size(), 100u);
}

TEST(SnbGeneratorTest, HasCreatorPrecedesLikes) {
  Vocabulary vocab;
  SnbOptions opt;
  opt.num_events = 2000;
  auto stream = GenerateSnbStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  const LabelId likes = *vocab.FindLabel("likes");
  const LabelId has_creator = *vocab.FindLabel("hasCreator");
  std::set<VertexId> created;
  for (const Sge& e : *stream) {
    if (e.label == has_creator) created.insert(e.src);
    if (e.label == likes) {
      EXPECT_TRUE(created.count(e.trg) > 0)
          << "like of a message that does not exist yet";
    }
  }
}

TEST(RandomStreamTest, DeletionsReferEarlierInsertions) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.deletion_probability = 0.3;
  opt.num_edges = 200;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  std::set<std::tuple<VertexId, VertexId, LabelId>> seen;
  bool any_deletion = false;
  for (const Sge& e : *stream) {
    if (e.is_deletion) {
      any_deletion = true;
      EXPECT_TRUE(seen.count({e.src, e.trg, e.label}) > 0);
    } else {
      seen.insert({e.src, e.trg, e.label});
    }
  }
  EXPECT_TRUE(any_deletion);
}

TEST(QuerySetTest, AllTable1QueriesParseAndTranslate) {
  for (auto [name, queries] :
       std::map<std::string, std::vector<BenchQuery>>{
           {"so", SoQuerySet()}, {"snb", SnbQuerySet()}}) {
    ASSERT_EQ(queries.size(), 7u) << name;
    Vocabulary vocab;
    // Pre-intern the dataset labels as the generators would.
    if (name == "so") {
      ASSERT_TRUE(vocab.InternInputLabel("a2q").ok());
      ASSERT_TRUE(vocab.InternInputLabel("c2q").ok());
      ASSERT_TRUE(vocab.InternInputLabel("c2a").ok());
    } else {
      ASSERT_TRUE(vocab.InternInputLabel("knows").ok());
      ASSERT_TRUE(vocab.InternInputLabel("likes").ok());
      ASSERT_TRUE(vocab.InternInputLabel("hasCreator").ok());
      ASSERT_TRUE(vocab.InternInputLabel("replyOf").ok());
    }
    for (const BenchQuery& q : queries) {
      auto query = MakeQuery(q.text, WindowSpec(30 * kDay, kDay), &vocab);
      ASSERT_TRUE(query.ok())
          << name << "/" << q.name << ": " << query.status().ToString();
      EXPECT_TRUE(query->rq.Validate(vocab).ok()) << name << "/" << q.name;
    }
  }
}

TEST(HarnessTest, RunsSgaAndDdOnSmallStream) {
  Vocabulary vocab;
  SoOptions opt;
  opt.num_edges = 800;
  opt.num_vertices = 120;
  auto stream = GenerateSoStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  auto query = MakeQuery("Answer(x,y) <- a2q(x,z), c2q(z,y)",
                         WindowSpec(2 * kDay, 12), &vocab);
  ASSERT_TRUE(query.ok());

  auto sga = RunSga(*stream, *query, vocab, {}, "sga");
  ASSERT_TRUE(sga.ok()) << sga.status().ToString();
  EXPECT_GT(sga->edges_processed, 0u);
  EXPECT_GT(sga->Throughput(), 0.0);

  auto dd = RunDd(*stream, *query, vocab, "dd");
  ASSERT_TRUE(dd.ok()) << dd.status().ToString();
  EXPECT_GT(dd->edges_processed, 0u);
}

}  // namespace
}  // namespace sgq

// Subscription-session protocol tests (server/session.h): the line
// protocol drives live attach/detach on a running engine, results are
// tagged per subscription, errors are inline and non-fatal, and a
// session-driven subscription's output matches the engine API run the
// protocol claims to perform.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "server/session.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

InputStream SessionStream(Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = 2024;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 120;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

/// Runs `script` through a fresh session over `stream`; returns stdout.
std::string RunSession(const std::string& script, const InputStream& stream,
                       Vocabulary* vocab, WindowSpec window = {12, 3}) {
  SessionOptions options;
  options.window = window;
  SessionServer server(options, vocab);
  EXPECT_TRUE(server.Init().ok());
  std::istringstream in(script);
  std::ostringstream out;
  EXPECT_TRUE(server.Run(stream, in, out).ok());
  return out.str();
}

/// The `s<id>\t`-tagged result lines for one subscription, tags stripped.
std::vector<std::string> TaggedLines(const std::string& output, int id) {
  const std::string tag = "s" + std::to_string(id) + "\t";
  std::vector<std::string> lines;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(tag, 0) == 0) lines.push_back(line.substr(tag.size()));
  }
  return lines;
}

/// The non-result protocol lines (acks, errors) in order.
std::vector<std::string> ProtocolLines(const std::string& output) {
  std::vector<std::string> lines;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("s", 0) != 0 || line.find('\t') == std::string::npos) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(SessionTest, SubscribeIngestMatchesStaticRun) {
  Vocabulary vocab;
  const InputStream stream = SessionStream(&vocab);
  const std::string output = RunSession(
      "SUBSCRIBE Answer(x,y) <- a+(x,y)\n"
      "INGEST ALL\n"
      "QUIT\n",
      stream, &vocab);

  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, EngineOptions{});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(stream);

  const std::vector<std::string> session_lines = TaggedLines(output, 0);
  const std::vector<Sgt>& reference = (*qp)->results();
  ASSERT_EQ(session_lines.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(session_lines[i], reference[i].ToString(vocab))
        << "result " << i;
  }
}

TEST(SessionTest, AcksAndIdsFollowTheProtocol) {
  Vocabulary vocab;
  const InputStream stream = SessionStream(&vocab);
  const std::string output = RunSession(
      "SUBSCRIBE Answer(x,y) <- a+(x,y)\n"
      "SUBSCRIBE Answer(x,z) <- c(x,y), c(y,z)\n"
      "INGEST 40\n"
      "UNSUBSCRIBE 0\n"
      "SUBSCRIBE Answer(x,y) <- b(x,y)\n"
      "INGEST ALL\n"
      "RESULTS 2\n"
      "QUIT\n",
      stream, &vocab);

  const std::vector<std::string> acks = ProtocolLines(output);
  ASSERT_EQ(acks.size(), 8u) << output;
  EXPECT_EQ(acks[0], "SUBSCRIBED 0");
  EXPECT_EQ(acks[1], "SUBSCRIBED 1");
  EXPECT_EQ(acks[2], "INGESTED 40");
  EXPECT_EQ(acks[3], "UNSUBSCRIBED 0");
  // The freed id is NOT reused: the third subscription gets id 2.
  EXPECT_EQ(acks[4], "SUBSCRIBED 2");
  EXPECT_EQ(acks[5], "INGESTED " + std::to_string(stream.size() - 40));
  EXPECT_EQ(acks[6], "OK 2");
  EXPECT_EQ(acks[7], "BYE");
}

TEST(SessionTest, ErrorsAreInlineAndNonFatal) {
  Vocabulary vocab;
  const InputStream stream = SessionStream(&vocab);
  const std::string output = RunSession(
      "SUBSCRIBE this is not datalog\n"
      "UNSUBSCRIBE 7\n"
      "RESULTS nope\n"
      "FROBNICATE\n"
      "SUBSCRIBE Answer(x,y) <- a(x,y)\n"
      "UNSUBSCRIBE 0\n"
      "UNSUBSCRIBE 0\n"
      "INGEST ALL\n"
      "QUIT\n",
      stream, &vocab);

  const std::vector<std::string> lines = ProtocolLines(output);
  ASSERT_EQ(lines.size(), 9u) << output;
  EXPECT_EQ(lines[0].rfind("ERR", 0), 0u);  // unparsable query
  EXPECT_EQ(lines[1].rfind("ERR", 0), 0u);  // unknown id
  EXPECT_EQ(lines[2].rfind("ERR", 0), 0u);  // non-numeric id
  EXPECT_EQ(lines[3].rfind("ERR", 0), 0u);  // unknown command
  EXPECT_EQ(lines[4], "SUBSCRIBED 0");
  EXPECT_EQ(lines[5], "UNSUBSCRIBED 0");
  // Double unsubscribe is refused but the session keeps serving.
  EXPECT_EQ(lines[6].rfind("ERR", 0), 0u);
  EXPECT_EQ(lines[7], "INGESTED " + std::to_string(stream.size()));
  EXPECT_EQ(lines[8], "BYE");
}

TEST(SessionTest, UnsubscribeDrainsBufferedResultsFirst) {
  Vocabulary vocab;
  const InputStream stream = SessionStream(&vocab);
  // RESULTS is never called: everything the subscription produced must
  // surface at UNSUBSCRIBE time, before the ack, in one batch.
  const std::string with_drain = RunSession(
      "SUBSCRIBE Answer(x,y) <- a+(x,y)\n"
      "INGEST ALL\n"
      "UNSUBSCRIBE 0\n"
      "QUIT\n",
      stream, &vocab);
  const std::string full = RunSession(
      "SUBSCRIBE Answer(x,y) <- a+(x,y)\n"
      "INGEST ALL\n"
      "QUIT\n",
      stream, &vocab);
  EXPECT_EQ(TaggedLines(with_drain, 0), TaggedLines(full, 0));
}

TEST(SessionTest, MidStreamSubscriptionSeesOnlyTheSuffix) {
  Vocabulary vocab;
  const InputStream stream = SessionStream(&vocab);
  const std::size_t k = 50;
  const std::string output = RunSession(
      "SUBSCRIBE Answer(x,y) <- a+(x,y)\n"
      "INGEST " + std::to_string(k) + "\n"
      "SUBSCRIBE Answer(x,y) <- c(x,y)\n"
      "INGEST ALL\n"
      "QUIT\n",
      stream, &vocab);

  // Static reference over the suffix only.
  const InputStream suffix(stream.begin() + static_cast<std::ptrdiff_t>(k),
                           stream.end());
  auto query = MakeQuery("Answer(x,y) <- c(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, EngineOptions{});
  ASSERT_TRUE(qp.ok());
  (*qp)->PushAll(suffix);

  const std::vector<std::string> session_lines = TaggedLines(output, 1);
  const std::vector<Sgt>& reference = (*qp)->results();
  ASSERT_EQ(session_lines.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(session_lines[i], reference[i].ToString(vocab));
  }
}

}  // namespace
}  // namespace sgq

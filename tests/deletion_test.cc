// Focused tests for the negative-tuple machinery (§6.2.5): explicit
// deletions through PATH operators (tree-edge vs non-tree-edge, retraction
// and re-assertion), the Δ-tree operator's re-derivation accounting, and
// randomized end-to-end deletion equivalence for both PATH implementations.

#include <gtest/gtest.h>

#include "core/delta_path_op.h"
#include "core/query_processor.h"
#include "core/spath_op.h"
#include "model/coalesce.h"
#include "query/oracle.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

class CollectOp : public PhysicalOp {
 public:
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    tuples.push_back(tuple);
  }
  std::string Name() const override { return "COLLECT"; }
  std::vector<Sgt> tuples;
};

VertexPairSet PairsAt(const std::vector<Sgt>& results, Timestamp t) {
  VertexPairSet out;
  for (const EdgeRef& e : SnapshotEdges(results, t)) {
    out.insert({e.src, e.trg});
  }
  return out;
}

class PathDeletionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *vocab_.InternInputLabel("a");
    out_ = *vocab_.InternDerivedLabel("out");
    auto regex = ParseRegex("a+", &vocab_);
    ASSERT_TRUE(regex.ok());
    dfa_ = Dfa::FromRegex(*regex);
  }

  Sgt Edge(VertexId s, VertexId t, Timestamp ts, Timestamp exp) {
    return Sgt(s, t, a_, Interval(ts, exp), {EdgeRef(s, t, a_)});
  }
  Sgt Deletion(VertexId s, VertexId t, Timestamp at) {
    return Sgt(s, t, a_, Interval(at, kMaxTimestamp), {}, /*del=*/true);
  }

  Vocabulary vocab_;
  LabelId a_, out_;
  Dfa dfa_ = Dfa::FromNfa(Nfa::FromRegex(Regex::Epsilon()));
};

TEST_F(PathDeletionTest, NonTreeEdgeDeletionIsFree) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  // Two parallel derivations 1 -> 2; the first one becomes the tree edge,
  // the second (shorter-lived) is a non-tree edge.
  op.OnTuple(0, Edge(1, 2, 0, 100));
  op.OnTuple(0, Edge(1, 3, 1, 100));
  op.OnTuple(0, Edge(3, 2, 2, 50));  // alternative path 1->3->2, exp 50
  const std::size_t before = sink.tuples.size();
  // Deleting the non-tree alternative changes nothing (§6.2.5).
  op.OnTuple(0, Deletion(3, 2, 10));
  VertexPairSet pairs = PairsAt(sink.tuples, 11);
  EXPECT_TRUE(pairs.count({1, 2}) > 0);
  EXPECT_TRUE(pairs.count({1, 3}) > 0);
  EXPECT_FALSE(pairs.count({3, 2}) > 0);
  // Only the (3,2) retraction itself may have been emitted; (1,2) was not
  // disturbed.
  for (std::size_t i = before; i < sink.tuples.size(); ++i) {
    if (sink.tuples[i].is_deletion) {
      EXPECT_EQ(sink.tuples[i].src, 3u);
    }
  }
}

TEST_F(PathDeletionTest, TreeEdgeDeletionReroutesThroughAlternative) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  // Tree path 1->2->4 plus an alternative 1->3->4 with smaller expiry.
  op.OnTuple(0, Edge(1, 2, 0, 100));
  op.OnTuple(0, Edge(2, 4, 1, 100));
  op.OnTuple(0, Edge(1, 3, 2, 60));
  op.OnTuple(0, Edge(3, 4, 3, 60));
  ASSERT_TRUE(PairsAt(sink.tuples, 5).count({1, 4}) > 0);
  // Delete the tree edge 2->4 at t=10: (1,4) must survive via 1->3->4
  // but only until 60.
  op.OnTuple(0, Deletion(2, 4, 10));
  EXPECT_TRUE(PairsAt(sink.tuples, 11).count({1, 4}) > 0);
  EXPECT_TRUE(PairsAt(sink.tuples, 59).count({1, 4}) > 0);
  EXPECT_FALSE(PairsAt(sink.tuples, 60).count({1, 4}) > 0);
  // (2,4) itself is gone.
  EXPECT_FALSE(PairsAt(sink.tuples, 11).count({2, 4}) > 0);
}

TEST_F(PathDeletionTest, CascadingDeletionKillsWholeSubtree) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  // Chain 1 -> 2 -> 3 -> 4 with no alternatives.
  op.OnTuple(0, Edge(1, 2, 0, 100));
  op.OnTuple(0, Edge(2, 3, 1, 100));
  op.OnTuple(0, Edge(3, 4, 2, 100));
  EXPECT_EQ(PairsAt(sink.tuples, 5).size(), 6u);  // all reachable pairs
  // Deleting 1->2 removes exactly the pairs starting at 1.
  op.OnTuple(0, Deletion(1, 2, 10));
  VertexPairSet pairs = PairsAt(sink.tuples, 11);
  EXPECT_EQ(pairs.size(), 3u);
  EXPECT_FALSE(pairs.count({1, 2}) > 0);
  EXPECT_FALSE(pairs.count({1, 3}) > 0);
  EXPECT_FALSE(pairs.count({1, 4}) > 0);
  EXPECT_TRUE(pairs.count({2, 3}) > 0);
}

TEST_F(PathDeletionTest, DeltaPathHandlesExplicitDeletionsToo) {
  DeltaPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  op.OnTuple(0, Edge(1, 2, 0, 100));
  op.OnTuple(0, Edge(2, 3, 1, 100));
  op.OnTuple(0, Deletion(1, 2, 5));
  VertexPairSet pairs = PairsAt(sink.tuples, 6);
  EXPECT_FALSE(pairs.count({1, 2}) > 0);
  EXPECT_FALSE(pairs.count({1, 3}) > 0);
  EXPECT_TRUE(pairs.count({2, 3}) > 0);
}

TEST_F(PathDeletionTest, DeltaPathCountsRederivationRounds) {
  DeltaPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  op.OnTuple(0, Edge(1, 2, 0, 10));
  op.OnTuple(0, Edge(2, 3, 1, 20));
  EXPECT_EQ(op.rederivation_rounds(), 0u);
  op.OnTimeAdvance(10);  // the 1->2 edge expires: DRed round
  EXPECT_GE(op.rederivation_rounds(), 1u);
}

// Randomized: both PATH implementations agree with the oracle under a
// deletion-heavy workload, end to end.
class DeletionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DeletionEquivalence, BothImplsMatchOracle) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam()) + 7000;
  opt.num_vertices = 7;
  opt.num_labels = 2;
  opt.num_edges = 70;
  opt.max_gap = 2;
  opt.deletion_probability = 0.25;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,z), b(z,y)", WindowSpec(12, 1), &vocab);
  ASSERT_TRUE(query.ok());
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    EngineOptions options;
    options.path_impl = impl;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    ASSERT_TRUE(qp.ok());
    (*qp)->PushAll(*stream);
    for (Timestamp t : testing_util::SampleTimes(*stream, 10)) {
      EXPECT_EQ(testing_util::ResultPairsAt((*qp)->results(), t),
                testing_util::OraclePairsAt(*stream, *query, vocab, t))
          << "impl=" << static_cast<int>(impl) << " seed=" << GetParam()
          << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeletionEquivalence, ::testing::Range(0, 8));

}  // namespace
}  // namespace sgq

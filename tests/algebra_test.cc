// Tests for the logical SGA: canonical translation (Algorithm SGQParser,
// Example 8), plan validation, and the transformation rules of §5.4.

#include <gtest/gtest.h>

#include "algebra/logical_plan.h"
#include "algebra/transform.h"
#include "algebra/translate.h"
#include "query/rq.h"
#include "workload/queries.h"

namespace sgq {
namespace {

class TranslateTest : public ::testing::Test {
 protected:
  StreamingGraphQuery Q(const char* text, WindowSpec w = WindowSpec(24, 1)) {
    auto q = MakeQuery(text, w, &vocab_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }
  Vocabulary vocab_;
};

TEST_F(TranslateTest, SingleAtomBecomesScanUnderPattern) {
  auto plan = TranslateToCanonicalPlan(Q("Answer(x,y) <- e(x,y)"), vocab_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalOp& root = **plan;
  EXPECT_EQ(root.kind, LogicalOpKind::kPattern);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->kind, LogicalOpKind::kWScan);
  EXPECT_EQ(root.children[0]->window, WindowSpec(24, 1));
}

TEST_F(TranslateTest, ClosureBecomesPath) {
  auto plan = TranslateToCanonicalPlan(Q("Answer(x,y) <- e+(x,y)"), vocab_);
  ASSERT_TRUE(plan.ok());
  // PATTERN over the PATH over the WSCAN.
  const LogicalOp& root = **plan;
  ASSERT_EQ(root.kind, LogicalOpKind::kPattern);
  const LogicalOp& path = *root.children[0];
  ASSERT_EQ(path.kind, LogicalOpKind::kPath);
  EXPECT_EQ(path.regex.kind, RegexKind::kPlus);
  EXPECT_EQ(path.children[0]->kind, LogicalOpKind::kWScan);
}

TEST_F(TranslateTest, MultipleRulesBecomeUnion) {
  auto plan = TranslateToCanonicalPlan(Q("Answer(x,y) <- e(x,y)\n"
                                         "Answer(x,y) <- f(x,y)"),
                                       vocab_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, LogicalOpKind::kUnion);
  EXPECT_EQ((*plan)->children.size(), 2u);
}

TEST_F(TranslateTest, Example8CanonicalPlanShape) {
  // The paper's Example 8: PATTERN(PATH(PATTERN(...)), WSCAN(posts)).
  auto plan = TranslateToCanonicalPlan(
      Q("RL(u1,u2) <- likes(u1,m1), follows+(u1,u2) as FP, posts(u2,m1)\n"
        "Answer(u,m) <- RL+(u,v) as RLP, posts(v,m)"),
      vocab_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalOp& root = **plan;
  ASSERT_EQ(root.kind, LogicalOpKind::kPattern);
  ASSERT_EQ(root.children.size(), 2u);
  // First child: PATH[RLP, RL+] over the RL PATTERN.
  const LogicalOp& rlp = *root.children[0];
  ASSERT_EQ(rlp.kind, LogicalOpKind::kPath);
  EXPECT_EQ(rlp.regex.kind, RegexKind::kPlus);
  const LogicalOp& rl = *rlp.children[0];
  ASSERT_EQ(rl.kind, LogicalOpKind::kPattern);
  ASSERT_EQ(rl.children.size(), 3u);
  // The RL pattern's middle input is PATH[FP, follows+] (Figure 8 left).
  EXPECT_EQ(rl.children[0]->kind, LogicalOpKind::kWScan);
  EXPECT_EQ(rl.children[1]->kind, LogicalOpKind::kPath);
  EXPECT_EQ(rl.children[2]->kind, LogicalOpKind::kWScan);
  // Second child of the root: WSCAN over posts.
  EXPECT_EQ(root.children[1]->kind, LogicalOpKind::kWScan);
  EXPECT_EQ(root.children[1]->input_label, *vocab_.FindLabel("posts"));
  // The whole plan validates.
  EXPECT_TRUE(ValidatePlan(root, vocab_).ok());
}

TEST_F(TranslateTest, PerLabelWindowsAreApplied) {
  StreamingGraphQuery q = Q("Answer(x,y) <- e(x,y), f(y,x)");
  const LabelId f = *vocab_.FindLabel("f");
  q.per_label_windows[f] = WindowSpec(100, 5);
  auto plan = TranslateToCanonicalPlan(q, vocab_);
  ASSERT_TRUE(plan.ok());
  const LogicalOp& root = **plan;
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->window, WindowSpec(24, 1));
  EXPECT_EQ(root.children[1]->window, WindowSpec(100, 5));
}

TEST_F(TranslateTest, PlanCloneAndEquality) {
  auto plan = TranslateToCanonicalPlan(Q("Answer(x,y) <- e+(x,y)"), vocab_);
  ASSERT_TRUE(plan.ok());
  LogicalPlan copy = (*plan)->Clone();
  EXPECT_TRUE(copy->Equals(**plan));
  copy->output_label = copy->output_label + 1;
  EXPECT_FALSE(copy->Equals(**plan));
}

// ---------------------------------------------------------------------------
// Plan validation
// ---------------------------------------------------------------------------

TEST(ValidatePlanTest, CatchesStructuralErrors) {
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  LabelId d = *vocab.InternDerivedLabel("d");

  // PATTERN output endpoints must be pattern variables.
  {
    std::vector<LogicalPlan> children;
    children.push_back(MakeWScan(a, WindowSpec(10)));
    auto plan = MakePattern(d, {{"x", "y"}}, "x", "zzz", std::move(children));
    EXPECT_FALSE(ValidatePlan(*plan, vocab).ok());
  }
  // PATH regex alphabet must be covered by child output labels.
  {
    Vocabulary v2;
    LabelId b = *v2.InternInputLabel("b");
    LabelId c = *v2.InternInputLabel("c");
    LabelId out = *v2.InternDerivedLabel("out");
    std::vector<LogicalPlan> children;
    children.push_back(MakeWScan(b, WindowSpec(10)));
    Regex regex = Regex::Concat(
        {Regex::Label(b), Regex::Label(c)});  // c not produced
    auto plan = MakePath(out, regex, std::move(children));
    EXPECT_FALSE(ValidatePlan(*plan, v2).ok());
  }
  // Output labels must be derived, not input (Defs. 18-20).
  {
    std::vector<LogicalPlan> children;
    children.push_back(MakeWScan(a, WindowSpec(10)));
    auto plan = MakePath(a, Regex::Plus(Regex::Label(a)),
                         std::move(children));
    EXPECT_FALSE(ValidatePlan(*plan, vocab).ok());
  }
}

// ---------------------------------------------------------------------------
// Transformation rules (§5.4)
// ---------------------------------------------------------------------------

class TransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *vocab_.InternInputLabel("a");
    b_ = *vocab_.InternInputLabel("b");
    c_ = *vocab_.InternInputLabel("c");
    d_ = *vocab_.InternDerivedLabel("d");
    out_ = *vocab_.InternDerivedLabel("out");
  }

  LogicalPlan Scan(LabelId l) { return MakeWScan(l, WindowSpec(24, 1)); }

  Vocabulary vocab_;
  LabelId a_, b_, c_, d_, out_;
};

TEST_F(TransformTest, AlternationSplitsToUnion) {
  // R3: PATH[out, a|b](Sa, Sb) == UNION[out](PATH[a], PATH[b]).
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  auto path = MakePath(out_, Regex::Alt({Regex::Label(a_), Regex::Label(b_)}),
                       std::move(children));
  LogicalPlan rewritten = TrySplitPathAlternation(*path);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind, LogicalOpKind::kUnion);
  ASSERT_EQ(rewritten->children.size(), 2u);
  EXPECT_EQ(rewritten->children[0]->kind, LogicalOpKind::kPath);
  // Each split PATH keeps only the child stream its alphabet needs.
  EXPECT_EQ(rewritten->children[0]->children.size(), 1u);

  // And the merge rule inverts the split.
  LogicalPlan merged = TryMergePathAlternation(*rewritten);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->kind, LogicalOpKind::kPath);
  EXPECT_EQ(merged->regex.kind, RegexKind::kAlt);
}

TEST_F(TransformTest, ConcatSplitsToPattern) {
  // R4: PATH[out, a.b] == PATTERN[out](Sa, Sb) with trg1 = src2.
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  auto path =
      MakePath(out_, Regex::Concat({Regex::Label(a_), Regex::Label(b_)}),
               std::move(children));
  LogicalPlan rewritten = TrySplitPathConcat(*path, &vocab_);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind, LogicalOpKind::kPattern);
  ASSERT_EQ(rewritten->children.size(), 2u);
  // Bare labels route the scans directly (no nested PATH needed).
  EXPECT_EQ(rewritten->children[0]->kind, LogicalOpKind::kWScan);
}

TEST_F(TransformTest, ConcatSplitRefusesEmptyAcceptingSides) {
  // a . b* cannot split into a join (the zero-length b* match would be
  // lost).
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  auto path = MakePath(
      out_, Regex::Concat({Regex::Label(a_), Regex::Star(Regex::Label(b_))}),
      std::move(children));
  EXPECT_EQ(TrySplitPathConcat(*path, &vocab_), nullptr);
}

TEST_F(TransformTest, FusePatternChainIntoPath) {
  // R4': PATTERN[d](Sa, Sb, Sc) over chain x0-x1-x2-x3 == PATH[d, a.b.c].
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  children.push_back(Scan(c_));
  auto pattern = MakePattern(
      d_, {{"x0", "x1"}, {"x1", "x2"}, {"x2", "x3"}}, "x0", "x3",
      std::move(children));
  LogicalPlan fused = TryFusePatternChain(*pattern);
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->kind, LogicalOpKind::kPath);
  EXPECT_EQ(fused->regex.kind, RegexKind::kConcat);
  EXPECT_EQ(fused->children.size(), 3u);
}

TEST_F(TransformTest, FuseRefusesNonChainPattern) {
  // A triangle (shared variable reuse) is not a linear chain.
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  auto pattern = MakePattern(d_, {{"x0", "x1"}, {"x0", "x1"}}, "x0", "x1",
                             std::move(children));
  EXPECT_EQ(TryFusePatternChain(*pattern), nullptr);
}

TEST_F(TransformTest, FuseClosureProducesQ4PlanP1) {
  // Q4's canonical plan PATH[out, d+](PATTERN[d](Sa,Sb,Sc)) fuses into
  // P1 = PATH[out, (a.b.c)+](Sa, Sb, Sc) (§7.4).
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  children.push_back(Scan(c_));
  auto pattern = MakePattern(
      d_, {{"x0", "x1"}, {"x1", "x2"}, {"x2", "x3"}}, "x0", "x3",
      std::move(children));
  std::vector<LogicalPlan> path_children;
  path_children.push_back(std::move(pattern));
  auto closure = MakePath(out_, Regex::Plus(Regex::Label(d_)),
                          std::move(path_children));

  LogicalPlan p1 = TryFuseClosureOverProducer(*closure);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->kind, LogicalOpKind::kPath);
  ASSERT_EQ(p1->regex.kind, RegexKind::kPlus);
  EXPECT_EQ(p1->regex.children[0].kind, RegexKind::kConcat);
  EXPECT_EQ(p1->children.size(), 3u);
  EXPECT_TRUE(ValidatePlan(*p1, vocab_).ok());
}

TEST_F(TransformTest, EnumeratePlansFindsAlternatives) {
  Vocabulary vocab = vocab_;
  // Q4 canonical plan: enumeration must discover the fused variants.
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  children.push_back(Scan(c_));
  auto pattern = MakePattern(
      d_, {{"x0", "x1"}, {"x1", "x2"}, {"x2", "x3"}}, "x0", "x3",
      std::move(children));
  std::vector<LogicalPlan> path_children;
  path_children.push_back(std::move(pattern));
  auto canonical = MakePath(out_, Regex::Plus(Regex::Label(d_)),
                            std::move(path_children));

  std::vector<LogicalPlan> plans = EnumeratePlans(*canonical, &vocab, 32);
  EXPECT_GE(plans.size(), 2u);
  bool found_fused = false;
  for (const auto& p : plans) {
    if (p->kind == LogicalOpKind::kPath &&
        p->regex.kind == RegexKind::kPlus &&
        p->regex.children[0].kind == RegexKind::kConcat &&
        p->children.size() == 3u) {
      found_fused = true;
    }
  }
  EXPECT_TRUE(found_fused);
  // Every enumerated plan still validates.
  for (const auto& p : plans) {
    EXPECT_TRUE(ValidatePlan(*p, vocab).ok()) << p->ToString(vocab);
  }
}

TEST_F(TransformTest, PushFilterBelowUnion) {
  std::vector<LogicalPlan> children;
  children.push_back(Scan(a_));
  children.push_back(Scan(b_));
  auto u = MakeUnion(out_, std::move(children));
  FilterPredicate pred;
  pred.kind = FilterPredicate::Kind::kSrcEqualsTrg;
  auto filter = MakeFilter({pred}, std::move(u));
  LogicalPlan rewritten = TryPushFilterBelowUnion(*filter);
  ASSERT_NE(rewritten, nullptr);
  EXPECT_EQ(rewritten->kind, LogicalOpKind::kUnion);
  EXPECT_EQ(rewritten->children[0]->kind, LogicalOpKind::kFilter);
}

}  // namespace
}  // namespace sgq

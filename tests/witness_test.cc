// Witness-path properties (R3: paths as first-class citizens): every
// result emitted by a PATH operator must carry a payload that (i) chains
// from src to trg, (ii) spells a word in the query's regular language,
// (iii) uses only edges that were actually in the window, co-valid at
// some instant of the reported interval.

#include <gtest/gtest.h>

#include <map>

#include "core/delta_path_op.h"
#include "core/spath_op.h"
#include "regex/dfa.h"
#include "test_util.h"
#include "workload/generators.h"

namespace sgq {
namespace {

class CollectOp : public PhysicalOp {
 public:
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    tuples.push_back(tuple);
  }
  std::string Name() const override { return "COLLECT"; }
  std::vector<Sgt> tuples;
};

struct WitnessCase {
  const char* regex;
  int seed;
  bool delta;  // which PATH implementation
};

class WitnessPropertyTest : public ::testing::TestWithParam<WitnessCase> {};

TEST_P(WitnessPropertyTest, EmittedWitnessesAreSound) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed) + 11000;
  opt.num_vertices = 9;
  opt.num_labels = 3;
  opt.num_edges = 90;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto regex = ParseRegex(GetParam().regex, &vocab);
  ASSERT_TRUE(regex.ok());
  Dfa dfa = Dfa::FromRegex(*regex);
  LabelId out = *vocab.InternDerivedLabel("out");

  std::unique_ptr<PathOpBase> op;
  if (GetParam().delta) {
    op = std::make_unique<DeltaPathOp>(dfa, out);
  } else {
    op = std::make_unique<SPathOp>(dfa, out);
  }
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op->BindOutput(&op_wire);

  // Remember each input edge's validity for condition (iii).
  std::map<EdgeRef, std::vector<Interval>> edge_validity;
  const WindowSpec window(20, 1);
  Timestamp last = 0;
  for (const Sge& sge : *stream) {
    for (Timestamp now = last + 1; now <= sge.t; ++now) {
      op->OnTimeAdvance(now);
    }
    last = sge.t;
    Sgt t(sge.src, sge.trg, sge.label,
          Interval(sge.t, window.ExpiryFor(sge.t)), {sge.edge()});
    edge_validity[t.edge()].push_back(t.validity);
    op->OnTuple(0, t);
  }

  ASSERT_FALSE(sink.tuples.empty());
  for (const Sgt& r : sink.tuples) {
    ASSERT_FALSE(r.payload.empty());
    // (i) chaining.
    EXPECT_EQ(r.payload.front().src, r.src);
    EXPECT_EQ(r.payload.back().trg, r.trg);
    for (std::size_t i = 0; i + 1 < r.payload.size(); ++i) {
      EXPECT_EQ(r.payload[i].trg, r.payload[i + 1].src);
    }
    // (ii) the label word is in L(R).
    std::vector<LabelId> word;
    for (const EdgeRef& e : r.payload) word.push_back(e.label);
    EXPECT_TRUE(dfa.Accepts(word))
        << "regex=" << GetParam().regex << " len=" << word.size();
    // (iii) every witness edge existed with validity covering some
    // instant of the reported interval start.
    for (const EdgeRef& e : r.payload) {
      auto it = edge_validity.find(e);
      ASSERT_NE(it, edge_validity.end());
      bool overlaps = false;
      for (const Interval& iv : it->second) {
        if (iv.Overlaps(r.validity)) overlaps = true;
      }
      EXPECT_TRUE(overlaps);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WitnessPropertyTest,
    ::testing::Values(WitnessCase{"a+", 1, false}, WitnessCase{"a+", 1, true},
                      WitnessCase{"(a b)+", 2, false},
                      WitnessCase{"(a b)+", 2, true},
                      WitnessCase{"a b* c", 3, false},
                      WitnessCase{"a b* c", 3, true},
                      WitnessCase{"(a|b) c*", 4, false},
                      WitnessCase{"(a|b) c*", 4, true}));

}  // namespace
}  // namespace sgq

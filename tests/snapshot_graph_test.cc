// Unit tests for snapshot graphs (Def. 12) and materialized path entries
// (Def. 6): set semantics, adjacency, path extraction from sgt payloads,
// and deletion truncation.

#include <gtest/gtest.h>

#include "model/snapshot_graph.h"

namespace sgq {
namespace {

TEST(SnapshotGraphTest, SetSemanticsOnEdges) {
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, 0));
  g.AddEdge(EdgeRef(1, 2, 0));  // duplicate: ignored
  g.AddEdge(EdgeRef(1, 2, 1));  // different label: kept
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.OutNeighbors(1, 0).size(), 1u);
}

TEST(SnapshotGraphTest, AdjacencyIsPerLabel) {
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, 0));
  g.AddEdge(EdgeRef(1, 3, 0));
  g.AddEdge(EdgeRef(1, 4, 1));
  EXPECT_EQ(g.OutNeighbors(1, 0).size(), 2u);
  EXPECT_EQ(g.OutNeighbors(1, 1).size(), 1u);
  EXPECT_TRUE(g.OutNeighbors(2, 0).empty());
  EXPECT_EQ(g.EdgesWithLabel(0).size(), 2u);
}

TEST(SnapshotGraphTest, VerticesCoverEdgeAndPathEndpoints) {
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, 0));
  g.AddPath(SnapshotPath{7, 9, 3, {EdgeRef(7, 8, 0), EdgeRef(8, 9, 0)}});
  auto vs = g.Vertices();
  EXPECT_EQ(vs.size(), 4u);  // 1, 2, 7, 9 (interior 8 is not an endpoint)
}

TEST(SnapshotGraphTest, AtSeparatesEdgesFromPaths) {
  // Multi-edge payload => first-class path (P_t); single edge => E_t.
  SgtStream stream = {
      Sgt(1, 2, 0, Interval(0, 10), {EdgeRef(1, 2, 0)}),
      Sgt(5, 7, 3, Interval(0, 10), {EdgeRef(5, 6, 0), EdgeRef(6, 7, 0)}),
  };
  SnapshotGraph g = SnapshotGraph::At(stream, 5);
  EXPECT_EQ(g.NumEdges(), 1u);
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].src, 5u);
  EXPECT_EQ(g.paths()[0].trg, 7u);
  EXPECT_EQ(g.paths()[0].edges.size(), 2u);
}

TEST(SnapshotGraphTest, AtRespectsValidityAndDeletions) {
  SgtStream stream = {
      Sgt(1, 2, 0, Interval(0, 10), {EdgeRef(1, 2, 0)}),
      Sgt(3, 4, 0, Interval(5, 20), {EdgeRef(3, 4, 0)}),
      // Explicit deletion of (1,2) at t=7.
      Sgt(1, 2, 0, Interval(7, kMaxTimestamp), {}, /*del=*/true),
  };
  EXPECT_EQ(SnapshotGraph::At(stream, 6).NumEdges(), 2u);
  EXPECT_EQ(SnapshotGraph::At(stream, 7).NumEdges(), 1u);
  EXPECT_EQ(SnapshotGraph::At(stream, 25).NumEdges(), 0u);
}

TEST(SnapshotGraphTest, PathKeysAreSetSemantic) {
  SnapshotGraph g;
  g.AddPath(SnapshotPath{1, 3, 9, {EdgeRef(1, 2, 0), EdgeRef(2, 3, 0)}});
  // Same (src, trg, label) with a different witness: first one wins.
  g.AddPath(SnapshotPath{1, 3, 9, {EdgeRef(1, 3, 1)}});
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].edges.size(), 2u);
}

TEST(SnapshotGraphTest, FromEdgesBulkConstruction) {
  SnapshotGraph g = SnapshotGraph::FromEdges(
      {EdgeRef(1, 2, 0), EdgeRef(2, 3, 0), EdgeRef(1, 2, 0)});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(EdgeRef(2, 3, 0)));
  EXPECT_FALSE(g.HasEdge(EdgeRef(3, 2, 0)));
}

}  // namespace
}  // namespace sgq

// Unit tests for the windowed edge store used by the PATH operators.

#include <gtest/gtest.h>

#include "core/window_store.h"

namespace sgq {
namespace {

TEST(WindowEdgeStoreTest, InsertAndLookup) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 3, 0, Interval(2, 12));
  store.Insert(1, 2, 1, Interval(0, 10));  // different label
  ASSERT_EQ(store.OutEdges(1, 0).size(), 2u);
  ASSERT_EQ(store.OutEdges(1, 1).size(), 1u);
  EXPECT_TRUE(store.OutEdges(2, 0).empty());
  EXPECT_EQ(store.NumEntries(), 3u);
}

TEST(WindowEdgeStoreTest, CoalescesTouchingIntervals) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 2, 0, Interval(5, 20));   // overlapping: span
  store.Insert(1, 2, 0, Interval(20, 25));  // adjacent: span
  ASSERT_EQ(store.OutEdges(1, 0).size(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0)[0].validity, Interval(0, 25));
  // A disjoint re-insertion stays separate.
  store.Insert(1, 2, 0, Interval(40, 50));
  EXPECT_EQ(store.OutEdges(1, 0).size(), 2u);
}

TEST(WindowEdgeStoreTest, EmptyIntervalIgnored) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(5, 5));
  EXPECT_EQ(store.NumEntries(), 0u);
}

TEST(WindowEdgeStoreTest, DeleteAtTruncates) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 100));
  EXPECT_TRUE(store.DeleteAt(1, 2, 0, 40));
  ASSERT_EQ(store.OutEdges(1, 0).size(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0)[0].validity, Interval(0, 40));
  // Deleting before the start removes the entry entirely.
  EXPECT_TRUE(store.DeleteAt(1, 2, 0, 0));
  EXPECT_TRUE(store.OutEdges(1, 0).empty());
  // Deleting something absent reports no effect.
  EXPECT_FALSE(store.DeleteAt(9, 9, 0, 5));
}

TEST(WindowEdgeStoreTest, CalendarPurgeIsExactAcrossBucketBoundaries) {
  // Purge-at-t must return exactly the edges with exp <= t, for every t,
  // regardless of how expiries straddle the slide-aligned buckets.
  WindowEdgeStore store;
  store.ConfigureExpirySlide(10);  // buckets [0,10), [10,20), ...
  // Expiries at every instant in [5, 35): spans four buckets, including
  // partial buckets at both ends of each purge below.
  for (Timestamp exp = 5; exp < 35; ++exp) {
    store.Insert(100 + static_cast<VertexId>(exp), 7,
                 static_cast<LabelId>(exp % 3), Interval(0, exp));
  }
  ASSERT_EQ(store.NumEntries(), 30u);
  std::size_t live = 30;
  for (Timestamp t = 0; t < 40; t += 7) {  // 0, 7, 14, 21, 28, 35
    std::vector<Sgt> dropped = store.PurgeExpired(t);
    for (const Sgt& s : dropped) {
      EXPECT_LE(s.validity.exp, t) << "dropped a live edge at t=" << t;
    }
    // Exactly the not-yet-dropped edges with exp <= t are returned.
    std::size_t expected = 0;
    for (Timestamp exp = 5; exp < 35; ++exp) {
      if (exp <= t && exp > t - 7) ++expected;
    }
    EXPECT_EQ(dropped.size(), expected) << "t=" << t;
    live -= dropped.size();
    EXPECT_EQ(store.NumEntries(), live) << "t=" << t;
  }
  EXPECT_EQ(store.NumEntries(), 0u);
}

TEST(WindowEdgeStoreTest, NoExpiryPurgeTouchesNothing) {
  // The O(expiring bucket) contract: purges below every expiry must not
  // verify a single calendar hint, no matter how large the store is.
  WindowEdgeStore store;
  store.ConfigureExpirySlide(24);
  for (VertexId v = 0; v < 5000; ++v) {
    store.Insert(v, v + 1, 0, Interval(0, 100000 + static_cast<Timestamp>(v % 7)));
  }
  for (Timestamp t = 0; t < 99999; t += 997) {
    EXPECT_TRUE(store.PurgeExpired(t).empty());
  }
  EXPECT_EQ(store.expiry_hints_drained(), 0u);
  EXPECT_EQ(store.NumEntries(), 5000u);
}

TEST(WindowEdgeStoreTest, PurgeExpiredReturnsDropped) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 3, 0, Interval(0, 30));
  store.Insert(4, 5, 1, Interval(5, 8));
  std::vector<Sgt> dropped = store.PurgeExpired(10);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(store.NumEntries(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0).size(), 1u);
}

}  // namespace
}  // namespace sgq

// Unit tests for the windowed edge store used by the PATH operators.

#include <gtest/gtest.h>

#include "core/window_store.h"

namespace sgq {
namespace {

TEST(WindowEdgeStoreTest, InsertAndLookup) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 3, 0, Interval(2, 12));
  store.Insert(1, 2, 1, Interval(0, 10));  // different label
  ASSERT_EQ(store.OutEdges(1, 0).size(), 2u);
  ASSERT_EQ(store.OutEdges(1, 1).size(), 1u);
  EXPECT_TRUE(store.OutEdges(2, 0).empty());
  EXPECT_EQ(store.NumEntries(), 3u);
}

TEST(WindowEdgeStoreTest, CoalescesTouchingIntervals) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 2, 0, Interval(5, 20));   // overlapping: span
  store.Insert(1, 2, 0, Interval(20, 25));  // adjacent: span
  ASSERT_EQ(store.OutEdges(1, 0).size(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0)[0].validity, Interval(0, 25));
  // A disjoint re-insertion stays separate.
  store.Insert(1, 2, 0, Interval(40, 50));
  EXPECT_EQ(store.OutEdges(1, 0).size(), 2u);
}

TEST(WindowEdgeStoreTest, EmptyIntervalIgnored) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(5, 5));
  EXPECT_EQ(store.NumEntries(), 0u);
}

TEST(WindowEdgeStoreTest, DeleteAtTruncates) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 100));
  EXPECT_TRUE(store.DeleteAt(1, 2, 0, 40));
  ASSERT_EQ(store.OutEdges(1, 0).size(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0)[0].validity, Interval(0, 40));
  // Deleting before the start removes the entry entirely.
  EXPECT_TRUE(store.DeleteAt(1, 2, 0, 0));
  EXPECT_TRUE(store.OutEdges(1, 0).empty());
  // Deleting something absent reports no effect.
  EXPECT_FALSE(store.DeleteAt(9, 9, 0, 5));
}

TEST(WindowEdgeStoreTest, PurgeExpiredReturnsDropped) {
  WindowEdgeStore store;
  store.Insert(1, 2, 0, Interval(0, 10));
  store.Insert(1, 3, 0, Interval(0, 30));
  store.Insert(4, 5, 1, Interval(5, 8));
  std::vector<Sgt> dropped = store.PurgeExpired(10);
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_EQ(store.NumEntries(), 1u);
  EXPECT_EQ(store.OutEdges(1, 0).size(), 1u);
}

}  // namespace
}  // namespace sgq

// Tests for the multi-query engine (core/engine.h, DESIGN.md §3):
//
//  - cross-query subtree sharing instantiates a shared operator exactly
//    once (operator-count metrics), and registering the same plan K times
//    adds only K - 1 sinks;
//  - at num_workers = 1 / batch_size = 1 each registered query's output
//    is byte-identical to compiling it alone, for overlapping and
//    disjoint query mixes, both PATH implementations, deletion-heavy
//    streams — and independent of whether sharing is enabled;
//  - sharded multi-query runs are snapshot-equivalent to the solo
//    references at every sampled instant and byte-deterministic
//    run-to-run;
//  - the merge-side coalescer at the exchange restores single-worker
//    emission volume for cross-shard-duplicating PATTERN output;
//  - the state-bar time-advance dispatch heuristic
//    (ExecutorOptions::time_advance_parallel_state_bar) triggers for
//    operators without declared time-driven work and never changes
//    results.

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

InputStream RandomStream(uint64_t seed, double deletion_probability,
                         Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 150;
  opt.max_gap = 2;
  opt.deletion_probability = deletion_probability;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

/// The workload mix: q0/q1 overlap (both compile the a+ PATH subtree and
/// the a scan), q2 is disjoint from them.
std::vector<StreamingGraphQuery> MixedQueries(Vocabulary* vocab) {
  const char* texts[] = {
      "Answer(x,y) <- a+(x,y)",
      "Answer(x,z) <- a+(x,y), b(y,z)",
      "Answer(x,z) <- c(x,y), c(y,z)",
  };
  std::vector<StreamingGraphQuery> queries;
  for (const char* text : texts) {
    auto query = MakeQuery(text, WindowSpec(12, 3), vocab);
    EXPECT_TRUE(query.ok()) << text;
    if (query.ok()) queries.push_back(*query);
  }
  return queries;
}

std::vector<Sgt> RunSolo(const StreamingGraphQuery& query,
                         const Vocabulary& vocab, const InputStream& stream,
                         EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

std::vector<std::vector<Sgt>> RunMulti(
    const std::vector<StreamingGraphQuery>& queries, const Vocabulary& vocab,
    const InputStream& stream, EngineOptions options) {
  Engine engine(options);
  for (const StreamingGraphQuery& query : queries) {
    auto added = engine.AddQuery(query, vocab);
    EXPECT_TRUE(added.ok()) << added.status().ToString();
    if (!added.ok()) return {};
  }
  EXPECT_TRUE(engine.Finalize().ok());
  engine.PushAll(stream);
  std::vector<std::vector<Sgt>> results;
  results.reserve(engine.num_queries());
  for (std::size_t q = 0; q < engine.num_queries(); ++q) {
    results.push_back(engine.results(static_cast<QueryId>(q)));
  }
  return results;
}

void ExpectByteIdentical(const std::vector<Sgt>& expected,
                         const std::vector<Sgt>& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i]) << context << " position " << i;
  }
}

// ---------------------------------------------------------------------------
// Operator sharing
// ---------------------------------------------------------------------------

TEST(MultiQueryEngineTest, SameQueryRegisteredKTimesAddsOnlySinks) {
  Vocabulary vocab;
  auto query =
      MakeQuery("Answer(x,z) <- a+(x,y), b(y,z)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());

  Engine solo{EngineOptions{}};
  ASSERT_TRUE(solo.AddQuery(*query, vocab).ok());
  const std::size_t solo_ops = solo.NumOperators();

  constexpr int kCopies = 5;
  Engine engine{EngineOptions{}};
  for (int k = 0; k < kCopies; ++k) {
    ASSERT_TRUE(engine.AddQuery(*query, vocab).ok());
  }
  ASSERT_TRUE(engine.Finalize().ok());
  // Every registration past the first resolves its whole plan to existing
  // operators and contributes exactly one sink.
  EXPECT_EQ(engine.NumOperators(), solo_ops + kCopies - 1);
  EXPECT_GE(engine.NumSharedSubtrees(), static_cast<std::size_t>(kCopies - 1));
  // Each extra registration hits the existing root once (the hit
  // short-circuits the subtree walk) — all of them cross-registration.
  EXPECT_EQ(engine.NumCrossQuerySharedSubtrees(),
            static_cast<std::size_t>(kCopies - 1));
  // Every subscriber root is the same shared physical operator.
  for (int k = 1; k < kCopies; ++k) {
    EXPECT_EQ(engine.QueryRoot(k), engine.QueryRoot(0));
  }

  InputStream stream = RandomStream(11, 0.2, &vocab);
  engine.PushAll(stream);
  // All K sinks demux byte-identical result streams.
  for (int k = 1; k < kCopies; ++k) {
    ExpectByteIdentical(engine.results(0), engine.results(k),
                        "copy " + std::to_string(k));
  }
}

TEST(MultiQueryEngineTest, OverlappingQueriesShareTheCommonSubtree) {
  Vocabulary vocab;
  std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
  ASSERT_EQ(queries.size(), 3u);

  std::size_t solo_ops_total = 0;
  for (const StreamingGraphQuery& query : queries) {
    Engine solo{EngineOptions{}};
    ASSERT_TRUE(solo.AddQuery(query, vocab).ok());
    solo_ops_total += solo.NumOperators();
  }
  Engine engine{EngineOptions{}};
  for (const StreamingGraphQuery& query : queries) {
    ASSERT_TRUE(engine.AddQuery(query, vocab).ok());
  }
  // q0/q1 share the a-scan + a+ PATH chain; q2 shares nothing.
  EXPECT_LT(engine.NumOperators(), solo_ops_total);
  EXPECT_GE(engine.NumCrossQuerySharedSubtrees(), 1u);

  // With sharing off the dedup map resets per registration, so
  // cross-registration hits cannot occur.
  EngineOptions unshared;
  unshared.cross_query_sharing = false;
  Engine private_engine(unshared);
  for (const StreamingGraphQuery& query : queries) {
    ASSERT_TRUE(private_engine.AddQuery(query, vocab).ok());
  }
  EXPECT_EQ(private_engine.NumCrossQuerySharedSubtrees(), 0u);
}

TEST(MultiQueryEngineTest, ClosureAliasesAreLabelCanonicalAcrossQueries) {
  // Datalog translation names each a+ closure's derived label after the
  // base label alone ("__tc_a"), not after its position in the rule: the
  // same closure reached through different rule shapes must compile to
  // the same canonical subtree. Here q1's second closure atom would get a
  // position-dependent alias under positional naming ("__tc_a_1" vs q0's
  // "__tc_a_0") and the a+ PATH chain would wrongly compile twice.
  Vocabulary vocab;
  const char* texts[] = {
      "Answer(x,y) <- a+(x,y)",
      "Answer(x,z) <- b+(x,y), a+(y,z)",
  };
  std::vector<StreamingGraphQuery> queries;
  std::size_t solo_ops_total = 0;
  for (const char* text : texts) {
    auto query = MakeQuery(text, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << text;
    Engine solo{EngineOptions{}};
    ASSERT_TRUE(solo.AddQuery(*query, vocab).ok());
    solo_ops_total += solo.NumOperators();
    queries.push_back(*query);
  }

  Engine engine{EngineOptions{}};
  for (const StreamingGraphQuery& query : queries) {
    ASSERT_TRUE(engine.AddQuery(query, vocab).ok());
  }
  // The a+ chain (a-scan + PATH) dedups even though the closures sit at
  // different atom positions: the sharing hit counter must rise.
  EXPECT_GE(engine.NumCrossQuerySharedSubtrees(), 1u);
  EXPECT_LT(engine.NumOperators(), solo_ops_total);

  // Sharing the closure must not change what either query answers.
  ASSERT_TRUE(engine.Finalize().ok());
  const InputStream stream = RandomStream(31, 0.2, &vocab);
  engine.PushAll(stream);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ExpectByteIdentical(
        RunSolo(queries[q], vocab, stream, EngineOptions{}),
        engine.results(static_cast<QueryId>(q)),
        std::string("query ") + texts[q]);
  }
}

// ---------------------------------------------------------------------------
// Per-query byte-identity at num_workers = 1
// ---------------------------------------------------------------------------

class MultiQueryByteIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiQueryByteIdentityTest, EachQueryMatchesItsSoloRun) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 977 + 5;
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    Vocabulary vocab;
    const InputStream stream = RandomStream(seed, 0.2, &vocab);
    std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
    ASSERT_EQ(queries.size(), 3u);

    EngineOptions options;
    options.path_impl = impl;
    const std::vector<std::vector<Sgt>> multi =
        RunMulti(queries, vocab, stream, options);
    ASSERT_EQ(multi.size(), queries.size());

    EngineOptions unshared = options;
    unshared.cross_query_sharing = false;
    const std::vector<std::vector<Sgt>> private_topologies =
        RunMulti(queries, vocab, stream, unshared);
    ASSERT_EQ(private_topologies.size(), queries.size());

    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string context =
          "query " + std::to_string(q) + " seed " + std::to_string(seed) +
          (impl == PathImpl::kSPath ? " s-path" : " delta");
      const std::vector<Sgt> solo =
          RunSolo(queries[q], vocab, stream, options);
      ExpectByteIdentical(solo, multi[q], context + " shared");
      // Sharing itself is behaviorally invisible.
      ExpectByteIdentical(solo, private_topologies[q],
                          context + " unshared");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiQueryByteIdentityTest,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Sharded multi-query: snapshot equivalence + determinism
// ---------------------------------------------------------------------------

TEST(MultiQueryShardedTest, SnapshotEquivalentToSoloAndDeterministic) {
  for (PathImpl impl : {PathImpl::kSPath, PathImpl::kDeltaPath}) {
    Vocabulary vocab;
    const InputStream stream = RandomStream(321, 0.2, &vocab);
    std::vector<StreamingGraphQuery> queries = MixedQueries(&vocab);
    ASSERT_EQ(queries.size(), 3u);

    EngineOptions reference_options;
    reference_options.path_impl = impl;
    std::vector<std::vector<Sgt>> reference;
    for (const StreamingGraphQuery& query : queries) {
      reference.push_back(RunSolo(query, vocab, stream, reference_options));
    }

    const std::vector<Timestamp> times = SampleTimes(stream, 6);
    for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        EngineOptions options;
        options.path_impl = impl;
        options.num_workers = workers;
        options.batch_size = batch;
        const std::vector<std::vector<Sgt>> sharded =
            RunMulti(queries, vocab, stream, options);
        ASSERT_EQ(sharded.size(), queries.size());
        for (std::size_t q = 0; q < queries.size(); ++q) {
          for (Timestamp t : times) {
            ASSERT_EQ(ResultPairsAt(sharded[q], t),
                      ResultPairsAt(reference[q], t))
                << "query " << q << " workers " << workers << " batch "
                << batch << " t " << t;
          }
        }
        const std::vector<std::vector<Sgt>> repeat =
            RunMulti(queries, vocab, stream, options);
        for (std::size_t q = 0; q < queries.size(); ++q) {
          ExpectByteIdentical(sharded[q], repeat[q],
                              "determinism query " + std::to_string(q));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Merge-side coalescer at the exchange
// ---------------------------------------------------------------------------

TEST(MergeCoalescerTest, RestoresSingleWorkerEmissionVolume) {
  Vocabulary vocab;
  // Insert-only and dense (few vertices, many edges, wide window): the
  // same output pair derives from many mid-vertices whose port-0
  // bindings hash to different shards, so cross-shard duplicates are
  // plentiful — and every emission-volume difference between worker
  // counts is such duplication, which the exchange-side coalescer must
  // remove entirely.
  RandomStreamOptions opt;
  opt.seed = 42;
  opt.num_vertices = 5;
  opt.num_labels = 2;
  opt.num_edges = 400;
  opt.max_gap = 1;
  opt.deletion_probability = 0.0;
  auto generated = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(generated.ok());
  const InputStream stream = *generated;
  auto query =
      MakeQuery("Answer(x,z) <- a(x,y), b(y,z)", WindowSpec(24, 6), &vocab);
  ASSERT_TRUE(query.ok());

  auto run = [&](std::size_t workers) {
    EngineOptions options;
    options.num_workers = workers;
    options.batch_size = 64;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    EXPECT_TRUE(qp.ok());
    (*qp)->PushAll(stream);
    return std::make_pair((*qp)->results_emitted(),
                          (*qp)->executor().merge_suppressed());
  };

  const auto [single_volume, single_suppressed] = run(1);
  EXPECT_EQ(single_suppressed, 0u);
  ASSERT_GT(single_volume, 0u);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const auto [volume, suppressed] = run(workers);
    // Cross-shard duplication is removed entirely: sharded volume never
    // exceeds the single worker's. It may dip a hair *below* it — the
    // shard-merge order can present a covering interval before the tuple
    // the single instance happened to emit first — which is still
    // snapshot-complete (suppressed tuples are covered by forwarded
    // ones).
    EXPECT_LE(volume, single_volume) << "workers " << workers;
    EXPECT_GE(volume + single_volume / 100 + 1, single_volume)
        << "workers " << workers;
    // The coalescer actually did the restoring (the partitioned join
    // derives value-equivalent outputs on different shards).
    EXPECT_GT(suppressed, 0u) << "workers " << workers;
  }
}

TEST(MergeCoalescerTest, DeletionHeavyShardedRunsStaySnapshotEquivalent) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(77, 0.25, &vocab);
  auto query = MakeQuery("Answer(x,w) <- a(x,y), b(y,z), c(z,w)",
                         WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions reference_options;
  const std::vector<Sgt> reference =
      RunSolo(*query, vocab, stream, reference_options);
  const std::vector<Timestamp> times = SampleTimes(stream, 8);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    EngineOptions options;
    options.num_workers = workers;
    options.batch_size = 64;
    const std::vector<Sgt> sharded = RunSolo(*query, vocab, stream, options);
    for (Timestamp t : times) {
      ASSERT_EQ(ResultPairsAt(sharded, t), ResultPairsAt(reference, t))
          << "workers " << workers << " t " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// State-bar time-advance dispatch heuristic
// ---------------------------------------------------------------------------

TEST(ParallelExpiryHeuristicTest, StateBarTriggersWithoutChangingResults) {
  Vocabulary vocab;
  const InputStream stream = RandomStream(9, 0.1, &vocab);
  // S-PATH declares no time-driven work: only the state bar can promote
  // its time-advance waves to the pool.
  auto query = MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());

  EngineOptions reference_options;
  const std::vector<Sgt> reference =
      RunSolo(*query, vocab, stream, reference_options);
  const std::vector<Timestamp> times = SampleTimes(stream, 6);

  auto run = [&](std::size_t bar) {
    EngineOptions options;
    options.num_workers = 4;
    options.batch_size = 64;
    options.time_advance_parallel_state_bar = bar;
    auto qp = QueryProcessor::FromQuery(*query, vocab, options);
    EXPECT_TRUE(qp.ok());
    (*qp)->PushAll(stream);
    return std::make_pair((*qp)->results(),
                          (*qp)->executor().state_bar_dispatches());
  };

  // bar=1: every stateful shard passes the bar after the first boundary.
  const auto [aggressive, aggressive_dispatches] = run(1);
  EXPECT_GT(aggressive_dispatches, 0u);
  // bar=0 disables the heuristic entirely.
  const auto [declared_only, no_dispatches] = run(0);
  EXPECT_EQ(no_dispatches, 0u);
  for (Timestamp t : times) {
    ASSERT_EQ(ResultPairsAt(aggressive, t), ResultPairsAt(reference, t))
        << "bar=1 t " << t;
    ASSERT_EQ(ResultPairsAt(declared_only, t), ResultPairsAt(reference, t))
        << "bar=0 t " << t;
  }
  // The dispatch policy must not even change the emission log: shard
  // computations and the merge order are policy-independent.
  ExpectByteIdentical(aggressive, declared_only, "dispatch policy");
}

}  // namespace
}  // namespace sgq

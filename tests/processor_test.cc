// Tests for the QueryProcessor shell: compilation errors, stream routing,
// metrics accounting, slide boundaries, and randomized PATTERN-vs-oracle
// properties on multi-atom conjunctive queries.

#include <gtest/gtest.h>

#include <random>

#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::OraclePairsAt;
using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

TEST(ProcessorTest, CompileRejectsMalformedPlans) {
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  // PATH over a label its children do not produce.
  LabelId out = *vocab.InternDerivedLabel("out");
  std::vector<LogicalPlan> children;
  children.push_back(MakeWScan(a, WindowSpec(10, 1)));
  LabelId other = *vocab.InternInputLabel("zzz");
  auto bad = MakePath(out, Regex::Plus(Regex::Label(other)),
                      std::move(children));
  EXPECT_FALSE(QueryProcessor::Compile(*bad, vocab, {}).ok());
}

TEST(ProcessorTest, DiscardsUnreferencedLabels) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  LabelId noise = *vocab.InternInputLabel("noise");
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->Push(Sge(1, 2, *vocab.FindLabel("a"), 0));
  (*qp)->Push(Sge(3, 4, noise, 1));
  EXPECT_EQ((*qp)->edges_pushed(), 2u);
  EXPECT_EQ((*qp)->edges_processed(), 1u);
  EXPECT_EQ((*qp)->results_emitted(), 1u);
}

TEST(ProcessorTest, SlideLatenciesRecordedPerBoundary) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(10, 5), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  LabelId a = *vocab.FindLabel("a");
  for (Timestamp t : {0, 3, 7, 11, 22}) (*qp)->Push(Sge(1, 2, a, t));
  // Boundaries crossed: 5, 10, 15, 20 -> four recorded slides.
  EXPECT_EQ((*qp)->slide_latencies().count(), 4u);
}

TEST(ProcessorTest, AdvanceToDrainsWithoutInput) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(6, 2), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->Push(Sge(1, 2, *vocab.FindLabel("a"), 1));
  (*qp)->AdvanceTo(40);
  EXPECT_GE((*qp)->slide_latencies().count(), 19u);
  // Results survive as the recorded interval; state may be purged.
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 3).size(), 1u);
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 30).size(), 0u);
}

TEST(ProcessorTest, ExplainDescribesPlan) {
  Vocabulary vocab;
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  const std::string plan = (*qp)->Explain();
  EXPECT_NE(plan.find("PATH"), std::string::npos);
  EXPECT_NE(plan.find("WSCAN"), std::string::npos);
}

TEST(ProcessorTest, TakeResultsDrainsBuffer) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  (*qp)->Push(Sge(1, 2, *vocab.FindLabel("a"), 0));
  EXPECT_EQ((*qp)->TakeResults().size(), 1u);
  EXPECT_TRUE((*qp)->results().empty());
  // Metrics keep counting across takes.
  EXPECT_EQ((*qp)->results_emitted(), 1u);
}

TEST(ProcessorTest, RejectsOutOfOrderTimestamps) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  LabelId a = *vocab.FindLabel("a");
  (*qp)->Push(Sge(1, 2, a, 10));
  EXPECT_DEATH((*qp)->Push(Sge(1, 2, a, 5)), "ordered");
}

// ---------------------------------------------------------------------------
// Randomized conjunctive patterns vs the oracle.
// ---------------------------------------------------------------------------

class RandomPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPatternTest, RandomConjunctiveQueryMatchesOracle) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam()) + 3000;
  opt.num_vertices = 7;
  opt.num_labels = 3;
  opt.num_edges = 70;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  // Build a random conjunctive rule with 2-4 atoms over variables
  // x0..x3; head endpoints drawn from used variables.
  const char* vars[] = {"x0", "x1", "x2", "x3"};
  const char* labels[] = {"a", "b", "c"};
  const int num_atoms = 2 + static_cast<int>(rng() % 3);
  std::vector<std::string> used;
  std::string body;
  for (int i = 0; i < num_atoms; ++i) {
    if (i > 0) body += ", ";
    const char* src = vars[rng() % 4];
    const char* trg = vars[rng() % 4];
    body += std::string(labels[rng() % 3]) + "(" + src + "," + trg + ")";
    used.push_back(src);
    used.push_back(trg);
  }
  const std::string head_src = used[rng() % used.size()];
  const std::string head_trg = used[rng() % used.size()];
  const std::string text =
      "Answer(" + head_src + "," + head_trg + ") <- " + body;

  auto query = MakeQuery(text, WindowSpec(14, 1), &vocab);
  ASSERT_TRUE(query.ok()) << text;
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok()) << text;
  (*qp)->PushAll(*stream);
  for (Timestamp t : SampleTimes(*stream, 8)) {
    ASSERT_EQ(ResultPairsAt((*qp)->results(), t),
              OraclePairsAt(*stream, *query, vocab, t))
        << "query: " << text << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace sgq

// Property tests for temporal coalescing: batch Coalesce and the online
// StreamingCoalescer are validated against a brute-force instant-by-
// instant coverage model on randomized tuple sets.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "model/coalesce.h"

namespace sgq {
namespace {

/// Brute force: the set of instants covered by tuples of one key.
std::set<Timestamp> CoveredInstants(const std::vector<Sgt>& tuples,
                                    const EdgeRef& key, Timestamp horizon) {
  std::set<Timestamp> covered;
  for (const Sgt& t : tuples) {
    if (!(t.edge() == key)) continue;
    for (Timestamp i = t.validity.ts; i < std::min(t.validity.exp, horizon);
         ++i) {
      covered.insert(i);
    }
  }
  return covered;
}

class CoalescePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoalescePropertyTest, BatchCoalescePreservesCoverageExactly) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::vector<Sgt> tuples;
  const Timestamp horizon = 60;
  for (int i = 0; i < 40; ++i) {
    const Timestamp ts = static_cast<Timestamp>(rng() % 50);
    const Timestamp len = 1 + static_cast<Timestamp>(rng() % 10);
    tuples.emplace_back(rng() % 3, rng() % 3, rng() % 2,
                        Interval(ts, ts + len));
  }
  std::vector<Sgt> merged = Coalesce(tuples);

  // 1. Same coverage per key.
  std::set<EdgeRef> keys;
  for (const Sgt& t : tuples) keys.insert(t.edge());
  for (const EdgeRef& key : keys) {
    EXPECT_EQ(CoveredInstants(tuples, key, horizon),
              CoveredInstants(merged, key, horizon));
  }
  // 2. Output intervals of one key are pairwise disjoint and
  //    non-adjacent (maximal runs).
  for (const EdgeRef& key : keys) {
    std::vector<Interval> ivs;
    for (const Sgt& t : merged) {
      if (t.edge() == key) ivs.push_back(t.validity);
    }
    for (std::size_t i = 0; i + 1 < ivs.size(); ++i) {
      EXPECT_LT(ivs[i].exp, ivs[i + 1].ts);
    }
  }
}

TEST_P(CoalescePropertyTest, StreamingCoalescerNeverLosesNovelCoverage) {
  // Feed tuples with non-decreasing ts (stream order); the union of
  // ACCEPTED tuples must cover exactly the union of all offered tuples.
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 500);
  StreamingCoalescer coalescer;
  std::vector<Sgt> offered, accepted;
  Timestamp ts = 0;
  const Timestamp horizon = 120;
  for (int i = 0; i < 60; ++i) {
    ts += static_cast<Timestamp>(rng() % 3);
    const Timestamp len = 1 + static_cast<Timestamp>(rng() % 12);
    Sgt t(rng() % 2, rng() % 2, 0, Interval(ts, ts + len));
    offered.push_back(t);
    if (coalescer.Offer(t)) accepted.push_back(t);
  }
  std::set<EdgeRef> keys;
  for (const Sgt& t : offered) keys.insert(t.edge());
  for (const EdgeRef& key : keys) {
    EXPECT_EQ(CoveredInstants(offered, key, horizon),
              CoveredInstants(accepted, key, horizon))
        << "seed=" << GetParam();
  }
  // Suppression must actually happen for duplicate offers.
  StreamingCoalescer strict;
  EXPECT_TRUE(strict.Offer(Sgt(1, 1, 0, Interval(0, 5))));
  EXPECT_FALSE(strict.Offer(Sgt(1, 1, 0, Interval(0, 5))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Range(0, 12));

TEST(StreamingCoalescerForgetTest, ForgetReopensCoverage) {
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(0, 10))));
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(2, 8))));
  c.Forget(EdgeRef(1, 2, 0));
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(2, 8))));
}

TEST(StreamingCoalescerForgetTest, IntervalForgetTruncatesAtDeletion) {
  // A deletion at t truncates coverage to exp = min(exp, t)
  // (SnapshotEdges semantics): coverage *before* the deletion instant
  // must stay suppressed, coverage at or after it must reopen.
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(0, 10))));
  c.Forget(EdgeRef(1, 2, 0), /*from=*/6);
  // Re-derivations at or after the deletion instant are novel again...
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(6, 10))));
  // ...but the pre-deletion validity stays covered: a reassertion over
  // [0, 6) is still redundant.
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(0, 6))));
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(2, 5))));
}

TEST(StreamingCoalescerForgetTest, IntervalForgetHitsEveryLaterInterval) {
  // Disjoint intervals of one key: a forget from inside the first one
  // truncates it and fully removes the later ones.
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(3, 4, 1, Interval(0, 5))));
  EXPECT_TRUE(c.Offer(Sgt(3, 4, 1, Interval(8, 12))));
  EXPECT_TRUE(c.Offer(Sgt(3, 4, 1, Interval(20, 25))));
  c.Forget(EdgeRef(3, 4, 1), /*from=*/3);
  EXPECT_FALSE(c.Offer(Sgt(3, 4, 1, Interval(0, 3))));  // kept prefix
  EXPECT_TRUE(c.Offer(Sgt(3, 4, 1, Interval(3, 5))));   // truncated tail
  // Entries at/after `from` were dropped wholesale, so they re-suppress
  // only via the fresh Offers above.
  StreamingCoalescer c2;
  EXPECT_TRUE(c2.Offer(Sgt(3, 4, 1, Interval(0, 5))));
  EXPECT_TRUE(c2.Offer(Sgt(3, 4, 1, Interval(8, 12))));
  c2.Forget(EdgeRef(3, 4, 1), /*from=*/3);
  EXPECT_TRUE(c2.Offer(Sgt(3, 4, 1, Interval(8, 12))));
}

TEST(StreamingCoalescerForgetTest, IntervalForgetPastCoverageIsANoop) {
  StreamingCoalescer c;
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(0, 10))));
  c.Forget(EdgeRef(1, 2, 0), /*from=*/10);  // at exp: nothing to drop
  EXPECT_FALSE(c.Offer(Sgt(1, 2, 0, Interval(0, 10))));
  c.Forget(EdgeRef(5, 6, 0), /*from=*/0);  // unknown key: no-op
  // Forget(from=0) empties the key entirely (matches whole-key Forget).
  c.Forget(EdgeRef(1, 2, 0), /*from=*/0);
  EXPECT_TRUE(c.Offer(Sgt(1, 2, 0, Interval(0, 10))));
}

}  // namespace
}  // namespace sgq

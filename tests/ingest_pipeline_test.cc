// Async ingest pipeline tests (runtime/ingest_pipeline.h, DESIGN.md §6):
//
//  - the bounded SPSC hand-off queue preserves FIFO order, bounds its
//    occupancy, drains after Close, and moves every element across a real
//    producer/consumer thread pair (the configuration TSan checks);
//  - async_ingest at num_workers=1 / batch_size=1 is byte-identical to
//    the synchronous engine; every other configuration (workers {1,4} ×
//    batch {1,64}, deletion-heavy streams, both PATH implementations)
//    is snapshot-equivalent and run-to-run deterministic;
//  - the incremental CSV cursor produces exactly ParseStreamCsv's
//    elements and errors;
//  - the reorder-slack stage folded into the pipeline matches the
//    synchronous ReorderBuffer path;
//  - pinned pools still cover every index (affinity is best-effort).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/query_processor.h"
#include "core/reorder_buffer.h"
#include "model/stream_io.h"
#include "runtime/spsc_queue.h"
#include "runtime/worker_pool.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/harness.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

// ---------------------------------------------------------------------------
// SpscQueue
// ---------------------------------------------------------------------------

TEST(SpscQueueTest, FifoOrderAndCapacityBound) {
  SpscQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(int(i)));
  EXPECT_FALSE(queue.TryPush(99));  // full: bounded
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(queue.TryPop(&out));  // empty
}

TEST(SpscQueueTest, CloseDrainsRemainderThenEnds) {
  SpscQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed to the producer
  int out = 0;
  uint64_t stall = 0;
  EXPECT_TRUE(queue.Pop(&out, &stall));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out, &stall));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out, &stall));  // drained + closed
}

TEST(SpscQueueTest, ConcurrentTransferDeliversEverythingInOrder) {
  // Small capacity forces both backpressure (producer stalls) and
  // starvation (consumer stalls); TSan runs this to vet the hand-off.
  constexpr int kItems = 20000;
  SpscQueue<int> queue(2);
  uint64_t producer_stall = 0;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(queue.Push(int(i), &producer_stall));
    }
    queue.Close();
  });
  std::vector<int> received;
  received.reserve(kItems);
  uint64_t consumer_stall = 0;
  int out = 0;
  while (queue.Pop(&out, &consumer_stall)) received.push_back(out);
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
}

// ---------------------------------------------------------------------------
// WorkerPool pinning
// ---------------------------------------------------------------------------

TEST(WorkerPoolPinTest, PinnedPoolCoversEveryIndex) {
  WorkerPoolOptions options;
  options.pin = true;
  WorkerPool pool(4, options);
  for (int wave = 0; wave < 20; ++wave) {
    const std::size_t n = 1 + static_cast<std::size_t>(wave % 7);
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
  // Affinity is best-effort; the pool never pins more than its spawned
  // workers. After a completed wave every worker ran its loop preamble,
  // so the counter is final.
  EXPECT_LE(pool.pinned_workers(), 3u);
#if defined(__linux__)
  // Where affinity works at all, the spawned workers' pins take. Probe
  // from a scratch thread so the test runner's own affinity stays intact.
  bool probe_pinned = false;
  std::thread probe([&] { probe_pinned = WorkerPool::PinThisThread(0); });
  probe.join();
  if (probe_pinned) {
    EXPECT_EQ(pool.pinned_workers(), 3u);
  }
#endif
}

// ---------------------------------------------------------------------------
// StreamCsvCursor
// ---------------------------------------------------------------------------

TEST(StreamCsvCursorTest, MatchesWholeStreamParseAcrossChunkSizes) {
  const std::string text =
      "# comment\n"
      "u,follows,v,7\n"
      "v,posts,b,10\n"
      "\n"
      "y,follows,u,13\n"
      "u,posts,a,22,-\n"
      "u,likes,b,29,+\n";
  Vocabulary reference_vocab;
  auto reference = ParseStreamCsv(text, &reference_vocab);
  ASSERT_TRUE(reference.ok());
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
    Vocabulary vocab;
    StreamCsvCursor cursor(text, &vocab);
    std::vector<Sge> buffer(chunk);
    InputStream parsed;
    for (;;) {
      const std::size_t n = cursor.Next(buffer.data(), buffer.size());
      if (n == 0) break;
      parsed.insert(parsed.end(), buffer.begin(),
                    buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    ASSERT_EQ(parsed.size(), reference->size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      EXPECT_EQ(parsed[i].src, (*reference)[i].src);
      EXPECT_EQ(parsed[i].trg, (*reference)[i].trg);
      EXPECT_EQ(parsed[i].label, (*reference)[i].label);
      EXPECT_EQ(parsed[i].t, (*reference)[i].t);
      EXPECT_EQ(parsed[i].is_deletion, (*reference)[i].is_deletion);
    }
  }
}

TEST(StreamCsvCursorTest, ReportsErrorsWithLineNumbersAndStops) {
  const std::string text = "u,a,v,1\nu,a,v,notatime\nu,a,v,3\n";
  Vocabulary vocab;
  StreamCsvCursor cursor(text, &vocab);
  Sge buffer[8];
  EXPECT_EQ(cursor.Next(buffer, 8), 1u);  // the good first line
  EXPECT_FALSE(cursor.ok());
  EXPECT_NE(cursor.status().message().find("line 2"), std::string::npos)
      << cursor.status().ToString();
  EXPECT_EQ(cursor.Next(buffer, 8), 0u);  // stays stopped
}

TEST(StreamCsvCursorTest, OrderingStrictUnlessDisorderAllowed) {
  const std::string text = "u,a,v,5\nu,a,w,3\n";
  {
    Vocabulary vocab;
    StreamCsvCursor cursor(text, &vocab);
    Sge buffer[8];
    cursor.Next(buffer, 8);
    EXPECT_FALSE(cursor.ok());
  }
  {
    Vocabulary vocab;
    StreamCsvCursor cursor(text, &vocab, /*allow_disorder=*/true);
    Sge buffer[8];
    EXPECT_EQ(cursor.Next(buffer, 8), 2u);
    EXPECT_TRUE(cursor.ok());
    EXPECT_EQ(buffer[1].t, 3);
  }
}

// ---------------------------------------------------------------------------
// Async-ingest equivalence and determinism
// ---------------------------------------------------------------------------

struct Config {
  const char* query;
  PathImpl path_impl;
};

const Config kConfigs[] = {
    {"Answer(x,z) <- a(x,y), b(y,z)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kSPath},
    {"Answer(x,y) <- a+(x,y)", PathImpl::kDeltaPath},
    {"Answer(x,z) <- a+(x,y), b(y,z)", PathImpl::kSPath},
};

InputStream DeletionHeavyStream(uint64_t seed, Vocabulary* vocab) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 150;
  opt.max_gap = 2;
  opt.deletion_probability = 0.2;
  auto stream = GenerateRandomStream(opt, vocab);
  EXPECT_TRUE(stream.ok());
  return stream.ok() ? *stream : InputStream{};
}

std::vector<Sgt> RunEngine(const StreamingGraphQuery& query,
                           const Vocabulary& vocab, const InputStream& stream,
                           EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  (*qp)->PushAll(stream);
  return (*qp)->results();
}

TEST(AsyncIngestTest, ByteIdenticalAtSingleWorkerBatchOne) {
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(11, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;
    EngineOptions sync_options;
    sync_options.path_impl = config.path_impl;
    EngineOptions async_options = sync_options;
    async_options.async_ingest = true;
    const std::vector<Sgt> expected =
        RunEngine(*query, vocab, stream, sync_options);
    const std::vector<Sgt> actual =
        RunEngine(*query, vocab, stream, async_options);
    ASSERT_EQ(expected.size(), actual.size()) << config.query;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(expected[i] == actual[i])
          << config.query << " position " << i;
    }
  }
}

class AsyncIngestEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncIngestEquivalenceTest, SnapshotsMatchSynchronousIngest) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 977 + 5;
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(seed, &vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;

    EngineOptions reference_options;
    reference_options.path_impl = config.path_impl;
    const std::vector<Sgt> reference =
        RunEngine(*query, vocab, stream, reference_options);

    const std::vector<Timestamp> times = SampleTimes(stream, 6);
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        EngineOptions options;
        options.path_impl = config.path_impl;
        options.num_workers = workers;
        options.batch_size = batch;
        options.async_ingest = true;
        // A depth of 1 maximizes backpressure; exercise it on half the
        // grid so both queue regimes stay covered.
        if (batch == 1) options.ingest_queue_depth = 1;
        const std::vector<Sgt> async_results =
            RunEngine(*query, vocab, stream, options);
        for (Timestamp t : times) {
          ASSERT_EQ(ResultPairsAt(async_results, t),
                    ResultPairsAt(reference, t))
              << config.query << " workers=" << workers
              << " batch=" << batch << " t=" << t << " seed=" << seed;
        }
        // Run-to-run determinism, order included: execution stays on one
        // thread, so async must not introduce schedule dependence.
        const std::vector<Sgt> again =
            RunEngine(*query, vocab, stream, options);
        ASSERT_EQ(async_results.size(), again.size());
        for (std::size_t i = 0; i < again.size(); ++i) {
          ASSERT_TRUE(async_results[i] == again[i])
              << config.query << " workers=" << workers
              << " batch=" << batch << " position " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncIngestEquivalenceTest,
                         ::testing::Range(0, 4));

TEST(AsyncIngestTest, CsvHarnessMatchesSynchronousParse) {
  Vocabulary generator_vocab;
  const InputStream stream = DeletionHeavyStream(23, &generator_vocab);
  const std::string csv = FormatStreamCsv(stream, generator_vocab);
  const char* kQuery = "Answer(x,z) <- a+(x,y), b(y,z)";

  auto run = [&](bool async, std::size_t workers, std::size_t batch) {
    Vocabulary vocab;
    auto query = MakeQuery(kQuery, WindowSpec(12, 3), &vocab);
    EXPECT_TRUE(query.ok());
    EngineOptions options;
    options.async_ingest = async;
    options.num_workers = workers;
    options.batch_size = batch;
    auto metrics = RunSgaCsv(csv, *query, &vocab, options, "csv");
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return metrics.ok() ? metrics->results_emitted : std::size_t(0);
  };
  const std::size_t expected = run(false, 1, 1);
  EXPECT_EQ(run(true, 1, 1), expected);
  EXPECT_EQ(run(true, 1, 64), expected);
  EXPECT_EQ(run(true, 4, 64), expected);
}

TEST(AsyncIngestTest, TextHarnessCoversBothFormatsAndParserCounts) {
  Vocabulary generator_vocab;
  const InputStream stream = DeletionHeavyStream(29, &generator_vocab);
  const std::string csv = FormatStreamCsv(stream, generator_vocab);
  auto binary = FormatStreamBinary(stream, generator_vocab);
  ASSERT_TRUE(binary.ok());
  const char* kQuery = "Answer(x,z) <- a+(x,y), b(y,z)";

  auto run = [&](const std::string& bytes, StreamFormat format, bool async,
                 std::size_t parsers) {
    Vocabulary vocab;
    auto query = MakeQuery(kQuery, WindowSpec(12, 3), &vocab);
    EXPECT_TRUE(query.ok());
    EngineOptions options;
    options.async_ingest = async;
    options.ingest_parsers = parsers;
    options.ingest_format = format;
    options.batch_size = 16;
    auto metrics = RunSgaText(bytes, *query, &vocab, options, "text");
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    if (!metrics.ok()) return std::size_t(0);
    // Every placement measures the parse stage.
    EXPECT_GT(metrics->parse_busy_ns, 0u);
    EXPECT_GT(metrics->ParseTuplesPerSec(), 0.0);
    if (parsers > 1) EXPECT_EQ(metrics->parsers, parsers);
    return metrics->results_emitted;
  };
  const std::size_t expected = run(csv, StreamFormat::kCsv, false, 1);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(run(csv, StreamFormat::kCsv, true, 4), expected);
  EXPECT_EQ(run(*binary, StreamFormat::kBinary, false, 1), expected);
  EXPECT_EQ(run(*binary, StreamFormat::kBinary, true, 1), expected);
  EXPECT_EQ(run(*binary, StreamFormat::kBinary, true, 4), expected);
}

// ---------------------------------------------------------------------------
// Sharded parse stage (RunPipelinedSharded)
// ---------------------------------------------------------------------------

/// \brief Runs a query over raw stream bytes through the sharded-parse
/// pipeline and returns the result sequence.
std::vector<Sgt> RunEngineSharded(const StreamingGraphQuery& query,
                                  Vocabulary* vocab, const std::string& bytes,
                                  StreamFormat format,
                                  EngineOptions options) {
  auto qp = QueryProcessor::FromQuery(query, *vocab, options);
  EXPECT_TRUE(qp.ok()) << qp.status().ToString();
  if (!qp.ok()) return {};
  auto chunked = MakeChunkedStream(
      bytes, format, vocab, /*allow_disorder=*/false,
      /*min_chunks=*/options.ingest_parsers > 1 ? options.ingest_parsers * 2
                                                : 1);
  EXPECT_TRUE(chunked.ok()) << chunked.status().ToString();
  if (!chunked.ok()) return {};
  Status run = (*qp)->engine().RunPipelinedSharded(**chunked);
  EXPECT_TRUE(run.ok()) << run.ToString();
  return (*qp)->results();
}

TEST(ShardedParseTest, SingleParserByteIdenticalToClassicPipeline) {
  // parsers=1 collapses to the classic single-producer Run() over a
  // sequential chunk walk: same element sequence, so results are
  // byte-identical to both the synchronous engine and the PR 5 async
  // path at workers=1 / batch=1.
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(59, &vocab);
    const std::string csv = FormatStreamCsv(stream, vocab);
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;

    EngineOptions sync_options;
    sync_options.path_impl = config.path_impl;
    const std::vector<Sgt> expected =
        RunEngine(*query, vocab, stream, sync_options);

    EngineOptions sharded = sync_options;
    sharded.async_ingest = true;
    sharded.ingest_parsers = 1;
    const std::vector<Sgt> actual = RunEngineSharded(
        *query, &vocab, csv, StreamFormat::kCsv, sharded);
    ASSERT_EQ(expected.size(), actual.size()) << config.query;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(expected[i] == actual[i])
          << config.query << " position " << i;
    }
  }
}

class ShardedParseEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedParseEquivalenceTest, MatrixMatchesSynchronousIngest) {
  // parsers {1,4} × workers {1,4} × formats {csv, binary} over a
  // deletion-heavy stream: snapshot-equivalent to the synchronous run and
  // run-to-run deterministic. (The vocabulary is pre-populated by the
  // generator, so even concurrent CSV interning resolves to fixed ids
  // here; fresh-vocabulary multi-parser CSV runs are only name-level
  // deterministic — see DESIGN.md §6.) Under TSan this is the gutter /
  // order-restoring-merge stress: 4 parsers × small batches force heavy
  // segment hand-off traffic.
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 1319 + 7;
  for (const Config& config : kConfigs) {
    Vocabulary vocab;
    const InputStream stream = DeletionHeavyStream(seed, &vocab);
    const std::string csv = FormatStreamCsv(stream, vocab);
    auto binary = FormatStreamBinary(stream, vocab);
    ASSERT_TRUE(binary.ok());
    auto query = MakeQuery(config.query, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << config.query;

    EngineOptions reference_options;
    reference_options.path_impl = config.path_impl;
    const std::vector<Sgt> reference =
        RunEngine(*query, vocab, stream, reference_options);
    const std::vector<Timestamp> times = SampleTimes(stream, 6);

    for (const bool use_binary : {false, true}) {
      for (std::size_t parsers : {std::size_t{1}, std::size_t{4}}) {
        for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
          EngineOptions options;
          options.path_impl = config.path_impl;
          options.num_workers = workers;
          options.batch_size = 16;
          options.async_ingest = true;
          options.ingest_parsers = parsers;
          const std::vector<Sgt> results = RunEngineSharded(
              *query, &vocab, use_binary ? *binary : csv,
              use_binary ? StreamFormat::kBinary : StreamFormat::kCsv,
              options);
          for (Timestamp t : times) {
            ASSERT_EQ(ResultPairsAt(results, t), ResultPairsAt(reference, t))
                << config.query << " format="
                << (use_binary ? "binary" : "csv") << " parsers=" << parsers
                << " workers=" << workers << " t=" << t << " seed=" << seed;
          }
          const std::vector<Sgt> again = RunEngineSharded(
              *query, &vocab, use_binary ? *binary : csv,
              use_binary ? StreamFormat::kBinary : StreamFormat::kCsv,
              options);
          ASSERT_EQ(results.size(), again.size());
          for (std::size_t i = 0; i < again.size(); ++i) {
            ASSERT_TRUE(results[i] == again[i])
                << config.query << " parsers=" << parsers
                << " workers=" << workers << " position " << i;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedParseEquivalenceTest,
                         ::testing::Range(0, 2));

TEST(ShardedParseTest, ParseErrorsSurfaceWithGlobalPosition) {
  // A malformed line deep in the stream must fail the sharded run with
  // the same global line number the sequential parse reports, no matter
  // which parser owns the chunk.
  std::string csv;
  for (int i = 0; i < 400; ++i) {
    csv += "a,edge,b," + std::to_string(i) + "\n";
  }
  csv += "a,edge,b,notatime\n";  // line 401
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- edge(x,y)", WindowSpec(12, 3),
                         &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.async_ingest = true;
  options.ingest_parsers = 4;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  auto chunked = MakeChunkedStream(csv, StreamFormat::kCsv, &vocab, false,
                                   /*min_chunks=*/8);
  ASSERT_TRUE(chunked.ok());
  Status run = (*qp)->engine().RunPipelinedSharded(**chunked);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.message().find("line 401"), std::string::npos)
      << run.ToString();
}

TEST(ShardedParseTest, CrossChunkDisorderRejected) {
  // Timestamps sorted within every chunk but decreasing across one chunk
  // boundary must be caught by the merge's boundary check. Descending
  // blocks of constant timestamps make *every* possible boundary (chunk
  // splits always land on newline edges) either inside a block (ordered)
  // or at a block edge (decreasing), so the error fires regardless of
  // where MakeChunkedStream cuts — as long as a cut separates two blocks.
  std::string csv;
  for (int block = 0; block < 8; ++block) {
    for (int i = 0; i < 50; ++i) {
      csv += "a,edge,b," + std::to_string(100 - block * 10) + "\n";
    }
  }
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- edge(x,y)", WindowSpec(12, 3),
                         &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.async_ingest = true;
  options.ingest_parsers = 4;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  auto chunked = MakeChunkedStream(csv, StreamFormat::kCsv, &vocab, false,
                                   /*min_chunks=*/8);
  ASSERT_TRUE(chunked.ok());
  ASSERT_GE((*chunked)->NumChunks(), 2u);
  Status run = (*qp)->engine().RunPipelinedSharded(**chunked);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.message().find("non-decreasing"), std::string::npos)
      << run.ToString();
}

TEST(ShardedParseTest, StatsReportPerParserAccounting) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(71, &vocab);
  const std::string csv = FormatStreamCsv(stream, vocab);
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.async_ingest = true;
  options.ingest_parsers = 4;
  options.batch_size = 16;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok());
  auto chunked = MakeChunkedStream(csv, StreamFormat::kCsv, &vocab, false, 8);
  ASSERT_TRUE(chunked.ok());
  ASSERT_TRUE((*qp)->engine().RunPipelinedSharded(**chunked).ok());
  const IngestStats& stats = (*qp)->engine().ingest_stats();
  EXPECT_EQ(stats.parsers, 4u);
  ASSERT_EQ(stats.parser_stall_ns.size(), 4u);
  ASSERT_EQ(stats.parser_busy_ns.size(), 4u);
  uint64_t total_busy = 0;
  for (uint64_t busy : stats.parser_busy_ns) total_busy += busy;
  EXPECT_GT(total_busy, 0u);  // somebody parsed something
  EXPECT_GT(stats.batches, 0u);
}

TEST(AsyncIngestTest, CsvHarnessSurfacesParseErrors) {
  Vocabulary vocab;
  auto query = MakeQuery("Answer(x,y) <- a(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.async_ingest = true;
  auto metrics =
      RunSgaCsv("u,a,v,1\nbroken line\n", *query, &vocab, options, "bad");
  EXPECT_FALSE(metrics.ok());
}

TEST(AsyncIngestTest, ReorderSlackFoldedIntoPipelineMatchesSyncPath) {
  // Bounded-disorder input: swap adjacent timestamp pairs within slack 4.
  Vocabulary vocab;
  InputStream ordered = DeletionHeavyStream(31, &vocab);
  InputStream disordered = ordered;
  for (std::size_t i = 0; i + 1 < disordered.size(); i += 2) {
    std::swap(disordered[i], disordered[i + 1]);
  }
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  const Timestamp kSlack = 8;

  // Synchronous reference: ReorderBuffer in front of per-element pushes.
  EngineOptions sync_options;
  auto sync_qp = QueryProcessor::FromQuery(*query, vocab, sync_options);
  ASSERT_TRUE(sync_qp.ok());
  ReorderBuffer buffer(kSlack);
  std::size_t sync_late = 0;
  buffer.OnLate([&](const Sge&) { ++sync_late; });
  for (const Sge& sge : disordered) {
    for (const Sge& released : buffer.Offer(sge)) (*sync_qp)->Push(released);
  }
  for (const Sge& released : buffer.Flush()) (*sync_qp)->Push(released);
  (*sync_qp)->Flush();
  const std::vector<Sgt> expected = (*sync_qp)->results();

  // Pipelined: the slack stage runs on the ingest thread.
  EngineOptions async_options;
  async_options.async_ingest = true;
  async_options.ingest_slack = kSlack;
  auto async_qp = QueryProcessor::FromQuery(*query, vocab, async_options);
  ASSERT_TRUE(async_qp.ok());
  std::size_t pos = 0;
  (*async_qp)->engine().RunPipelined([&](Sge* buf, std::size_t cap) {
    const std::size_t n = std::min(cap, disordered.size() - pos);
    for (std::size_t i = 0; i < n; ++i) buf[i] = disordered[pos + i];
    pos += n;
    return n;
  });
  const std::vector<Sgt> actual = (*async_qp)->results();
  EXPECT_EQ((*async_qp)->engine().ingest_stats().late_dropped, sync_late);

  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i]) << "position " << i;
  }
}

TEST(AsyncIngestTest, StatsAccumulateAndPinnedRunsStayCorrect) {
  Vocabulary vocab;
  const InputStream stream = DeletionHeavyStream(47, &vocab);
  auto query =
      MakeQuery("Answer(x,y) <- a+(x,y)", WindowSpec(12, 3), &vocab);
  ASSERT_TRUE(query.ok());
  EngineOptions options;
  options.async_ingest = true;
  options.pin_workers = true;  // best-effort; must never change results
  options.num_workers = 2;
  options.batch_size = 16;
  auto qp = QueryProcessor::FromQuery(*query, vocab, options);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(stream);
  const IngestStats& stats = (*qp)->engine().ingest_stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.late_dropped, 0u);

  EngineOptions unpinned = options;
  unpinned.pin_workers = false;
  const std::vector<Sgt> expected = RunEngine(*query, vocab, stream, unpinned);
  const std::vector<Sgt>& actual = (*qp)->results();
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i]) << "position " << i;
  }
}

}  // namespace
}  // namespace sgq

// The strongest correctness check in the suite: full temporal equivalence.
// For small randomized streams, the engine's result snapshots are compared
// with the one-time oracle at EVERY time instant of the stream's span
// (Def. 15 verified exhaustively, not at sampled instants).

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

struct FullCase {
  const char* name;
  const char* text;
  int seed;
  double deletion_probability;
};

class FullTemporalTest : public ::testing::TestWithParam<FullCase> {};

TEST_P(FullTemporalTest, EveryInstantMatchesOracle) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed) + 40000;
  opt.num_vertices = 6;
  opt.num_labels = 3;
  opt.num_edges = 45;
  opt.max_gap = 2;
  opt.deletion_probability = GetParam().deletion_probability;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto query = MakeQuery(GetParam().text, WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  (*qp)->PushAll(*stream);

  const Timestamp horizon = stream->back().t;
  for (Timestamp t = 0; t <= horizon; ++t) {
    ASSERT_EQ(testing_util::ResultPairsAt((*qp)->results(), t),
              testing_util::OraclePairsAt(*stream, *query, vocab, t))
        << GetParam().name << " seed=" << GetParam().seed << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, FullTemporalTest,
    ::testing::Values(
        FullCase{"TC", "Answer(x,y) <- a+(x,y)", 1, 0.0},
        FullCase{"TCdel", "Answer(x,y) <- a+(x,y)", 2, 0.2},
        FullCase{"Join", "Answer(x,y) <- a(x,z), b(z,y)", 3, 0.0},
        FullCase{"JoinDel", "Answer(x,y) <- a(x,z), b(z,y)", 4, 0.2},
        FullCase{"StarTail", "Answer(x,y) <- a(x,z), b*(z,y)", 5, 0.0},
        FullCase{"Triangle", "Answer(x,y) <- a(x,y), b(y,z), c(z,x)", 6,
                 0.0},
        FullCase{"ClosureJoin", "Answer(x,y) <- a+(x,z), b(z,y)", 7, 0.0},
        FullCase{"NestedClosure",
                 "D(x,y) <- a(x,z), b(z,y)\nAnswer(x,y) <- D+(x,y)", 8,
                 0.0},
        FullCase{"UnionClosure",
                 "R(x,y) <- a(x,y)\nR(x,y) <- b(x,y)\n"
                 "Answer(x,y) <- R+(x,y)",
                 9, 0.0},
        FullCase{"Q7shape",
                 "RL(x,y) <- a+(x,y), b(x,m), c(m,y)\n"
                 "Answer(x,m) <- RL+(x,y), c(m,y)",
                 10, 0.0}),
    [](const ::testing::TestParamInfo<FullCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sgq

// Tests for the dataflow runtime (runtime/executor.h): topology
// construction, exact depth-first delivery at batch=1, micro-batch waves,
// purge amortization (MaybePurge watermark doubling), time-advance
// ordering (OnTimeAdvance for every distinct timestamp), shared
// WindowStore partitions and WSCAN deduplication, and batch=1 vs batch=N
// result equivalence on seeded random streams.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "core/basic_ops.h"
#include "core/query_processor.h"
#include "runtime/executor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

// ---------------------------------------------------------------------------
// Instrumented operators
// ---------------------------------------------------------------------------

/// Records every lifecycle call the runtime makes.
class ProbeOp : public PhysicalOp {
 public:
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    tuples.push_back(tuple);
  }
  void OnBatch(int port, const Sgt* ts, std::size_t n) override {
    batch_sizes.push_back(n);
    PhysicalOp::OnBatch(port, ts, n);
  }
  void OnTimeAdvance(Timestamp now) override { advances.push_back(now); }
  // Contract (core/physical.h): OnTimeAdvance overriders must declare
  // themselves, or the indexed time-advance wave skips them.
  bool HasTimeDrivenWork() const override { return true; }
  void Purge(Timestamp now) override { purges.push_back(now); }
  std::size_t StateSize() const override { return fake_state_size; }
  std::string Name() const override { return "PROBE"; }

  std::vector<Sgt> tuples;
  std::vector<std::size_t> batch_sizes;
  std::vector<Timestamp> advances;
  std::vector<Timestamp> purges;
  std::size_t fake_state_size = 0;
};

/// Emits `fanout` copies of every input tuple (exercises cascades).
class FanOp : public PhysicalOp {
 public:
  explicit FanOp(int fanout) : fanout_(fanout) {}
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    for (int i = 0; i < fanout_; ++i) {
      Sgt copy = tuple;
      copy.src = tuple.src * 10 + static_cast<VertexId>(i);
      EmitTuple(copy);
    }
  }
  std::string Name() const override { return "FAN"; }

 private:
  int fanout_;
};

// ---------------------------------------------------------------------------
// MaybePurge amortization
// ---------------------------------------------------------------------------

TEST(MaybePurgeTest, WatermarkDoubles) {
  ProbeOp op;
  // Below the initial watermark (1024): no purge regardless of calls.
  op.fake_state_size = 1023;
  op.MaybePurge(10);
  op.MaybePurge(20);
  EXPECT_TRUE(op.purges.empty());

  // Reaching the watermark triggers a purge and doubles the bar.
  op.fake_state_size = 1024;
  op.MaybePurge(30);
  ASSERT_EQ(op.purges.size(), 1u);
  EXPECT_EQ(op.purges[0], 30);

  // New watermark is 2 * post-purge state = 2048: 2047 stays quiet.
  op.fake_state_size = 2047;
  op.MaybePurge(40);
  EXPECT_EQ(op.purges.size(), 1u);
  op.fake_state_size = 2048;
  op.MaybePurge(50);
  ASSERT_EQ(op.purges.size(), 2u);
  EXPECT_EQ(op.purges[1], 50);

  // The floor never drops below 1024 even when the state shrinks to
  // nothing during the purge.
  op.fake_state_size = 0;
  op.MaybePurge(60);
  EXPECT_EQ(op.purges.size(), 2u);
}

// ---------------------------------------------------------------------------
// Executor topology
// ---------------------------------------------------------------------------

TEST(ExecutorTest, RejectsForwardChannels) {
  Executor exec;
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  // Channels must go from earlier to later ids (children-first order).
  EXPECT_FALSE(exec.Connect(scan, probe, 0).ok());
  EXPECT_FALSE(exec.Connect(scan, scan, 0).ok());
}

TEST(ExecutorTest, RegisterSourceRequiresSourceOp) {
  Executor exec;
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  EXPECT_FALSE(exec.RegisterSource(0, probe, 1).ok());
}

TEST(ExecutorTest, DescribeTopologyListsChannels) {
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());
  const std::string topo = exec.DescribeTopology();
  EXPECT_NE(topo.find("WSCAN"), std::string::npos);
  EXPECT_NE(topo.find("PROBE"), std::string::npos);
  EXPECT_NE(topo.find("->"), std::string::npos);
}

TEST(ExecutorTest, DeliversThroughChannels) {
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(7, WindowSpec(10, 1)));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(7, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());

  exec.Ingest(Sge(1, 2, 7, 0));
  exec.Ingest(Sge(3, 4, 9, 1));  // label 9 unregistered: dropped
  auto* p = static_cast<ProbeOp*>(exec.op(probe));
  ASSERT_EQ(p->tuples.size(), 1u);
  EXPECT_EQ(p->tuples[0].validity, Interval(0, 10));
  EXPECT_EQ(exec.edges_pushed(), 2u);
  EXPECT_EQ(exec.edges_processed(), 1u);
}

TEST(ExecutorTest, ChannelFanOutDeliversInConnectionOrder) {
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  const OpId a = exec.AddOp(std::make_unique<ProbeOp>());
  const OpId b = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, a, 0).ok());
  ASSERT_TRUE(exec.Connect(scan, b, 1).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());
  exec.Ingest(Sge(1, 2, 0, 0));
  EXPECT_EQ(static_cast<ProbeOp*>(exec.op(a))->tuples.size(), 1u);
  EXPECT_EQ(static_cast<ProbeOp*>(exec.op(b))->tuples.size(), 1u);
}

TEST(ExecutorTest, TupleModeDrainsDepthFirst) {
  // scan -> fan(2) -> fan(2) -> probe: 4 leaf tuples per input, in the
  // exact order the recursive engine would produce (left subtree first).
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  const OpId f1 = exec.AddOp(std::make_unique<FanOp>(2));
  const OpId f2 = exec.AddOp(std::make_unique<FanOp>(2));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, f1, 0).ok());
  ASSERT_TRUE(exec.Connect(f1, f2, 0).ok());
  ASSERT_TRUE(exec.Connect(f2, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());

  exec.Ingest(Sge(1, 2, 0, 0));
  auto* p = static_cast<ProbeOp*>(exec.op(probe));
  ASSERT_EQ(p->tuples.size(), 4u);
  // src evolves 1 -> 1*10+i -> (1*10+i)*10+j; DFS order: 100, 101, 110,
  // 111.
  EXPECT_EQ(p->tuples[0].src, 100u);
  EXPECT_EQ(p->tuples[1].src, 101u);
  EXPECT_EQ(p->tuples[2].src, 110u);
  EXPECT_EQ(p->tuples[3].src, 111u);
}

TEST(ExecutorTest, WaveModeBatchesPerPort) {
  Executor exec(ExecutorOptions{/*batch_size=*/4});
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());

  auto* p = static_cast<ProbeOp*>(exec.op(probe));
  // Same timestamp: the whole micro-batch arrives as one OnBatch call.
  for (int i = 0; i < 3; ++i) exec.Ingest(Sge(1, 2, 0, 5));
  EXPECT_TRUE(p->tuples.empty());  // buffered until the batch fills
  exec.Ingest(Sge(1, 2, 0, 5));
  ASSERT_EQ(p->tuples.size(), 4u);
  ASSERT_EQ(p->batch_sizes.size(), 1u);
  EXPECT_EQ(p->batch_sizes[0], 4u);
  EXPECT_EQ(exec.num_waves(), 1u);
}

TEST(ExecutorTest, FlushOnTimestampGroupBoundaries) {
  Executor exec(ExecutorOptions{/*batch_size=*/8});
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 5)));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 5).ok());
  ASSERT_TRUE(exec.Finalize().ok());

  // Timestamps 1,1,3,7 buffered; Flush processes per-timestamp groups
  // with clock advances (and the slide boundary at 5) between them.
  for (Timestamp t : {1, 1, 3, 7}) exec.Ingest(Sge(1, 2, 0, t));
  exec.Flush();
  auto* p = static_cast<ProbeOp*>(exec.op(probe));
  ASSERT_EQ(p->tuples.size(), 4u);
  EXPECT_EQ(p->batch_sizes, (std::vector<std::size_t>{2, 1, 1}));
  // Distinct timestamps 3 and 7 and the boundary 5 all advanced time.
  EXPECT_NE(std::find(p->advances.begin(), p->advances.end(), 3),
            p->advances.end());
  EXPECT_NE(std::find(p->advances.begin(), p->advances.end(), 5),
            p->advances.end());
  EXPECT_NE(std::find(p->advances.begin(), p->advances.end(), 7),
            p->advances.end());
}

TEST(ExecutorTest, IngestRejectsOutOfOrderTimestamps) {
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(10, 1)));
  ASSERT_TRUE(exec.RegisterSource(0, scan, 1).ok());
  ASSERT_TRUE(exec.Finalize().ok());
  exec.Ingest(Sge(1, 2, 0, 10));
  EXPECT_DEATH(exec.Ingest(Sge(1, 2, 0, 5)), "ordered");
}

// ---------------------------------------------------------------------------
// Time-advance ordering through the engine
// ---------------------------------------------------------------------------

TEST(TimeAdvanceTest, EveryDistinctTimestampReachesOperators) {
  // slide = 5, arrivals at 1, 3, 7, 7, 12: operators must see advances
  // for the distinct input instants 3, 7, 12 and the boundaries 5, 10.
  Executor exec;
  const OpId scan =
      exec.AddOp(std::make_unique<WScanOp>(0, WindowSpec(20, 5)));
  const OpId probe = exec.AddOp(std::make_unique<ProbeOp>());
  ASSERT_TRUE(exec.Connect(scan, probe, 0).ok());
  ASSERT_TRUE(exec.RegisterSource(0, scan, 5).ok());
  ASSERT_TRUE(exec.Finalize().ok());

  for (Timestamp t : {1, 3, 7, 7, 12}) exec.Ingest(Sge(1, 2, 0, t));
  auto* p = static_cast<ProbeOp*>(exec.op(probe));
  EXPECT_EQ(p->advances, (std::vector<Timestamp>{3, 5, 7, 10, 12}));
  // Purge waves ran at every slide boundary.
  EXPECT_EQ(exec.slide_latencies().count(), 2u);
}

// ---------------------------------------------------------------------------
// Shared state through the compiler
// ---------------------------------------------------------------------------

TEST(SharedStateTest, DuplicateScansCompileToOneOperator) {
  Vocabulary vocab;
  // Two atoms over the same label and window: one WSCAN, fanned out.
  auto query =
      MakeQuery("Answer(x,z) <- a(x,y), a(y,z)", WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok());
  // Topology: WSCAN + PATTERN + SINK (the second scan deduplicated away).
  EXPECT_EQ((*qp)->executor().NumOps(), 3u);
  // Results unaffected by the dedup.
  LabelId a = *vocab.FindLabel("a");
  (*qp)->Push(Sge(1, 2, a, 0));
  (*qp)->Push(Sge(2, 3, a, 1));
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 1).size(), 1u);
}

TEST(SharedStateTest, IdenticalClosuresCompileToOnePathOp) {
  Vocabulary vocab;
  // Two closures over the same base label canonicalize to the same PATH
  // subtree signature: the compiler instantiates one operator whose
  // channel fans out to both PATTERN branches (operator-level sharing,
  // core/engine.h — it subsumes the window-partition sharing this case
  // previously exercised).
  auto query = MakeQuery(
      "Answer(x,y) <- a+(x,y)\nAnswer(x,y) <- a+(y,x)",
      WindowSpec(10, 1), &vocab);
  ASSERT_TRUE(query.ok());
  auto qp = QueryProcessor::FromQuery(*query, vocab, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  std::size_t path_ops = 0;
  const Executor& exec = (*qp)->executor();
  for (std::size_t i = 0; i < exec.NumOps(); ++i) {
    if (exec.op(static_cast<OpId>(i))->Name().find("PATH") !=
        std::string::npos) {
      ++path_ops;
    }
  }
  EXPECT_EQ(path_ops, 1u);
  EXPECT_GE((*qp)->engine().NumSharedSubtrees(), 1u);
  LabelId a = *vocab.FindLabel("a");
  (*qp)->Push(Sge(1, 2, a, 0));
  (*qp)->Push(Sge(2, 3, a, 1));
  // a+ paths: (1,2),(2,3),(1,3) and the reversed head (2,1),(3,2),(3,1).
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 1).size(), 6u);
}

TEST(SharedStateTest, PathOpsShareWindowPartitions) {
  Vocabulary vocab;
  // Two PATH operators with *different* regexes over the same scanned
  // input cannot merge into one operator, but still resolve to the same
  // "path-in" adjacency partition.
  const LabelId a = *vocab.InternInputLabel("a");
  const LabelId p1 = *vocab.InternDerivedLabel("p1");
  const LabelId p2 = *vocab.InternDerivedLabel("p2");
  const LabelId ans = *vocab.InternDerivedLabel("Answer");
  const WindowSpec window(10, 1);
  std::vector<LogicalPlan> kids1;
  kids1.push_back(MakeWScan(a, window));
  auto plus = MakePath(p1, Regex::Plus(Regex::Label(a)), std::move(kids1));
  std::vector<LogicalPlan> kids2;
  kids2.push_back(MakeWScan(a, window));
  auto star = MakePath(
      p2, Regex::Concat({Regex::Label(a), Regex::Star(Regex::Label(a))}),
      std::move(kids2));
  std::vector<LogicalPlan> branches;
  branches.push_back(std::move(plus));
  branches.push_back(std::move(star));
  auto plan = MakeUnion(ans, std::move(branches));
  auto qp = QueryProcessor::Compile(*plan, vocab, {});
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  EXPECT_GE((*qp)->executor().window_store()->NumSharedAcquires(), 1u);
  (*qp)->Push(Sge(1, 2, a, 0));
  (*qp)->Push(Sge(2, 3, a, 1));
  // Both regexes derive the same closure pairs; the relabeling UNION's
  // sink coalesces them.
  EXPECT_EQ(ResultPairsAt((*qp)->results(), 1).size(), 3u);
}

// ---------------------------------------------------------------------------
// batch=1 vs batch=N equivalence
// ---------------------------------------------------------------------------

class BatchEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalenceTest, SnapshotsMatchAcrossBatchSizes) {
  const int seed = GetParam();
  const char* queries[] = {
      "Answer(x,z) <- a(x,y), b(y,z)",
      "Answer(x,y) <- a+(x,y)",
      "Answer(x,z) <- a+(x,y), b(y,z)",
  };
  for (const char* text : queries) {
    Vocabulary vocab;
    RandomStreamOptions opt;
    opt.seed = static_cast<uint64_t>(seed) * 31 + 5;
    opt.num_vertices = 8;
    opt.num_labels = 2;
    opt.num_edges = 120;
    opt.max_gap = 2;
    opt.deletion_probability = 0.1;
    auto stream = GenerateRandomStream(opt, &vocab);
    ASSERT_TRUE(stream.ok());
    auto query = MakeQuery(text, WindowSpec(12, 3), &vocab);
    ASSERT_TRUE(query.ok()) << text;

    EngineOptions base;
    auto reference = QueryProcessor::FromQuery(*query, vocab, base);
    ASSERT_TRUE(reference.ok()) << text;
    (*reference)->PushAll(*stream);

    for (std::size_t batch : {std::size_t{7}, std::size_t{64}}) {
      EngineOptions options;
      options.batch_size = batch;
      auto qp = QueryProcessor::FromQuery(*query, vocab, options);
      ASSERT_TRUE(qp.ok()) << text;
      (*qp)->PushAll(*stream);
      EXPECT_EQ((*qp)->edges_processed(), (*reference)->edges_processed());
      for (Timestamp t : SampleTimes(*stream, 10)) {
        ASSERT_EQ(ResultPairsAt((*qp)->results(), t),
                  ResultPairsAt((*reference)->results(), t))
            << "query: " << text << " batch=" << batch << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalenceTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace sgq

// Tests for the plan optimizer (core/optimizer.h): cost-model sanity,
// heuristic selection, sampling-based selection, and the invariant that
// the chosen plan is semantically equivalent to the input plan.

#include <gtest/gtest.h>

#include "algebra/translate.h"
#include "core/optimizer.h"
#include "core/query_processor.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace sgq {
namespace {

using testing_util::OraclePairsAt;
using testing_util::ResultPairsAt;
using testing_util::SampleTimes;

class OptimizerTest : public ::testing::Test {
 protected:
  LogicalPlan Canonical(const char* text) {
    auto query = MakeQuery(text, WindowSpec(16, 1), &vocab_);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    query_ = *query;
    auto plan = TranslateToCanonicalPlan(query_, vocab_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }

  Vocabulary vocab_;
  StreamingGraphQuery query_;
};

TEST_F(OptimizerTest, CostModelPrefersFewerOperators) {
  // The fused Q4 plan (one PATH over three scans) must cost less than the
  // canonical loop-caching plan (PATH over PATTERN over scans).
  LogicalPlan canonical = Canonical(
      "D(x,y) <- a(x,z1), b(z1,z2), c(z2,y)\n"
      "Answer(x,y) <- D+(x,y)");
  auto fused = OptimizeHeuristic(*canonical, &vocab_, 32);
  ASSERT_TRUE(fused.ok());
  EXPECT_LE(EstimatePlanCost(**fused), EstimatePlanCost(*canonical));
}

TEST_F(OptimizerTest, HeuristicNeverRegressesUnderModel) {
  for (const char* text :
       {"Answer(x,y) <- a+(x,y)", "Answer(x,y) <- a(x,z), b(z,y)",
        "Answer(x,y) <- a(x,z), b*(z,y)"}) {
    LogicalPlan canonical = Canonical(text);
    auto best = OptimizeHeuristic(*canonical, &vocab_, 32);
    ASSERT_TRUE(best.ok()) << text;
    EXPECT_LE(EstimatePlanCost(**best), EstimatePlanCost(*canonical))
        << text;
    EXPECT_TRUE(ValidatePlan(**best, vocab_).ok()) << text;
  }
}

TEST_F(OptimizerTest, OptimizedPlanIsEquivalent) {
  LogicalPlan canonical = Canonical(
      "D(x,y) <- a(x,z1), b(z1,z2), c(z2,y)\n"
      "Answer(x,y) <- D+(x,y)");
  auto best = OptimizeHeuristic(*canonical, &vocab_, 32);
  ASSERT_TRUE(best.ok());

  RandomStreamOptions opt;
  opt.seed = 41;
  opt.num_vertices = 8;
  opt.num_labels = 3;
  opt.num_edges = 80;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab_);
  ASSERT_TRUE(stream.ok());

  auto reference = QueryProcessor::Compile(*canonical, vocab_, {});
  auto optimized = QueryProcessor::Compile(**best, vocab_, {});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(optimized.ok());
  (*reference)->PushAll(*stream);
  (*optimized)->PushAll(*stream);
  for (Timestamp t : SampleTimes(*stream, 10)) {
    EXPECT_EQ(ResultPairsAt((*reference)->results(), t),
              ResultPairsAt((*optimized)->results(), t))
        << " t=" << t;
  }
}

TEST_F(OptimizerTest, SamplingSelectsExecutablePlan) {
  LogicalPlan canonical = Canonical("Answer(x,y) <- a(x,z), b*(z,y)");
  RandomStreamOptions opt;
  opt.seed = 55;
  opt.num_vertices = 10;
  opt.num_labels = 2;
  opt.num_edges = 120;
  opt.max_gap = 1;
  auto sample = GenerateRandomStream(opt, &vocab_);
  ASSERT_TRUE(sample.ok());

  auto best = OptimizeBySampling(*canonical, &vocab_, *sample, 8);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(ValidatePlan(**best, vocab_).ok());
  auto qp = QueryProcessor::Compile(**best, vocab_, {});
  EXPECT_TRUE(qp.ok());
}

TEST(CostModelTest, PathCostGrowsWithAutomaton) {
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  LabelId b = *vocab.InternInputLabel("b");
  LabelId out = *vocab.InternDerivedLabel("out");
  auto small = [&] {
    std::vector<LogicalPlan> kids;
    kids.push_back(MakeWScan(a, WindowSpec(10, 1)));
    return MakePath(out, Regex::Plus(Regex::Label(a)), std::move(kids));
  }();
  auto big = [&] {
    std::vector<LogicalPlan> kids;
    kids.push_back(MakeWScan(a, WindowSpec(10, 1)));
    kids.push_back(MakeWScan(b, WindowSpec(10, 1)));
    Regex r = Regex::Plus(Regex::Concat(
        {Regex::Label(a), Regex::Label(b), Regex::Label(a),
         Regex::Label(b)}));
    return MakePath(out, std::move(r), std::move(kids));
  }();
  EXPECT_LT(EstimatePlanCost(*small), EstimatePlanCost(*big));
}

}  // namespace
}  // namespace sgq

// Tests for the PATH physical operators: the Figure 9 S-PATH trace, the
// direct vs negative-tuple comparison (Example 10), explicit deletions
// (§6.2.5), and randomized snapshot-reducibility properties against the
// product-BFS oracle.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "core/delta_path_op.h"
#include "core/spath_op.h"
#include "model/coalesce.h"
#include "model/snapshot_graph.h"
#include "query/oracle.h"
#include "regex/dfa.h"
#include "test_util.h"
#include "workload/generators.h"

namespace sgq {
namespace {

class CollectOp : public PhysicalOp {
 public:
  void OnTuple(int port, const Sgt& tuple) override {
    (void)port;
    tuples.push_back(tuple);
  }
  std::string Name() const override { return "COLLECT"; }
  std::vector<Sgt> tuples;
};

/// Pairs valid at `t` in a result stream.
VertexPairSet PairsAt(const std::vector<Sgt>& results, Timestamp t) {
  VertexPairSet out;
  for (const EdgeRef& e : SnapshotEdges(results, t)) {
    out.insert({e.src, e.trg});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Figure 9: the S-PATH running example.
// ---------------------------------------------------------------------------

class Figure9Test : public ::testing::Test {
 protected:
  void SetUp() override {
    rl_ = *vocab_.InternInputLabel("RL");
    out_ = *vocab_.InternDerivedLabel("RLP");
    for (const char* name :
         {"x", "z", "y", "w", "t", "u", "v", "s"}) {
      ids_[name] = vocab_.InternVertex(name);
    }
    auto regex = ParseRegex("RL+", &vocab_);
    ASSERT_TRUE(regex.ok());
    dfa_ = Dfa::FromRegex(*regex);
  }

  // The streaming graph of Figure 9a.
  std::vector<Sgt> Figure9Stream() {
    auto E = [&](const char* s, const char* g, Timestamp ts,
                 Timestamp exp) {
      return Sgt(ids_[s], ids_[g], rl_, Interval(ts, exp),
                 {EdgeRef(ids_[s], ids_[g], rl_)});
    };
    return {E("x", "z", 23, 31), E("z", "u", 24, 32), E("x", "y", 25, 35),
            E("y", "w", 26, 33), E("z", "t", 27, 40), E("y", "u", 28, 37),
            E("u", "v", 29, 41), E("u", "s", 30, 38), E("w", "v", 30, 39)};
  }

  VertexId Id(const char* name) { return ids_.at(name); }

  Vocabulary vocab_;
  LabelId rl_, out_;
  Dfa dfa_ = Dfa::FromNfa(Nfa::FromRegex(Regex::Epsilon()));
  std::map<std::string, VertexId> ids_;
};

TEST_F(Figure9Test, SPathTraceMatchesPaperSnapshots) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  for (const Sgt& t : Figure9Stream()) op.OnTuple(0, t);

  auto from_x = [&](Timestamp t) {
    VertexPairSet all = PairsAt(sink.tuples, t);
    std::set<VertexId> out;
    for (const auto& [s, g] : all) {
      if (s == Id("x")) out.insert(g);
    }
    return out;
  };

  // t = 30 (Figure 9c): x reaches everything.
  std::set<VertexId> expected30 = {Id("z"), Id("u"), Id("y"), Id("w"),
                                   Id("t"), Id("v"), Id("s")};
  EXPECT_EQ(from_x(30), expected30);

  // t = 31: (z,1) and (t,1) expire (intervals [23,31) and [27,31)); the
  // propagated path through y keeps u, v, s alive until 35.
  std::set<VertexId> expected31 = {Id("u"), Id("y"), Id("w"), Id("v"),
                                   Id("s")};
  EXPECT_EQ(from_x(31), expected31);

  // t = 34: u/v/s valid until 35 via the propagated derivation; w gone
  // (exp 33).
  std::set<VertexId> expected34 = {Id("u"), Id("y"), Id("v"), Id("s")};
  EXPECT_EQ(from_x(34), expected34);

  // t = 35: everything from x has expired.
  EXPECT_TRUE(from_x(35).empty());
}

TEST_F(Figure9Test, Example10DirectVsNegativeTupleEquivalence) {
  // The two approaches differ in *when* they do the work (Example 10), but
  // their output snapshots must agree at every instant.
  SPathOp direct(dfa_, out_);
  DeltaPathOp negative(dfa_, out_);
  CollectOp direct_sink, negative_sink;
  OutputChannel direct_wire(&direct_sink, 0);
  direct.BindOutput(&direct_wire);
  OutputChannel negative_wire(&negative_sink, 0);
  negative.BindOutput(&negative_wire);

  Timestamp last = 0;
  for (const Sgt& t : Figure9Stream()) {
    // Drive time forward for the negative-tuple operator's expirations.
    for (Timestamp now = last + 1; now <= t.validity.ts; ++now) {
      negative.OnTimeAdvance(now);
    }
    last = t.validity.ts;
    direct.OnTuple(0, t);
    negative.OnTuple(0, t);
  }
  for (Timestamp now = last + 1; now <= 45; ++now) {
    negative.OnTimeAdvance(now);
  }

  for (Timestamp t = 23; t <= 42; ++t) {
    EXPECT_EQ(PairsAt(direct_sink.tuples, t),
              PairsAt(negative_sink.tuples, t))
        << "snapshots diverge at t=" << t;
  }
  // The negative-tuple operator paid for re-derivations; S-PATH did not.
  EXPECT_GT(negative.rederivation_rounds(), 0u);
}

TEST_F(Figure9Test, WitnessPathsAreWellFormed) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  std::vector<Sgt> stream = Figure9Stream();
  for (const Sgt& t : stream) op.OnTuple(0, t);

  for (const Sgt& r : sink.tuples) {
    ASSERT_FALSE(r.payload.empty());
    EXPECT_EQ(r.payload.front().src, r.src);
    EXPECT_EQ(r.payload.back().trg, r.trg);
    for (std::size_t i = 0; i + 1 < r.payload.size(); ++i) {
      EXPECT_EQ(r.payload[i].trg, r.payload[i + 1].src);
    }
    // Every witness edge is a real input edge.
    for (const EdgeRef& e : r.payload) {
      bool found = false;
      for (const Sgt& in : stream) {
        if (in.edge() == e) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_F(Figure9Test, ExplicitDeletionRetractsAndReasserts) {
  SPathOp op(dfa_, out_);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  // x -> z -> u plus a parallel edge x -> u.
  op.OnTuple(0, Sgt(Id("x"), Id("z"), rl_, Interval(10, 40),
                    {EdgeRef(Id("x"), Id("z"), rl_)}));
  op.OnTuple(0, Sgt(Id("z"), Id("u"), rl_, Interval(11, 40),
                    {EdgeRef(Id("z"), Id("u"), rl_)}));
  op.OnTuple(0, Sgt(Id("x"), Id("u"), rl_, Interval(12, 30),
                    {EdgeRef(Id("x"), Id("u"), rl_)}));
  EXPECT_EQ(PairsAt(sink.tuples, 15).size(), 3u);

  // Delete x->z at t=20: (x,z) must be retracted; (x,u) must survive via
  // the direct edge (re-assertion), (z,u) is untouched.
  op.OnTuple(0, Sgt(Id("x"), Id("z"), rl_, Interval(20, kMaxTimestamp), {},
                    /*del=*/true));
  VertexPairSet after = PairsAt(sink.tuples, 21);
  VertexPairSet expected = {{Id("z"), Id("u")}, {Id("x"), Id("u")}};
  EXPECT_EQ(after, expected);
  // But the surviving (x,u) witness now has the direct edge's expiry 30.
  EXPECT_TRUE(PairsAt(sink.tuples, 29).count({Id("x"), Id("u")}) > 0);
  EXPECT_EQ(PairsAt(sink.tuples, 31).count({Id("x"), Id("u")}), 0u);
}

// ---------------------------------------------------------------------------
// Randomized property tests: snapshot reducibility of PATH (Def. 14).
// ---------------------------------------------------------------------------

struct RpqCase {
  const char* regex;
  int seed;
};

class PathPropertyTest : public ::testing::TestWithParam<RpqCase> {};

TEST_P(PathPropertyTest, SPathMatchesProductBfsOracle) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed);
  opt.num_vertices = 10;
  opt.num_labels = 3;
  opt.num_edges = 90;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto regex = ParseRegex(GetParam().regex, &vocab);
  ASSERT_TRUE(regex.ok());
  Dfa dfa = Dfa::FromRegex(*regex);
  LabelId out = *vocab.InternDerivedLabel("out");

  const WindowSpec window(20, 1);
  SPathOp op(dfa, out);
  CollectOp sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  SgtStream windowed;
  for (const Sge& sge : *stream) {
    Sgt t(sge.src, sge.trg, sge.label,
          Interval(sge.t, window.ExpiryFor(sge.t)), {sge.edge()});
    windowed.push_back(t);
    op.OnTuple(0, t);
  }

  for (Timestamp t = 0; t <= stream->back().t; t += 7) {
    SnapshotGraph g = SnapshotGraph::At(windowed, t);
    EXPECT_EQ(PairsAt(sink.tuples, t), EvaluateRpq(g, dfa))
        << "regex=" << GetParam().regex << " seed=" << GetParam().seed
        << " t=" << t;
  }
}

TEST_P(PathPropertyTest, DeltaPathMatchesSPathSnapshots) {
  Vocabulary vocab;
  RandomStreamOptions opt;
  opt.seed = static_cast<uint64_t>(GetParam().seed) + 1000;
  opt.num_vertices = 9;
  opt.num_labels = 3;
  opt.num_edges = 80;
  opt.max_gap = 2;
  auto stream = GenerateRandomStream(opt, &vocab);
  ASSERT_TRUE(stream.ok());

  auto regex = ParseRegex(GetParam().regex, &vocab);
  ASSERT_TRUE(regex.ok());
  Dfa dfa = Dfa::FromRegex(*regex);
  LabelId out = *vocab.InternDerivedLabel("out");

  const WindowSpec window(15, 1);
  SPathOp direct(dfa, out);
  DeltaPathOp negative(dfa, out);
  CollectOp sink_d, sink_n;
  OutputChannel direct_wire(&sink_d, 0);
  direct.BindOutput(&direct_wire);
  OutputChannel negative_wire(&sink_n, 0);
  negative.BindOutput(&negative_wire);

  Timestamp last = 0;
  for (const Sge& sge : *stream) {
    for (Timestamp now = last + 1; now <= sge.t; ++now) {
      negative.OnTimeAdvance(now);
    }
    last = sge.t;
    Sgt t(sge.src, sge.trg, sge.label,
          Interval(sge.t, window.ExpiryFor(sge.t)), {sge.edge()});
    direct.OnTuple(0, t);
    negative.OnTuple(0, t);
  }
  for (Timestamp now = last + 1; now <= last + 20; ++now) {
    negative.OnTimeAdvance(now);
  }

  for (Timestamp t = 0; t <= last; t += 3) {
    EXPECT_EQ(PairsAt(sink_d.tuples, t), PairsAt(sink_n.tuples, t))
        << "regex=" << GetParam().regex << " seed=" << GetParam().seed
        << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RpqSweep, PathPropertyTest,
    ::testing::Values(RpqCase{"a+", 1}, RpqCase{"a+", 2}, RpqCase{"a+", 3},
                      RpqCase{"a b", 4}, RpqCase{"a b*", 5},
                      RpqCase{"a b*", 6}, RpqCase{"(a b)+", 7},
                      RpqCase{"(a b c)+", 8}, RpqCase{"a (b|c)*", 9},
                      RpqCase{"(a|b)+", 10}, RpqCase{"a* b", 11},
                      RpqCase{"(a b c)+", 12}, RpqCase{"a (b c)* a", 13}));

}  // namespace
}  // namespace sgq

// Focused unit tests for the DD-style baseline's internals: the delta
// rule over old/new relation versions, counting supports, closure
// maintenance under insertions and deletions, and epoch metrics.

#include <gtest/gtest.h>

#include "baseline/engine.h"
#include "workload/queries.h"

namespace sgq {
namespace {

class DdEngineTest : public ::testing::Test {
 protected:
  void MakeEngine(const char* text, Timestamp window, Timestamp slide) {
    auto query = MakeQuery(text, WindowSpec(window, slide), &vocab_);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto engine = baseline::DifferentialEngine::Create(*query, vocab_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  void Push(const char* s, const char* l, const char* g, Timestamp t,
            bool del = false) {
    engine_->Push(Sge(vocab_.InternVertex(s), vocab_.InternVertex(g),
                      *vocab_.FindLabel(l), t, del));
  }

  VertexPairSet Pairs(std::initializer_list<std::pair<const char*,
                                                      const char*>> pairs) {
    VertexPairSet out;
    for (const auto& [s, g] : pairs) {
      out.insert({*vocab_.FindVertex(s), *vocab_.FindVertex(g)});
    }
    return out;
  }

  Vocabulary vocab_;
  std::unique_ptr<baseline::DifferentialEngine> engine_;
};

TEST_F(DdEngineTest, JoinAppearsAtEpochBoundary) {
  MakeEngine("Answer(x,y) <- a(x,z), b(z,y)", 20, 5);
  Push("p", "a", "q", 0);
  Push("q", "b", "r", 1);
  // Nothing visible until the epoch closes.
  EXPECT_TRUE(engine_->Answers().empty());
  engine_->AdvanceTo(5);
  EXPECT_EQ(engine_->Answers(), Pairs({{"p", "r"}}));
}

TEST_F(DdEngineTest, CountingSurvivesPartialSupportLoss) {
  // Two derivations of the same head tuple; deleting one keeps the head.
  MakeEngine("Answer(x,y) <- a(x,z), b(z,y)", 100, 5);
  Push("p", "a", "q1", 0);
  Push("p", "a", "q2", 0);
  Push("q1", "b", "r", 1);
  Push("q2", "b", "r", 1);
  engine_->AdvanceTo(5);
  EXPECT_EQ(engine_->Answers().size(), 1u);
  Push("p", "a", "q1", 6, /*del=*/true);
  engine_->AdvanceTo(10);
  EXPECT_EQ(engine_->Answers(), Pairs({{"p", "r"}}));  // still supported
  Push("p", "a", "q2", 11, /*del=*/true);
  engine_->AdvanceTo(15);
  EXPECT_TRUE(engine_->Answers().empty());  // last support gone
}

TEST_F(DdEngineTest, ClosureGrowsAndShrinksWithWindow) {
  MakeEngine("Answer(x,y) <- e+(x,y)", 10, 5);
  Push("a", "e", "b", 0);
  Push("b", "e", "c", 1);
  engine_->AdvanceTo(5);
  EXPECT_EQ(engine_->Answers(),
            Pairs({{"a", "b"}, {"b", "c"}, {"a", "c"}}));
  // Window size 10, slide 5: the first epoch's edges expire at
  // floor(t/5)*5+10 = 10.
  engine_->AdvanceTo(10);
  EXPECT_TRUE(engine_->Answers().empty());
}

TEST_F(DdEngineTest, CycleClosureHandledByDRed) {
  MakeEngine("Answer(x,y) <- e+(x,y)", 100, 5);
  Push("a", "e", "b", 0);
  Push("b", "e", "a", 1);
  engine_->AdvanceTo(5);
  // 2-cycle: all four pairs including self-reachability.
  EXPECT_EQ(engine_->Answers().size(), 4u);
  Push("b", "e", "a", 6, /*del=*/true);
  engine_->AdvanceTo(10);
  EXPECT_EQ(engine_->Answers(), Pairs({{"a", "b"}}));
}

TEST_F(DdEngineTest, EdgeCountsAndEpochLatencies) {
  MakeEngine("Answer(x,y) <- a(x,y)", 10, 2);
  Push("p", "a", "q", 0);
  engine_->Push(Sge(1u, 2u, 999999u % 3u, 1));  // label id 0,1,2 may exist
  engine_->AdvanceTo(8);
  EXPECT_GE(engine_->edges_pushed(), 2u);
  EXPECT_GE(engine_->epoch_latencies().count(), 3u);
  EXPECT_EQ(engine_->answers_emitted(), 1u);
}

TEST_F(DdEngineTest, CoalescesReinsertedEdgeToLaterExpiry) {
  MakeEngine("Answer(x,y) <- a(x,y)", 10, 2);
  Push("p", "a", "q", 0);   // expires at 10
  Push("p", "a", "q", 6);   // re-insertion extends to 16
  engine_->AdvanceTo(12);
  EXPECT_EQ(engine_->Answers().size(), 1u);  // still alive via extension
  engine_->AdvanceTo(18);
  EXPECT_TRUE(engine_->Answers().empty());
}

TEST_F(DdEngineTest, RejectsInvalidQuery) {
  Vocabulary vocab;
  StreamingGraphQuery query;  // empty RQ
  EXPECT_FALSE(baseline::DifferentialEngine::Create(query, vocab).ok());
}

}  // namespace
}  // namespace sgq

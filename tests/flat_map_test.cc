// Property tests of the flat state layer (common/flat_map.h,
// common/arena.h, common/small_vec.h, common/expiry_calendar.h):
// randomized insert/erase/find sequences mirrored against the std
// containers, rehash and erase-during-scan exercised under ASan, arena
// block reuse, and the expiry-calendar drain contract (every hint whose
// bucket passed is drained exactly when due; nothing is touched while
// nothing is due).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/expiry_calendar.h"
#include "common/flat_map.h"
#include "common/small_vec.h"

namespace sgq {
namespace {

// ---------------------------------------------------------------------------
// FlatMap vs std::unordered_map
// ---------------------------------------------------------------------------

TEST(FlatMapTest, BasicOperations) {
  FlatMap<uint64_t, std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), map.end());

  map[7] = "seven";
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(7)->second, "seven");
  EXPECT_TRUE(map.contains(7));
  EXPECT_EQ(map.count(7), 1u);
  EXPECT_EQ(map.count(8), 0u);

  auto [it, inserted] = map.try_emplace(7, "again");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, "seven");

  auto [it2, inserted2] = map.insert_or_assign(7, "SEVEN");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "SEVEN");

  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMapTest, RandomizedMirrorsUnorderedMap) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::mt19937_64 rng(seed);
    FlatMap<uint64_t, uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    // Small key domain forces frequent hits, overwrites and erases.
    std::uniform_int_distribution<uint64_t> key_dist(0, 500);
    std::uniform_int_distribution<int> op_dist(0, 9);
    for (int step = 0; step < 20000; ++step) {
      const uint64_t k = key_dist(rng);
      switch (op_dist(rng)) {
        case 0:
        case 1:
        case 2:
        case 3:
          flat[k] = step;
          ref[k] = static_cast<uint64_t>(step);
          break;
        case 4: {
          auto [it, ins] = flat.try_emplace(k, step);
          auto [rit, rins] = ref.try_emplace(k, step);
          ASSERT_EQ(ins, rins);
          ASSERT_EQ(it->second, rit->second);
          break;
        }
        case 5:
        case 6:
          ASSERT_EQ(flat.erase(k), ref.erase(k));
          break;
        default: {
          auto it = flat.find(k);
          auto rit = ref.find(k);
          ASSERT_EQ(it == flat.end(), rit == ref.end());
          if (rit != ref.end()) {
            ASSERT_EQ(it->second, rit->second);
          }
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    // Full-content comparison, both directions.
    for (const auto& [k, v] : flat) {
      auto rit = ref.find(k);
      ASSERT_NE(rit, ref.end());
      ASSERT_EQ(v, rit->second);
    }
    for (const auto& [k, v] : ref) {
      auto it = flat.find(k);
      ASSERT_NE(it, flat.end());
      ASSERT_EQ(it->second, v);
    }
  }
}

TEST(FlatMapTest, GrowsThroughManyRehashes) {
  FlatMap<uint64_t, uint64_t> flat;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) flat[i * 2654435761u] = i;
  EXPECT_EQ(flat.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    auto it = flat.find(i * 2654435761u);
    ASSERT_NE(it, flat.end());
    ASSERT_EQ(it->second, i);
  }
}

TEST(FlatMapTest, EraseDuringScanVisitsEveryElement) {
  // erase(it) during a forward scan: every element must be visited (a
  // wrap-around revisit is allowed, a skip is not), and exactly the
  // elements matching the predicate must be gone afterwards.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(seed * 977 + 13);
    FlatMap<uint64_t, uint64_t> flat;
    std::uniform_int_distribution<uint64_t> key_dist(0, 4000);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = key_dist(rng);
      flat[k] = k % 7;
    }
    std::unordered_map<uint64_t, uint64_t> expect;
    for (const auto& [k, v] : flat) {
      if (v != 0) expect.emplace(k, v);
    }
    for (auto it = flat.begin(); it != flat.end();) {
      if (it->second == 0) {
        it = flat.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(flat.size(), expect.size());
    for (const auto& [k, v] : expect) {
      auto it = flat.find(k);
      ASSERT_NE(it, flat.end());
      ASSERT_EQ(it->second, v);
    }
  }
}

TEST(FlatMapTest, ClearKeepsCapacityAndWorksAgain) {
  FlatMap<uint64_t, uint64_t> flat;
  for (uint64_t i = 0; i < 1000; ++i) flat[i] = i;
  const std::size_t bytes = flat.capacity_bytes();
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.capacity_bytes(), bytes);
  for (uint64_t i = 0; i < 1000; ++i) flat[i] = i + 1;
  EXPECT_EQ(flat.size(), 1000u);
  EXPECT_EQ(flat.find(999)->second, 1000u);
}

TEST(FlatMapTest, CopyAndMoveSemantics) {
  FlatMap<uint64_t, std::string> a;
  for (uint64_t i = 0; i < 100; ++i) a[i] = std::to_string(i);
  FlatMap<uint64_t, std::string> b = a;  // copy
  EXPECT_EQ(b.size(), 100u);
  a.clear();
  EXPECT_EQ(b.find(42)->second, "42");  // copy is independent
  FlatMap<uint64_t, std::string> c = std::move(b);  // move
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.find(42)->second, "42");
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(FlatMapTest, StringKeys) {
  FlatMap<std::string, int> map;
  std::unordered_map<std::string, int> ref;
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "key_" + std::to_string(i % 257);
    map[k] = i;
    ref[k] = i;
  }
  ASSERT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto it = map.find(k);
    ASSERT_NE(it, map.end());
    ASSERT_EQ(it->second, v);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<uint64_t, uint64_t> flat;
  flat.reserve(1000);
  const std::size_t bytes = flat.capacity_bytes();
  for (uint64_t i = 0; i < 1000; ++i) flat[i] = i;
  EXPECT_EQ(flat.capacity_bytes(), bytes);
}

// ---------------------------------------------------------------------------
// FlatSet vs std::unordered_set
// ---------------------------------------------------------------------------

TEST(FlatSetTest, RandomizedMirrorsUnorderedSet) {
  std::mt19937_64 rng(99);
  FlatSet<uint64_t> flat;
  std::unordered_set<uint64_t> ref;
  std::uniform_int_distribution<uint64_t> key_dist(0, 300);
  for (int step = 0; step < 10000; ++step) {
    const uint64_t k = key_dist(rng);
    if (step % 3 == 0) {
      ASSERT_EQ(flat.erase(k), ref.erase(k));
    } else {
      ASSERT_EQ(flat.insert(k).second, ref.insert(k).second);
    }
    ASSERT_EQ(flat.size(), ref.size());
    ASSERT_EQ(flat.contains(k), ref.count(k) > 0);
  }
  std::vector<uint64_t> drained(flat.begin(), flat.end());
  std::sort(drained.begin(), drained.end());
  std::vector<uint64_t> expected(ref.begin(), ref.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(drained, expected);
}

// ---------------------------------------------------------------------------
// Arena / SlabPool / SmallRun
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocatesAlignedAndTracksBytes) {
  Arena arena(1024);
  void* a = arena.Allocate(10);
  void* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % Arena::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % Arena::kAlign, 0u);
  EXPECT_GE(arena.used_bytes(), 110u);
  // Oversized request gets a dedicated slab; bump slab keeps filling.
  void* big = arena.Allocate(4096);
  std::memset(big, 0xab, 4096);
  void* c = arena.Allocate(16);
  std::memset(c, 0xcd, 16);
  EXPECT_GE(arena.reserved_bytes(), 4096u + 1024u);
}

TEST(SlabPoolTest, ReusesFreedBlocks) {
  SlabPool pool(1 << 12);
  void* a = pool.Alloc(100);  // class 128
  pool.Free(a, 100);
  void* b = pool.Alloc(120);  // same class: must reuse the freed block
  EXPECT_EQ(a, b);
  const std::size_t reserved = pool.reserved_bytes();
  for (int i = 0; i < 100; ++i) {
    void* p = pool.Alloc(100);
    pool.Free(p, 100);
  }
  EXPECT_EQ(pool.reserved_bytes(), reserved);  // steady state: no growth
}

TEST(SmallRunTest, InlineThenOverflow) {
  SlabPool pool;
  SmallRun<uint64_t, 2> run;
  run.push_back(&pool, 1);
  run.push_back(&pool, 2);
  EXPECT_EQ(run.overflow_bytes(), 0u);  // still inline
  run.push_back(&pool, 3);
  EXPECT_GT(run.overflow_bytes(), 0u);
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run[0], 1u);
  EXPECT_EQ(run[1], 2u);
  EXPECT_EQ(run[2], 3u);
  run.erase_at(1);  // ordered erase
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], 1u);
  EXPECT_EQ(run[1], 3u);
  run.push_back(&pool, 4);
  run.swap_pop(0);  // unordered erase
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0], 4u);
  run.Release(&pool);
  EXPECT_TRUE(run.empty());
  EXPECT_EQ(run.overflow_bytes(), 0u);
}

TEST(SmallRunTest, GrowsLargeAndMoves) {
  SlabPool pool;
  SmallRun<uint64_t, 2> run;
  for (uint64_t i = 0; i < 1000; ++i) run.push_back(&pool, i);
  ASSERT_EQ(run.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(run[i], i);
  SmallRun<uint64_t, 2> moved = std::move(run);
  ASSERT_EQ(moved.size(), 1000u);
  EXPECT_EQ(moved[999], 999u);
  EXPECT_TRUE(run.empty());  // NOLINT(bugprone-use-after-move)
  moved.Release(&pool);
}

// ---------------------------------------------------------------------------
// PoolVec (non-trivial, memcpy-relocatable payloads)
// ---------------------------------------------------------------------------

namespace {

/// Payload owning heap memory (a SmallVec that overflows), with a live
/// instance counter — catches both leaked and double-run destructors.
struct TrackedPayload {
  static int live;
  SmallVec<uint64_t, 2> values;
  explicit TrackedPayload(uint64_t seedval = 0) {
    for (uint64_t i = 0; i < 8; ++i) values.push_back(seedval + i);
    ++live;
  }
  TrackedPayload(const TrackedPayload& o) : values(o.values) { ++live; }
  TrackedPayload(TrackedPayload&& o) noexcept
      : values(std::move(o.values)) {
    ++live;
  }
  TrackedPayload& operator=(TrackedPayload&&) noexcept = default;
  ~TrackedPayload() { --live; }
};
int TrackedPayload::live = 0;

}  // namespace

TEST(PoolVecTest, InlineThenPoolOverflowRunsDestructors) {
  SlabPool pool;
  {
    PoolVec<TrackedPayload, 1> run;
    run.push_back(&pool, TrackedPayload(10));
    EXPECT_EQ(run.overflow_bytes(), 0u);  // single element stays inline
    run.push_back(&pool, TrackedPayload(20));
    run.push_back(&pool, TrackedPayload(30));
    EXPECT_GT(run.overflow_bytes(), 0u);
    ASSERT_EQ(run.size(), 3u);
    EXPECT_EQ(run[0].values[0], 10u);
    EXPECT_EQ(run[1].values[0], 20u);
    EXPECT_EQ(run[2].values[0], 30u);
    EXPECT_EQ(TrackedPayload::live, 3);
    run.truncate(1);  // destroys the tail
    EXPECT_EQ(TrackedPayload::live, 1);
    EXPECT_EQ(run[0].values[7], 17u);
    run.Release(&pool);
    EXPECT_EQ(TrackedPayload::live, 0);
    EXPECT_EQ(run.overflow_bytes(), 0u);
  }
  EXPECT_EQ(TrackedPayload::live, 0);
}

TEST(PoolVecTest, DestructorReleasesElementsNotBlock) {
  SlabPool pool;
  {
    PoolVec<TrackedPayload, 1> run;
    for (uint64_t i = 0; i < 50; ++i) run.push_back(&pool, TrackedPayload(i));
    EXPECT_EQ(TrackedPayload::live, 50);
  }  // ~PoolVec: element destructors run, block abandoned to the arena
  EXPECT_EQ(TrackedPayload::live, 0);
  pool.Clear();
}

TEST(PoolVecTest, MoveTransfersElementsAndCompactionWorks) {
  SlabPool pool;
  PoolVec<TrackedPayload, 1> run;
  for (uint64_t i = 0; i < 10; ++i) run.push_back(&pool, TrackedPayload(i));
  PoolVec<TrackedPayload, 1> moved = std::move(run);
  EXPECT_TRUE(run.empty());  // NOLINT(bugprone-use-after-move)
  ASSERT_EQ(moved.size(), 10u);
  EXPECT_EQ(moved[9].values[0], 9u);
  EXPECT_EQ(TrackedPayload::live, 10);
  // Keep-compaction idiom used by PatternOp's scrub/purge: move survivors
  // down, truncate the tail.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < moved.size(); ++i) {
    if (moved[i].values[0] % 2 != 0) continue;  // drop odd seeds
    if (keep != i) moved[keep] = std::move(moved[i]);
    ++keep;
  }
  moved.truncate(keep);
  ASSERT_EQ(moved.size(), 5u);
  for (std::size_t i = 0; i < moved.size(); ++i) {
    EXPECT_EQ(moved[i].values[0], 2 * i);
  }
  EXPECT_EQ(TrackedPayload::live, 5);
  moved.Release(&pool);
  EXPECT_EQ(TrackedPayload::live, 0);
}

TEST(PoolVecTest, WorksAsFlatMapValue) {
  // The PatternOp bucket configuration: FlatMap slots hold PoolVec runs,
  // robin-hood shifts and rehashes relocate them.
  SlabPool pool;
  FlatMap<uint64_t, PoolVec<TrackedPayload, 1>> table;
  for (uint64_t k = 0; k < 200; ++k) {
    auto [it, inserted] = table.try_emplace(k);
    EXPECT_TRUE(inserted);
    for (uint64_t i = 0; i <= k % 3; ++i) {
      it->second.push_back(&pool, TrackedPayload(100 * k + i));
    }
  }
  std::size_t total = 0;
  for (auto& [k, run] : table) {
    ASSERT_EQ(run.size(), k % 3 + 1) << k;
    for (std::size_t i = 0; i < run.size(); ++i) {
      ASSERT_EQ(run[i].values[0], 100 * k + i);
    }
    total += run.size();
  }
  EXPECT_EQ(TrackedPayload::live, static_cast<int>(total));
  // Erase half the keys, releasing their blocks back to the pool first.
  for (uint64_t k = 0; k < 200; k += 2) {
    auto it = table.find(k);
    ASSERT_NE(it, table.end());
    it->second.Release(&pool);
    table.erase(it);
  }
  EXPECT_EQ(table.size(), 100u);
  table.clear();
  EXPECT_EQ(TrackedPayload::live, 0);
}

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVecTest, ValueSemanticsAndComparison) {
  SmallVec<uint64_t, 4> a;
  a.assign(3, 7);
  SmallVec<uint64_t, 4> b = a;
  EXPECT_TRUE(a == b);
  b[1] = 8;
  EXPECT_TRUE(a != b);
  // Overflow past the inline capacity.
  SmallVec<uint64_t, 4> c;
  for (uint64_t i = 0; i < 100; ++i) c.push_back(i);
  ASSERT_EQ(c.size(), 100u);
  SmallVec<uint64_t, 4> d = c;
  EXPECT_TRUE(c == d);
  SmallVec<uint64_t, 4> e = std::move(c);
  EXPECT_TRUE(e == d);
  EXPECT_EQ(e[99], 99u);
  // Hash equals on equal content regardless of storage mode.
  SmallVec<uint64_t, 2> small_storage;
  SmallVec<uint64_t, 64> big_storage;
  for (uint64_t i = 0; i < 10; ++i) {
    small_storage.push_back(i);
    big_storage.push_back(i);
  }
  EXPECT_EQ(SmallVecHash{}(small_storage), SmallVecHash{}(big_storage));
}

// ---------------------------------------------------------------------------
// ExpiryCalendar
// ---------------------------------------------------------------------------

TEST(ExpiryCalendarTest, DrainsExactlyDueBucketsAcrossBoundaries) {
  ExpiryCalendar<uint64_t> cal;
  cal.ConfigureSlide(10);
  // Hints expiring at every instant in [5, 35).
  for (uint64_t id = 5; id < 35; ++id) {
    cal.Add(static_cast<Timestamp>(id), id);
  }
  EXPECT_EQ(cal.num_hints(), 30u);

  std::set<uint64_t> live;
  for (uint64_t id = 5; id < 35; ++id) live.insert(id);

  // Advance to 17: buckets 0 [0,10) and 1 [10,20) are due. The callback
  // expires hints <= now and re-registers in-bucket survivors (18, 19).
  const Timestamp now1 = 17;
  std::set<uint64_t> drained1;
  cal.DrainDue(now1, [&](uint64_t id) {
    drained1.insert(id);
    const Timestamp exp = static_cast<Timestamp>(id);
    if (exp <= now1) {
      live.erase(id);
    } else if (cal.NeedsReAdd(exp, now1)) {
      cal.Add(exp, id);
    }
  });
  // Exactly the hints of buckets 0 and 1 were touched.
  for (uint64_t id = 5; id < 20; ++id) EXPECT_TRUE(drained1.count(id)) << id;
  for (uint64_t id = 20; id < 35; ++id) EXPECT_FALSE(drained1.count(id));
  // Live = everything with exp > 17.
  EXPECT_EQ(live.size(), 17u);
  EXPECT_EQ(*live.begin(), 18u);

  // Nothing further is due until 20: the drain must touch nothing at 19
  // except the re-registered bucket-1 survivors.
  const std::size_t drained_before = cal.hints_drained();
  std::set<uint64_t> drained2;
  cal.DrainDue(19, [&](uint64_t id) {
    drained2.insert(id);
    const Timestamp exp = static_cast<Timestamp>(id);
    if (exp <= 19) {
      live.erase(id);
    } else if (cal.NeedsReAdd(exp, 19)) {
      cal.Add(exp, id);
    }
  });
  EXPECT_EQ(drained2, (std::set<uint64_t>{18, 19}));
  EXPECT_EQ(cal.hints_drained(), drained_before + 2);
  EXPECT_EQ(live.size(), 15u);

  // Far advance drains every remaining bucket.
  cal.DrainDue(100, [&](uint64_t id) { live.erase(id); });
  EXPECT_TRUE(live.empty());
  EXPECT_EQ(cal.num_hints(), 0u);
}

TEST(ExpiryCalendarTest, NothingDueTouchesNothing) {
  ExpiryCalendar<uint64_t> cal;
  cal.ConfigureSlide(24);
  for (uint64_t id = 0; id < 10000; ++id) {
    cal.Add(static_cast<Timestamp>(1000 + id % 50), id);
  }
  // Every expiry lies at >= 1000; advancing below that must not invoke
  // the callback at all — the O(expiring bucket) contract.
  for (Timestamp now = 0; now < 999; now += 7) {
    cal.DrainDue(now, [&](uint64_t) { FAIL() << "nothing is due"; });
  }
  EXPECT_EQ(cal.hints_drained(), 0u);
  EXPECT_EQ(cal.num_hints(), 10000u);
}

TEST(ExpiryCalendarTest, ReconfigureSlideRebuckets) {
  ExpiryCalendar<uint64_t> cal;  // default slide 1
  for (uint64_t id = 0; id < 100; ++id) {
    cal.Add(static_cast<Timestamp>(id), id);
  }
  cal.ConfigureSlide(25);
  EXPECT_EQ(cal.num_hints(), 100u);
  std::set<uint64_t> drained;
  cal.DrainDue(49, [&](uint64_t id) {
    if (static_cast<Timestamp>(id) <= 49) drained.insert(id);
  });
  EXPECT_EQ(drained.size(), 50u);  // exactly exps 0..49
}

TEST(ExpiryCalendarTest, MaxTimestampNeverRegisters) {
  ExpiryCalendar<int> cal;
  cal.Add(kMaxTimestamp, 1);
  EXPECT_EQ(cal.num_hints(), 0u);
  cal.DrainDue(kMaxTimestamp - 1, [&](int) { FAIL(); });
}

}  // namespace
}  // namespace sgq

// Tests for the SGQ query model: RQ parsing/validation (Def. 13), star
// normalization, the one-time oracle, and the G-CORE front-end (§4.2).

#include <gtest/gtest.h>

#include "model/snapshot_graph.h"
#include "query/gcore.h"
#include "query/normalize.h"
#include "query/oracle.h"
#include "query/rq.h"
#include "regex/dfa.h"

namespace sgq {
namespace {

// ---------------------------------------------------------------------------
// RQ parsing and validation
// ---------------------------------------------------------------------------

TEST(RqParserTest, ParsesExample2) {
  // The real-time notification RQ of the paper (Example 2).
  Vocabulary vocab;
  auto rq = ParseRq(
      "RL(u1,u2) <- likes(u1,m1), follows+(u1,u2) as FP, posts(u2,m1)\n"
      "Notify(u,m) <- RL+(u,v) as RLP, posts(v,m)\n"
      "Answer(u,m) <- Notify(u,m)\n",
      &vocab);
  ASSERT_TRUE(rq.ok()) << rq.status().ToString();
  EXPECT_EQ(rq->rules().size(), 3u);
  EXPECT_TRUE(vocab.IsInputLabel(*vocab.FindLabel("likes")));
  EXPECT_TRUE(vocab.IsInputLabel(*vocab.FindLabel("follows")));
  EXPECT_FALSE(vocab.IsInputLabel(*vocab.FindLabel("RL")));
  EXPECT_FALSE(vocab.IsInputLabel(*vocab.FindLabel("FP")));
  EXPECT_FALSE(vocab.IsInputLabel(*vocab.FindLabel("Answer")));
}

TEST(RqParserTest, AcceptsAnsAsAnswer) {
  Vocabulary vocab;
  auto rq = ParseRq("Ans(x,y) <- e(x,y)", &vocab);
  ASSERT_TRUE(rq.ok());
  EXPECT_EQ(rq->answer(), *vocab.FindLabel("Ans"));
}

TEST(RqParserTest, AutoGeneratesClosureAliases) {
  Vocabulary vocab;
  auto rq = ParseRq("Answer(x,y) <- e+(x,y)", &vocab);
  ASSERT_TRUE(rq.ok());
  const BodyAtom& atom = rq->rules()[0].body[0];
  EXPECT_EQ(atom.closure, ClosureKind::kPlus);
  EXPECT_NE(atom.alias, kInvalidLabel);
  EXPECT_FALSE(vocab.IsInputLabel(atom.alias));
}

TEST(RqParserTest, RejectsMissingAnswer) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseRq("R(x,y) <- e(x,y)", &vocab).ok());
}

TEST(RqParserTest, RejectsUnsafeHead) {
  Vocabulary vocab;
  // Head variable z does not occur in the body.
  EXPECT_FALSE(ParseRq("Answer(x,z) <- e(x,y)", &vocab).ok());
}

TEST(RqParserTest, RejectsRecursion) {
  // Direct recursion R <- R is outside RQ (Def. 13: non-recursive).
  Vocabulary vocab;
  auto rq = ParseRq(
      "R(x,y) <- R(x,z), e(z,y)\n"
      "Answer(x,y) <- R(x,y)",
      &vocab);
  EXPECT_FALSE(rq.ok());
}

TEST(RqParserTest, RejectsMutualRecursion) {
  Vocabulary vocab;
  auto rq = ParseRq(
      "P(x,y) <- Q(x,y)\n"
      "Q(x,y) <- P(x,z), e(z,y)\n"
      "Answer(x,y) <- P(x,y)",
      &vocab);
  EXPECT_FALSE(rq.ok());
}

TEST(RqParserTest, RejectsSyntaxErrors) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseRq("Answer(x,y)", &vocab).ok());
  EXPECT_FALSE(ParseRq("Answer(x,y) <- ", &vocab).ok());
  EXPECT_FALSE(ParseRq("Answer(x y) <- e(x,y)", &vocab).ok());
  EXPECT_FALSE(ParseRq("Answer+(x,y) <- e(x,y)", &vocab).ok());
}

TEST(RqTest, TopologicalOrderRespectsDependencies) {
  Vocabulary vocab;
  auto rq = ParseRq(
      "A(x,y) <- e(x,y)\n"
      "B(x,y) <- A+(x,y) as AP\n"
      "Answer(x,y) <- B(x,y), A(x,y)",
      &vocab);
  ASSERT_TRUE(rq.ok());
  auto topo = rq->TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  auto pos = [&](const char* name) {
    LabelId l = *vocab.FindLabel(name);
    for (std::size_t i = 0; i < topo->size(); ++i) {
      if ((*topo)[i] == l) return i;
    }
    return topo->size();
  };
  EXPECT_LT(pos("A"), pos("AP"));
  EXPECT_LT(pos("AP"), pos("B"));
  EXPECT_LT(pos("B"), pos("Answer"));
}

// ---------------------------------------------------------------------------
// Star normalization
// ---------------------------------------------------------------------------

TEST(NormalizeTest, StarAtomSplitsIntoPlusAndUnification) {
  Vocabulary vocab;
  auto rq = ParseRq("Answer(x,y) <- a(x,z), b*(z,y)", &vocab);
  ASSERT_TRUE(rq.ok());
  RegularQuery norm = ExpandStarClosures(*rq);
  // Two rules: a . b+ and the zero-step variant a with y unified to z.
  ASSERT_EQ(norm.rules().size(), 2u);
  bool found_plus = false, found_unified = false;
  for (const Rule& r : norm.rules()) {
    if (r.body.size() == 2) {
      EXPECT_EQ(r.body[1].closure, ClosureKind::kPlus);
      found_plus = true;
    } else {
      ASSERT_EQ(r.body.size(), 1u);
      // Head trg unified with the a-atom's target variable.
      EXPECT_EQ(r.head_trg, r.body[0].trg);
      found_unified = true;
    }
  }
  EXPECT_TRUE(found_plus);
  EXPECT_TRUE(found_unified);
}

TEST(NormalizeTest, BareTopLevelStarDropsEmptyVariant) {
  Vocabulary vocab;
  auto rq = ParseRq("Answer(x,y) <- a*(x,y)", &vocab);
  ASSERT_TRUE(rq.ok());
  RegularQuery norm = ExpandStarClosures(*rq);
  // The zero-step variant would have an empty body: dropped.
  ASSERT_EQ(norm.rules().size(), 1u);
  EXPECT_EQ(norm.rules()[0].body[0].closure, ClosureKind::kPlus);
}

TEST(NormalizeTest, TwoStarsGiveFourVariantsMinusEmpty) {
  Vocabulary vocab;
  auto rq = ParseRq("Answer(x,y) <- a*(x,z), b*(z,y)", &vocab);
  ASSERT_TRUE(rq.ok());
  RegularQuery norm = ExpandStarClosures(*rq);
  // a+b+, a+, b+ — the both-empty variant has an empty body and is dropped.
  EXPECT_EQ(norm.rules().size(), 3u);
}

// ---------------------------------------------------------------------------
// One-time oracle
// ---------------------------------------------------------------------------

class OracleTest : public ::testing::Test {
 protected:
  LabelId L(const char* name) { return *vocab_.InternInputLabel(name); }
  VertexId V(const char* name) { return vocab_.InternVertex(name); }
  Vocabulary vocab_;
};

TEST_F(OracleTest, TransitiveClosureOnChainAndCycle) {
  VertexPairSet rel = {{1, 2}, {2, 3}, {3, 1}};
  VertexPairSet tc = TransitiveClosure(rel);
  // 3-cycle: everything reaches everything, including itself.
  EXPECT_EQ(tc.size(), 9u);
  EXPECT_TRUE(tc.count({1, 1}) > 0);
}

TEST_F(OracleTest, EvaluatesConjunctiveTriangle) {
  // Example 6's recentLiker triangle: likes(u1,m), posts(u2,m), f(u1,u2).
  LabelId likes = L("likes"), posts = L("posts"), follows = L("follows");
  VertexId u = V("u"), v = V("v"), b = V("b");
  SnapshotGraph g;
  g.AddEdge(EdgeRef(u, b, likes));
  g.AddEdge(EdgeRef(v, b, posts));
  g.AddEdge(EdgeRef(u, v, follows));
  auto rq = ParseRq(
      "Answer(x,y) <- likes(x,m), posts(y,m), follows(x,y)", &vocab_);
  ASSERT_TRUE(rq.ok());
  auto result = EvaluateOneTime(*rq, g, vocab_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->count({u, v}) > 0);
}

TEST_F(OracleTest, EvaluatesClosureInRule) {
  LabelId e = L("e"), f = L("f");
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, e));
  g.AddEdge(EdgeRef(2, 3, e));
  g.AddEdge(EdgeRef(3, 4, f));
  auto rq = ParseRq("Answer(x,y) <- e+(x,z), f(z,y)", &vocab_);
  ASSERT_TRUE(rq.ok());
  auto result = EvaluateOneTime(*rq, g, vocab_);
  ASSERT_TRUE(result.ok());
  // e+ reaches 3 from 1 and 2; f hops to 4.
  VertexPairSet expected = {{1, 4}, {2, 4}};
  EXPECT_EQ(*result, expected);
}

TEST_F(OracleTest, StarInBodyIncludesZeroSteps) {
  LabelId a = L("a"), b = L("b");
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, a));
  g.AddEdge(EdgeRef(2, 3, b));
  auto rq = ParseRq("Answer(x,y) <- a(x,z), b*(z,y)", &vocab_);
  ASSERT_TRUE(rq.ok());
  auto result = EvaluateOneTime(*rq, g, vocab_);
  ASSERT_TRUE(result.ok());
  // Zero b-steps: (1,2); one b-step: (1,3).
  VertexPairSet expected = {{1, 2}, {1, 3}};
  EXPECT_EQ(*result, expected);
}

TEST_F(OracleTest, RpqProductBfsMatchesHandComputation) {
  LabelId a = L("a"), b = L("b");
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, a));
  g.AddEdge(EdgeRef(2, 3, b));
  g.AddEdge(EdgeRef(3, 2, b));
  Vocabulary tmp = vocab_;
  auto regex = ParseRegex("a b*", &tmp);
  ASSERT_TRUE(regex.ok());
  Dfa dfa = Dfa::FromRegex(*regex);
  VertexPairSet result = EvaluateRpq(g, dfa);
  VertexPairSet expected = {{1, 2}, {1, 3}};
  EXPECT_EQ(result, expected);
}

TEST_F(OracleTest, WitnessPathValidation) {
  LabelId a = L("a");
  SnapshotGraph g;
  g.AddEdge(EdgeRef(1, 2, a));
  g.AddEdge(EdgeRef(2, 3, a));
  EXPECT_TRUE(IsValidWitnessPath(g, 1, 3,
                                 {EdgeRef(1, 2, a), EdgeRef(2, 3, a)}));
  EXPECT_FALSE(IsValidWitnessPath(g, 1, 3, {EdgeRef(1, 2, a)}));
  EXPECT_FALSE(IsValidWitnessPath(
      g, 1, 3, {EdgeRef(1, 2, a), EdgeRef(9, 3, a)}));  // broken chain
  EXPECT_FALSE(IsValidWitnessPath(g, 1, 3, {}));
}

// ---------------------------------------------------------------------------
// G-CORE front-end
// ---------------------------------------------------------------------------

TEST(GCoreTest, ParsesFigure6) {
  // The paper's Figure 6 query (RL path + notification), windows in hours.
  Vocabulary vocab;
  auto q = ParseGCore(
      "PATH RL = (u1)-/<:follows*>/->(u2), "
      "(u1)-[:likes]->(m1)<-[:posts]-(u2)\n"
      "CONSTRUCT (u)-[:notify]->(m)\n"
      "MATCH (u)-/<~RL+>/->(v), (v)-[:posts]->(m)\n"
      "ON social_stream WINDOW (24 HOURS) SLIDE (1 HOURS)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->window.size, 24);
  EXPECT_EQ(q->window.slide, 1);
  // RL rule + notify rule + Answer rule.
  EXPECT_EQ(q->rq.rules().size(), 3u);
  EXPECT_TRUE(vocab.IsInputLabel(*vocab.FindLabel("follows")));
  EXPECT_FALSE(vocab.IsInputLabel(*vocab.FindLabel("RL")));
  EXPECT_FALSE(vocab.IsInputLabel(*vocab.FindLabel("notify")));
  EXPECT_TRUE(q->rq.Validate(vocab).ok());
}

TEST(GCoreTest, ParsesFigure7MultiStreamWithOptionals) {
  // Example 4: two streams with different windows, OPTIONAL alternatives.
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (u1)-[:recommendation]->(p)\n"
      "MATCH OPTIONAL (u1)-[:follows]->(u2) "
      "OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)\n"
      "ON social_stream WINDOW (24 HOURS)\n"
      "MATCH (c)-[:purchase]->(p)\n"
      "ON tx_stream WINDOW (30 DAYS) SLIDE (1 DAYS)\n"
      "WHERE (u2) = (c)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Two OPTIONAL alternatives -> two recommendation rules (+ Answer).
  EXPECT_EQ(q->rq.rules().size(), 3u);
  EXPECT_EQ(q->window.size, 24);
  // purchase carries the second group's window as a per-label override.
  LabelId purchase = *vocab.FindLabel("purchase");
  ASSERT_TRUE(q->per_label_windows.count(purchase) > 0);
  EXPECT_EQ(q->per_label_windows.at(purchase).size, 30 * 24);
  EXPECT_EQ(q->per_label_windows.at(purchase).slide, 24);
}

TEST(GCoreTest, ReversedEdgePatternSwapsEndpoints) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (m)-[:out]->(u)\n"
      "MATCH (m)<-[:posts]-(u)\n"
      "ON s WINDOW (2 HOURS)",
      &vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // (m)<-[:posts]-(u) means posts(u, m).
  const Rule* out_rule = nullptr;
  for (const Rule& r : q->rq.rules()) {
    if (r.head == *vocab.FindLabel("out")) out_rule = &r;
  }
  ASSERT_NE(out_rule, nullptr);
  EXPECT_EQ(out_rule->body[0].src, "u");
  EXPECT_EQ(out_rule->body[0].trg, "m");
}

TEST(GCoreTest, RejectsUnknownPathName) {
  Vocabulary vocab;
  auto q = ParseGCore(
      "CONSTRUCT (x)-[:o]->(y)\n"
      "MATCH (x)-/<~Nope+>/->(y)\n"
      "ON s WINDOW (2 HOURS)",
      &vocab);
  EXPECT_FALSE(q.ok());
}

TEST(GCoreTest, RejectsMissingMatch) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseGCore("CONSTRUCT (x)-[:o]->(y)", &vocab).ok());
}

}  // namespace
}  // namespace sgq

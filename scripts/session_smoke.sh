#!/usr/bin/env bash
# Scripted end-to-end check of the subscription session server
# (server/session.h, DESIGN.md §10): drive a SUBSCRIBE → INGEST →
# UNSUBSCRIBE → SUBSCRIBE-again session through `stream_query_cli
# --serve` and require each subscription's tagged output to be
# byte-identical to an equivalent static query run over exactly the
# stream segment the subscription was live for:
#
#   id 0 lives for the whole stream        -> full-stream static run
#   id 1 is detached after the prefix      -> prefix static run
#   id 2 attaches mid-stream (fresh plan)  -> suffix static run
#
# The ack sequence is also checked verbatim, including that a detached
# subscription id is never reused.
#
# Usage: session_smoke.sh <path-to-stream_query_cli>
set -euo pipefail

CLI=${1:?usage: session_smoke.sh <path-to-stream_query_cli>}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
TAB=$(printf '\t')

# Deterministic 60-edge stream over 3 labels; timestamps non-decreasing.
awk 'BEGIN{
  lbl[0]="follows"; lbl[1]="likes"; lbl[2]="posts";
  for (i = 0; i < 60; i++)
    printf "v%d,%s,v%d,%d\n", i % 7, lbl[i % 3], (i * 3 + 1) % 7,
           int(i / 2);
}' > "$TMP/stream.csv"
TOTAL=60
PREFIX=30
head -n "$PREFIX" "$TMP/stream.csv" > "$TMP/prefix.csv"
tail -n +"$((PREFIX + 1))" "$TMP/stream.csv" > "$TMP/suffix.csv"

{
  printf 'SUBSCRIBE Answer(x,y) <- follows+(x,y)\n'
  printf 'SUBSCRIBE Answer(x,y) <- likes(x,y)\n'
  printf 'INGEST %d\n' "$PREFIX"
  printf 'UNSUBSCRIBE 1\n'
  printf 'SUBSCRIBE Answer(x,y) <- posts(x,y)\n'
  printf 'INGEST ALL\n'
  printf 'QUIT\n'
} > "$TMP/session.txt"

"$CLI" --serve "$TMP/stream.csv" < "$TMP/session.txt" \
  2>/dev/null > "$TMP/session_out.txt"

# Protocol acks, in order. Result lines carry a `s<id>\t` tag; everything
# untagged must be exactly this ack sequence.
grep -v "$TAB" "$TMP/session_out.txt" > "$TMP/acks.txt"
printf 'SUBSCRIBED 0\nSUBSCRIBED 1\nINGESTED %d\nUNSUBSCRIBED 1\nSUBSCRIBED 2\nINGESTED %d\nBYE\n' \
  "$PREFIX" "$((TOTAL - PREFIX))" > "$TMP/acks_expected.txt"
cmp "$TMP/acks_expected.txt" "$TMP/acks.txt"

# Each subscription's tag-stripped output vs the static run over the
# segment it was live for.
check_sub() {
  local id=$1 query=$2 segment=$3
  grep "^s${id}${TAB}" "$TMP/session_out.txt" | cut -f2- \
    > "$TMP/sub${id}.txt" || true
  printf '%s\n' "$query" > "$TMP/q${id}.dl"
  "$CLI" "$TMP/q${id}.dl" "$segment" 2>/dev/null > "$TMP/static${id}.txt"
  cmp "$TMP/static${id}.txt" "$TMP/sub${id}.txt"
}
check_sub 0 'Answer(x,y) <- follows+(x,y)' "$TMP/stream.csv"
check_sub 1 'Answer(x,y) <- likes(x,y)' "$TMP/prefix.csv"
check_sub 2 'Answer(x,y) <- posts(x,y)' "$TMP/suffix.csv"

echo "session smoke: all subscriptions byte-identical to static runs"

#!/usr/bin/env python3
"""Compare bench JSON artifacts against committed baselines.

Each bench binary emits one JSON object per line on stdout (see
bench/bench_*.cc); committed reference numbers live in bench/baselines/.
This script matches rows by their identity keys (bench, workload, workers,
batch, queries, sharing, async, pin, format, parsers, index, file_mode)
and reports throughput / tail-latency ratios.

Rows also record the CPU count of the recording box ("cpus") as a fact,
not an identity key. When a *parallel* row (workers>1, parsers>1, or
async/pin on) was recorded on a box with a different CPU count than the
baseline's, its throughput thresholds are skipped: parallel speedups are
a property of core count, and comparing a 4-core recording against a
1-core runner would flag hardware, not code. Ratios are still printed
for the record, marked "(cpus N vs M, threshold skipped)".

Two classes of check, with different teeth:

 - *Hard* (exit 1, gates CI): machine-independent integer facts must
   match the baseline exactly — stream sizes and plan shape (edges, ops,
   shared_subtrees, cross_query_shared, labels) on every row, and result
   counts (results, results_total) on sequential rows. A mismatch means
   the workload or the answer changed, not the hardware. Baseline rows
   the run no longer produces (GONE) are also hard: a silently dropped
   bench is a gap, not noise. Rows with no baseline yet (NEW) are
   informational — they gate once a baseline is committed.
 - *Soft* (reported, non-blocking unless --strict): throughput and
   latency ratios. Machine-to-machine variance makes a hard wall-clock
   gate meaningless; regressions beyond the soft threshold are surfaced
   in the log and the --github-summary table but do not fail the build.
   Parallel rows' result counts drift with merge timing, so they are
   excluded from the hard result-parity check.

Closes the ROADMAP item "Track bench JSON across PRs" — the comparison
that used to be manual artifact-diffing is now one command:

    python3 scripts/bench_diff.py BENCH_state_hot.json \
        --baseline bench/baselines/BENCH_state_hot.json

Baselines are refreshed deliberately (copy the run output over the
baseline file in the same PR that changes the performance), so the diff
always reads "this PR vs the last recorded decision".
"""

import argparse
import json
import sys

IDENTITY_KEYS = ("bench", "workload", "workers", "batch", "queries",
                 "sharing", "async", "pin", "format", "parsers", "index",
                 "file_mode")
# Higher is better / lower is better metrics, with their soft thresholds.
HIGHER_BETTER = {"tuples_per_sec": 0.8, "parse_tuples_per_sec": 0.8}
# ops_touched_per_edge is near-deterministic (driver-side dispatch counts,
# not wall clock), so a growth past 1.2x means the query index stopped
# pruning dispatches — a real fanout regression, not runner noise.
LOWER_BETTER = {"p99_slide_seconds": 1.5, "state_bytes": 1.5,
                "ops_touched_per_edge": 1.2}
# Machine-independent integer facts, gated by exact equality (exit 1).
# Structural facts hold on every row; result counts only on sequential
# rows (parallel merges emit timing-dependent coalesced counts).
HARD_STRUCTURAL = ("edges", "ops", "shared_subtrees", "cross_query_shared",
                   "labels")
HARD_SEQUENTIAL_RESULTS = ("results", "results_total")
# Informational fields the emitters record alongside the identity keys and
# thresholded metrics. Anything outside all three sets is reported once as
# "unknown keys ignored" — usually a newer bench emitting a field this
# copy of the script predates; matching and thresholds still work.
FACT_KEYS = frozenset((
    "cpus", "edges", "elapsed_seconds", "results", "results_total",
    "state_entries", "state_bytes", "ingest_stall_ns", "exec_stall_ns",
    "merge_stall_ns", "parser_stall_ns", "readahead_stall_ns",
    "parse_busy_ns", "speedup_vs_1", "speedup_vs_unshared",
    "speedup_async_vs_sync", "emission_ratio", "ops", "shared_subtrees",
    "cross_query_shared", "labels", "index_skipped_dispatches",
    "checkpoint_write_ns", "checkpoint_bytes",
))


def load_rows(path, unknown_keys=None):
    """Parses one JSON-per-line bench artifact into {identity-key: row}.

    Fail-soft by design: a missing or unreadable file warns once and
    contributes zero rows (the diff then reports NEW/GONE as appropriate),
    and malformed lines are skipped individually — a half-written baseline
    never aborts the comparison.
    """
    rows = {}
    try:
        f = open(path)
    except OSError as e:
        print(f"bench_diff: warning: skipping {path} "
              f"({e.strerror or e}); rows from it treated as absent",
              file=sys.stderr)
        return rows
    with f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"{path}:{line_no}: skipping non-JSON line ({e})",
                      file=sys.stderr)
                continue
            if not isinstance(row, dict):
                print(f"{path}:{line_no}: skipping non-object JSON row",
                      file=sys.stderr)
                continue
            if unknown_keys is not None:
                unknown_keys.update(
                    k for k in row
                    if k not in IDENTITY_KEYS and k not in HIGHER_BETTER
                    and k not in LOWER_BETTER and k not in FACT_KEYS)
            key = tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)
            rows[key] = row
    return rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def is_parallel(row):
    """Whether the row's throughput depends on the recording box's cores."""
    return (row.get("workers", 1) > 1 or row.get("parsers", 1) > 1 or
            row.get("async") == 1 or row.get("pin") == 1)


def hard_facts(row):
    """The (name, value) facts of a row that must match exactly."""
    facts = [(k, row[k]) for k in HARD_STRUCTURAL if k in row]
    if not is_parallel(row):
        facts += [(k, row[k]) for k in HARD_SEQUENTIAL_RESULTS if k in row]
    return facts


def compare(current, baseline):
    regressions = []
    hard_failures = []
    for key, row in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            print(f"  NEW      {fmt_key(key)} (no baseline row)")
            continue
        for fact, value in hard_facts(row):
            old = base.get(fact)
            if old is not None and value != old:
                hard_failures.append(
                    (key, f"{fact} {value} != baseline {old}"))
        # Parallel speedups are a property of core count: when the
        # recording boxes differ, throughput floors would flag hardware,
        # not code. Report the ratio, skip the threshold.
        cpus, base_cpus = row.get("cpus"), base.get("cpus")
        cpus_mismatch = (cpus is not None and base_cpus is not None and
                         cpus != base_cpus and is_parallel(row))
        parts = []
        for metric, floor in HIGHER_BETTER.items():
            cur, old = row.get(metric), base.get(metric)
            if not cur or not old:
                continue
            ratio = cur / old
            if cpus_mismatch:
                parts.append(f"{metric} {ratio:.2f}x (cpus {cpus} vs "
                             f"{base_cpus}, threshold skipped)")
                continue
            parts.append(f"{metric} {ratio:.2f}x")
            if ratio < floor:
                regressions.append((key, metric, ratio))
        for metric, ceil in LOWER_BETTER.items():
            cur, old = row.get(metric), base.get(metric)
            if not cur or not old:
                continue  # 0 baseline (e.g. pre-state_bytes): informational
            ratio = cur / old
            parts.append(f"{metric} {ratio:.2f}x")
            if ratio > ceil:
                regressions.append((key, metric, ratio))
        flagged = (any(r[0] == key for r in regressions) or
                   any(h[0] == key for h in hard_failures))
        print(f"  {'REGR' if flagged else 'OK':8s}"
              f" {fmt_key(key)}: {', '.join(parts) if parts else 'no shared metrics'}")
    for key in sorted(baseline.keys() - current.keys()):
        print(f"  GONE     {fmt_key(key)} (baseline row not produced)")
        hard_failures.append((key, "baseline row not produced by this run"))
    return regressions, hard_failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+",
                        help="bench JSON file(s) produced by this run")
    parser.add_argument("--baseline", action="append", required=True,
                        help="committed baseline JSON (repeatable)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on soft-threshold regressions too")
    parser.add_argument("--github-summary", metavar="PATH",
                        help="append a markdown summary table to PATH "
                             "(pass \"$GITHUB_STEP_SUMMARY\" in CI)")
    args = parser.parse_args()

    unknown_keys = set()
    baseline = {}
    for path in args.baseline:
        baseline.update(load_rows(path, unknown_keys))
    current = {}
    for path in args.current:
        current.update(load_rows(path, unknown_keys))

    print(f"bench_diff: {len(current)} current rows vs "
          f"{len(baseline)} baseline rows")
    if unknown_keys:
        print(f"bench_diff: note: unknown keys ignored for matching and "
              f"thresholds: {', '.join(sorted(unknown_keys))}",
              file=sys.stderr)
    regressions, hard_failures = compare(current, baseline)
    if args.github_summary:
        write_github_summary(args.github_summary, current, baseline,
                             regressions, hard_failures)
    if hard_failures:
        print("hard failures (machine-independent facts diverged):")
        for key, reason in hard_failures:
            print(f"  {fmt_key(key)}: {reason}")
    if regressions:
        print("soft-threshold regressions:")
        for key, metric, ratio in regressions:
            print(f"  {fmt_key(key)}: {metric} {ratio:.2f}x")
        if not args.strict:
            print("(non-blocking: single-core CI runners are noisy; "
                  "investigate before trusting)")
    elif not hard_failures:
        print("no regressions beyond soft thresholds")
    if hard_failures or (args.strict and regressions):
        return 1
    return 0


def write_github_summary(path, current, baseline, regressions,
                         hard_failures):
    """Appends a markdown table of the comparison to `path` (fail-soft)."""
    hard_keys = {key for key, _ in hard_failures}
    soft_keys = {key for key, _, _ in regressions}
    lines = ["### bench_diff", "",
             f"{len(current)} current rows vs {len(baseline)} baseline "
             f"rows — {len(hard_failures)} hard failure(s), "
             f"{len(regressions)} soft regression(s)", "",
             "| row | status | detail |", "|---|---|---|"]
    for key, row in sorted(current.items()):
        if key not in baseline:
            lines.append(f"| `{fmt_key(key)}` | NEW | no baseline row |")
            continue
        detail = []
        for metric in list(HIGHER_BETTER) + list(LOWER_BETTER):
            cur, old = row.get(metric), baseline[key].get(metric)
            if cur and old:
                detail.append(f"{metric} {cur / old:.2f}x")
        if key in hard_keys:
            status = "**HARD FAIL**"
            detail = [r for k, r in hard_failures if k == key] + detail
        elif key in soft_keys:
            status = "soft regression"
        else:
            status = "OK"
        lines.append(f"| `{fmt_key(key)}` | {status} | "
                     f"{', '.join(detail) or '—'} |")
    for key in sorted(baseline.keys() - current.keys()):
        lines.append(f"| `{fmt_key(key)}` | **HARD FAIL** | "
                     f"baseline row not produced |")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"bench_diff: warning: cannot write summary to {path} "
              f"({e.strerror or e})", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())

// Thompson-construction NFA over the label alphabet.
//
// The NFA is an intermediate artifact: the PATH physical operators run on
// the DFA (dfa.h); the NFA also serves as an independent acceptance oracle
// in property tests.

#ifndef SGQ_REGEX_NFA_H_
#define SGQ_REGEX_NFA_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "regex/regex.h"

namespace sgq {

/// Automaton state index.
using StateId = uint32_t;

/// \brief Nondeterministic finite automaton with epsilon transitions.
class Nfa {
 public:
  /// \brief Builds the Thompson NFA of `regex`.
  static Nfa FromRegex(const Regex& regex);

  StateId start() const { return start_; }
  StateId accept() const { return accept_; }
  std::size_t NumStates() const { return eps_.size(); }

  /// \brief Epsilon closure of a set of states.
  std::set<StateId> EpsilonClosure(const std::set<StateId>& states) const;

  /// \brief States reachable from `states` on symbol `label` (pre-closure).
  std::set<StateId> Move(const std::set<StateId>& states,
                         LabelId label) const;

  /// \brief True when the label word is in L(regex); used as a test oracle.
  bool Accepts(const std::vector<LabelId>& word) const;

  /// \brief Labels with at least one transition.
  std::vector<LabelId> Alphabet() const;

  const std::vector<std::vector<StateId>>& epsilon_edges() const {
    return eps_;
  }

 private:
  StateId NewState();
  void AddEps(StateId from, StateId to) { eps_[from].push_back(to); }
  void AddLabelEdge(StateId from, LabelId label, StateId to) {
    label_edges_[from].emplace_back(label, to);
  }
  /// Builds the fragment for `r`; returns (in, out) states.
  std::pair<StateId, StateId> Build(const Regex& r);

  StateId start_ = 0;
  StateId accept_ = 0;
  std::vector<std::vector<StateId>> eps_;
  std::unordered_map<StateId, std::vector<std::pair<LabelId, StateId>>>
      label_edges_;
};

}  // namespace sgq

#endif  // SGQ_REGEX_NFA_H_

#include "regex/dfa.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"

namespace sgq {

namespace {
const std::vector<std::pair<StateId, StateId>> kNoTransitions;
}  // namespace

Dfa Dfa::FromNfa(const Nfa& nfa) {
  Dfa dfa;
  const std::vector<LabelId> alphabet = nfa.Alphabet();

  std::map<std::set<StateId>, StateId> subset_ids;
  std::queue<std::set<StateId>> frontier;

  const std::set<StateId> start_set = nfa.EpsilonClosure({nfa.start()});
  subset_ids[start_set] = 0;
  dfa.accepting_.push_back(start_set.count(nfa.accept()) > 0);
  dfa.delta_.emplace_back();
  dfa.start_ = 0;
  frontier.push(start_set);

  while (!frontier.empty()) {
    std::set<StateId> current = std::move(frontier.front());
    frontier.pop();
    const StateId current_id = subset_ids[current];
    for (LabelId label : alphabet) {
      std::set<StateId> next = nfa.EpsilonClosure(nfa.Move(current, label));
      if (next.empty()) continue;
      auto [it, inserted] =
          subset_ids.emplace(next, static_cast<StateId>(subset_ids.size()));
      if (inserted) {
        dfa.accepting_.push_back(next.count(nfa.accept()) > 0);
        dfa.delta_.emplace_back();
        frontier.push(next);
      }
      dfa.delta_[current_id][label] = it->second;
    }
  }
  dfa.FinishBuild();
  return dfa;
}

Dfa Dfa::FromRegex(const Regex& regex) {
  return FromNfa(Nfa::FromRegex(regex)).Minimize();
}

StateId Dfa::Next(StateId s, LabelId label) const {
  if (s >= delta_.size()) return kNoState;
  auto it = delta_[s].find(label);
  return it == delta_[s].end() ? kNoState : it->second;
}

std::vector<std::tuple<StateId, LabelId, StateId>> Dfa::Transitions() const {
  std::vector<std::tuple<StateId, LabelId, StateId>> out;
  for (StateId s = 0; s < delta_.size(); ++s) {
    for (const auto& [label, t] : delta_[s]) {
      out.emplace_back(s, label, t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<std::pair<StateId, StateId>>& Dfa::TransitionsOnLabel(
    LabelId label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? kNoTransitions : it->second;
}

StateId Dfa::DeltaStar(StateId s, const std::vector<LabelId>& word) const {
  StateId current = s;
  for (LabelId l : word) {
    current = Next(current, l);
    if (current == kNoState) return kNoState;
  }
  return current;
}

Dfa Dfa::Minimize() const {
  const std::size_t n = NumStates();
  SGQ_CHECK_GT(n, 0u);

  // 1. Keep only states that can reach an accepting state ("useful").
  std::vector<bool> useful(n, false);
  {
    // Reverse reachability from accepting states.
    std::vector<std::vector<StateId>> rev(n);
    for (StateId s = 0; s < n; ++s) {
      for (const auto& [_, t] : delta_[s]) rev[t].push_back(s);
    }
    std::queue<StateId> q;
    for (StateId s = 0; s < n; ++s) {
      if (accepting_[s]) {
        useful[s] = true;
        q.push(s);
      }
    }
    while (!q.empty()) {
      StateId s = q.front();
      q.pop();
      for (StateId p : rev[s]) {
        if (!useful[p]) {
          useful[p] = true;
          q.push(p);
        }
      }
    }
  }
  // The start state must survive even if the language is empty.
  useful[start_] = true;

  // 2. Moore partition refinement on useful states (transitions into
  // non-useful states count as "dead").
  std::vector<int> block(n, -1);
  for (StateId s = 0; s < n; ++s) {
    if (useful[s]) block[s] = accepting_[s] ? 1 : 0;
  }
  const std::vector<LabelId> alphabet = Alphabet();
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature: (current block, [block of target per label, -2 if dead]).
    std::map<std::vector<int>, int> sig_to_block;
    std::vector<int> new_block(n, -1);
    for (StateId s = 0; s < n; ++s) {
      if (!useful[s]) continue;
      std::vector<int> sig;
      sig.reserve(alphabet.size() + 1);
      sig.push_back(block[s]);
      for (LabelId l : alphabet) {
        StateId t = Next(s, l);
        sig.push_back(t != kNoState && useful[t] ? block[t] : -2);
      }
      auto [it, _] =
          sig_to_block.emplace(sig, static_cast<int>(sig_to_block.size()));
      new_block[s] = it->second;
    }
    for (StateId s = 0; s < n; ++s) {
      if (useful[s] && new_block[s] != block[s]) changed = true;
    }
    block = std::move(new_block);
  }

  // 3. Assemble the quotient automaton.
  int num_blocks = 0;
  for (StateId s = 0; s < n; ++s) {
    if (useful[s]) num_blocks = std::max(num_blocks, block[s] + 1);
  }
  Dfa out;
  out.accepting_.assign(num_blocks, false);
  out.delta_.assign(num_blocks, {});
  for (StateId s = 0; s < n; ++s) {
    if (!useful[s]) continue;
    const StateId b = static_cast<StateId>(block[s]);
    if (accepting_[s]) out.accepting_[b] = true;
    for (const auto& [label, t] : delta_[s]) {
      if (useful[t]) out.delta_[b][label] = static_cast<StateId>(block[t]);
    }
  }
  out.start_ = static_cast<StateId>(block[start_]);
  out.FinishBuild();
  return out;
}

std::vector<LabelId> Dfa::Alphabet() const {
  std::set<LabelId> labels;
  for (const auto& edges : delta_) {
    for (const auto& [l, _] : edges) labels.insert(l);
  }
  return std::vector<LabelId>(labels.begin(), labels.end());
}

void Dfa::FinishBuild() {
  by_label_.clear();
  for (StateId s = 0; s < delta_.size(); ++s) {
    for (const auto& [label, t] : delta_[s]) {
      by_label_[label].emplace_back(s, t);
    }
  }
}

}  // namespace sgq

// Deterministic finite automaton used by the PATH physical operators
// (Algorithm S-PATH line 1: ConstructDFA).

#ifndef SGQ_REGEX_DFA_H_
#define SGQ_REGEX_DFA_H_

#include <unordered_map>
#include <vector>

#include "regex/nfa.h"

namespace sgq {

/// \brief DFA over the label alphabet, built by subset construction from a
/// Thompson NFA and minimized with Moore partition refinement.
///
/// States are dense indexes [0, NumStates()); state 0 is NOT guaranteed to
/// be the start state — use start().
class Dfa {
 public:
  /// \brief Subset construction (unminimized).
  static Dfa FromNfa(const Nfa& nfa);

  /// \brief Convenience: regex -> NFA -> DFA -> minimized DFA.
  static Dfa FromRegex(const Regex& regex);

  StateId start() const { return start_; }
  std::size_t NumStates() const { return accepting_.size(); }
  bool IsAccepting(StateId s) const { return accepting_[s]; }

  /// \brief delta(s, label); kNoState when undefined (dead).
  StateId Next(StateId s, LabelId label) const;

  /// \brief True if some transition out of the start state reads `label`
  /// (Def. 22 uses this to decide which vertices root spanning trees).
  bool StartCanRead(LabelId label) const {
    return Next(start_, label) != kNoState;
  }

  /// \brief All (from, label, to) transitions, for diagnostics and tests.
  std::vector<std::tuple<StateId, LabelId, StateId>> Transitions() const;

  /// \brief States s with delta(s, label) defined, paired with the target.
  /// Used by S-PATH line 6 to enumerate transitions matching an arriving
  /// edge label.
  const std::vector<std::pair<StateId, StateId>>& TransitionsOnLabel(
      LabelId label) const;

  /// \brief Extended transition function on a word; kNoState if it dies.
  StateId DeltaStar(StateId s, const std::vector<LabelId>& word) const;

  /// \brief True when the word is in the language.
  bool Accepts(const std::vector<LabelId>& word) const {
    StateId s = DeltaStar(start_, word);
    return s != kNoState && IsAccepting(s);
  }

  /// \brief True when the start state is accepting (language contains the
  /// empty word, e.g. `a*`).
  bool AcceptsEmpty() const { return IsAccepting(start_); }

  /// \brief Language-preserving state minimization (Moore refinement after
  /// removing states that cannot reach an accepting state).
  Dfa Minimize() const;

  /// \brief Labels appearing on any transition.
  std::vector<LabelId> Alphabet() const;

  static constexpr StateId kNoState = static_cast<StateId>(-1);

 private:
  StateId start_ = 0;
  std::vector<bool> accepting_;
  // Per-state transition map label -> target.
  std::vector<std::unordered_map<LabelId, StateId>> delta_;
  // Reverse index: label -> [(from, to)] (built lazily by FinishBuild).
  std::unordered_map<LabelId, std::vector<std::pair<StateId, StateId>>>
      by_label_;

  void FinishBuild();
};

}  // namespace sgq

#endif  // SGQ_REGEX_DFA_H_

#include "regex/nfa.h"

#include <algorithm>

#include "common/logging.h"

namespace sgq {

StateId Nfa::NewState() {
  eps_.emplace_back();
  return static_cast<StateId>(eps_.size() - 1);
}

Nfa Nfa::FromRegex(const Regex& regex) {
  Nfa nfa;
  auto [in, out] = nfa.Build(regex);
  nfa.start_ = in;
  nfa.accept_ = out;
  return nfa;
}

std::pair<StateId, StateId> Nfa::Build(const Regex& r) {
  switch (r.kind) {
    case RegexKind::kEpsilon: {
      StateId in = NewState();
      StateId out = NewState();
      AddEps(in, out);
      return {in, out};
    }
    case RegexKind::kLabel: {
      StateId in = NewState();
      StateId out = NewState();
      AddLabelEdge(in, r.label, out);
      return {in, out};
    }
    case RegexKind::kConcat: {
      SGQ_CHECK(!r.children.empty());
      auto [in, out] = Build(r.children[0]);
      for (std::size_t i = 1; i < r.children.size(); ++i) {
        auto [next_in, next_out] = Build(r.children[i]);
        AddEps(out, next_in);
        out = next_out;
      }
      return {in, out};
    }
    case RegexKind::kAlt: {
      SGQ_CHECK(!r.children.empty());
      StateId in = NewState();
      StateId out = NewState();
      for (const Regex& c : r.children) {
        auto [ci, co] = Build(c);
        AddEps(in, ci);
        AddEps(co, out);
      }
      return {in, out};
    }
    case RegexKind::kStar: {
      auto [ci, co] = Build(r.children[0]);
      StateId in = NewState();
      StateId out = NewState();
      AddEps(in, ci);
      AddEps(co, out);
      AddEps(in, out);
      AddEps(co, ci);
      return {in, out};
    }
    case RegexKind::kPlus: {
      auto [ci, co] = Build(r.children[0]);
      StateId in = NewState();
      StateId out = NewState();
      AddEps(in, ci);
      AddEps(co, out);
      AddEps(co, ci);
      return {in, out};
    }
    case RegexKind::kOpt: {
      auto [ci, co] = Build(r.children[0]);
      StateId in = NewState();
      StateId out = NewState();
      AddEps(in, ci);
      AddEps(co, out);
      AddEps(in, out);
      return {in, out};
    }
  }
  SGQ_CHECK(false) << "unreachable regex kind";
  return {0, 0};
}

std::set<StateId> Nfa::EpsilonClosure(const std::set<StateId>& states) const {
  std::set<StateId> closure = states;
  std::vector<StateId> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    StateId s = frontier.back();
    frontier.pop_back();
    for (StateId t : eps_[s]) {
      if (closure.insert(t).second) frontier.push_back(t);
    }
  }
  return closure;
}

std::set<StateId> Nfa::Move(const std::set<StateId>& states,
                            LabelId label) const {
  std::set<StateId> out;
  for (StateId s : states) {
    auto it = label_edges_.find(s);
    if (it == label_edges_.end()) continue;
    for (const auto& [l, t] : it->second) {
      if (l == label) out.insert(t);
    }
  }
  return out;
}

bool Nfa::Accepts(const std::vector<LabelId>& word) const {
  std::set<StateId> current = EpsilonClosure({start_});
  for (LabelId l : word) {
    current = EpsilonClosure(Move(current, l));
    if (current.empty()) return false;
  }
  return current.count(accept_) > 0;
}

std::vector<LabelId> Nfa::Alphabet() const {
  std::set<LabelId> labels;
  for (const auto& [_, edges] : label_edges_) {
    for (const auto& [l, __] : edges) labels.insert(l);
  }
  return std::vector<LabelId>(labels.begin(), labels.end());
}

}  // namespace sgq

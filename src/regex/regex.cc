#include "regex/regex.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace sgq {

Regex Regex::Concat(std::vector<Regex> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  Regex r;
  r.kind = RegexKind::kConcat;
  r.children = std::move(parts);
  return r;
}

Regex Regex::Alt(std::vector<Regex> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  Regex r;
  r.kind = RegexKind::kAlt;
  r.children = std::move(parts);
  return r;
}

Regex Regex::Star(Regex inner) {
  Regex r;
  r.kind = RegexKind::kStar;
  r.children.push_back(std::move(inner));
  return r;
}

Regex Regex::Plus(Regex inner) {
  Regex r;
  r.kind = RegexKind::kPlus;
  r.children.push_back(std::move(inner));
  return r;
}

Regex Regex::Opt(Regex inner) {
  Regex r;
  r.kind = RegexKind::kOpt;
  r.children.push_back(std::move(inner));
  return r;
}

namespace {

void CollectLabels(const Regex& r, std::set<LabelId>* out) {
  if (r.kind == RegexKind::kLabel) out->insert(r.label);
  for (const Regex& c : r.children) CollectLabels(c, out);
}

}  // namespace

std::vector<LabelId> Regex::Alphabet() const {
  std::set<LabelId> labels;
  CollectLabels(*this, &labels);
  return std::vector<LabelId>(labels.begin(), labels.end());
}

bool Regex::operator==(const Regex& other) const {
  return kind == other.kind && label == other.label &&
         children == other.children;
}

std::string Regex::ToString(const Vocabulary& vocab) const {
  switch (kind) {
    case RegexKind::kEpsilon:
      return "ε";
    case RegexKind::kLabel:
      return vocab.LabelName(label);
    case RegexKind::kConcat: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " ";
        out += children[i].ToString(vocab);
      }
      return out + ")";
    }
    case RegexKind::kAlt: {
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " | ";
        out += children[i].ToString(vocab);
      }
      return out + ")";
    }
    case RegexKind::kStar:
      return children[0].ToString(vocab) + "*";
    case RegexKind::kPlus:
      return children[0].ToString(vocab) + "+";
    case RegexKind::kOpt:
      return children[0].ToString(vocab) + "?";
  }
  return "?";
}

namespace {

/// Recursive-descent parser over a token cursor.
class RegexParser {
 public:
  RegexParser(std::string_view text, Vocabulary* vocab)
      : text_(text), vocab_(vocab) {}

  Result<Regex> Parse() {
    SGQ_ASSIGN_OR_RETURN(Regex r, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("regex: trailing input at offset " +
                                std::to_string(pos_));
    }
    return r;
  }

 private:
  Result<Regex> ParseExpr() {
    std::vector<Regex> alts;
    SGQ_ASSIGN_OR_RETURN(Regex first, ParseSeq());
    alts.push_back(std::move(first));
    SkipSpace();
    while (Peek() == '|') {
      ++pos_;
      SGQ_ASSIGN_OR_RETURN(Regex next, ParseSeq());
      alts.push_back(std::move(next));
      SkipSpace();
    }
    return Regex::Alt(std::move(alts));
  }

  Result<Regex> ParseSeq() {
    std::vector<Regex> parts;
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '\0' || c == '|' || c == ')') break;
      if (c == '.') {  // explicit concatenation separator, optional
        ++pos_;
        continue;
      }
      SGQ_ASSIGN_OR_RETURN(Regex u, ParseUnary());
      parts.push_back(std::move(u));
    }
    if (parts.empty()) {
      return Status::ParseError("regex: empty sequence at offset " +
                                std::to_string(pos_));
    }
    return Regex::Concat(std::move(parts));
  }

  Result<Regex> ParseUnary() {
    SGQ_ASSIGN_OR_RETURN(Regex r, ParseAtom());
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '*') {
        r = Regex::Star(std::move(r));
        ++pos_;
      } else if (c == '+') {
        r = Regex::Plus(std::move(r));
        ++pos_;
      } else if (c == '?') {
        r = Regex::Opt(std::move(r));
        ++pos_;
      } else {
        break;
      }
    }
    return r;
  }

  Result<Regex> ParseAtom() {
    SkipSpace();
    char c = Peek();
    if (c == '(') {
      ++pos_;
      SGQ_ASSIGN_OR_RETURN(Regex inner, ParseExpr());
      SkipSpace();
      if (Peek() != ')') {
        return Status::ParseError("regex: expected ')' at offset " +
                                  std::to_string(pos_));
      }
      ++pos_;
      return inner;
    }
    if (IsLabelChar(c)) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
      std::string_view name = text_.substr(start, pos_ - start);
      auto found = vocab_->FindLabel(name);
      if (found.ok()) return Regex::Label(*found);
      SGQ_ASSIGN_OR_RETURN(LabelId id, vocab_->InternInputLabel(name));
      return Regex::Label(id);
    }
    return Status::ParseError(std::string("regex: unexpected character '") +
                              c + "' at offset " + std::to_string(pos_));
  }

  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  Vocabulary* vocab_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Regex> ParseRegex(std::string_view text, Vocabulary* vocab) {
  return RegexParser(text, vocab).Parse();
}

}  // namespace sgq

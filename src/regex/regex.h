// Regular expressions over the label alphabet Sigma (paper Def. 20).
//
// PATH constraints are regular expressions over edge/path labels. The AST
// uses value semantics (each node owns its children) so expressions can be
// freely copied during plan rewriting (§5.4).

#ifndef SGQ_REGEX_REGEX_H_
#define SGQ_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/types.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief Node type of a regular expression AST.
enum class RegexKind {
  kEpsilon,  ///< the empty word
  kLabel,    ///< a single label l in Sigma
  kConcat,   ///< r1 . r2 . ... (children in order)
  kAlt,      ///< r1 | r2 | ...
  kStar,     ///< r* (zero or more)
  kPlus,     ///< r+ (one or more)
  kOpt,      ///< r? (zero or one)
};

/// \brief A regular expression over labels, with value semantics.
struct Regex {
  RegexKind kind = RegexKind::kEpsilon;
  LabelId label = kInvalidLabel;  ///< set iff kind == kLabel
  std::vector<Regex> children;    ///< operands for composite kinds

  Regex() = default;

  /// \name Factory constructors
  /// @{
  static Regex Epsilon() { return Regex(); }
  static Regex Label(LabelId l) {
    Regex r;
    r.kind = RegexKind::kLabel;
    r.label = l;
    return r;
  }
  static Regex Concat(std::vector<Regex> parts);
  static Regex Alt(std::vector<Regex> parts);
  static Regex Star(Regex inner);
  static Regex Plus(Regex inner);
  static Regex Opt(Regex inner);
  /// @}

  /// \brief All labels mentioned in the expression (deduplicated, sorted).
  std::vector<LabelId> Alphabet() const;

  /// \brief Structural equality.
  bool operator==(const Regex& other) const;

  /// \brief Human-readable rendering, label ids resolved via `vocab`.
  std::string ToString(const Vocabulary& vocab) const;
};

/// \brief Parses a regular expression.
///
/// Grammar (whitespace separates tokens; juxtaposition concatenates):
///   expr     := seq ('|' seq)*
///   seq      := unary+
///   unary    := atom ('*' | '+' | '?')*
///   atom     := LABEL | '(' expr ')'
/// Labels resolve against `vocab`: an existing (input or derived) label is
/// reused, an unknown one is interned as an input label.
Result<Regex> ParseRegex(std::string_view text, Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_REGEX_REGEX_H_

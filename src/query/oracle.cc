#include "query/oracle.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "query/normalize.h"

namespace sgq {

namespace {

/// Relation store with per-column probe indexes.
class RelationStore {
 public:
  void Insert(LabelId label, VertexId src, VertexId trg) {
    auto& rel = relations_[label];
    if (!rel.pairs.insert({src, trg}).second) return;
    rel.by_src[src].push_back(trg);
    rel.by_trg[trg].push_back(src);
  }

  bool Has(LabelId label) const { return relations_.count(label) > 0; }

  const VertexPairSet& Pairs(LabelId label) const {
    static const VertexPairSet kEmpty;
    auto it = relations_.find(label);
    return it == relations_.end() ? kEmpty : it->second.pairs;
  }

  const std::vector<VertexId>& TargetsOf(LabelId label, VertexId src) const {
    static const std::vector<VertexId> kEmpty;
    auto it = relations_.find(label);
    if (it == relations_.end()) return kEmpty;
    auto jt = it->second.by_src.find(src);
    return jt == it->second.by_src.end() ? kEmpty : jt->second;
  }

  const std::vector<VertexId>& SourcesOf(LabelId label, VertexId trg) const {
    static const std::vector<VertexId> kEmpty;
    auto it = relations_.find(label);
    if (it == relations_.end()) return kEmpty;
    auto jt = it->second.by_trg.find(trg);
    return jt == it->second.by_trg.end() ? kEmpty : jt->second;
  }

  bool Contains(LabelId label, VertexId src, VertexId trg) const {
    auto it = relations_.find(label);
    return it != relations_.end() && it->second.pairs.count({src, trg}) > 0;
  }

 private:
  struct Relation {
    VertexPairSet pairs;
    std::unordered_map<VertexId, std::vector<VertexId>> by_src;
    std::unordered_map<VertexId, std::vector<VertexId>> by_trg;
  };
  std::unordered_map<LabelId, Relation> relations_;
};

using Binding = std::unordered_map<std::string, VertexId>;

/// Joins `atom` against the current bindings, extending each.
void ExtendBindings(const RelationStore& store, const BodyAtom& atom,
                    LabelId effective_label, std::vector<Binding>* bindings) {
  std::vector<Binding> next;
  for (const Binding& b : *bindings) {
    auto src_it = b.find(atom.src);
    auto trg_it = b.find(atom.trg);
    const bool src_bound = src_it != b.end();
    const bool trg_bound = trg_it != b.end();
    if (src_bound && trg_bound) {
      if (store.Contains(effective_label, src_it->second, trg_it->second)) {
        next.push_back(b);
      }
    } else if (src_bound) {
      for (VertexId t : store.TargetsOf(effective_label, src_it->second)) {
        if (atom.src == atom.trg && t != src_it->second) continue;
        Binding nb = b;
        nb[atom.trg] = t;
        next.push_back(std::move(nb));
      }
    } else if (trg_bound) {
      for (VertexId s : store.SourcesOf(effective_label, trg_it->second)) {
        Binding nb = b;
        nb[atom.src] = s;
        next.push_back(std::move(nb));
      }
    } else {
      for (const auto& [s, t] : store.Pairs(effective_label)) {
        if (atom.src == atom.trg && s != t) continue;
        Binding nb = b;
        nb[atom.src] = s;
        nb[atom.trg] = t;
        next.push_back(std::move(nb));
      }
    }
  }
  *bindings = std::move(next);
}

VertexPairSet EvalRule(const RelationStore& store, const Rule& rule) {
  std::vector<Binding> bindings = {Binding{}};
  for (const BodyAtom& atom : rule.body) {
    const LabelId effective = atom.IsClosure() ? atom.alias : atom.label;
    ExtendBindings(store, atom, effective, &bindings);
    if (bindings.empty()) return {};
  }
  VertexPairSet out;
  for (const Binding& b : bindings) {
    out.insert({b.at(rule.head_src), b.at(rule.head_trg)});
  }
  return out;
}

}  // namespace

VertexPairSet TransitiveClosure(const VertexPairSet& relation) {
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  std::unordered_set<VertexId> sources;
  for (const auto& [s, t] : relation) {
    adj[s].push_back(t);
    sources.insert(s);
  }
  VertexPairSet out;
  for (VertexId src : sources) {
    std::unordered_set<VertexId> visited;
    std::queue<VertexId> q;
    q.push(src);
    // BFS over >= 1 step; src itself is reported only if reachable via a
    // cycle.
    while (!q.empty()) {
      VertexId u = q.front();
      q.pop();
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (VertexId v : it->second) {
        if (visited.insert(v).second) {
          out.insert({src, v});
          q.push(v);
        }
      }
    }
  }
  return out;
}

Result<VertexPairSet> EvaluateOneTime(const RegularQuery& rq,
                                      const SnapshotGraph& graph,
                                      const Vocabulary& vocab) {
  const RegularQuery normalized = ExpandStarClosures(rq);
  SGQ_RETURN_NOT_OK(normalized.Validate(vocab));

  RelationStore store;
  // Seed EDB relations (and any derived-labeled snapshot tuples, which makes
  // query composition testable: the output of one query feeds another).
  for (const EdgeRef& e : graph.edges()) {
    store.Insert(e.label, e.src, e.trg);
  }
  for (const SnapshotPath& p : graph.paths()) {
    store.Insert(p.label, p.src, p.trg);
  }

  SGQ_ASSIGN_OR_RETURN(std::vector<LabelId> topo,
                       normalized.TopologicalOrder());

  // Collect closure alias definitions: alias -> underlying label.
  std::unordered_map<LabelId, LabelId> alias_to_base;
  for (const Rule& r : normalized.rules()) {
    for (const BodyAtom& a : r.body) {
      if (a.IsClosure()) {
        SGQ_CHECK(a.closure == ClosureKind::kPlus);
        alias_to_base[a.alias] = a.label;
      }
    }
  }

  for (LabelId label : topo) {
    auto alias_it = alias_to_base.find(label);
    if (alias_it != alias_to_base.end()) {
      for (const auto& [s, t] :
           TransitiveClosure(store.Pairs(alias_it->second))) {
        store.Insert(label, s, t);
      }
      continue;
    }
    for (const Rule* rule : normalized.RulesFor(label)) {
      for (const auto& [s, t] : EvalRule(store, *rule)) {
        store.Insert(label, s, t);
      }
    }
  }
  return store.Pairs(normalized.answer());
}

VertexPairSet EvaluateRpq(const SnapshotGraph& graph, const Dfa& dfa) {
  VertexPairSet out;
  const std::vector<LabelId> alphabet = dfa.Alphabet();
  for (VertexId src : graph.Vertices()) {
    // BFS over the product of the graph and the DFA.
    std::unordered_set<std::pair<VertexId, StateId>, PairHash> visited;
    std::queue<std::pair<VertexId, StateId>> q;
    q.push({src, dfa.start()});
    visited.insert({src, dfa.start()});
    while (!q.empty()) {
      auto [v, s] = q.front();
      q.pop();
      for (LabelId l : alphabet) {
        const StateId next = dfa.Next(s, l);
        if (next == Dfa::kNoState) continue;
        for (VertexId w : graph.OutNeighbors(v, l)) {
          // Reaching an accepting state via >= 1 edge yields a result.
          if (dfa.IsAccepting(next)) out.insert({src, w});
          if (visited.insert({w, next}).second) q.push({w, next});
        }
      }
    }
  }
  return out;
}

bool IsValidWitnessPath(const SnapshotGraph& graph, VertexId src,
                        VertexId trg, const Payload& path) {
  if (path.empty()) return false;
  if (path.front().src != src || path.back().trg != trg) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (path[i].trg != path[i + 1].src) return false;
  }
  for (const EdgeRef& e : path) {
    if (!graph.HasEdge(e)) return false;
  }
  return true;
}

}  // namespace sgq

// One-time (non-streaming) query evaluation over snapshot graphs.
//
// This is the reference implementation Q_O of the snapshot-reducibility
// semantics (Def. 14): for every instant t,
//     tau_t(Q(S, W)) == Q_O(tau_t(W(S))).
// The incremental engine (src/core) is tested against this oracle on
// randomized streams; the oracle favors obvious correctness over speed.

#ifndef SGQ_QUERY_ORACLE_H_
#define SGQ_QUERY_ORACLE_H_

#include <set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "model/snapshot_graph.h"
#include "query/rq.h"
#include "regex/dfa.h"

namespace sgq {

/// \brief A binary relation instance: a sorted set of vertex pairs.
using VertexPairSet = std::set<std::pair<VertexId, VertexId>>;

/// \brief Evaluates a Regular Query on a static snapshot graph; returns the
/// Answer relation. Star closures are expanded first (normalize.h), so a
/// path result always traverses at least one edge.
Result<VertexPairSet> EvaluateOneTime(const RegularQuery& rq,
                                      const SnapshotGraph& graph,
                                      const Vocabulary& vocab);

/// \brief Evaluates a single RPQ given by `dfa` on the snapshot graph:
/// all pairs (u, v) connected by a non-empty path whose label word is in
/// L(dfa). Product-graph BFS; the test oracle for the PATH operators.
VertexPairSet EvaluateRpq(const SnapshotGraph& graph, const Dfa& dfa);

/// \brief Transitive closure (one or more steps) of a binary relation.
VertexPairSet TransitiveClosure(const VertexPairSet& relation);

/// \brief Checks that `path` is a well-formed witness: consecutive edges
/// chain (trg_i == src_{i+1}), endpoints match, and every edge is present
/// in the snapshot graph. Used to validate returned first-class paths.
bool IsValidWitnessPath(const SnapshotGraph& graph, VertexId src,
                        VertexId trg, const Payload& path);

}  // namespace sgq

#endif  // SGQ_QUERY_ORACLE_H_

// G-CORE subset front-end (paper §4.2, Figs. 6-7).
//
// The paper uses G-CORE (extended with a WINDOW clause) as the user-level
// language for SGQ. This module parses the fragment exercised by the
// paper's examples and compiles it to an RQ + window spec:
//
//   PATH RL = (u1)-/<:follows*>/->(u2), (u1)-[:likes]->(m1)<-[:posts]-(u2)
//   CONSTRUCT (u)-[:notify]->(m)
//   MATCH (u)-/<~RL+>/->(v), (v)-[:posts]->(m)
//   ON social_stream WINDOW (24 HOURS) SLIDE (1 HOURS)
//
// Supported constructs:
//  - PATH <Name> = <patterns>: a named pattern; its endpoints are the
//    endpoints of the FIRST edge pattern in the list.
//  - Edge patterns (x)-[:l]->(y) and reversed (x)<-[:l]-(y).
//  - Path patterns (x)-/<:l*>/->(y) over a label and (x)-/<~Name+>/->(y)
//    over a named PATH; '*' / '+' / '^*' / '^+' quantifiers.
//  - CONSTRUCT (x)-[:out]->(y): names the derived output label.
//  - MATCH <patterns> [OPTIONAL <patterns>]...: OPTIONAL blocks compile to
//    alternative rules (a UNION), following the paper's translation of
//    Example 4.
//  - ON <stream> WINDOW (<n> <unit>) [SLIDE (<n> <unit>)] with units
//    HOURS/DAYS (and H/D): multiple MATCH..ON groups assign per-label
//    windows, enabling multi-stream queries (Fig. 7).
//  - WHERE (x) = (y): variable unification across groups.

#ifndef SGQ_QUERY_GCORE_H_
#define SGQ_QUERY_GCORE_H_

#include <string>

#include "common/result.h"
#include "query/rq.h"

namespace sgq {

/// \brief Parses a G-CORE text into an executable SGQ.
Result<StreamingGraphQuery> ParseGCore(const std::string& text,
                                       Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_QUERY_GCORE_H_

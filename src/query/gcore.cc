#include "query/gcore.h"

#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace sgq {

namespace {

/// One parsed graph pattern element.
struct PatternElement {
  std::string src_var;
  std::string trg_var;
  std::string label;             // edge label or PATH name
  bool is_path = false;          // -/<...>/-> form
  bool is_named_path = false;    // ~Name inside a path pattern
  ClosureKind closure = ClosureKind::kNone;
};

/// One MATCH..ON group.
struct MatchGroup {
  std::vector<PatternElement> base;
  std::vector<std::vector<PatternElement>> optionals;
  std::string stream_name;
  bool has_window = false;
  WindowSpec window;
};

/// Token cursor over the whole query text.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool TryConsume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) != token) return false;
    // Keywords must not run into identifiers.
    if (!token.empty() &&
        std::isalpha(static_cast<unsigned char>(token.back()))) {
      const std::size_t after = pos_ + token.size();
      if (after < text_.size() &&
          (std::isalnum(static_cast<unsigned char>(text_[after])) ||
           text_[after] == '_')) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  Status Expect(std::string_view token) {
    if (!TryConsume(token)) {
      return Status::ParseError("G-CORE: expected '" + std::string(token) +
                                "' near offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<std::string> Identifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("G-CORE: expected identifier at offset " +
                                std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<long> Number() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("G-CORE: expected number at offset " +
                                std::to_string(pos_));
    }
    return std::stol(std::string(text_.substr(start, pos_ - start)));
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses "(var)" and returns the variable name.
Result<std::string> ParseVertex(Cursor* c) {
  SGQ_RETURN_NOT_OK(c->Expect("("));
  SGQ_ASSIGN_OR_RETURN(std::string var, c->Identifier());
  SGQ_RETURN_NOT_OK(c->Expect(")"));
  return var;
}

/// Parses the closure quantifier suffix: '*', '+', '^*', '^+'.
ClosureKind ParseQuantifier(Cursor* c) {
  c->TryConsume("^");
  if (c->TryConsume("*")) return ClosureKind::kStar;
  if (c->TryConsume("+")) return ClosureKind::kPlus;
  return ClosureKind::kNone;
}

/// Parses a pattern chain: (a)-[:l1]->(b)<-[:l2]-(c)-/<:l3*>/->(d)...
/// Consecutive edges share the intermediate vertex (ASCII-art syntax).
Result<std::vector<PatternElement>> ParseChain(Cursor* c) {
  std::vector<PatternElement> out;
  SGQ_ASSIGN_OR_RETURN(std::string left, ParseVertex(c));
  while (true) {
    const char next = c->Peek();
    if (next != '-' && next != '<') break;

    PatternElement elem;
    bool reversed = false;
    if (c->TryConsume("<-")) {
      reversed = true;
      // (y)<-[:l]-(x)
      SGQ_RETURN_NOT_OK(c->Expect("["));
      SGQ_RETURN_NOT_OK(c->Expect(":"));
      SGQ_ASSIGN_OR_RETURN(elem.label, c->Identifier());
      SGQ_RETURN_NOT_OK(c->Expect("]"));
      SGQ_RETURN_NOT_OK(c->Expect("-"));
    } else {
      SGQ_RETURN_NOT_OK(c->Expect("-"));
      if (c->TryConsume("/")) {
        // Path pattern: -/<:l*>/-> or -/<~Name*>/->
        elem.is_path = true;
        SGQ_RETURN_NOT_OK(c->Expect("<"));
        if (c->TryConsume("~")) {
          elem.is_named_path = true;
        } else {
          SGQ_RETURN_NOT_OK(c->Expect(":"));
        }
        SGQ_ASSIGN_OR_RETURN(elem.label, c->Identifier());
        elem.closure = ParseQuantifier(c);
        SGQ_RETURN_NOT_OK(c->Expect(">"));
        SGQ_RETURN_NOT_OK(c->Expect("/"));
        SGQ_RETURN_NOT_OK(c->Expect("->"));
      } else {
        SGQ_RETURN_NOT_OK(c->Expect("["));
        SGQ_RETURN_NOT_OK(c->Expect(":"));
        SGQ_ASSIGN_OR_RETURN(elem.label, c->Identifier());
        SGQ_RETURN_NOT_OK(c->Expect("]"));
        SGQ_RETURN_NOT_OK(c->Expect("->"));
      }
    }
    SGQ_ASSIGN_OR_RETURN(std::string right, ParseVertex(c));
    elem.src_var = reversed ? right : left;
    elem.trg_var = reversed ? left : right;
    out.push_back(std::move(elem));
    left = right;  // the chain continues from the right endpoint
  }
  if (out.empty()) {
    return Status::ParseError("G-CORE: expected an edge pattern at offset " +
                              std::to_string(c->pos()));
  }
  return out;
}

/// Parses a comma-separated list of pattern chains.
Result<std::vector<PatternElement>> ParsePatternList(Cursor* c) {
  std::vector<PatternElement> out;
  while (true) {
    SGQ_ASSIGN_OR_RETURN(std::vector<PatternElement> chain, ParseChain(c));
    for (PatternElement& e : chain) out.push_back(std::move(e));
    if (!c->TryConsume(",")) break;
  }
  return out;
}

Result<Timestamp> ParseDuration(Cursor* c) {
  SGQ_RETURN_NOT_OK(c->Expect("("));
  SGQ_ASSIGN_OR_RETURN(long n, c->Number());
  Timestamp unit = 0;
  if (c->TryConsume("HOURS") || c->TryConsume("HOUR") || c->TryConsume("H") ||
      c->TryConsume("h")) {
    unit = 1;  // 1 time unit == 1 hour (workload/generators.h convention)
  } else if (c->TryConsume("DAYS") || c->TryConsume("DAY") ||
             c->TryConsume("D") || c->TryConsume("d")) {
    unit = 24;
  } else {
    return Status::ParseError("G-CORE: expected time unit at offset " +
                              std::to_string(c->pos()));
  }
  SGQ_RETURN_NOT_OK(c->Expect(")"));
  return n * unit;
}

/// Compiles a pattern list into rule body atoms; closure path elements
/// become closure atoms with label-canonical aliases (equal closures over
/// one base label share one alias, so their PATH operators dedupe by
/// canonical signature — same scheme as the Datalog front end).
Result<std::vector<BodyAtom>> CompileBody(
    const std::vector<PatternElement>& patterns,
    const std::set<std::string>& path_names, Vocabulary* vocab) {
  std::vector<BodyAtom> body;
  for (const PatternElement& p : patterns) {
    BodyAtom atom;
    atom.src = p.src_var;
    atom.trg = p.trg_var;
    if (p.is_named_path && path_names.count(p.label) == 0) {
      return Status::ParseError("G-CORE: unknown PATH name '" + p.label +
                                "'");
    }
    // Named paths and rule heads are derived labels; others are inputs.
    auto found = vocab->FindLabel(p.label);
    if (found.ok()) {
      atom.label = *found;
    } else if (p.is_named_path) {
      SGQ_ASSIGN_OR_RETURN(atom.label, vocab->InternDerivedLabel(p.label));
    } else {
      SGQ_ASSIGN_OR_RETURN(atom.label, vocab->InternInputLabel(p.label));
    }
    if (p.is_path && p.closure != ClosureKind::kNone) {
      atom.closure = p.closure;
      SGQ_ASSIGN_OR_RETURN(
          atom.alias,
          vocab->InternDerivedLabel("__gcore_path_" + p.label));
    }
    body.push_back(std::move(atom));
  }
  return body;
}

}  // namespace

Result<StreamingGraphQuery> ParseGCore(const std::string& text,
                                       Vocabulary* vocab) {
  Cursor c(text);
  StreamingGraphQuery query;
  query.window = WindowSpec(24, 1);

  // --- PATH clauses ---
  struct NamedPath {
    std::string name;
    std::vector<PatternElement> patterns;
  };
  std::vector<NamedPath> named_paths;
  std::set<std::string> path_names;
  while (c.TryConsume("PATH")) {
    NamedPath np;
    SGQ_ASSIGN_OR_RETURN(np.name, c.Identifier());
    SGQ_RETURN_NOT_OK(c.Expect("="));
    SGQ_ASSIGN_OR_RETURN(np.patterns, ParsePatternList(&c));
    path_names.insert(np.name);
    named_paths.push_back(std::move(np));
  }

  // --- CONSTRUCT clause ---
  SGQ_RETURN_NOT_OK(c.Expect("CONSTRUCT"));
  SGQ_ASSIGN_OR_RETURN(std::vector<PatternElement> construct_chain,
                       ParseChain(&c));
  if (construct_chain.size() != 1 || construct_chain[0].is_path) {
    return Status::Unsupported("G-CORE: CONSTRUCT must be a plain edge");
  }
  const PatternElement construct = construct_chain[0];

  // --- MATCH..ON groups ---
  std::vector<MatchGroup> groups;
  while (c.TryConsume("MATCH")) {
    MatchGroup group;
    if (c.Peek() == '(') {
      SGQ_ASSIGN_OR_RETURN(group.base, ParsePatternList(&c));
    }
    while (c.TryConsume("OPTIONAL")) {
      SGQ_ASSIGN_OR_RETURN(auto opt, ParsePatternList(&c));
      group.optionals.push_back(std::move(opt));
    }
    if (c.TryConsume("ON")) {
      SGQ_ASSIGN_OR_RETURN(group.stream_name, c.Identifier());
      if (c.TryConsume("WINDOW")) {
        group.has_window = true;
        SGQ_ASSIGN_OR_RETURN(group.window.size, ParseDuration(&c));
        group.window.slide = 1;
        if (c.TryConsume("SLIDE")) {
          SGQ_ASSIGN_OR_RETURN(group.window.slide, ParseDuration(&c));
        }
      }
    }
    groups.push_back(std::move(group));
  }
  if (groups.empty()) {
    return Status::ParseError("G-CORE: query needs a MATCH clause");
  }

  // --- WHERE equalities: unify variables ---
  std::map<std::string, std::string> substitution;
  if (c.TryConsume("WHERE")) {
    do {
      SGQ_ASSIGN_OR_RETURN(std::string lhs, ParseVertex(&c));
      SGQ_RETURN_NOT_OK(c.Expect("="));
      SGQ_ASSIGN_OR_RETURN(std::string rhs, ParseVertex(&c));
      substitution[rhs] = lhs;
    } while (c.TryConsume("AND") || c.TryConsume(","));
  }
  if (!c.AtEnd()) {
    return Status::ParseError("G-CORE: trailing input at offset " +
                              std::to_string(c.pos()));
  }
  auto subst = [&](const std::string& var) {
    auto it = substitution.find(var);
    return it == substitution.end() ? var : it->second;
  };

  // --- Compile to RQ ---
  RegularQuery rq;

  // Named PATH definitions: head endpoints are those of the first pattern.
  for (const NamedPath& np : named_paths) {
    Rule rule;
    SGQ_ASSIGN_OR_RETURN(rule.head, vocab->InternDerivedLabel(np.name));
    rule.head_src = np.patterns.front().src_var;
    rule.head_trg = np.patterns.front().trg_var;
    SGQ_ASSIGN_OR_RETURN(
        rule.body, CompileBody(np.patterns, path_names, vocab));
    rq.AddRule(std::move(rule));
  }

  // Output rule(s): one per OPTIONAL alternative (paper Example 4), plus
  // the base-only rule when there are no optionals.
  SGQ_ASSIGN_OR_RETURN(LabelId out_label,
                       vocab->InternDerivedLabel(construct.label));
  std::vector<std::vector<PatternElement>> alternatives;
  {
    std::vector<PatternElement> combined;
    for (const MatchGroup& g : groups) {
      combined.insert(combined.end(), g.base.begin(), g.base.end());
    }
    bool any_optional = false;
    for (const MatchGroup& g : groups) {
      for (const auto& opt : g.optionals) {
        any_optional = true;
        std::vector<PatternElement> alt = combined;
        alt.insert(alt.end(), opt.begin(), opt.end());
        alternatives.push_back(std::move(alt));
      }
    }
    if (!any_optional) alternatives.push_back(std::move(combined));
  }
  for (const auto& alt : alternatives) {
    if (alt.empty()) {
      return Status::ParseError("G-CORE: empty MATCH alternative");
    }
    Rule rule;
    rule.head = out_label;
    rule.head_src = subst(construct.src_var);
    rule.head_trg = subst(construct.trg_var);
    SGQ_ASSIGN_OR_RETURN(
        rule.body, CompileBody(alt, path_names, vocab));
    for (BodyAtom& atom : rule.body) {
      atom.src = subst(atom.src);
      atom.trg = subst(atom.trg);
    }
    rq.AddRule(std::move(rule));
  }

  // Answer(x, y) <- out_label(x, y).
  {
    Rule answer;
    SGQ_ASSIGN_OR_RETURN(answer.head, vocab->InternDerivedLabel("Answer"));
    answer.head_src = "x";
    answer.head_trg = "y";
    BodyAtom atom;
    atom.label = out_label;
    atom.src = "x";
    atom.trg = "y";
    answer.body.push_back(std::move(atom));
    rq.SetAnswer(answer.head);
    rq.AddRule(std::move(answer));
  }

  // Windows: the first windowed group sets the default; later groups set
  // per-label overrides for the input labels they mention.
  bool default_set = false;
  for (const MatchGroup& g : groups) {
    if (!g.has_window) continue;
    if (!default_set) {
      query.window = g.window;
      default_set = true;
      continue;
    }
    auto collect = [&](const std::vector<PatternElement>& patterns) {
      for (const PatternElement& p : patterns) {
        auto found = vocab->FindLabel(p.label);
        if (found.ok() && vocab->IsInputLabel(*found)) {
          query.per_label_windows[*found] = g.window;
        }
      }
    };
    collect(g.base);
    for (const auto& opt : g.optionals) collect(opt);
  }

  SGQ_RETURN_NOT_OK(rq.Validate(*vocab));
  query.rq = std::move(rq);
  return query;
}

}  // namespace sgq

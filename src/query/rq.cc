#include "query/rq.h"

#include <algorithm>
#include <cctype>
#include <queue>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace sgq {

std::vector<const Rule*> RegularQuery::RulesFor(LabelId label) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (r.head == label) out.push_back(&r);
  }
  return out;
}

std::unordered_map<LabelId, std::vector<LabelId>>
RegularQuery::DependencyGraph() const {
  std::unordered_map<LabelId, std::vector<LabelId>> deps;
  for (const Rule& r : rules_) {
    auto& d = deps[r.head];
    for (const BodyAtom& a : r.body) {
      if (a.IsClosure()) {
        // head depends on the alias; the alias depends on the base label.
        d.push_back(a.alias);
        deps[a.alias].push_back(a.label);
      } else {
        d.push_back(a.label);
      }
    }
  }
  return deps;
}

Result<std::vector<LabelId>> RegularQuery::TopologicalOrder() const {
  auto deps = DependencyGraph();
  std::vector<LabelId> order;
  std::unordered_map<LabelId, int> mark;  // 0 = new, 1 = visiting, 2 = done

  // Iterative DFS with an explicit stack for post-order.
  std::vector<LabelId> roots;
  for (const auto& [label, _] : deps) roots.push_back(label);
  std::sort(roots.begin(), roots.end());

  for (LabelId root : roots) {
    if (mark[root] == 2) continue;
    std::vector<std::pair<LabelId, std::size_t>> stack = {{root, 0}};
    mark[root] = 1;
    while (!stack.empty()) {
      auto& [label, child_idx] = stack.back();
      auto it = deps.find(label);
      const std::vector<LabelId>& children =
          it != deps.end() ? it->second : std::vector<LabelId>{};
      if (child_idx < children.size()) {
        LabelId child = children[child_idx++];
        if (deps.count(child) == 0) continue;  // EDB leaf
        if (mark[child] == 1) {
          return Status::InvalidArgument(
              "recursive dependency through predicate id " +
              std::to_string(child) + " (RQ must be non-recursive)");
        }
        if (mark[child] == 0) {
          mark[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        mark[label] = 2;
        order.push_back(label);
        stack.pop_back();
      }
    }
  }
  return order;
}

Status RegularQuery::Validate(const Vocabulary& vocab) const {
  if (rules_.empty()) return Status::InvalidArgument("RQ has no rules");
  if (answer_ == kInvalidLabel) {
    return Status::InvalidArgument("RQ has no Answer predicate");
  }
  std::set<LabelId> heads;
  for (const Rule& r : rules_) heads.insert(r.head);
  if (heads.count(answer_) == 0) {
    return Status::InvalidArgument("no rule defines the Answer predicate");
  }
  for (const Rule& r : rules_) {
    if (vocab.IsInputLabel(r.head)) {
      return Status::InvalidArgument("rule head '" + vocab.LabelName(r.head) +
                                     "' is an input label; heads must be "
                                     "derived (Def. 13)");
    }
    if (r.body.empty()) {
      return Status::InvalidArgument("rule for '" + vocab.LabelName(r.head) +
                                     "' has an empty body");
    }
    std::set<std::string> body_vars;
    for (const BodyAtom& a : r.body) {
      body_vars.insert(a.src);
      body_vars.insert(a.trg);
      if (a.IsClosure()) {
        if (a.alias == kInvalidLabel) {
          return Status::InvalidArgument("closure atom over '" +
                                         vocab.LabelName(a.label) +
                                         "' lacks an alias label");
        }
        if (vocab.IsInputLabel(a.alias)) {
          return Status::InvalidArgument(
              "closure alias '" + vocab.LabelName(a.alias) +
              "' is an input label; aliases must be derived");
        }
        if (heads.count(a.alias) > 0) {
          return Status::InvalidArgument(
              "closure alias '" + vocab.LabelName(a.alias) +
              "' collides with a rule head");
        }
      }
    }
    if (body_vars.count(r.head_src) == 0 ||
        body_vars.count(r.head_trg) == 0) {
      return Status::InvalidArgument(
          "head variables of '" + vocab.LabelName(r.head) +
          "' must appear in the rule body (safety)");
    }
  }
  // Non-recursiveness.
  auto topo = TopologicalOrder();
  if (!topo.ok()) return topo.status();
  return Status::OK();
}

std::vector<LabelId> RegularQuery::InputLabels(const Vocabulary& vocab) const {
  std::set<LabelId> labels;
  for (const Rule& r : rules_) {
    for (const BodyAtom& a : r.body) {
      if (vocab.IsInputLabel(a.label)) labels.insert(a.label);
    }
  }
  return std::vector<LabelId>(labels.begin(), labels.end());
}

std::string RegularQuery::ToString(const Vocabulary& vocab) const {
  std::ostringstream os;
  for (const Rule& r : rules_) {
    os << vocab.LabelName(r.head) << "(" << r.head_src << ", " << r.head_trg
       << ") <- ";
    for (std::size_t i = 0; i < r.body.size(); ++i) {
      if (i > 0) os << ", ";
      const BodyAtom& a = r.body[i];
      os << vocab.LabelName(a.label);
      if (a.closure == ClosureKind::kPlus) os << "+";
      if (a.closure == ClosureKind::kStar) os << "*";
      os << "(" << a.src << ", " << a.trg << ")";
      if (a.IsClosure()) os << " as " << vocab.LabelName(a.alias);
    }
    os << "\n";
  }
  return os.str();
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "name(var, var)" with optional +/* after the name; advances *pos.
struct ParsedAtom {
  std::string name;
  std::string src;
  std::string trg;
  ClosureKind closure = ClosureKind::kNone;
  std::string alias;  // empty if none
};

Result<ParsedAtom> ParseAtomText(std::string_view text, std::size_t* pos) {
  auto skip = [&] {
    while (*pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[*pos]))) {
      ++*pos;
    }
  };
  auto ident = [&]() -> Result<std::string> {
    skip();
    std::size_t start = *pos;
    while (*pos < text.size() && IsIdentChar(text[*pos])) ++*pos;
    if (*pos == start) {
      return Status::ParseError("expected identifier at offset " +
                                std::to_string(*pos));
    }
    return std::string(text.substr(start, *pos - start));
  };
  auto expect = [&](char c) -> Status {
    skip();
    if (*pos >= text.size() || text[*pos] != c) {
      return Status::ParseError(std::string("expected '") + c +
                                "' at offset " + std::to_string(*pos));
    }
    ++*pos;
    return Status::OK();
  };

  ParsedAtom atom;
  SGQ_ASSIGN_OR_RETURN(atom.name, ident());
  skip();
  if (*pos < text.size() && (text[*pos] == '+' || text[*pos] == '*')) {
    atom.closure =
        text[*pos] == '+' ? ClosureKind::kPlus : ClosureKind::kStar;
    ++*pos;
  }
  SGQ_RETURN_NOT_OK(expect('('));
  SGQ_ASSIGN_OR_RETURN(atom.src, ident());
  SGQ_RETURN_NOT_OK(expect(','));
  SGQ_ASSIGN_OR_RETURN(atom.trg, ident());
  SGQ_RETURN_NOT_OK(expect(')'));
  // Optional "as Alias".
  skip();
  if (*pos + 2 <= text.size() && text.substr(*pos, 2) == "as" &&
      (*pos + 2 == text.size() || !IsIdentChar(text[*pos + 2]))) {
    *pos += 2;
    SGQ_ASSIGN_OR_RETURN(atom.alias, ident());
  }
  return atom;
}

}  // namespace

Result<RegularQuery> ParseRq(std::string_view text, Vocabulary* vocab) {
  struct RawRule {
    ParsedAtom head;
    std::vector<ParsedAtom> body;
  };
  std::vector<RawRule> raw_rules;

  std::size_t line_no = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_no;
    std::string_view line = TrimString(raw_line);
    if (line.empty() || line.front() == '#') continue;
    // Split on "<-" or ":-".
    std::size_t arrow = line.find("<-");
    if (arrow == std::string_view::npos) arrow = line.find(":-");
    if (arrow == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": missing '<-'");
    }
    RawRule rule;
    {
      std::string_view head_text = line.substr(0, arrow);
      std::size_t pos = 0;
      auto head = ParseAtomText(head_text, &pos);
      if (!head.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  " (head): " + head.status().message());
      }
      rule.head = std::move(head).ValueOrDie();
      if (rule.head.closure != ClosureKind::kNone) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": rule head cannot carry closure");
      }
    }
    std::string_view body_text = line.substr(arrow + 2);
    std::size_t pos = 0;
    while (true) {
      auto atom = ParseAtomText(body_text, &pos);
      if (!atom.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  " (body): " + atom.status().message());
      }
      rule.body.push_back(std::move(atom).ValueOrDie());
      while (pos < body_text.size() &&
             std::isspace(static_cast<unsigned char>(body_text[pos]))) {
        ++pos;
      }
      if (pos >= body_text.size() || body_text[pos] == '.') break;
      if (body_text[pos] != ',') {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected ',' between atoms");
      }
      ++pos;
    }
    raw_rules.push_back(std::move(rule));
  }
  if (raw_rules.empty()) return Status::ParseError("no rules in query text");

  // Pass 1: intern all head names and closure aliases as derived labels.
  // Generated closure aliases are label-canonical: every `a+` atom maps to
  // the one alias `__tc_a` no matter which rule (or position) it appears
  // in, so the PATH operators compiled for equal closures share one
  // canonical PlanSignature — and therefore one physical operator — across
  // rules and across registered queries (core/engine.h).
  std::set<std::string> idb_names;
  for (const RawRule& r : raw_rules) idb_names.insert(r.head.name);
  for (RawRule& r : raw_rules) {
    for (ParsedAtom& a : r.body) {
      if (a.closure != ClosureKind::kNone && a.alias.empty()) {
        a.alias = "__tc_" + a.name;
      }
      if (!a.alias.empty()) idb_names.insert(a.alias);
    }
  }
  for (const std::string& name : idb_names) {
    SGQ_RETURN_NOT_OK(vocab->InternDerivedLabel(name).status());
  }

  // Pass 2: build the RegularQuery; unknown body labels become EDB.
  RegularQuery rq;
  for (const RawRule& raw : raw_rules) {
    Rule rule;
    SGQ_ASSIGN_OR_RETURN(rule.head, vocab->FindLabel(raw.head.name));
    rule.head_src = raw.head.src;
    rule.head_trg = raw.head.trg;
    for (const ParsedAtom& a : raw.body) {
      BodyAtom atom;
      auto found = vocab->FindLabel(a.name);
      if (found.ok()) {
        atom.label = *found;
      } else {
        SGQ_ASSIGN_OR_RETURN(atom.label, vocab->InternInputLabel(a.name));
      }
      atom.src = a.src;
      atom.trg = a.trg;
      atom.closure = a.closure;
      if (!a.alias.empty()) {
        SGQ_ASSIGN_OR_RETURN(atom.alias, vocab->FindLabel(a.alias));
      }
      rule.body.push_back(std::move(atom));
    }
    rq.AddRule(std::move(rule));
  }
  // The answer predicate: "Answer" or "Ans".
  for (const char* name : {"Answer", "Ans"}) {
    auto found = vocab->FindLabel(name);
    if (found.ok()) {
      rq.SetAnswer(*found);
      break;
    }
  }
  if (rq.answer() == kInvalidLabel) {
    return Status::ParseError(
        "query must define an 'Answer' (or 'Ans') rule");
  }
  SGQ_RETURN_NOT_OK(rq.Validate(*vocab));
  return rq;
}

}  // namespace sgq

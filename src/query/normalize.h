// RQ normalization: expansion of star-closure atoms.
//
// Validity intervals are derived from the edges of a path (Def. 20), so a
// zero-length path has no well-defined validity; the engine therefore emits
// only paths with at least one edge. To preserve the semantics of star
// atoms *inside rule bodies* (e.g. Q2 = a . b*), normalization rewrites
// each rule with k star atoms into up to 2^k rules: for every subset of
// star atoms taken as "empty", the atom is dropped and its endpoint
// variables are unified; remaining closure atoms become plus-closures.
// Rules whose body would become empty (a bare top-level star) are dropped,
// which realizes the "no empty matches" convention.

#ifndef SGQ_QUERY_NORMALIZE_H_
#define SGQ_QUERY_NORMALIZE_H_

#include "query/rq.h"

namespace sgq {

/// \brief Returns an equivalent RQ in which every closure atom is a
/// plus-closure (see file comment for the star-elimination construction).
RegularQuery ExpandStarClosures(const RegularQuery& rq);

}  // namespace sgq

#endif  // SGQ_QUERY_NORMALIZE_H_

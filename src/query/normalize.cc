#include "query/normalize.h"

#include <string>
#include <vector>

namespace sgq {

namespace {

/// Replaces variable `from` with `to` in every atom and the head.
void SubstituteVar(Rule* rule, const std::string& from,
                   const std::string& to) {
  if (rule->head_src == from) rule->head_src = to;
  if (rule->head_trg == from) rule->head_trg = to;
  for (BodyAtom& a : rule->body) {
    if (a.src == from) a.src = to;
    if (a.trg == from) a.trg = to;
  }
}

/// Expands star atoms of `rule` starting at body index `idx`, appending all
/// resulting star-free variants to `out`.
void ExpandRule(Rule rule, std::size_t idx, std::vector<Rule>* out) {
  for (; idx < rule.body.size(); ++idx) {
    if (rule.body[idx].closure == ClosureKind::kStar) break;
  }
  if (idx == rule.body.size()) {
    if (!rule.body.empty()) out->push_back(std::move(rule));
    return;
  }
  // Variant 1: at least one step -> plus-closure.
  {
    Rule taken = rule;
    taken.body[idx].closure = ClosureKind::kPlus;
    ExpandRule(std::move(taken), idx + 1, out);
  }
  // Variant 2: empty path -> unify endpoints, drop the atom.
  {
    Rule empty = rule;
    const std::string src = empty.body[idx].src;
    const std::string trg = empty.body[idx].trg;
    empty.body.erase(empty.body.begin() + static_cast<std::ptrdiff_t>(idx));
    if (src != trg) SubstituteVar(&empty, trg, src);
    ExpandRule(std::move(empty), idx, out);
  }
}

}  // namespace

RegularQuery ExpandStarClosures(const RegularQuery& rq) {
  RegularQuery out;
  out.SetAnswer(rq.answer());
  for (const Rule& rule : rq.rules()) {
    std::vector<Rule> expanded;
    ExpandRule(rule, 0, &expanded);
    for (Rule& r : expanded) out.AddRule(std::move(r));
  }
  return out;
}

}  // namespace sgq

// Regular Queries (paper Def. 13): binary non-recursive Datalog extended
// with transitive closure of binary predicates. RQ is the logical query
// model underlying SGQ; SGQParser (algebra/translate.h) compiles it to SGA.

#ifndef SGQ_QUERY_RQ_H_
#define SGQ_QUERY_RQ_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "model/types.h"
#include "model/vocabulary.h"
#include "model/window.h"

namespace sgq {

/// \brief Kind of transitive closure applied to a body atom.
enum class ClosureKind {
  kNone,  ///< plain binary predicate l(x, y)
  kPlus,  ///< (l+ (x, y) as d): one or more steps
  kStar,  ///< (l* (x, y) as d): zero or more steps
};

/// \brief One body atom of a rule: l(src, trg), optionally under closure.
///
/// Closure atoms carry the derived label `alias` that names the produced
/// path relation (the "as d" of Def. 13); plain atoms leave it invalid.
struct BodyAtom {
  LabelId label = kInvalidLabel;  ///< predicate label (EDB or IDB)
  std::string src;                ///< source variable name
  std::string trg;                ///< target variable name
  ClosureKind closure = ClosureKind::kNone;
  LabelId alias = kInvalidLabel;  ///< path label for closure atoms

  bool IsClosure() const { return closure != ClosureKind::kNone; }
};

/// \brief One Datalog rule: head(head_src, head_trg) <- body.
struct Rule {
  LabelId head = kInvalidLabel;  ///< derived (IDB) label
  std::string head_src;
  std::string head_trg;
  std::vector<BodyAtom> body;
};

/// \brief A Regular Query: a set of rules plus the designated answer label.
///
/// The implemented fragment keeps the Answer predicate binary (SGA outputs
/// are streaming graphs, which are binary by construction).
class RegularQuery {
 public:
  RegularQuery() = default;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void SetAnswer(LabelId label) { answer_ = label; }

  const std::vector<Rule>& rules() const { return rules_; }
  LabelId answer() const { return answer_; }

  /// \brief Rules whose head is `label`.
  std::vector<const Rule*> RulesFor(LabelId label) const;

  /// \brief Checks well-formedness against Def. 13:
  ///  - every head and closure alias is a derived label,
  ///  - head variables appear in the rule body,
  ///  - the dependency graph is acyclic (non-recursive),
  ///  - the answer label is defined by at least one rule.
  Status Validate(const Vocabulary& vocab) const;

  /// \brief Topological order of IDB labels (dependencies first).
  /// Closure aliases are ordered after their underlying label's definition.
  /// Fails on recursion.
  Result<std::vector<LabelId>> TopologicalOrder() const;

  /// \brief All EDB labels referenced by the query.
  std::vector<LabelId> InputLabels(const Vocabulary& vocab) const;

  /// \brief Debug rendering.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  /// Dependency edges: for each defined IDB label, the labels it reads.
  std::unordered_map<LabelId, std::vector<LabelId>> DependencyGraph() const;

  std::vector<Rule> rules_;
  LabelId answer_ = kInvalidLabel;
};

/// \brief A streaming graph query (Def. 15): an RQ plus a time-based
/// sliding window; optional per-input-label window overrides support
/// multi-stream queries (paper Example 4 windows two streams differently).
struct StreamingGraphQuery {
  RegularQuery rq;
  WindowSpec window;
  std::unordered_map<LabelId, WindowSpec> per_label_windows;

  /// \brief Window applying to input label `l`.
  const WindowSpec& WindowFor(LabelId l) const {
    auto it = per_label_windows.find(l);
    return it == per_label_windows.end() ? window : it->second;
  }
};

/// \brief Parses the Datalog-style text form of an RQ.
///
/// Syntax, one rule per line (comments start with '#'):
///   RL(x,y) <- likes(x,m), follows+(x,y) as FP, posts(y,m)
///   Answer(x,m) <- RL+(x,y) as RLP, posts(y,m)
/// `label+(x,y)`/`label*(x,y)` denote transitive closure; `as Alias` names
/// the materialized path label (auto-generated when omitted). The rule head
/// named `Answer` (or `Ans`) designates the answer predicate. Labels that
/// never appear as a head or alias are interned as input (EDB) labels.
Result<RegularQuery> ParseRq(std::string_view text, Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_QUERY_RQ_H_

// Synthetic stream generators standing in for the paper's datasets
// (§7.1.2). See DESIGN.md for the substitution rationale: the generators
// reproduce the *structural* properties the evaluation hinges on —
// SO's density and cyclicity, SNB's tree-shaped replyOf — at laptop scale.
//
// Time unit convention: 1 unit = 1 hour (kHour); the paper's windows map
// to size = 30 * kDay, slide = kDay.

#ifndef SGQ_WORKLOAD_GENERATORS_H_
#define SGQ_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "model/sgt.h"
#include "model/vocabulary.h"

namespace sgq {

inline constexpr Timestamp kHour = 1;
inline constexpr Timestamp kDay = 24 * kHour;
inline constexpr Timestamp kMonth = 30 * kDay;

/// \brief Options for the StackOverflow-like temporal graph generator.
///
/// SO is a single-vertex-type interaction graph with three edge labels
/// (answer-to-question a2q, comment-to-question c2q, comment-to-answer
/// c2a). Preferential attachment produces heavy-tailed degrees; both
/// endpoints are drawn from the same population, so cycles are frequent —
/// the property that makes SO "the most challenging" workload (§7.1.2).
struct SoOptions {
  uint64_t seed = 42;
  std::size_t num_vertices = 800;
  std::size_t num_edges = 20000;
  /// Probability of choosing an endpoint by degree (hub bias).
  double preferential_fraction = 0.7;
  /// Average number of edges arriving per hour.
  double edges_per_hour = 4.0;
  /// Probability that an event explicitly deletes a recently inserted edge
  /// (negative sge) instead of inserting a new one. 0 (the default) keeps
  /// the generated stream bit-identical to the pre-option generator: the
  /// deletion coin is only drawn when the probability is positive.
  double deletion_probability = 0.0;
  /// Deletion victims are drawn from the most recent `deletion_horizon`
  /// insertions, so deletions hit live window state.
  std::size_t deletion_horizon = 4096;
};

/// \brief Generates an SO-like input stream; labels a2q/c2q/c2a are
/// interned into `vocab` as input labels.
Result<InputStream> GenerateSoStream(const SoOptions& options,
                                     Vocabulary* vocab);

/// \brief Options for the LDBC-SNB-like update stream generator.
///
/// Persons and messages with four labels: knows (person-person, community
/// structured), hasCreator (message-person), likes (person-message) and
/// replyOf (message-message). Every message replies to at most one OLDER
/// message, so replyOf is forest-shaped: between any two vertices there is
/// at most one replyOf path — the property behind DD's advantage on the
/// linear path queries (§7.2.2).
struct SnbOptions {
  uint64_t seed = 7;
  std::size_t num_persons = 400;
  std::size_t num_communities = 16;
  std::size_t num_events = 20000;
  double reply_probability = 0.6;   ///< new message is a reply
  double knows_probability = 0.15;  ///< event is a friendship
  double likes_probability = 0.45;  ///< event is a like
  double edges_per_hour = 4.0;
};

/// \brief Generates an SNB-like input stream; labels knows/likes/
/// hasCreator/replyOf are interned into `vocab` as input labels.
Result<InputStream> GenerateSnbStream(const SnbOptions& options,
                                      Vocabulary* vocab);

/// \brief Uniform random stream over `num_labels` labels and
/// `num_vertices` vertices; the fuzz/property tests use this.
struct RandomStreamOptions {
  uint64_t seed = 1;
  std::size_t num_vertices = 12;
  std::size_t num_labels = 3;
  std::size_t num_edges = 120;
  Timestamp max_gap = 3;  ///< timestamp gap between consecutive edges
  /// Probability that an element explicitly deletes a previous edge.
  double deletion_probability = 0.0;
};

Result<InputStream> GenerateRandomStream(const RandomStreamOptions& options,
                                         Vocabulary* vocab);

/// \brief Options for the skewed query-population stream.
///
/// Labels "l0".."l<num_labels-1>" with Zipf-distributed frequencies ("l0"
/// hottest): the standing-query-population regime of
/// bench/bench_query_scale.cc, where K single-label queries stand over a
/// stream whose label mix is heavy-tailed, so each arriving edge matches
/// O(1) queries no matter how large K grows. Real workloads motivating the
/// query index look like this; a uniform label mix would understate the
/// win (every label equally hot) without changing the asymptotics.
struct ZipfStreamOptions {
  uint64_t seed = 11;
  std::size_t num_vertices = 1000;
  std::size_t num_labels = 64;
  std::size_t num_edges = 20000;
  /// Zipf exponent: label rank r is drawn with weight 1/r^skew. 0 makes
  /// the mix uniform.
  double skew = 1.0;
  double edges_per_hour = 4.0;
};

/// \brief Generates the Zipf-label stream; every label is interned into
/// `vocab` as an input label (so queries over cold labels still compile).
Result<InputStream> GenerateZipfLabelStream(const ZipfStreamOptions& options,
                                            Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_WORKLOAD_GENERATORS_H_

#include "workload/queries.h"

namespace sgq {

std::vector<BenchQuery> SoQuerySet() {
  // SO has one vertex type and three labels; a/b/c map to a2q/c2q/c2a.
  return {
      {"Q1", "Answer(x,y) <- a2q*(x,y)"},
      {"Q2", "Answer(x,y) <- a2q(x,z), c2q*(z,y)"},
      {"Q3", "Answer(x,y) <- a2q(x,z), c2q*(z,w), c2a*(w,y)"},
      {"Q4",
       "D(x,y) <- a2q(x,z1), c2q(z1,z2), c2a(z2,y)\n"
       "Answer(x,y) <- D+(x,y)"},
      {"Q5",
       "Answer(m1,m2) <- a2q(x,y), c2q(m1,x), c2q(m2,y), c2a(m2,m1)"},
      {"Q6", "Answer(x,y) <- a2q+(x,y), c2q(x,m), c2a(m,y)"},
      {"Q7",
       "RL(x,y) <- a2q+(x,y), c2q(x,m), c2a(m,y)\n"
       "Answer(x,m) <- RL+(x,y), c2a(m,y)"},
  };
}

std::vector<BenchQuery> SnbQuerySet() {
  // Linear path queries run over the forest-shaped replyOf (single path
  // between message pairs — the case where DD's batching shines, §7.2.2);
  // Q5 is IS7 ("replies by friends"), Q6 is IC7 ("recent likers"), Q7 is
  // Example 1 (paths over the recentLiker pattern).
  return {
      {"Q1", "Answer(x,y) <- replyOf*(x,y)"},
      {"Q2", "Answer(x,y) <- likes(x,z), replyOf*(z,y)"},
      {"Q3",
       "Answer(x,y) <- likes(x,z), replyOf*(z,w), hasCreator*(w,y)"},
      {"Q4",
       "D(x,y) <- knows(x,z1), likes(z1,z2), hasCreator(z2,y)\n"
       "Answer(x,y) <- D+(x,y)"},
      {"Q5",
       "Answer(m1,m2) <- knows(x,y), hasCreator(m1,x), hasCreator(m2,y), "
       "replyOf(m2,m1)"},
      {"Q6", "Answer(x,y) <- knows+(x,y), likes(x,m), hasCreator(m,y)"},
      {"Q7",
       "RL(x,y) <- knows+(x,y), likes(x,m), hasCreator(m,y)\n"
       "Answer(x,m) <- RL+(x,y), hasCreator(m,y)"},
  };
}

Result<StreamingGraphQuery> MakeQuery(const std::string& text,
                                      WindowSpec window, Vocabulary* vocab) {
  StreamingGraphQuery query;
  SGQ_ASSIGN_OR_RETURN(query.rq, ParseRq(text, vocab));
  query.window = window;
  return query;
}

}  // namespace sgq

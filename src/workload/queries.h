// The query workload of Table 1, instantiated per dataset (§7.1.3).
//
// Q1-Q4 are RPQs common in real-world query logs; Q5/Q6 are the complex
// graph patterns of LDBC SNB IS7/IC7; Q7 is Example 1 — a recursive path
// query over the graph pattern of Q6 (not expressible in Cypher/SPARQL).

#ifndef SGQ_WORKLOAD_QUERIES_H_
#define SGQ_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "model/vocabulary.h"
#include "model/window.h"
#include "query/rq.h"

namespace sgq {

/// \brief One named workload query in Datalog text form (rq.h syntax).
struct BenchQuery {
  std::string name;  ///< "Q1" .. "Q7"
  std::string text;  ///< rules, instantiated with dataset labels
};

/// \brief Table 1 instantiated with SO labels: a = a2q, b = c2q, c = c2a.
std::vector<BenchQuery> SoQuerySet();

/// \brief Table 1 instantiated with SNB labels (see queries.cc for the
/// per-query label choices mirroring IS7/IC7 and the reply trees).
std::vector<BenchQuery> SnbQuerySet();

/// \brief Parses `text` and attaches a window, producing a runnable SGQ.
Result<StreamingGraphQuery> MakeQuery(const std::string& text,
                                      WindowSpec window, Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_WORKLOAD_QUERIES_H_

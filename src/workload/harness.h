// Benchmark harness (§7.1.1): runs a query over a stream on one of the
// engines and reports the paper's metrics — sustained throughput
// (edges/second over the labels the query consumes) and the 99th-percentile
// latency of a window slide.

#ifndef SGQ_WORKLOAD_HARNESS_H_
#define SGQ_WORKLOAD_HARNESS_H_

#include <string>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/query_processor.h"
#include "model/sgt.h"
#include "query/rq.h"

namespace sgq {

/// \brief Runs `query` over `stream` on the SGA query processor (canonical
/// plan) and reports metrics. `options.path_impl` selects the PATH
/// implementation (Table 3 compares the two).
Result<RunMetrics> RunSga(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, EngineOptions options,
                          std::string name);

/// \brief Runs an explicit logical plan on the SGA query processor
/// (plan-space experiments of §7.4).
Result<RunMetrics> RunSgaPlan(const InputStream& stream,
                              const LogicalOp& plan, const Vocabulary& vocab,
                              EngineOptions options, std::string name);

/// \brief Runs `query` over raw stream bytes (CSV text or SGQB binary,
/// selected by options.ingest_format), parsing as part of the run — the
/// ingest-bound configuration of the async-ingest experiments
/// (bench_ingest_pipeline). Three parse placements, same Sge sequence, so
/// the configurations are directly comparable:
///  - sync (async_ingest off): parse inline on the execution thread;
///  - async, ingest_parsers <= 1: parse on the dedicated ingest thread,
///    overlapped with execution (the PR 5 path);
///  - async, ingest_parsers = N > 1: sharded parse — N parser threads
///    over byte-range chunks behind the order-restoring merge.
/// Labels/vertices are interned into `*vocab`; fails on malformed or
/// out-of-order input. Parse-stage cost lands in RunMetrics
/// (parse_busy_ns / ParseTuplesPerSec).
Result<RunMetrics> RunSgaText(const std::string& bytes,
                              const StreamingGraphQuery& query,
                              Vocabulary* vocab, EngineOptions options,
                              std::string name);

/// \brief RunSgaText over CSV text (options.ingest_format forced to CSV).
Result<RunMetrics> RunSgaCsv(const std::string& csv_text,
                             const StreamingGraphQuery& query,
                             Vocabulary* vocab, EngineOptions options,
                             std::string name);

/// \brief Runs `query` over a stream *file* without materializing it:
/// bytes are served through the bounded readahead window of a
/// model/file_chunk_source.h chunk feeder (options.ingest_file_mode picks
/// mmap vs buffered preads), so peak ingest-buffer memory is
/// O(options.ingest_readahead_chunks · ~256 KB) regardless of file size.
/// The decoded element sequence — and therefore every result and error —
/// is byte-identical to RunSgaText over the same file's bytes in every
/// configuration RunSgaText supports (sync inline parse, async single
/// producer, async sharded parse; options.ingest_format declares the
/// encoding, pair with DetectStreamFileFormat to sniff). Feeder time
/// lands in RunMetrics::readahead_stall_ns.
Result<RunMetrics> RunSgaFile(const std::string& path,
                              const StreamingGraphQuery& query,
                              Vocabulary* vocab, EngineOptions options,
                              std::string name);

/// \brief Crash-recovery driver (DESIGN.md §7): runs `query` over
/// `stream`, checkpointing to `checkpoint_path` after element
/// `checkpoint_at`, keeps pushing until element `kill_at` and then
/// abandons that engine — the simulated crash, losing everything past
/// the snapshot. A fresh engine is compiled from the same query,
/// restored from the checkpoint, resumed from the element index the
/// snapshot recorded (`Engine::ingested()`), and run to the end of the
/// stream. `*results_out` (optional) receives the resumed run's complete
/// result stream; at workers == 1 it is byte-identical to the
/// uninterrupted run's, and identical as a multiset under the sharded
/// configurations' documented reordering.
Result<RunMetrics> RunSgaCheckpointKill(const InputStream& stream,
                                        const StreamingGraphQuery& query,
                                        const Vocabulary& vocab,
                                        EngineOptions options,
                                        const std::string& checkpoint_path,
                                        std::size_t checkpoint_at,
                                        std::size_t kill_at,
                                        std::string name,
                                        std::vector<Sgt>* results_out);

/// \brief Runs `query` on the DD-style baseline engine.
Result<RunMetrics> RunDd(const InputStream& stream,
                         const StreamingGraphQuery& query,
                         const Vocabulary& vocab, std::string name);

/// \brief Metrics of a multi-query Engine run: the aggregate stream-side
/// metrics plus the per-query result demux and sharing counters.
struct MultiQueryMetrics {
  RunMetrics totals;  ///< results_emitted sums every query's sink
  std::vector<std::size_t> per_query_results;  ///< index == QueryId
  std::size_t num_operators = 0;  ///< physical ops, sinks included
  /// Subtree dedup hits, within-registration reuse included (nonzero
  /// even with cross_query_sharing off — one plan's duplicate subtrees
  /// still compile once).
  std::size_t shared_subtrees = 0;
  /// Dedup hits against an earlier registration's operators — the
  /// cross-query sharing proper; 0 with cross_query_sharing off.
  std::size_t cross_query_shared = 0;
};

/// \brief Registers every plan on one multi-query Engine (core/engine.h),
/// runs `stream` through the shared dataflow once, and reports aggregate
/// plus per-query metrics. `options.cross_query_sharing` selects shared
/// vs per-query-private compilation (the bench_multi_query ablation).
Result<MultiQueryMetrics> RunMultiSgaPlans(
    const InputStream& stream, const std::vector<const LogicalOp*>& plans,
    const Vocabulary& vocab, EngineOptions options, std::string name);

/// \brief RunMultiSgaPlans over parsed SGQs (canonical plans).
Result<MultiQueryMetrics> RunMultiSga(
    const InputStream& stream,
    const std::vector<StreamingGraphQuery>& queries, const Vocabulary& vocab,
    EngineOptions options, std::string name);

/// \brief Prints a fixed-width metrics row:
/// name, throughput (edges/s), p99 slide latency (ms), #results.
void PrintMetricsRow(const RunMetrics& metrics);

/// \brief Prints the row header matching PrintMetricsRow.
void PrintMetricsHeader(const std::string& title);

}  // namespace sgq

#endif  // SGQ_WORKLOAD_HARNESS_H_

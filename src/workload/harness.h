// Benchmark harness (§7.1.1): runs a query over a stream on one of the
// engines and reports the paper's metrics — sustained throughput
// (edges/second over the labels the query consumes) and the 99th-percentile
// latency of a window slide.

#ifndef SGQ_WORKLOAD_HARNESS_H_
#define SGQ_WORKLOAD_HARNESS_H_

#include <string>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/query_processor.h"
#include "model/sgt.h"
#include "query/rq.h"

namespace sgq {

/// \brief Runs `query` over `stream` on the SGA query processor (canonical
/// plan) and reports metrics. `options.path_impl` selects the PATH
/// implementation (Table 3 compares the two).
Result<RunMetrics> RunSga(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, EngineOptions options,
                          std::string name);

/// \brief Runs an explicit logical plan on the SGA query processor
/// (plan-space experiments of §7.4).
Result<RunMetrics> RunSgaPlan(const InputStream& stream,
                              const LogicalOp& plan, const Vocabulary& vocab,
                              EngineOptions options, std::string name);

/// \brief Runs `query` on the DD-style baseline engine.
Result<RunMetrics> RunDd(const InputStream& stream,
                         const StreamingGraphQuery& query,
                         const Vocabulary& vocab, std::string name);

/// \brief Prints a fixed-width metrics row:
/// name, throughput (edges/s), p99 slide latency (ms), #results.
void PrintMetricsRow(const RunMetrics& metrics);

/// \brief Prints the row header matching PrintMetricsRow.
void PrintMetricsHeader(const std::string& title);

}  // namespace sgq

#endif  // SGQ_WORKLOAD_HARNESS_H_

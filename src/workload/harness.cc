#include "workload/harness.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "algebra/translate.h"
#include "baseline/engine.h"
#include "model/file_chunk_source.h"
#include "model/stream_io.h"

namespace sgq {

namespace {

/// \brief Collects the post-run metrics every SGA harness entry reports.
RunMetrics CollectEngineMetrics(const Engine& engine, std::string name,
                                double elapsed_seconds) {
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = elapsed_seconds;
  m.edges_processed = engine.edges_processed();
  m.tail_latency_seconds = engine.slide_latencies().Percentile(0.99);
  m.state_entries = engine.executor().StateSize();
  m.state_bytes = engine.executor().StateBytes();
  m.ops_touched = engine.executor().ops_touched();
  m.index_skipped_dispatches = engine.executor().index_skipped_dispatches();
  m.checkpoint_write_ns = engine.checkpoint_write_ns();
  m.checkpoint_bytes = engine.checkpoint_bytes();
  const IngestStats& stats = engine.ingest_stats();
  m.ingest_stall_ns = stats.ingest_stall_ns;
  m.exec_stall_ns = stats.exec_stall_ns;
  m.parsers = stats.parsers;
  m.merge_stall_ns = stats.merge_stall_ns;
  m.parser_stall_ns = stats.parser_stall_ns;
  m.readahead_stall_ns = stats.readahead_stall_ns;
  // The parse-stage critical path is the slowest parser's busy time.
  for (uint64_t busy : stats.parser_busy_ns) {
    m.parse_busy_ns = std::max(m.parse_busy_ns, busy);
  }
  return m;
}

}  // namespace

Result<RunMetrics> RunSga(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, EngineOptions options,
                          std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m = CollectEngineMetrics(qp->engine(), std::move(name),
                                      timer.ElapsedSeconds());
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<RunMetrics> RunSgaPlan(const InputStream& stream,
                              const LogicalOp& plan, const Vocabulary& vocab,
                              EngineOptions options, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::Compile(plan, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m = CollectEngineMetrics(qp->engine(), std::move(name),
                                      timer.ElapsedSeconds());
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<RunMetrics> RunSgaText(const std::string& bytes,
                              const StreamingGraphQuery& query,
                              Vocabulary* vocab, EngineOptions options,
                              std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, *vocab, options));
  const StreamFormat format = options.ingest_format;
  uint64_t sync_parse_ns = 0;
  Status parse_status = Status::OK();
  Stopwatch timer;
  if (options.async_ingest && options.ingest_parsers > 1) {
    // Sharded parse: chunk the input (binary headers parse here, once,
    // deterministically) and fan the decode over the parser threads.
    SGQ_ASSIGN_OR_RETURN(
        auto chunked,
        MakeChunkedStream(bytes, format, vocab,
                          /*allow_disorder=*/options.ingest_slack > 0,
                          /*min_chunks=*/options.ingest_parsers * 2));
    parse_status = qp->engine().RunPipelinedSharded(*chunked);
  } else if (options.async_ingest) {
    // Single-producer pipeline, but still through the chunked walk so the
    // parse-stage busy time is accounted identically to the sharded runs
    // (the element sequence is exactly the whole-buffer cursor's).
    SGQ_ASSIGN_OR_RETURN(
        auto chunked,
        MakeChunkedStream(bytes, format, vocab,
                          /*allow_disorder=*/options.ingest_slack > 0,
                          /*min_chunks=*/1));
    parse_status = qp->engine().RunPipelinedSharded(*chunked);
  } else {
    // Inline parse: same cursors, same chunking, executed serially on the
    // calling thread — the synchronous baseline of the comparison.
    std::unique_ptr<StreamCursor> cursor;
    if (format == StreamFormat::kBinary) {
      cursor = std::make_unique<BinaryStreamCursor>(bytes, vocab);
    } else {
      cursor = std::make_unique<StreamCsvCursor>(bytes, vocab);
    }
    std::vector<Sge> chunk(1024);
    for (;;) {
      Stopwatch parse_timer;
      const std::size_t n = cursor->Next(chunk.data(), chunk.size());
      sync_parse_ns +=
          static_cast<uint64_t>(parse_timer.ElapsedSeconds() * 1e9);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) qp->Push(chunk[i]);
    }
    qp->Flush();
    parse_status = cursor->status();
  }
  const double elapsed = timer.ElapsedSeconds();
  SGQ_RETURN_NOT_OK(parse_status);
  RunMetrics m =
      CollectEngineMetrics(qp->engine(), std::move(name), elapsed);
  if (!options.async_ingest) m.parse_busy_ns = sync_parse_ns;
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<RunMetrics> RunSgaCsv(const std::string& csv_text,
                             const StreamingGraphQuery& query,
                             Vocabulary* vocab, EngineOptions options,
                             std::string name) {
  options.ingest_format = StreamFormat::kCsv;
  return RunSgaText(csv_text, query, vocab, std::move(options),
                    std::move(name));
}

Result<RunMetrics> RunSgaFile(const std::string& path,
                              const StreamingGraphQuery& query,
                              Vocabulary* vocab, EngineOptions options,
                              std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, *vocab, options));
  FileChunkOptions fco;
  fco.mode = options.ingest_file_mode;
  fco.allow_disorder = options.ingest_slack > 0;
  // Same chunk-count floor as RunSgaText per parse placement, so chunk
  // boundaries — and output — match the materialized path exactly.
  const bool sharded = options.async_ingest && options.ingest_parsers > 1;
  fco.min_chunks = sharded ? options.ingest_parsers * 2 : 1;
  // Every parser can hold one chunk open while at least one more loads.
  fco.readahead_chunks =
      std::max(options.ingest_readahead_chunks, options.ingest_parsers + 1);
  SGQ_ASSIGN_OR_RETURN(
      auto source,
      MakeFileChunkSource(path, options.ingest_format, vocab, fco));

  uint64_t sync_parse_ns = 0;
  Status parse_status = Status::OK();
  Stopwatch timer;
  if (options.async_ingest) {
    parse_status = qp->engine().RunPipelinedSharded(*source);
  } else {
    // Inline parse on the calling thread; the chunk walk retires each
    // chunk before opening the next, so only one chunk stays resident.
    ChunkWalkCursor cursor(*source, fco.allow_disorder);
    std::vector<Sge> chunk(1024);
    for (;;) {
      const std::size_t n = cursor.Next(chunk.data(), chunk.size());
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) qp->Push(chunk[i]);
    }
    qp->Flush();
    parse_status = cursor.status();
    sync_parse_ns = cursor.busy_ns();
  }
  const double elapsed = timer.ElapsedSeconds();
  SGQ_RETURN_NOT_OK(parse_status);
  RunMetrics m =
      CollectEngineMetrics(qp->engine(), std::move(name), elapsed);
  if (!options.async_ingest) {
    m.parse_busy_ns = sync_parse_ns;
    m.readahead_stall_ns = source->ReadaheadStallNs();
  }
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<MultiQueryMetrics> RunMultiSgaPlans(
    const InputStream& stream, const std::vector<const LogicalOp*>& plans,
    const Vocabulary& vocab, EngineOptions options, std::string name) {
  Engine engine(options);
  for (const LogicalOp* plan : plans) {
    SGQ_RETURN_NOT_OK(engine.AddPlan(*plan, vocab).status());
  }
  SGQ_RETURN_NOT_OK(engine.Finalize());
  Stopwatch timer;
  engine.PushAll(stream);
  MultiQueryMetrics m;
  m.totals = CollectEngineMetrics(engine, std::move(name),
                                  timer.ElapsedSeconds());
  m.per_query_results.reserve(engine.num_queries());
  for (std::size_t q = 0; q < engine.num_queries(); ++q) {
    const std::size_t emitted =
        engine.results_emitted(static_cast<QueryId>(q));
    m.per_query_results.push_back(emitted);
    m.totals.results_emitted += emitted;
  }
  m.num_operators = engine.NumOperators();
  m.shared_subtrees = engine.NumSharedSubtrees();
  m.cross_query_shared = engine.NumCrossQuerySharedSubtrees();
  return m;
}

Result<MultiQueryMetrics> RunMultiSga(
    const InputStream& stream,
    const std::vector<StreamingGraphQuery>& queries, const Vocabulary& vocab,
    EngineOptions options, std::string name) {
  std::vector<LogicalPlan> plans;
  std::vector<const LogicalOp*> plan_ptrs;
  plans.reserve(queries.size());
  plan_ptrs.reserve(queries.size());
  for (const StreamingGraphQuery& query : queries) {
    SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                         TranslateToCanonicalPlan(query, vocab));
    plan_ptrs.push_back(plan.get());
    plans.push_back(std::move(plan));
  }
  return RunMultiSgaPlans(stream, plan_ptrs, vocab, std::move(options),
                          std::move(name));
}

Result<RunMetrics> RunSgaCheckpointKill(const InputStream& stream,
                                        const StreamingGraphQuery& query,
                                        const Vocabulary& vocab,
                                        EngineOptions options,
                                        const std::string& checkpoint_path,
                                        std::size_t checkpoint_at,
                                        std::size_t kill_at,
                                        std::string name,
                                        std::vector<Sgt>* results_out) {
  checkpoint_at = std::min(checkpoint_at, stream.size());
  kill_at = std::min(std::max(kill_at, checkpoint_at), stream.size());

  // Phase 1: run to the snapshot point, checkpoint, keep going, crash.
  // The doomed engine goes out of scope without Flush() — everything it
  // did after the snapshot is discarded, exactly like a SIGKILL.
  std::uint64_t checkpoint_write_ns = 0;
  std::uint64_t checkpoint_bytes = 0;
  {
    SGQ_ASSIGN_OR_RETURN(auto doomed,
                         QueryProcessor::FromQuery(query, vocab, options));
    for (std::size_t i = 0; i < checkpoint_at; ++i) doomed->Push(stream[i]);
    SGQ_RETURN_NOT_OK(doomed->engine().Checkpoint(checkpoint_path, &vocab));
    SGQ_RETURN_NOT_OK(doomed->engine().WaitForCheckpoint());
    checkpoint_write_ns = doomed->engine().checkpoint_write_ns();
    checkpoint_bytes = doomed->engine().checkpoint_bytes();
    for (std::size_t i = checkpoint_at; i < kill_at; ++i) {
      doomed->Push(stream[i]);
    }
  }

  // Phase 2: fresh engine, restore, resume from where the snapshot says
  // the stream stood, and run the remainder to completion.
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, vocab, options));
  Stopwatch timer;
  SGQ_RETURN_NOT_OK(qp->engine().Restore(checkpoint_path));
  const std::uint64_t resume_from = qp->engine().ingested();
  for (std::uint64_t i = resume_from; i < stream.size(); ++i) {
    qp->Push(stream[i]);
  }
  qp->Flush();
  RunMetrics m = CollectEngineMetrics(qp->engine(), std::move(name),
                                      timer.ElapsedSeconds());
  // The restored engine never checkpointed; report the snapshot the run
  // actually took (phase 1) so the row carries its cost and size.
  m.checkpoint_write_ns = checkpoint_write_ns;
  m.checkpoint_bytes = checkpoint_bytes;
  m.results_emitted = qp->results_emitted();
  if (results_out != nullptr) *results_out = qp->results();
  return m;
}

Result<RunMetrics> RunDd(const InputStream& stream,
                         const StreamingGraphQuery& query,
                         const Vocabulary& vocab, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto engine,
                       baseline::DifferentialEngine::Create(query, vocab));
  Stopwatch timer;
  engine->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = engine->edges_processed();
  m.tail_latency_seconds = engine->epoch_latencies().Percentile(0.99);
  m.results_emitted = engine->answers_emitted();
  return m;
}

void PrintMetricsHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%-24s %14s %16s %12s\n", "config", "tput (edges/s)",
              "p99 slide (ms)", "results");
}

void PrintMetricsRow(const RunMetrics& metrics) {
  std::printf("%-24s %14.0f %16.3f %12zu\n", metrics.name.c_str(),
              metrics.Throughput(), metrics.tail_latency_seconds * 1e3,
              metrics.results_emitted);
}

}  // namespace sgq

#include "workload/harness.h"

#include <cstdio>

#include "algebra/translate.h"
#include "baseline/engine.h"

namespace sgq {

Result<RunMetrics> RunSga(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, EngineOptions options,
                          std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = qp->edges_processed();
  m.tail_latency_seconds = qp->slide_latencies().Percentile(0.99);
  m.results_emitted = qp->results_emitted();
  m.state_entries = qp->executor().StateSize();
  m.state_bytes = qp->executor().StateBytes();
  return m;
}

Result<RunMetrics> RunSgaPlan(const InputStream& stream,
                              const LogicalOp& plan, const Vocabulary& vocab,
                              EngineOptions options, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::Compile(plan, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = qp->edges_processed();
  m.tail_latency_seconds = qp->slide_latencies().Percentile(0.99);
  m.results_emitted = qp->results_emitted();
  m.state_entries = qp->executor().StateSize();
  m.state_bytes = qp->executor().StateBytes();
  return m;
}

Result<MultiQueryMetrics> RunMultiSgaPlans(
    const InputStream& stream, const std::vector<const LogicalOp*>& plans,
    const Vocabulary& vocab, EngineOptions options, std::string name) {
  Engine engine(options);
  for (const LogicalOp* plan : plans) {
    SGQ_RETURN_NOT_OK(engine.AddPlan(*plan, vocab).status());
  }
  SGQ_RETURN_NOT_OK(engine.Finalize());
  Stopwatch timer;
  engine.PushAll(stream);
  MultiQueryMetrics m;
  m.totals.name = std::move(name);
  m.totals.elapsed_seconds = timer.ElapsedSeconds();
  m.totals.edges_processed = engine.edges_processed();
  m.totals.tail_latency_seconds = engine.slide_latencies().Percentile(0.99);
  m.totals.state_entries = engine.executor().StateSize();
  m.totals.state_bytes = engine.executor().StateBytes();
  m.per_query_results.reserve(engine.num_queries());
  for (std::size_t q = 0; q < engine.num_queries(); ++q) {
    const std::size_t emitted =
        engine.results_emitted(static_cast<QueryId>(q));
    m.per_query_results.push_back(emitted);
    m.totals.results_emitted += emitted;
  }
  m.num_operators = engine.NumOperators();
  m.shared_subtrees = engine.NumSharedSubtrees();
  m.cross_query_shared = engine.NumCrossQuerySharedSubtrees();
  return m;
}

Result<MultiQueryMetrics> RunMultiSga(
    const InputStream& stream,
    const std::vector<StreamingGraphQuery>& queries, const Vocabulary& vocab,
    EngineOptions options, std::string name) {
  std::vector<LogicalPlan> plans;
  std::vector<const LogicalOp*> plan_ptrs;
  plans.reserve(queries.size());
  plan_ptrs.reserve(queries.size());
  for (const StreamingGraphQuery& query : queries) {
    SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                         TranslateToCanonicalPlan(query, vocab));
    plan_ptrs.push_back(plan.get());
    plans.push_back(std::move(plan));
  }
  return RunMultiSgaPlans(stream, plan_ptrs, vocab, std::move(options),
                          std::move(name));
}

Result<RunMetrics> RunDd(const InputStream& stream,
                         const StreamingGraphQuery& query,
                         const Vocabulary& vocab, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto engine,
                       baseline::DifferentialEngine::Create(query, vocab));
  Stopwatch timer;
  engine->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = engine->edges_processed();
  m.tail_latency_seconds = engine->epoch_latencies().Percentile(0.99);
  m.results_emitted = engine->answers_emitted();
  return m;
}

void PrintMetricsHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%-24s %14s %16s %12s\n", "config", "tput (edges/s)",
              "p99 slide (ms)", "results");
}

void PrintMetricsRow(const RunMetrics& metrics) {
  std::printf("%-24s %14.0f %16.3f %12zu\n", metrics.name.c_str(),
              metrics.Throughput(), metrics.tail_latency_seconds * 1e3,
              metrics.results_emitted);
}

}  // namespace sgq

#include "workload/harness.h"

#include <cstdio>

#include "baseline/engine.h"

namespace sgq {

Result<RunMetrics> RunSga(const InputStream& stream,
                          const StreamingGraphQuery& query,
                          const Vocabulary& vocab, EngineOptions options,
                          std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::FromQuery(query, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = qp->edges_processed();
  m.tail_latency_seconds = qp->slide_latencies().Percentile(0.99);
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<RunMetrics> RunSgaPlan(const InputStream& stream,
                              const LogicalOp& plan, const Vocabulary& vocab,
                              EngineOptions options, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto qp,
                       QueryProcessor::Compile(plan, vocab, options));
  Stopwatch timer;
  qp->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = qp->edges_processed();
  m.tail_latency_seconds = qp->slide_latencies().Percentile(0.99);
  m.results_emitted = qp->results_emitted();
  return m;
}

Result<RunMetrics> RunDd(const InputStream& stream,
                         const StreamingGraphQuery& query,
                         const Vocabulary& vocab, std::string name) {
  SGQ_ASSIGN_OR_RETURN(auto engine,
                       baseline::DifferentialEngine::Create(query, vocab));
  Stopwatch timer;
  engine->PushAll(stream);
  RunMetrics m;
  m.name = std::move(name);
  m.elapsed_seconds = timer.ElapsedSeconds();
  m.edges_processed = engine->edges_processed();
  m.tail_latency_seconds = engine->epoch_latencies().Percentile(0.99);
  m.results_emitted = engine->answers_emitted();
  return m;
}

void PrintMetricsHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%-24s %14s %16s %12s\n", "config", "tput (edges/s)",
              "p99 slide (ms)", "results");
}

void PrintMetricsRow(const RunMetrics& metrics) {
  std::printf("%-24s %14.0f %16.3f %12zu\n", metrics.name.c_str(),
              metrics.Throughput(), metrics.tail_latency_seconds * 1e3,
              metrics.results_emitted);
}

}  // namespace sgq

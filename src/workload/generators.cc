#include "workload/generators.h"

#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace sgq {

namespace {

/// Advances the clock so that on average `edges_per_hour` events share one
/// hour: each event moves time forward by 1 hour with probability
/// 1/edges_per_hour.
Timestamp NextTimestamp(Timestamp current, double edges_per_hour,
                        std::mt19937_64* rng) {
  std::bernoulli_distribution advance(1.0 /
                                      std::max(edges_per_hour, 1e-9));
  return advance(*rng) ? current + kHour : current;
}

}  // namespace

Result<InputStream> GenerateSoStream(const SoOptions& options,
                                     Vocabulary* vocab) {
  SGQ_ASSIGN_OR_RETURN(LabelId a2q, vocab->InternInputLabel("a2q"));
  SGQ_ASSIGN_OR_RETURN(LabelId c2q, vocab->InternInputLabel("c2q"));
  SGQ_ASSIGN_OR_RETURN(LabelId c2a, vocab->InternInputLabel("c2a"));

  std::mt19937_64 rng(options.seed);
  std::vector<VertexId> users;
  users.reserve(options.num_vertices);
  for (std::size_t i = 0; i < options.num_vertices; ++i) {
    users.push_back(vocab->InternVertex("u" + std::to_string(i)));
  }

  // Preferential attachment: endpoints of past edges are re-drawn with
  // probability preferential_fraction, producing heavy-tailed degrees.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(options.num_edges * 2);
  std::uniform_int_distribution<std::size_t> uniform_user(
      0, options.num_vertices - 1);
  std::bernoulli_distribution use_pool(options.preferential_fraction);
  std::discrete_distribution<int> label_dist({50, 30, 20});
  const LabelId labels[3] = {a2q, c2q, c2a};

  auto draw_vertex = [&]() -> VertexId {
    if (!endpoint_pool.empty() && use_pool(rng)) {
      std::uniform_int_distribution<std::size_t> pick(
          0, endpoint_pool.size() - 1);
      return endpoint_pool[pick(rng)];
    }
    return users[uniform_user(rng)];
  };

  InputStream stream;
  stream.reserve(options.num_edges);
  std::uniform_real_distribution<double> del_coin(0.0, 1.0);
  std::vector<Sge> recent;  // ring buffer of deletion candidates
  std::size_t recent_head = 0;
  Timestamp t = 0;
  for (std::size_t i = 0; i < options.num_edges; ++i) {
    // Short-circuit keeps the RNG stream untouched when deletions are off,
    // so existing deletion-free streams stay bit-identical.
    if (options.deletion_probability > 0 && !recent.empty() &&
        del_coin(rng) < options.deletion_probability) {
      std::uniform_int_distribution<std::size_t> pick(0, recent.size() - 1);
      Sge victim = recent[pick(rng)];
      victim.t = t;
      victim.is_deletion = true;
      stream.push_back(victim);
      t = NextTimestamp(t, options.edges_per_hour, &rng);
      continue;
    }
    VertexId src = draw_vertex();
    VertexId trg = draw_vertex();
    if (src == trg) trg = users[uniform_user(rng)];
    const LabelId label = labels[label_dist(rng)];
    stream.emplace_back(src, trg, label, t);
    endpoint_pool.push_back(src);
    endpoint_pool.push_back(trg);
    if (options.deletion_probability > 0) {
      const Sge& inserted = stream.back();
      if (recent.size() < options.deletion_horizon) {
        recent.push_back(inserted);
      } else if (!recent.empty()) {
        recent[recent_head] = inserted;
        recent_head = (recent_head + 1) % recent.size();
      }
    }
    t = NextTimestamp(t, options.edges_per_hour, &rng);
  }
  return stream;
}

Result<InputStream> GenerateSnbStream(const SnbOptions& options,
                                      Vocabulary* vocab) {
  SGQ_ASSIGN_OR_RETURN(LabelId knows, vocab->InternInputLabel("knows"));
  SGQ_ASSIGN_OR_RETURN(LabelId likes, vocab->InternInputLabel("likes"));
  SGQ_ASSIGN_OR_RETURN(LabelId has_creator,
                       vocab->InternInputLabel("hasCreator"));
  SGQ_ASSIGN_OR_RETURN(LabelId reply_of, vocab->InternInputLabel("replyOf"));

  std::mt19937_64 rng(options.seed);
  const std::size_t communities = std::max<std::size_t>(
      1, std::min(options.num_communities, options.num_persons));

  std::vector<VertexId> persons;
  persons.reserve(options.num_persons);
  for (std::size_t i = 0; i < options.num_persons; ++i) {
    persons.push_back(vocab->InternVertex("p" + std::to_string(i)));
  }
  std::vector<VertexId> messages;          // all messages so far
  std::vector<std::size_t> message_owner;  // creator index per message

  std::uniform_int_distribution<std::size_t> uniform_person(
      0, options.num_persons - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::bernoulli_distribution replies(options.reply_probability);
  std::bernoulli_distribution intra_community(0.8);

  InputStream stream;
  stream.reserve(options.num_events * 2);
  Timestamp t = 0;
  std::size_t message_counter = 0;

  auto community_of = [&](std::size_t person) { return person % communities; };

  for (std::size_t i = 0; i < options.num_events; ++i) {
    const double kind = coin(rng);
    if (kind < options.knows_probability) {
      // Friendship, biased towards the same community.
      std::size_t p1 = uniform_person(rng);
      std::size_t p2 = uniform_person(rng);
      if (intra_community(rng)) {
        const std::size_t c = community_of(p1);
        // Redraw p2 within p1's community.
        std::size_t tries = 0;
        while (community_of(p2) != c && tries++ < 16) {
          p2 = uniform_person(rng);
        }
      }
      if (p1 != p2) {
        stream.emplace_back(persons[p1], persons[p2], knows, t);
      }
    } else if (kind < options.knows_probability + options.likes_probability &&
               !messages.empty()) {
      // A person likes a recent message, biased towards content created in
      // the same community (likers tend to know the author, which is what
      // the IC7/IS7-style patterns of Q5-Q7 look for).
      std::uniform_int_distribution<std::size_t> recent(
          messages.size() > 64 ? messages.size() - 64 : 0,
          messages.size() - 1);
      std::size_t m = recent(rng);
      std::size_t p = uniform_person(rng);
      if (intra_community(rng)) {
        // Re-draw the liker from the author's community.
        const std::size_t c = community_of(message_owner[m]);
        std::size_t tries = 0;
        while (community_of(p) != c && tries++ < 16) {
          p = uniform_person(rng);
        }
      }
      stream.emplace_back(persons[p], messages[m], likes, t);
    } else {
      // New message: hasCreator always, replyOf to an OLDER message with
      // some probability. Each message has at most one replyOf out-edge,
      // so replyOf stays forest-shaped (single path between vertex pairs).
      const std::size_t p = uniform_person(rng);
      const VertexId m =
          vocab->InternVertex("m" + std::to_string(message_counter++));
      stream.emplace_back(m, persons[p], has_creator, t);
      if (!messages.empty() && replies(rng)) {
        std::uniform_int_distribution<std::size_t> recent(
            messages.size() > 64 ? messages.size() - 64 : 0,
            messages.size() - 1);
        // Replies also favor same-community parents (discussions happen
        // within a community), which makes the IS7 pattern observable.
        std::size_t parent = recent(rng);
        if (intra_community(rng)) {
          std::size_t tries = 0;
          while (community_of(message_owner[parent]) != community_of(p) &&
                 tries++ < 16) {
            parent = recent(rng);
          }
        }
        stream.emplace_back(m, messages[parent], reply_of, t);
      }
      messages.push_back(m);
      message_owner.push_back(p);
    }
    t = NextTimestamp(t, options.edges_per_hour, &rng);
  }
  return stream;
}

Result<InputStream> GenerateRandomStream(const RandomStreamOptions& options,
                                         Vocabulary* vocab) {
  std::mt19937_64 rng(options.seed);
  std::vector<LabelId> labels;
  for (std::size_t i = 0; i < options.num_labels; ++i) {
    SGQ_ASSIGN_OR_RETURN(
        LabelId l,
        vocab->InternInputLabel(std::string(1, static_cast<char>('a' + i))));
    labels.push_back(l);
  }
  std::vector<VertexId> vertices;
  for (std::size_t i = 0; i < options.num_vertices; ++i) {
    vertices.push_back(vocab->InternVertex("v" + std::to_string(i)));
  }
  std::uniform_int_distribution<std::size_t> pick_v(
      0, options.num_vertices - 1);
  std::uniform_int_distribution<std::size_t> pick_l(
      0, options.num_labels - 1);
  std::uniform_int_distribution<Timestamp> gap(0, options.max_gap);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  InputStream stream;
  Timestamp t = 0;
  std::vector<Sge> inserted;
  for (std::size_t i = 0; i < options.num_edges; ++i) {
    t += gap(rng);
    if (!inserted.empty() && coin(rng) < options.deletion_probability) {
      std::uniform_int_distribution<std::size_t> pick(0,
                                                      inserted.size() - 1);
      Sge victim = inserted[pick(rng)];
      victim.t = t;
      victim.is_deletion = true;
      stream.push_back(victim);
      continue;
    }
    Sge sge(vertices[pick_v(rng)], vertices[pick_v(rng)],
            labels[pick_l(rng)], t);
    stream.push_back(sge);
    inserted.push_back(sge);
  }
  return stream;
}

Result<InputStream> GenerateZipfLabelStream(const ZipfStreamOptions& options,
                                            Vocabulary* vocab) {
  std::vector<LabelId> labels;
  labels.reserve(options.num_labels);
  for (std::size_t i = 0; i < options.num_labels; ++i) {
    SGQ_ASSIGN_OR_RETURN(LabelId l,
                         vocab->InternInputLabel("l" + std::to_string(i)));
    labels.push_back(l);
  }
  std::vector<VertexId> vertices;
  vertices.reserve(options.num_vertices);
  for (std::size_t i = 0; i < options.num_vertices; ++i) {
    vertices.push_back(vocab->InternVertex("z" + std::to_string(i)));
  }

  // Zipf over label ranks: weight(r) = 1 / r^skew, r starting at 1.
  std::vector<double> weights;
  weights.reserve(options.num_labels);
  for (std::size_t r = 1; r <= options.num_labels; ++r) {
    weights.push_back(1.0 / std::pow(static_cast<double>(r), options.skew));
  }
  std::mt19937_64 rng(options.seed);
  std::discrete_distribution<std::size_t> pick_l(weights.begin(),
                                                 weights.end());
  std::uniform_int_distribution<std::size_t> pick_v(
      0, options.num_vertices - 1);

  InputStream stream;
  stream.reserve(options.num_edges);
  Timestamp t = 0;
  for (std::size_t i = 0; i < options.num_edges; ++i) {
    stream.emplace_back(vertices[pick_v(rng)], vertices[pick_v(rng)],
                        labels[pick_l(rng)], t);
    t = NextTimestamp(t, options.edges_per_hour, &rng);
  }
  return stream;
}

}  // namespace sgq

// Bounded-memory file-backed ChunkedStream (DESIGN.md §6.3): serves the
// sharded parse stage's chunk contract straight from a stream file
// through a sliding readahead window of W chunks, instead of
// materializing the whole file first (ReadFileBytes + MakeChunkedStream).
//
// Two serving modes behind one contract (FileIngestMode):
//  - mmap: the file is mapped read-only with MADV_SEQUENTIAL and chunk
//    cursors decode zero-copy views into the mapping; retiring a chunk
//    MADV_DONTNEEDs its pages, so the resident set slides with the
//    window;
//  - buffered: chunks are pread() into a recycled buffer pool (the
//    portable fallback — also what non-mmap platforms get), at most W
//    buffers live at once.
//
// Chunk boundaries are resolved lazily but *sequentially* (CSV newline
// alignment and global line numbers depend on every preceding byte), by
// whichever thread's OpenChunk needs the next unresolved chunk; the
// window bounds how far resolution may run ahead of retirement, so peak
// ingest-buffer memory is O(W · chunk_size) regardless of file size.
// Boundary math is PickNumChunks plus the exact splitting rules of the
// in-memory chunkers, so chunk count, chunk contents, error text (global
// line numbers / absolute byte offsets) and merge order are byte-identical
// to the materialized path — the hard contract the differential tests in
// tests/file_ingest_test.cc pin down.
//
// Retirement is cursor destruction: OpenChunk wraps each cursor so the
// chunk returns to the window when its parser drops it (the RunSharded
// parser loop and ChunkWalkCursor both drop a chunk's cursor before
// opening the next). Elements carry interned ids only, so retired bytes
// are never referenced again. Abort() (called by the sharded merge on an
// aborting run) wakes any parser blocked on the window so teardown cannot
// hang.
//
// Deadlock-freedom: resolved-but-unretired chunks always form a prefix of
// the chunk order. If the window is full, some resident chunk is either
// held open by a parser that can make progress (the merge drains chunks
// in index order, and gutter backpressure always drains eventually
// because execution drains batches), or not yet opened by its owner —
// who is never blocked on the window for a *resolved* chunk. Every
// blocked OpenChunk therefore eventually unblocks.

#ifndef SGQ_MODEL_FILE_CHUNK_SOURCE_H_
#define SGQ_MODEL_FILE_CHUNK_SOURCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/stream_io.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief Knobs of a file-backed chunk source.
struct FileChunkOptions {
  /// Serving mode; kAuto picks mmap where available.
  FileIngestMode mode = FileIngestMode::kAuto;
  /// Lift the per-chunk non-decreasing-timestamp check (reorder-slack
  /// consumers re-validate downstream), like MakeChunkedStream.
  bool allow_disorder = false;
  /// Lower bound on the chunk count (parser fan-out), like
  /// MakeChunkedStream.
  std::size_t min_chunks = 1;
  /// Readahead window W: chunks resolved but not yet retired at once.
  /// Clamped to >= 2 so resolution can overlap one parse. Peak
  /// ingest-buffer memory is O(W · ~256 KB).
  std::size_t readahead_chunks = 8;
};

/// \brief Sniffs a stream file's format from its first bytes (SGQB magic
/// vs CSV) without materializing the file.
Result<StreamFormat> DetectStreamFileFormat(const std::string& path);

/// \brief Windowed file-backed ChunkedStream; construct through
/// MakeFileChunkSource. Thread-safe like every ChunkedStream, plus the
/// blocking/abort semantics described in the file comment.
class FileChunkSource : public ChunkedStream {
 public:
  ~FileChunkSource() override;

  FileChunkSource(const FileChunkSource&) = delete;
  FileChunkSource& operator=(const FileChunkSource&) = delete;

  std::size_t NumChunks() const override { return chunks_.size(); }
  std::unique_ptr<StreamCursor> OpenChunk(std::size_t i) const override;
  StreamFormat format() const override { return format_; }
  void Abort() const override;
  std::uint64_t ReadaheadStallNs() const override {
    return stall_ns_.load(std::memory_order_relaxed);
  }

  /// \brief The serving mode actually in effect (kAuto resolved; pipes
  /// and empty files degrade to a resident buffer reported as kBuffered).
  FileIngestMode mode() const { return mode_; }

  /// \brief Total stream bytes on disk.
  std::uint64_t file_size() const { return file_size_; }

  /// \brief The resolved readahead window W.
  std::size_t window_chunks() const { return window_; }

  /// \brief High-water mark of resident chunk payload bytes — the number
  /// the RSS-bound test asserts is O(window), independent of file size.
  /// (For the materialize fallback — pipes — this is the whole stream.)
  std::uint64_t peak_resident_bytes() const;

 private:
  friend Result<std::unique_ptr<FileChunkSource>> MakeFileChunkSource(
      const std::string& path, StreamFormat format, Vocabulary* vocab,
      const FileChunkOptions& options);

  enum class ChunkPhase : std::uint8_t {
    kUnresolved,  ///< boundary/bytes not produced yet
    kLoading,     ///< a thread is reloading a retired chunk
    kLoaded,      ///< resident: cursor views are valid
    kRetired,     ///< was resident, window slot released
  };

  struct ChunkState {
    std::uint64_t begin = 0;       ///< absolute byte offset (inclusive)
    std::uint64_t end = 0;         ///< absolute byte offset (exclusive)
    std::size_t base_line = 0;     ///< CSV: lines preceding `begin`
    ChunkPhase phase = ChunkPhase::kUnresolved;
    int opens = 0;                 ///< live cursors over this chunk
    std::string buffer;            ///< buffered mode: resident bytes
  };

  /// \brief What LoadChunk produced off-lock.
  struct LoadResult {
    Status status = Status::OK();
    std::uint64_t end = 0;         ///< resolved end (CSV boundary scan)
    std::size_t newlines = 0;      ///< CSV: '\n' count in [begin, end)
    std::string buffer;            ///< buffered mode: the chunk's bytes
  };

  FileChunkSource() = default;

  /// \brief Resolves chunk `k`'s boundary and loads its bytes. Runs
  /// without the lock (`mu_` protects only the application of results).
  LoadResult LoadChunk(std::size_t k, std::uint64_t begin,
                       std::string recycled) const;

  /// \brief Re-loads a retired chunk's bytes (buffered mode) — rare,
  /// test-only reopening; boundary already known.
  Status ReloadChunk(ChunkState* c) const;

  /// \brief Cursor-destruction callback: releases the chunk's window
  /// slot once every cursor over it is gone.
  void RetireChunk(std::size_t i) const;

  std::unique_ptr<StreamCursor> MakeChunkCursor(const ChunkState& c) const;

  std::string path_;
  StreamFormat format_ = StreamFormat::kCsv;
  FileIngestMode mode_ = FileIngestMode::kBuffered;
  Vocabulary* vocab_ = nullptr;
  bool allow_disorder_ = false;
  std::size_t window_ = 2;
  std::uint64_t file_size_ = 0;

  int fd_ = -1;                       ///< POSIX read handle (buffered/mmap)
  const char* map_ = nullptr;         ///< mmap base (mmap mode)
  std::size_t map_size_ = 0;
  std::string owned_;                 ///< materialize fallback (pipes/empty)
  bool materialized_ = false;

  std::shared_ptr<const BinaryStreamHeader> header_;  ///< binary only

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::vector<ChunkState> chunks_;
  mutable std::size_t next_unresolved_ = 0;
  mutable std::uint64_t next_begin_ = 0;   ///< CSV: next chunk's begin
  mutable std::size_t lines_so_far_ = 0;   ///< CSV: '\n' before next_begin_
  mutable std::size_t resident_ = 0;       ///< loaded (unretired) chunks
  mutable bool resolving_ = false;         ///< a thread is off-lock in I/O
  mutable bool aborted_ = false;
  mutable Status feeder_error_ = Status::OK();  ///< sticky load failure
  mutable std::size_t failed_chunk_ = 0;   ///< first chunk the error hit
  mutable std::vector<std::string> free_buffers_;  ///< buffered recycle pool
  mutable std::uint64_t resident_bytes_ = 0;
  mutable std::uint64_t peak_resident_bytes_ = 0;
  mutable std::atomic<std::uint64_t> stall_ns_{0};
};

/// \brief Opens `path` as a windowed chunk source for `format` (no
/// sniffing — pair with DetectStreamFileFormat). Binary headers parse
/// here, once, deterministically (buffered mode reads a growing prefix
/// until the dictionaries fit; mmap parses in place); CSV defers all
/// boundary work to the lazy window. Errors: missing file / directory /
/// unreadable input, and binary header errors — identical text to the
/// materialized MakeChunkedStream path.
Result<std::unique_ptr<FileChunkSource>> MakeFileChunkSource(
    const std::string& path, StreamFormat format, Vocabulary* vocab,
    const FileChunkOptions& options = {});

}  // namespace sgq

#endif  // SGQ_MODEL_FILE_CHUNK_SOURCE_H_

// Time-based sliding window specification (paper Def. 16).

#ifndef SGQ_MODEL_WINDOW_H_
#define SGQ_MODEL_WINDOW_H_

#include <string>

#include "model/types.h"

namespace sgq {

/// \brief Time-based sliding window W_T with optional slide interval beta.
///
/// WSCAN assigns each sge with timestamp t the validity interval
/// [t, floor(t / beta) * beta + T) (Def. 16). beta = 1 yields a window that
/// slides at every time instant ("NOW" granularity).
struct WindowSpec {
  Timestamp size = 1;   ///< window length T
  Timestamp slide = 1;  ///< slide interval beta (>= 1)

  WindowSpec() = default;
  WindowSpec(Timestamp t, Timestamp beta = 1) : size(t), slide(beta) {}

  /// \brief Expiry instant assigned by WSCAN to an sge with timestamp t.
  Timestamp ExpiryFor(Timestamp t) const {
    return (t / slide) * slide + size;
  }

  std::string ToString() const {
    return "W(size=" + std::to_string(size) +
           ", slide=" + std::to_string(slide) + ")";
  }

  bool operator==(const WindowSpec& o) const {
    return size == o.size && slide == o.slide;
  }
};

}  // namespace sgq

#endif  // SGQ_MODEL_WINDOW_H_

// Validity intervals (paper Def. 5): half-open [ts, exp) over the discrete
// time domain. All SGA operators manipulate these implicitly.

#ifndef SGQ_MODEL_INTERVAL_H_
#define SGQ_MODEL_INTERVAL_H_

#include <algorithm>
#include <ostream>
#include <string>

#include "model/types.h"

namespace sgq {

/// \brief Half-open validity interval [ts, exp): all t with ts <= t < exp.
struct Interval {
  Timestamp ts = 0;   ///< inclusive start of validity
  Timestamp exp = 0;  ///< exclusive expiry instant

  Interval() = default;
  Interval(Timestamp start, Timestamp expiry) : ts(start), exp(expiry) {}

  /// \brief An interval covering all representable time.
  static Interval All() { return Interval(kMinTimestamp, kMaxTimestamp); }

  /// \brief True when the interval contains no time instant.
  bool Empty() const { return ts >= exp; }

  /// \brief True when time instant t falls inside [ts, exp).
  bool Contains(Timestamp t) const { return ts <= t && t < exp; }

  /// \brief True when the two intervals share at least one instant.
  bool Overlaps(const Interval& other) const {
    return ts < other.exp && other.ts < exp;
  }

  /// \brief True when the intervals are adjacent (e.g. [1,3) and [3,5)).
  bool Adjacent(const Interval& other) const {
    return ts == other.exp || exp == other.ts;
  }

  /// \brief True when coalescing may merge the two (Def. 11 precondition).
  bool OverlapsOrAdjacent(const Interval& other) const {
    return Overlaps(other) || Adjacent(other);
  }

  /// \brief Intersection; PATTERN/PATH use ts = max, exp = min (Defs. 19/20).
  Interval Intersect(const Interval& other) const {
    return Interval(std::max(ts, other.ts), std::min(exp, other.exp));
  }

  /// \brief Smallest interval covering both; only meaningful when
  /// OverlapsOrAdjacent (coalesce, Def. 11).
  Interval Span(const Interval& other) const {
    return Interval(std::min(ts, other.ts), std::max(exp, other.exp));
  }

  /// \brief True when `other` lies fully inside this interval.
  bool Covers(const Interval& other) const {
    return ts <= other.ts && other.exp <= exp;
  }

  bool operator==(const Interval& other) const {
    return ts == other.ts && exp == other.exp;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  std::string ToString() const {
    return "[" + std::to_string(ts) + ", " + std::to_string(exp) + ")";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.ToString();
}

}  // namespace sgq

#endif  // SGQ_MODEL_INTERVAL_H_

#include "model/vocabulary.h"

#include <mutex>
#include <tuple>

namespace sgq {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

void Vocabulary::CopyFrom(const Vocabulary& other) {
  // Snapshot the source before locking the destination: holding both
  // locks at once would deadlock two concurrent opposite-direction
  // copies (ABBA).
  auto snapshot = [&] {
    std::shared_lock<std::shared_mutex> read(other.mu_);
    return std::make_tuple(other.label_ids_, other.label_names_,
                           other.label_is_input_, other.vertex_ids_,
                           other.vertex_names_);
  }();
  std::unique_lock<std::shared_mutex> write(mu_);
  std::tie(label_ids_, label_names_, label_is_input_, vertex_ids_,
           vertex_names_) = std::move(snapshot);
}

Result<LabelId> Vocabulary::InternLabel(std::string_view name,
                                        bool is_input) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = label_ids_.find(std::string(name));
  if (it != label_ids_.end()) {
    if (label_is_input_[it->second] != is_input) {
      return Status::AlreadyExists(
          "label '" + std::string(name) + "' already interned as " +
          (label_is_input_[it->second] ? "input" : "derived"));
    }
    return it->second;
  }
  const LabelId id = static_cast<LabelId>(label_names_.size());
  label_ids_.emplace(std::string(name), id);
  label_names_.emplace_back(name);
  label_is_input_.push_back(is_input);
  return id;
}

Result<LabelId> Vocabulary::InternInputLabel(std::string_view name) {
  return InternLabel(name, /*is_input=*/true);
}

Result<LabelId> Vocabulary::InternDerivedLabel(std::string_view name) {
  return InternLabel(name, /*is_input=*/false);
}

Result<LabelId> Vocabulary::FindLabel(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = label_ids_.find(std::string(name));
  if (it == label_ids_.end()) {
    return Status::NotFound("unknown label '" + std::string(name) + "'");
  }
  return it->second;
}

bool Vocabulary::IsInputLabel(LabelId label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return label < label_is_input_.size() && label_is_input_[label];
}

const std::string& Vocabulary::LabelName(LabelId label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (label >= label_names_.size()) return kInvalidName;
  return label_names_[label];
}

VertexId Vocabulary::InternVertex(std::string_view name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = vertex_ids_.find(std::string(name));
  if (it != vertex_ids_.end()) return it->second;
  const VertexId id = static_cast<VertexId>(vertex_names_.size());
  vertex_ids_.emplace(std::string(name), id);
  vertex_names_.emplace_back(name);
  return id;
}

Result<VertexId> Vocabulary::FindVertex(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = vertex_ids_.find(std::string(name));
  if (it == vertex_ids_.end()) {
    return Status::NotFound("unknown vertex '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& Vocabulary::VertexName(VertexId v) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (v >= vertex_names_.size()) return kInvalidName;
  return vertex_names_[v];
}

}  // namespace sgq

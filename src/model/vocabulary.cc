#include "model/vocabulary.h"

namespace sgq {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

Result<LabelId> Vocabulary::InternLabel(std::string_view name,
                                        bool is_input) {
  auto it = label_ids_.find(std::string(name));
  if (it != label_ids_.end()) {
    if (label_is_input_[it->second] != is_input) {
      return Status::AlreadyExists(
          "label '" + std::string(name) + "' already interned as " +
          (label_is_input_[it->second] ? "input" : "derived"));
    }
    return it->second;
  }
  const LabelId id = static_cast<LabelId>(label_names_.size());
  label_ids_.emplace(std::string(name), id);
  label_names_.emplace_back(name);
  label_is_input_.push_back(is_input);
  return id;
}

Result<LabelId> Vocabulary::InternInputLabel(std::string_view name) {
  return InternLabel(name, /*is_input=*/true);
}

Result<LabelId> Vocabulary::InternDerivedLabel(std::string_view name) {
  return InternLabel(name, /*is_input=*/false);
}

Result<LabelId> Vocabulary::FindLabel(std::string_view name) const {
  auto it = label_ids_.find(std::string(name));
  if (it == label_ids_.end()) {
    return Status::NotFound("unknown label '" + std::string(name) + "'");
  }
  return it->second;
}

bool Vocabulary::IsInputLabel(LabelId label) const {
  return label < label_is_input_.size() && label_is_input_[label];
}

const std::string& Vocabulary::LabelName(LabelId label) const {
  if (label >= label_names_.size()) return kInvalidName;
  return label_names_[label];
}

VertexId Vocabulary::InternVertex(std::string_view name) {
  auto it = vertex_ids_.find(std::string(name));
  if (it != vertex_ids_.end()) return it->second;
  const VertexId id = static_cast<VertexId>(vertex_names_.size());
  vertex_ids_.emplace(std::string(name), id);
  vertex_names_.emplace_back(name);
  return id;
}

Result<VertexId> Vocabulary::FindVertex(std::string_view name) const {
  auto it = vertex_ids_.find(std::string(name));
  if (it == vertex_ids_.end()) {
    return Status::NotFound("unknown vertex '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& Vocabulary::VertexName(VertexId v) const {
  if (v >= vertex_names_.size()) return kInvalidName;
  return vertex_names_[v];
}

}  // namespace sgq

#include "model/snapshot_graph.h"

#include <algorithm>
#include <set>

namespace sgq {

namespace {
const std::vector<VertexId> kNoNeighbors;
}  // namespace

SnapshotGraph SnapshotGraph::At(const SgtStream& stream, Timestamp t) {
  SnapshotGraph g;
  // Deletion truncation mirrors SnapshotEdges(); paths and edges are kept
  // separately because paths are first-class citizens (Def. 6).
  std::unordered_map<EdgeRef, std::vector<std::pair<Interval, const Sgt*>>,
                     EdgeRefHash>
      by_key;
  for (const Sgt& sgt : stream) {
    if (sgt.is_deletion) {
      auto it = by_key.find(sgt.edge());
      if (it == by_key.end()) continue;
      for (auto& [iv, _] : it->second) {
        iv.exp = std::min(iv.exp, sgt.validity.ts);
      }
    } else {
      by_key[sgt.edge()].emplace_back(sgt.validity, &sgt);
    }
  }
  for (const auto& [key, entries] : by_key) {
    for (const auto& [iv, sgt] : entries) {
      if (!iv.Contains(t)) continue;
      if (sgt->payload.size() > 1) {
        g.AddPath(SnapshotPath{key.src, key.trg, key.label, sgt->payload});
      } else {
        g.AddEdge(key);
      }
      break;
    }
  }
  return g;
}

SnapshotGraph SnapshotGraph::FromEdges(const std::vector<EdgeRef>& edges) {
  SnapshotGraph g;
  for (const EdgeRef& e : edges) g.AddEdge(e);
  return g;
}

void SnapshotGraph::AddEdge(const EdgeRef& e) {
  if (!edge_set_.insert(e).second) return;
  edges_.push_back(e);
  adjacency_[{e.src, e.label}].push_back(e.trg);
}

void SnapshotGraph::AddPath(const SnapshotPath& p) {
  EdgeRef key(p.src, p.trg, p.label);
  if (!path_keys_.insert(key).second) return;
  paths_.push_back(p);
}

const std::vector<VertexId>& SnapshotGraph::OutNeighbors(VertexId v,
                                                         LabelId l) const {
  auto it = adjacency_.find({v, l});
  if (it == adjacency_.end()) return kNoNeighbors;
  return it->second;
}

std::vector<EdgeRef> SnapshotGraph::EdgesWithLabel(LabelId l) const {
  std::vector<EdgeRef> out;
  for (const EdgeRef& e : edges_) {
    if (e.label == l) out.push_back(e);
  }
  return out;
}

std::vector<VertexId> SnapshotGraph::Vertices() const {
  std::set<VertexId> vs;
  for (const EdgeRef& e : edges_) {
    vs.insert(e.src);
    vs.insert(e.trg);
  }
  for (const SnapshotPath& p : paths_) {
    vs.insert(p.src);
    vs.insert(p.trg);
  }
  return std::vector<VertexId>(vs.begin(), vs.end());
}

}  // namespace sgq

// Snapshot graphs and materialized path graphs (paper Defs. 6 and 12).
//
// A snapshot graph G_t is the finite graph induced by the sgts of a
// streaming graph that are valid at instant t. It is the reference object
// for the snapshot-reducibility semantics (Def. 14): tests evaluate one-time
// queries on SnapshotGraph and compare against the incremental engine.

#ifndef SGQ_MODEL_SNAPSHOT_GRAPH_H_
#define SGQ_MODEL_SNAPSHOT_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/sgt.h"

namespace sgq {

/// \brief A materialized path entry of a snapshot graph: endpoints plus the
/// edge sequence rho(p) (Def. 6).
struct SnapshotPath {
  VertexId src = kInvalidVertex;
  VertexId trg = kInvalidVertex;
  LabelId label = kInvalidLabel;
  Payload edges;  ///< the ordered edge sequence forming the path
};

/// \brief Finite labeled graph with first-class paths, extracted from a
/// streaming graph at one instant.
class SnapshotGraph {
 public:
  SnapshotGraph() = default;

  /// \brief Builds the snapshot of `stream` at instant `t`: tuples whose
  /// validity contains t. Tuples with multi-edge payloads become paths P_t;
  /// single-edge tuples become edges E_t. Explicit deletions truncate prior
  /// insertions.
  static SnapshotGraph At(const SgtStream& stream, Timestamp t);

  /// \brief Builds a static graph from bare edges (for one-time oracles).
  static SnapshotGraph FromEdges(const std::vector<EdgeRef>& edges);

  /// \brief Inserts an edge (idempotent: set semantics).
  void AddEdge(const EdgeRef& e);

  /// \brief Inserts a path entry (set semantics on (src, trg, label)).
  void AddPath(const SnapshotPath& p);

  /// \brief All distinct edges, unordered.
  const std::vector<EdgeRef>& edges() const { return edges_; }

  /// \brief All distinct paths.
  const std::vector<SnapshotPath>& paths() const { return paths_; }

  /// \brief Outgoing edges of `v` with label `l` (empty if none).
  const std::vector<VertexId>& OutNeighbors(VertexId v, LabelId l) const;

  /// \brief Edges with label `l`.
  std::vector<EdgeRef> EdgesWithLabel(LabelId l) const;

  /// \brief True when the edge is present.
  bool HasEdge(const EdgeRef& e) const { return edge_set_.count(e) > 0; }

  /// \brief All vertices incident to some edge or path endpoint.
  std::vector<VertexId> Vertices() const;

  std::size_t NumEdges() const { return edges_.size(); }

 private:
  std::vector<EdgeRef> edges_;
  std::vector<SnapshotPath> paths_;
  std::unordered_set<EdgeRef, EdgeRefHash> edge_set_;
  std::unordered_set<EdgeRef, EdgeRefHash> path_keys_;
  // (src, label) -> out-neighbors
  std::unordered_map<std::pair<VertexId, LabelId>, std::vector<VertexId>,
                     PairHash>
      adjacency_;
};

}  // namespace sgq

#endif  // SGQ_MODEL_SNAPSHOT_GRAPH_H_

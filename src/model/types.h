// Fundamental identifier and time types of the streaming graph data model
// (paper §3.1).

#ifndef SGQ_MODEL_TYPES_H_
#define SGQ_MODEL_TYPES_H_

#include <cstdint>
#include <limits>

namespace sgq {

/// Discrete, totally ordered time domain T (Def. 3); non-negative integers.
using Timestamp = int64_t;

/// Identifier of a vertex in V, interned by Vocabulary.
using VertexId = uint64_t;

/// Identifier of a label in Sigma, interned by Vocabulary.
using LabelId = uint32_t;

/// Sentinel for "no label".
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Largest representable time instant; used for unbounded expiry.
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Smallest time instant.
inline constexpr Timestamp kMinTimestamp = 0;

}  // namespace sgq

#endif  // SGQ_MODEL_TYPES_H_

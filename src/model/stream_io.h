// Reading and writing input graph streams, as CSV quads
// (src,label,trg,timestamp[,op]) or as the compact SGQB binary format
// (DESIGN.md §6): a versioned little-endian header carrying the name
// dictionaries followed by fixed-width 24-byte records. Both formats have
// an incremental pull cursor for the async ingest pipeline and a chunked
// view for the sharded multi-parser stage.

#ifndef SGQ_MODEL_STREAM_IO_H_
#define SGQ_MODEL_STREAM_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "model/sgt.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief On-disk encodings of an input stream.
enum class StreamFormat {
  kCsv,     ///< text quads, one element per line
  kBinary,  ///< SGQB: dictionary header + fixed-width records
};

/// \brief How file-backed ingest maps stream bytes into memory
/// (model/file_chunk_source.h): mmap the file and serve zero-copy chunk
/// views, or pread chunks into a recycled buffer pool. Auto picks mmap
/// where the platform supports it and falls back to buffered reads.
/// Either way peak ingest-buffer memory is bounded by the readahead
/// window, not the file size, and the decoded element sequence (chunk
/// boundaries, error tagging included) is byte-identical.
enum class FileIngestMode {
  kAuto,      ///< mmap when available, buffered otherwise
  kMmap,      ///< require mmap (error on platforms/inputs without it)
  kBuffered,  ///< portable pread into a bounded recycled buffer pool
};

/// \brief Sniffs the format of a stream buffer: SGQB if it starts with the
/// binary magic, CSV otherwise (CSV lines can never start with the magic
/// because 'S','G','Q','B' would be a 4-field line, but the magic is
/// checked byte-for-byte so there is no ambiguity in practice).
StreamFormat DetectStreamFormat(std::string_view bytes);

/// \brief Pull-based stream parser interface: repeatedly call Next() until
/// it returns 0, then check status() to distinguish end-of-input from a
/// parse error. Implementations intern names through the (internally
/// synchronized) Vocabulary, so Next() is safe to call from an ingest or
/// parser thread while the execution thread resolves names.
class StreamCursor {
 public:
  virtual ~StreamCursor() = default;

  /// \brief Parses up to `cap` elements into `out`; returns how many were
  /// produced. 0 means end of input *or* error — check status(). After an
  /// error the cursor stays at 0 (no resynchronization).
  virtual std::size_t Next(Sge* out, std::size_t cap) = 0;

  virtual const Status& status() const = 0;
  bool ok() const { return status().ok(); }
};

/// \brief Parses a stream from CSV text. Each non-empty line is
/// `src,label,trg,timestamp` with an optional fifth field `+` (insert,
/// default) or `-` (explicit deletion). Lines starting with `#` are skipped.
/// Labels are interned as input labels; vertices are interned on first use.
/// Fails if timestamps are decreasing (Def. 4 requires ordered streams).
Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab);

/// \brief Incremental CSV stream parser: the pull-based counterpart of
/// ParseStreamCsv, built for the async ingest pipeline (DESIGN.md §6) —
/// the ingest thread parses the next micro-batch while the previous one
/// executes, so the cursor must hand out elements a chunk at a time
/// instead of materializing the whole stream up front.
/// `text` is borrowed and must outlive the cursor.
class StreamCsvCursor : public StreamCursor {
 public:
  /// \brief `allow_disorder` lifts the non-decreasing-timestamp check for
  /// sources drained through a reorder-slack stage (ExecutorOptions::
  /// ingest_slack); ParseStreamCsv semantics keep it strict.
  StreamCsvCursor(const std::string& text, Vocabulary* vocab,
                  bool allow_disorder = false)
      : text_(text), vocab_(vocab), allow_disorder_(allow_disorder) {}

  /// \brief Chunk-mode cursor over a slice of a larger CSV buffer
  /// (MakeChunkedStream): `base_line` is the number of lines preceding the
  /// slice, so errors keep reporting global 1-based line numbers. The
  /// ordering check is chunk-local (starts from kMinTimestamp); the
  /// consumer re-validates across chunk boundaries.
  StreamCsvCursor(std::string_view text, Vocabulary* vocab,
                  bool allow_disorder, std::size_t base_line)
      : text_(text),
        vocab_(vocab),
        allow_disorder_(allow_disorder),
        line_no_(base_line) {}

  std::size_t Next(Sge* out, std::size_t cap) override;

  const Status& status() const override { return status_; }

  /// \brief 1-based line of the last parse attempt (error reporting).
  std::size_t line_number() const { return line_no_; }

 private:
  std::string_view text_;
  Vocabulary* vocab_;
  bool allow_disorder_;
  std::size_t offset_ = 0;
  std::size_t line_no_ = 0;
  Timestamp last_t_ = kMinTimestamp;
  Status status_ = Status::OK();
};

/// \brief Renders a stream back to CSV (inverse of ParseStreamCsv).
std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab);

/// \brief Appends one element's CSV line (trailing newline included) to
/// `*out` — the single definition of the CSV rendering, shared by
/// FormatStreamCsv and the streaming stream_convert path so both emit
/// byte-identical text.
void AppendCsvLine(const Sge& sge, const Vocabulary& vocab,
                   std::string* out);

// ---------------------------------------------------------------------------
// SGQB binary stream format (little-endian throughout):
//
//   offset 0   magic "SGQB" (4 bytes)
//          4   u32  version        (currently 1)
//          8   u32  label_count
//         12   u32  vertex_count
//         16   u64  record_count
//         24   label dictionary:  label_count  × { u16 len, len bytes }
//          …   vertex dictionary: vertex_count × { u16 len, len bytes }
//          …   records:           record_count × 24 bytes
//
// Each record:  i64 timestamp | u32 src | u32 trg | u32 label | u8 op |
// 3 pad bytes (zero). src/trg/label are *dictionary indexes* (not
// Vocabulary ids), so the file is self-contained and readers intern the
// dictionary once, deterministically, regardless of how many parser
// threads later decode records. Dictionaries list names in first-use
// order of the encoded stream — the same order a fresh CSV parse interns
// them — so CSV → binary → CSV round-trips byte- and id-identically.
// Readers reject unknown versions; future revisions bump the version and
// may append header fields after record_count.
// ---------------------------------------------------------------------------

/// \brief SGQB magic bytes and current version.
inline constexpr char kBinaryStreamMagic[4] = {'S', 'G', 'Q', 'B'};
inline constexpr std::uint32_t kBinaryStreamVersion = 1;
/// \brief Bytes per fixed-width SGQB record.
inline constexpr std::size_t kBinaryRecordBytes = 24;
/// \brief Buffer size for stream file I/O (32 KB, the GraphStreamingCC
/// sweet spot for sequential binary reads).
inline constexpr std::size_t kStreamIoBufferBytes = 32 * 1024;

/// \brief Decoded SGQB header: dictionary index → Vocabulary id mappings
/// plus the location of the fixed-width record region. Immutable after
/// parse, so parser threads share one instance.
struct BinaryStreamHeader {
  std::vector<LabelId> labels;     ///< dict index -> interned label id
  std::vector<VertexId> vertices;  ///< dict index -> interned vertex id
  std::size_t records_offset = 0;  ///< absolute byte offset of record 0
  std::uint64_t num_records = 0;
};

/// \brief Parses and validates an SGQB header, interning every dictionary
/// name into `*vocab` (single-threaded — binary streams keep Vocabulary id
/// assignment deterministic even under multi-parser decode). Validates
/// that the record region is exactly record_count × 24 bytes.
Result<BinaryStreamHeader> ParseBinaryStreamHeader(std::string_view bytes,
                                                   Vocabulary* vocab);

/// \brief ParseBinaryStreamHeader over a *prefix* of a larger stream:
/// `total_bytes` is the full stream length, so the record-region check
/// validates against the real file size instead of the prefix. Returns the
/// TruncatedHeader parse error while the dictionaries extend past the
/// prefix — callers grow the prefix and retry until it succeeds or covers
/// the whole stream (at which point the errors match the whole-buffer
/// parse exactly). Powers the buffered file ingest path, which cannot
/// materialize the record region just to find where the header ends.
Result<BinaryStreamHeader> ParseBinaryStreamHeaderPrefix(
    std::string_view prefix, std::uint64_t total_bytes, Vocabulary* vocab);

/// \brief Appends the SGQB header (magic through dictionaries) for the
/// given first-use-order dictionaries to `*out`. Fails on names longer
/// than 64 KiB. Shared by FormatStreamBinary and the streaming
/// stream_convert encoder.
Status AppendBinaryStreamHeader(const std::vector<LabelId>& labels,
                                const std::vector<VertexId>& vertices,
                                std::uint64_t num_records,
                                const Vocabulary& vocab, std::string* out);

/// \brief Appends one fixed-width 24-byte SGQB record. `src`/`trg`/`label`
/// are dictionary indexes (first-use order), not Vocabulary ids.
void AppendBinaryStreamRecord(const Sge& sge, std::uint32_t src,
                              std::uint32_t trg, std::uint32_t label,
                              std::string* out);

/// \brief Incremental SGQB record decoder mirroring StreamCsvCursor. The
/// whole-buffer constructor parses the header eagerly (errors surface via
/// status()); the chunk-mode constructor shares a pre-parsed header and
/// decodes a record-aligned slice. Error messages are tagged with the
/// absolute byte offset of the offending record.
class BinaryStreamCursor : public StreamCursor {
 public:
  /// \brief Whole-buffer cursor: header + all records. `bytes` is borrowed
  /// and must outlive the cursor.
  BinaryStreamCursor(const std::string& bytes, Vocabulary* vocab,
                     bool allow_disorder = false);

  /// \brief Chunk-mode cursor over `records` (a 24-byte-aligned slice of
  /// the record region, borrowed) at absolute byte offset `base_offset`.
  /// Ordering is chunk-local; the consumer re-validates across chunks.
  BinaryStreamCursor(std::shared_ptr<const BinaryStreamHeader> header,
                     std::string_view records, std::size_t base_offset,
                     bool allow_disorder = false);

  std::size_t Next(Sge* out, std::size_t cap) override;

  const Status& status() const override { return status_; }

 private:
  std::shared_ptr<const BinaryStreamHeader> header_;
  std::string_view records_;
  std::size_t base_offset_ = 0;  ///< absolute offset of records_[0]
  std::size_t pos_ = 0;          ///< cursor within records_
  bool allow_disorder_ = false;
  Timestamp last_t_ = kMinTimestamp;
  Status status_ = Status::OK();
};

/// \brief Parses a whole SGQB buffer (binary counterpart of
/// ParseStreamCsv).
Result<InputStream> ParseStreamBinary(const std::string& bytes,
                                      Vocabulary* vocab);

/// \brief Encodes a stream as SGQB (inverse of ParseStreamBinary).
/// Dictionaries are emitted in first-use order of `stream`. Fails only on
/// pathological inputs (a name longer than 64 KiB, or more than 2^32 - 1
/// distinct labels/vertices — the dictionary index width).
Result<std::string> FormatStreamBinary(const InputStream& stream,
                                       const Vocabulary& vocab);

// ---------------------------------------------------------------------------
// Chunked views — the unit of work of the sharded parse stage
// (runtime/ingest_pipeline.h): parser threads open disjoint chunks
// concurrently, and an order-restoring merge reassembles elements in chunk
// order.
// ---------------------------------------------------------------------------

/// \brief A stream buffer pre-split into record-aligned byte-range chunks.
/// CSV chunks break at newline boundaries (with global line numbers
/// preserved for errors); binary chunks slice the fixed-width record
/// region after one shared header parse. Chunk order is stream order:
/// concatenating the chunks' elements 0..NumChunks()-1 reproduces the
/// sequential parse exactly.
class ChunkedStream {
 public:
  virtual ~ChunkedStream() = default;

  virtual std::size_t NumChunks() const = 0;

  /// \brief Opens a fresh cursor over chunk `i`. Thread-safe: parser
  /// threads call this concurrently for distinct (or even equal) chunks.
  /// May block on sources with a bounded readahead window
  /// (model/file_chunk_source.h) until earlier chunks retire; header
  /// errors already surfaced at construction, so a returned cursor's
  /// status() carries any per-chunk load or parse error.
  virtual std::unique_ptr<StreamCursor> OpenChunk(std::size_t i) const = 0;

  virtual StreamFormat format() const = 0;

  /// \brief Wakes any thread blocked inside OpenChunk and makes further
  /// opens fail fast — called by the sharded-parse merge when it aborts a
  /// run, so parser threads waiting on the readahead window cannot hang.
  /// No-op for fully materialized streams (nothing ever blocks).
  virtual void Abort() const {}

  /// \brief Cumulative nanoseconds callers spent inside the chunk feeder —
  /// pread/page-scan time plus readahead-window backpressure. 0 for fully
  /// materialized streams.
  virtual std::uint64_t ReadaheadStallNs() const { return 0; }
};

/// \brief Chunk sizing shared by every ChunkedStream implementation: at
/// least `min_chunks` chunks so every parser thread has work even on small
/// inputs, but no smaller than ~256 KB per chunk on large inputs (finer
/// slicing only adds merge overhead). File-backed sources must call this
/// with the same payload size as the in-memory splitter so chunk
/// boundaries — and therefore error tagging and merge order — stay
/// byte-identical.
std::size_t PickNumChunks(std::size_t payload_bytes, std::size_t min_chunks);

/// \brief Sequential walk over a ChunkedStream's cursors — the collapsed
/// parsers=1 form of the sharded parse (runtime/ingest_pipeline.h) and the
/// synchronous file-ingest pump: identical element sequence to one cursor
/// over the whole buffer, plus the cross-chunk ordering check the
/// chunk-local cursors cannot perform. Accounts pure parse time (busy_ns)
/// for parse_tuples_per_sec parity with the multi-parser stage. Retires
/// each chunk (drops its cursor) before opening the next, so windowed
/// file sources keep only one chunk resident.
class ChunkWalkCursor : public StreamCursor {
 public:
  ChunkWalkCursor(const ChunkedStream& stream, bool allow_disorder)
      : stream_(stream), check_order_(!allow_disorder) {}

  std::size_t Next(Sge* buf, std::size_t cap) override;

  const Status& status() const override { return status_; }

  /// \brief Nanoseconds inside the chunk cursors' Next — the pure
  /// tokenize/decode cost.
  std::uint64_t busy_ns() const { return busy_ns_; }

 private:
  const ChunkedStream& stream_;
  const bool check_order_;
  std::unique_ptr<StreamCursor> cursor_;
  std::size_t next_chunk_ = 0;
  std::size_t chunk_ = 0;
  bool fresh_chunk_ = false;
  Timestamp last_t_ = kMinTimestamp;
  std::uint64_t busy_ns_ = 0;
  Status status_ = Status::OK();
};

/// \brief The cross-chunk ordering violation both the sharded merge and
/// ChunkWalkCursor report (chunk-local cursors cannot see across a
/// boundary, so the consumer re-validates there).
Status ChunkBoundaryError(std::size_t chunk, Timestamp got, Timestamp prev);

/// \brief Splits `bytes` (borrowed; must outlive the result) into at least
/// `min_chunks` chunks of roughly equal size where the input allows,
/// capped so large inputs get ~256 KB chunks for load balancing. Binary
/// inputs parse and validate the header here (interning into `*vocab`
/// deterministically); CSV inputs only scan for newline boundaries, so
/// header errors surface here but per-record errors surface from the
/// chunk cursors.
Result<std::unique_ptr<ChunkedStream>> MakeChunkedStream(
    const std::string& bytes, StreamFormat format, Vocabulary* vocab,
    bool allow_disorder, std::size_t min_chunks);

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// \brief Reads a whole file in binary mode with kStreamIoBufferBytes
/// buffered reads. Errors carry the errno text (missing file, directory
/// instead of a file, read failures).
Result<std::string> ReadFileBytes(const std::string& path);

/// \brief Incremental buffered file writer: Append() accumulates into a
/// kStreamIoBufferBytes staging buffer and flushes full buffers to disk,
/// so writers of arbitrarily large outputs (streaming stream_convert)
/// never materialize more than one buffer. Errors (open, short write)
/// carry the errno text, stick, and re-surface from every later call.
class FileByteSink {
 public:
  /// \brief Opens `path` for truncating binary write.
  explicit FileByteSink(const std::string& path);
  ~FileByteSink();

  FileByteSink(const FileByteSink&) = delete;
  FileByteSink& operator=(const FileByteSink&) = delete;

  /// \brief Buffers `bytes`, flushing in kStreamIoBufferBytes units.
  Status Append(std::string_view bytes);

  /// \brief Pushes the staged tail into the stdio stream. Short writes
  /// surface the errno text and how many bytes were lost, and stick.
  Status Flush();

  /// \brief Flush + fflush + fsync: forces everything appended so far to
  /// stable storage. The durability half of the checkpoint write protocol
  /// (model/checkpoint.h): Sync() before the atomic rename guarantees a
  /// crash after the rename still finds complete checkpoint bytes.
  Status Sync();

  /// \brief Flushes the tail and closes the file. Idempotent; the
  /// destructor calls it, but callers should Close() explicitly to see
  /// the final flush's status.
  Status Close();

  /// \brief Bytes accepted so far (buffered bytes included).
  std::uint64_t bytes_written() const { return bytes_written_; }

  const Status& status() const { return status_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::uint64_t bytes_written_ = 0;
  Status status_ = Status::OK();
};

/// \brief Writes `bytes` to `path` in binary mode with
/// kStreamIoBufferBytes buffered writes (FileByteSink one-shot). Errors
/// carry the errno text.
Status WriteFileBytes(const std::string& path, std::string_view bytes);

/// \brief Reads a stream file from disk, auto-detecting CSV vs SGQB by the
/// magic bytes.
Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_MODEL_STREAM_IO_H_

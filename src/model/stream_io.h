// Reading and writing input graph streams as CSV quads
// (src,label,trg,timestamp[,op]).

#ifndef SGQ_MODEL_STREAM_IO_H_
#define SGQ_MODEL_STREAM_IO_H_

#include <string>

#include "common/result.h"
#include "model/sgt.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief Parses a stream from CSV text. Each non-empty line is
/// `src,label,trg,timestamp` with an optional fifth field `+` (insert,
/// default) or `-` (explicit deletion). Lines starting with `#` are skipped.
/// Labels are interned as input labels; vertices are interned on first use.
/// Fails if timestamps are decreasing (Def. 4 requires ordered streams).
Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab);

/// \brief Renders a stream back to CSV (inverse of ParseStreamCsv).
std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab);

/// \brief Reads ParseStreamCsv input from a file on disk.
Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_MODEL_STREAM_IO_H_

// Reading and writing input graph streams as CSV quads
// (src,label,trg,timestamp[,op]).

#ifndef SGQ_MODEL_STREAM_IO_H_
#define SGQ_MODEL_STREAM_IO_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "model/sgt.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief Parses a stream from CSV text. Each non-empty line is
/// `src,label,trg,timestamp` with an optional fifth field `+` (insert,
/// default) or `-` (explicit deletion). Lines starting with `#` are skipped.
/// Labels are interned as input labels; vertices are interned on first use.
/// Fails if timestamps are decreasing (Def. 4 requires ordered streams).
Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab);

/// \brief Incremental CSV stream parser: the pull-based counterpart of
/// ParseStreamCsv, built for the async ingest pipeline (DESIGN.md §6) —
/// the ingest thread parses the next micro-batch while the previous one
/// executes, so the cursor must hand out elements a chunk at a time
/// instead of materializing the whole stream up front.
///
/// Usage: repeatedly call Next() until it returns 0, then check status()
/// to distinguish end-of-input from a parse error. Interning goes through
/// the (internally synchronized) Vocabulary, so Next() is safe to call
/// from the ingest thread while the execution thread resolves names.
/// `text` is borrowed and must outlive the cursor.
class StreamCsvCursor {
 public:
  /// \brief `allow_disorder` lifts the non-decreasing-timestamp check for
  /// sources drained through a reorder-slack stage (ExecutorOptions::
  /// ingest_slack); ParseStreamCsv semantics keep it strict.
  StreamCsvCursor(const std::string& text, Vocabulary* vocab,
                  bool allow_disorder = false)
      : text_(&text), vocab_(vocab), allow_disorder_(allow_disorder) {}

  /// \brief Parses up to `cap` elements into `out`; returns how many were
  /// produced. 0 means end of input *or* error — check status(). After an
  /// error the cursor stays at 0 (no resynchronization).
  std::size_t Next(Sge* out, std::size_t cap);

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// \brief 1-based line of the last parse attempt (error reporting).
  std::size_t line_number() const { return line_no_; }

 private:
  const std::string* text_;
  Vocabulary* vocab_;
  bool allow_disorder_;
  std::size_t offset_ = 0;
  std::size_t line_no_ = 0;
  Timestamp last_t_ = kMinTimestamp;
  Status status_ = Status::OK();
};

/// \brief Renders a stream back to CSV (inverse of ParseStreamCsv).
std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab);

/// \brief Reads ParseStreamCsv input from a file on disk.
Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab);

}  // namespace sgq

#endif  // SGQ_MODEL_STREAM_IO_H_

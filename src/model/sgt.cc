#include "model/sgt.h"

#include <sstream>

namespace sgq {

std::string Sgt::ToString(const Vocabulary& vocab) const {
  std::ostringstream os;
  os << (is_deletion ? "-" : "") << "(" << vocab.VertexName(src) << ", "
     << vocab.LabelName(label) << ", " << vocab.VertexName(trg) << ", "
     << validity.ToString();
  if (!payload.empty()) {
    os << ", <";
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (i > 0) os << " ";
      const EdgeRef& e = payload[i];
      os << "(" << vocab.VertexName(e.src) << "-" << vocab.LabelName(e.label)
         << "->" << vocab.VertexName(e.trg) << ")";
    }
    os << ">";
  }
  os << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const EdgeRef& e) {
  return os << "(" << e.src << "-" << e.label << "->" << e.trg << ")";
}

}  // namespace sgq

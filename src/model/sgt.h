// Streaming graph edges and tuples (paper Defs. 3, 7, 8, 10).

#ifndef SGQ_MODEL_SGT_H_
#define SGQ_MODEL_SGT_H_

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "model/interval.h"
#include "model/types.h"
#include "model/vocabulary.h"

namespace sgq {

/// \brief A value edge (src, trg, label) without temporal attributes; the
/// unit of the payload D and of snapshot graphs.
struct EdgeRef {
  VertexId src = kInvalidVertex;
  VertexId trg = kInvalidVertex;
  LabelId label = kInvalidLabel;

  EdgeRef() = default;
  EdgeRef(VertexId s, VertexId t, LabelId l) : src(s), trg(t), label(l) {}

  bool operator==(const EdgeRef& o) const {
    return src == o.src && trg == o.trg && label == o.label;
  }
  bool operator!=(const EdgeRef& o) const { return !(*this == o); }
  bool operator<(const EdgeRef& o) const {
    if (src != o.src) return src < o.src;
    if (trg != o.trg) return trg < o.trg;
    return label < o.label;
  }
};

struct EdgeRefHash {
  std::size_t operator()(const EdgeRef& e) const {
    std::size_t seed = std::hash<VertexId>{}(e.src);
    HashCombine(&seed, std::hash<VertexId>{}(e.trg));
    HashCombine(&seed, std::hash<LabelId>{}(e.label));
    return seed;
  }
};

/// \brief A path as a sequence of edges; the payload D of a path sgt.
/// A single-element sequence represents a plain edge payload.
using Payload = std::vector<EdgeRef>;

/// \brief Streaming graph edge (Def. 3): an input-stream element carrying
/// the event timestamp assigned by the source.
struct Sge {
  VertexId src = kInvalidVertex;
  VertexId trg = kInvalidVertex;
  LabelId label = kInvalidLabel;
  Timestamp t = 0;
  /// Negative tuple flag: true when this element explicitly deletes the
  /// previously inserted edge (§6.2.5).
  bool is_deletion = false;

  Sge() = default;
  Sge(VertexId s, VertexId g, LabelId l, Timestamp time, bool del = false)
      : src(s), trg(g), label(l), t(time), is_deletion(del) {}

  EdgeRef edge() const { return EdgeRef(src, trg, label); }
};

/// \brief An input graph stream (Def. 4): sges ordered non-decreasingly by
/// timestamp.
using InputStream = std::vector<Sge>;

/// \brief Streaming graph tuple (Def. 7).
///
/// Distinguished attributes: src, trg, label. Non-distinguished: the
/// validity interval and the payload D (the edges that participated in the
/// generation of the tuple, or the edge sequence of a materialized path).
struct Sgt {
  VertexId src = kInvalidVertex;
  VertexId trg = kInvalidVertex;
  LabelId label = kInvalidLabel;
  Interval validity;
  Payload payload;
  /// Negative tuple flag (§6.2.5): true when this sgt retracts a previously
  /// emitted value-equivalent sgt.
  bool is_deletion = false;

  Sgt() = default;
  Sgt(VertexId s, VertexId t, LabelId l, Interval iv, Payload d = {},
      bool del = false)
      : src(s), trg(t), label(l), validity(iv), payload(std::move(d)),
        is_deletion(del) {}

  /// \brief The (src, trg, label) triple this tuple asserts.
  EdgeRef edge() const { return EdgeRef(src, trg, label); }

  /// \brief Value-equivalence (Def. 10): equality of distinguished
  /// attributes only.
  bool ValueEquivalent(const Sgt& other) const {
    return src == other.src && trg == other.trg && label == other.label;
  }

  /// \brief Full structural equality (incl. interval and payload).
  bool operator==(const Sgt& other) const {
    return ValueEquivalent(other) && validity == other.validity &&
           payload == other.payload && is_deletion == other.is_deletion;
  }

  /// \brief Debug rendering using the vocabulary for names.
  std::string ToString(const Vocabulary& vocab) const;
};

/// \brief A streaming graph (Def. 8): tuples ordered by arrival.
using SgtStream = std::vector<Sgt>;

std::ostream& operator<<(std::ostream& os, const EdgeRef& e);

}  // namespace sgq

#endif  // SGQ_MODEL_SGT_H_

// SGQC — the versioned checkpoint/snapshot format (DESIGN.md §7): a
// little-endian container of named, length-framed, CRC-checked sections
// holding the engine's complete runtime state (vocabulary, executor
// clock, window partitions, per-operator state, sink buffers).
//
//   offset 0   magic "SGQC" (4 bytes)
//          4   u32  version        (currently 2)
//          8   u32  section_count
//         12   section_count × {
//                u16 name_len, name bytes,
//                u64 payload_len, u32 payload crc32,
//                payload bytes }
//          …   footer: end magic "CQGS" (4 bytes),
//              u32 crc32 of every preceding byte (header + sections +
//              end magic)
//
// Every frame is validated before any payload is handed out: truncation
// at any byte, a flipped bit in any section, or an unknown version is
// rejected with a *positioned* error (byte offset + section name), never
// a partial parse. Files are written through a temp-file + fsync +
// atomic-rename protocol (CheckpointWriter::WriteFile), so a crash mid-
// write can never leave a live-but-torn checkpoint under the final name.
//
// The Put*/ByteReader helpers below are the single encode/decode
// vocabulary for section payloads — operators' Serialize/Deserialize
// methods use them so every decode path is bounds-checked and errors
// carry the offset of the offending field.

#ifndef SGQ_MODEL_CHECKPOINT_H_
#define SGQ_MODEL_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "model/sgt.h"

namespace sgq {

/// \brief SGQC magic bytes, footer magic, and current format version.
inline constexpr char kCheckpointMagic[4] = {'S', 'G', 'Q', 'C'};
inline constexpr char kCheckpointEndMagic[4] = {'C', 'Q', 'G', 'S'};
/// Version 2: per-operator liveness flags in the "ops" section and
/// (plan, live) registration history in "queries" — live query
/// deregistration (DESIGN.md §10) made both section layouts richer.
inline constexpr std::uint32_t kCheckpointVersion = 2;

// ---------------------------------------------------------------------------
// Little-endian payload encoding helpers
// ---------------------------------------------------------------------------

void PutU8(std::string* out, std::uint8_t v);
void PutU16(std::string* out, std::uint16_t v);
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
void PutI64(std::string* out, std::int64_t v);
/// \brief u32 length + raw bytes.
void PutStr(std::string* out, std::string_view s);

class ByteReader;

/// \brief Sge/Sgt codecs shared by the operator, sink, and executor
/// checkpoint sections (pending micro-batches, buffered results).
void PutSge(std::string* out, const Sge& e);
Sge GetSge(ByteReader* in);
void PutSgt(std::string* out, const Sgt& t);
Sgt GetSgt(ByteReader* in);

/// \brief Positioned little-endian decoder with a sticky error: after the
/// first out-of-bounds read every further read returns 0/empty and
/// status() carries "context: offset N: …". Callers check status() once
/// at the end (and ExpectEnd() to reject trailing garbage) instead of
/// bounds-checking every field.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  /// \brief `n` raw bytes (a view into the input; valid while it lives).
  std::string_view Raw(std::size_t n);
  /// \brief u32 length + bytes (inverse of PutStr).
  std::string Str();

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  /// \brief The error-prefix context (for positioning sub-readers).
  const std::string& context() const { return context_; }

  /// \brief Error (with position) unless the input is fully consumed.
  Status ExpectEnd();

  /// \brief Flags a semantic error at the current offset (bad flag value,
  /// mismatched count, …); sticks like a bounds error.
  Status Fail(const std::string& what);

 private:
  std::string_view bytes_;
  std::string context_;
  std::size_t offset_ = 0;
  Status status_ = Status::OK();
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// \brief Destination abstraction for checkpoint bytes. The production
/// implementation wraps FileByteSink (model/stream_io.h); tests inject
/// failing sinks to simulate ENOSPC / short writes at any byte.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status Close() = 0;
};

/// \brief ByteSink into a growing string (tests, in-memory checkpoints).
class StringByteSink : public ByteSink {
 public:
  Status Append(std::string_view b) override {
    bytes_.append(b.data(), b.size());
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// \brief Assembles an SGQC image from named sections and writes it out.
/// Section order is preserved (restore is order-independent, but a stable
/// order keeps checkpoint bytes deterministic for differential tests).
class CheckpointWriter {
 public:
  /// \brief Appends one section; names must be unique and < 64 KiB.
  void AddSection(std::string name, std::string payload);

  /// \brief The complete SGQC byte image (header + sections + footer).
  std::string Encode() const;

  /// \brief Streams Encode() through `sink` and closes it. Any sink error
  /// (short write, injected ENOSPC) aborts and surfaces verbatim.
  Status WriteTo(ByteSink* sink) const;

  /// \brief Durable file write: encode to `path + ".tmp"`, fsync, then
  /// atomically rename over `path` and fsync the parent directory. A
  /// crash at any instant leaves either the previous file (or nothing)
  /// or the complete new checkpoint — never a torn one.
  Status WriteFile(const std::string& path) const;

  std::size_t num_sections() const { return sections_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// \brief The durable half of CheckpointWriter::WriteFile, reusable with
/// pre-encoded bytes: write to `path + ".tmp"`, fsync, atomically rename
/// over `path`, fsync the parent directory.
Status WriteFileDurable(const std::string& path, std::string_view bytes);

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// \brief One parsed section frame: `offset` is the absolute byte offset
/// of the payload (error positioning); payload bytes are viewed through
/// CheckpointReader::payload().
struct CheckpointSection {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

/// \brief Parses and fully validates an SGQC image before exposing any
/// payload: magic, version, every section frame + CRC, footer magic +
/// whole-file CRC. Owns the bytes, so sections stay valid for the
/// reader's lifetime.
class CheckpointReader {
 public:
  /// \brief `context` prefixes every error (typically the file path).
  static Result<CheckpointReader> Parse(std::string bytes,
                                        std::string context);

  /// \brief ReadFileBytes + Parse with the path as context.
  static Result<CheckpointReader> ParseFile(const std::string& path);

  std::uint32_t version() const { return version_; }
  const std::vector<CheckpointSection>& sections() const { return sections_; }

  /// \brief The section named `name`, or nullptr.
  const CheckpointSection* Find(std::string_view name) const;

  /// \brief Payload bytes of `section` (view into the reader's buffer).
  std::string_view payload(const CheckpointSection& section) const {
    return std::string_view(bytes_).substr(section.offset, section.length);
  }

  /// \brief ByteReader over the named section's payload, with errors
  /// positioned as "context: section 'name': …"; NotFound when absent.
  Result<ByteReader> Open(std::string_view name) const;

  const std::string& context() const { return context_; }

 private:
  CheckpointReader() = default;

  std::string bytes_;
  std::string context_;
  std::uint32_t version_ = 0;
  std::vector<CheckpointSection> sections_;
};

}  // namespace sgq

#endif  // SGQ_MODEL_CHECKPOINT_H_

// Temporal coalescing of value-equivalent sgts (paper Defs. 10-11).
//
// SGA operators may produce multiple value-equivalent sgts with overlapping
// or adjacent validity intervals; coalescing merges them to maintain the set
// semantics of snapshot graphs (at any instant each edge/path exists once).

#ifndef SGQ_MODEL_COALESCE_H_
#define SGQ_MODEL_COALESCE_H_

#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vec.h"
#include "model/checkpoint.h"
#include "model/sgt.h"

namespace sgq {

/// \brief Operator-specific aggregation over payloads of merged tuples
/// (the f_agg of Def. 11). Receives the payloads of all merged tuples.
using PayloadAggregator =
    std::function<Payload(const std::vector<const Payload*>&)>;

/// \brief f_agg that keeps the payload of the tuple expiring last (the
/// choice S-PATH makes: materialize the longest-lived derivation).
Payload KeepLastExpiringPayload(const std::vector<const Payload*>& payloads,
                                const std::vector<Interval>& intervals);

/// \brief Batch coalesce (Def. 11): merges value-equivalent tuples with
/// overlapping or adjacent intervals. Tuples that are not value-equivalent
/// or whose intervals are disjoint stay separate. Output order: grouped by
/// (src, trg, label), sorted by ts within a group.
std::vector<Sgt> Coalesce(const std::vector<Sgt>& tuples);

/// \brief Online duplicate suppression for operator output streams.
///
/// Tracks, per distinguished triple, the union of intervals emitted so far.
/// Offer() returns true (and records the tuple) only when the new tuple's
/// interval adds at least one not-yet-covered instant; fully covered tuples
/// are suppressed. This keeps the emitted stream snapshot-equivalent to the
/// uncoalesced stream while removing redundancy.
class StreamingCoalescer {
 public:
  /// \brief Returns true if `t` must be emitted; false if suppressed.
  bool Offer(const Sgt& t);

  /// \brief Removes interval state that expired before `t` (periodic purge).
  void PurgeBefore(Timestamp t);

  /// \brief Drops all coverage recorded for `key`. Only for retraction
  /// paths where the deletion instant is unknown (cross-shard re-assert
  /// coordination); prefer the interval-level overload.
  void Forget(const EdgeRef& key) { covered_.erase(key); }

  /// \brief Interval-level forget: removes coverage at instants >= `from`,
  /// mirroring how an explicit deletion at `from` truncates downstream
  /// validity (SnapshotEdges). Coverage before the deletion instant keeps
  /// suppressing redundant re-emissions; re-asserts extending past it are
  /// emitted again. Drops the key when nothing remains.
  void Forget(const EdgeRef& key, Timestamp from);

  /// \brief Number of distinct keys currently tracked.
  std::size_t NumKeys() const { return covered_.size(); }

  /// \brief Approximate resident bytes (map capacity + overflow runs).
  std::size_t ApproxBytes() const {
    std::size_t n = covered_.capacity_bytes();
    for (const auto& [key, ivs] : covered_) {
      (void)key;
      n += ivs.overflow_bytes();
    }
    return n;
  }

  /// \brief Checkpoint encoding (model/checkpoint.h): keys in sorted order
  /// (deterministic bytes), per-key interval lists verbatim. Suppression
  /// decisions depend only on per-key coverage, never on map layout, so
  /// re-inserting on restore reproduces identical Offer() behavior.
  void SerializeState(std::string* out) const;

  /// \brief Rebuilds coverage from SerializeState bytes; requires an empty
  /// coalescer (freshly built restore topology).
  Status DeserializeState(ByteReader* in);

 private:
  // Per key: disjoint covered intervals, sorted by ts, in a small inlined
  // vector — most keys hold one or two intervals, so the whole entry
  // (key + coverage) lives in one flat-map slot and one Offer touches one
  // cache line (hot path: one Offer per candidate result).
  FlatMap<EdgeRef, SmallVec<Interval, 2>, EdgeRefHash> covered_;
};

/// \brief Restricts a stream to the tuples valid at instant `t` and returns
/// their distinguished edges; deletions remove previously added edges.
/// This is the snapshot mapping tau_t (Def. 12) on value level.
std::vector<EdgeRef> SnapshotEdges(const SgtStream& stream, Timestamp t);

}  // namespace sgq

#endif  // SGQ_MODEL_COALESCE_H_

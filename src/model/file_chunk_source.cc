#include "model/file_chunk_source.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SGQ_FILE_SOURCE_POSIX 1
#endif

namespace sgq {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

std::string ErrnoText(int err) {
  if (err == 0) return "unknown error";
  return std::strerror(err);
}

/// \brief A cursor that is already dead: Next yields nothing and status()
/// carries why (load failures, post-abort opens).
class ErrorCursor : public StreamCursor {
 public:
  explicit ErrorCursor(Status status) : status_(std::move(status)) {}
  std::size_t Next(Sge*, std::size_t) override { return 0; }
  const Status& status() const override { return status_; }

 private:
  Status status_;
};

/// \brief Wraps a chunk cursor so dropping it returns the chunk to the
/// readahead window. The inner cursor is destroyed first — its views die
/// before the bytes can be recycled.
class RetiringCursor : public StreamCursor {
 public:
  RetiringCursor(const FileChunkSource* source, std::size_t chunk,
                 std::unique_ptr<StreamCursor> inner,
                 void (FileChunkSource::*retire)(std::size_t) const)
      : source_(source), chunk_(chunk), retire_(retire),
        inner_(std::move(inner)) {}
  ~RetiringCursor() override {
    inner_.reset();
    (source_->*retire_)(chunk_);
  }

  std::size_t Next(Sge* out, std::size_t cap) override {
    return inner_->Next(out, cap);
  }
  const Status& status() const override { return inner_->status(); }

 private:
  const FileChunkSource* source_;
  std::size_t chunk_;
  void (FileChunkSource::*retire_)(std::size_t) const;
  std::unique_ptr<StreamCursor> inner_;
};

#if defined(SGQ_FILE_SOURCE_POSIX)
/// \brief pread() exactly `len` bytes at `off`, surviving short reads.
Status PreadExact(int fd, char* dst, std::size_t len, std::uint64_t off,
                  const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, dst, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("read error on stream file: " + path + ": " +
                              ErrnoText(errno));
    }
    if (n == 0) {
      return Status::Internal("read error on stream file: " + path +
                              ": unexpected end of file");
    }
    dst += n;
    len -= static_cast<std::size_t>(n);
    off += static_cast<std::uint64_t>(n);
  }
  return Status::OK();
}
#endif

}  // namespace

FileChunkSource::~FileChunkSource() {
#if defined(SGQ_FILE_SOURCE_POSIX)
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

std::uint64_t FileChunkSource::peak_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_resident_bytes_;
}

void FileChunkSource::Abort() const {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  cv_.notify_all();
}

FileChunkSource::LoadResult FileChunkSource::LoadChunk(
    std::size_t k, std::uint64_t begin, std::string recycled) const {
  LoadResult r;
  const std::uint64_t size = file_size_;
  const std::size_t n = chunks_.size();

  if (format_ == StreamFormat::kBinary) {
    // Record-aligned boundaries were fixed arithmetically at
    // construction; loading is pure byte transfer.
    r.end = chunks_[k].end;
    begin = chunks_[k].begin;
    if (map_ != nullptr || materialized_) return r;
#if defined(SGQ_FILE_SOURCE_POSIX)
    r.buffer = std::move(recycled);
    r.buffer.resize(static_cast<std::size_t>(r.end - begin));
    r.status = PreadExact(fd_, r.buffer.data(), r.buffer.size(), begin,
                          path_);
#endif
    return r;
  }

  // CSV: replicate the in-memory splitter exactly — ideal boundary
  // size*(k+1)/n, extended to the first newline at or after it; a chunk
  // whose ideal boundary fell behind its begin collapses to empty (the
  // newline ending the previous chunk is also the first at/after this
  // ideal boundary — boundaries are monotone).
  const std::uint64_t ideal =
      (k + 1 == n) ? size
                   : (size * static_cast<std::uint64_t>(k + 1)) / n;
  if (k + 1 < n && ideal < begin) {
    r.end = begin;
    return r;
  }

  const char* base = materialized_ ? owned_.data() : map_;
  if (base != nullptr) {
    // Mapped/materialized: boundary scan directly over the bytes (this
    // touch is the sequential page-in mmap readahead runs ahead of).
    std::uint64_t end = size;
    if (k + 1 < n) {
      const char* nl = static_cast<const char*>(std::memchr(
          base + ideal, '\n', static_cast<std::size_t>(size - ideal)));
      end = (nl == nullptr) ? size
                            : static_cast<std::uint64_t>(nl - base) + 1;
    }
    end = std::max(end, begin);
    r.end = end;
    r.newlines = static_cast<std::size_t>(
        std::count(base + begin, base + end, '\n'));
    return r;
  }

#if defined(SGQ_FILE_SOURCE_POSIX)
  // Buffered: read [begin, ideal), then extend block-by-block until the
  // boundary newline (or EOF). Every byte is read exactly once — the next
  // chunk starts its own pread at this chunk's end.
  r.buffer = std::move(recycled);
  r.buffer.clear();
  const std::size_t head = static_cast<std::size_t>(ideal - begin);
  r.buffer.resize(head);
  if (head > 0) {
    r.status = PreadExact(fd_, r.buffer.data(), head, begin, path_);
    if (!r.status.ok()) return r;
  }
  std::uint64_t cur = ideal;
  std::uint64_t end = size;
  bool found = (k + 1 == n);
  while (!found && cur < size) {
    const std::size_t block = static_cast<std::size_t>(
        std::min<std::uint64_t>(kStreamIoBufferBytes, size - cur));
    const std::size_t at = r.buffer.size();
    r.buffer.resize(at + block);
    r.status = PreadExact(fd_, r.buffer.data() + at, block, cur, path_);
    if (!r.status.ok()) return r;
    const char* nl = static_cast<const char*>(
        std::memchr(r.buffer.data() + at, '\n', block));
    if (nl != nullptr) {
      end = cur + static_cast<std::uint64_t>(nl - (r.buffer.data() + at)) +
            1;
      found = true;
    }
    cur += block;
  }
  if (found && end < size) {
    r.buffer.resize(static_cast<std::size_t>(end - begin));
  } else {
    // Final chunk, boundary newline on the last byte, or no boundary
    // newline at all: the chunk runs to EOF; read whatever the head/scan
    // loop did not cover yet.
    end = size;
    const std::size_t have = r.buffer.size();
    const std::size_t want = static_cast<std::size_t>(end - begin);
    if (have < want) {
      r.buffer.resize(want);
      r.status = PreadExact(fd_, r.buffer.data() + have, want - have,
                            begin + have, path_);
      if (!r.status.ok()) return r;
    }
  }
  r.end = std::max(end, begin);
  r.newlines = static_cast<std::size_t>(
      std::count(r.buffer.begin(), r.buffer.end(), '\n'));
  return r;
#else
  r.status = Status::Internal("file chunk source: no read path");
  return r;
#endif
}

Status FileChunkSource::ReloadChunk(ChunkState* c) const {
  if (map_ != nullptr || materialized_) return Status::OK();
#if defined(SGQ_FILE_SOURCE_POSIX)
  c->buffer.resize(static_cast<std::size_t>(c->end - c->begin));
  return PreadExact(fd_, c->buffer.data(), c->buffer.size(), c->begin,
                    path_);
#else
  return Status::Internal("file chunk source: no read path");
#endif
}

std::unique_ptr<StreamCursor> FileChunkSource::MakeChunkCursor(
    const ChunkState& c) const {
  const char* base = materialized_ ? owned_.data()
                     : map_ != nullptr ? map_
                                       : c.buffer.data();
  const std::uint64_t view_begin =
      (map_ != nullptr || materialized_) ? c.begin : 0;
  const std::string_view view(base + view_begin,
                              static_cast<std::size_t>(c.end - c.begin));
  if (format_ == StreamFormat::kBinary) {
    return std::make_unique<BinaryStreamCursor>(
        header_, view, static_cast<std::size_t>(c.begin), allow_disorder_);
  }
  return std::make_unique<StreamCsvCursor>(view, vocab_, allow_disorder_,
                                           c.base_line);
}

std::unique_ptr<StreamCursor> FileChunkSource::OpenChunk(
    std::size_t i) const {
  const auto t0 = Clock::now();
  SGQ_CHECK(i < chunks_.size()) << "chunk index out of range";
  std::unique_ptr<StreamCursor> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (aborted_) {
        out = std::make_unique<ErrorCursor>(
            Status::Internal("file chunk feeder aborted"));
        break;
      }
      if (!feeder_error_.ok() && i >= failed_chunk_) {
        out = std::make_unique<ErrorCursor>(feeder_error_);
        break;
      }
      ChunkState& c = chunks_[i];
      if (c.phase == ChunkPhase::kLoaded) {
        ++c.opens;
        out = std::make_unique<RetiringCursor>(
            this, i, MakeChunkCursor(c), &FileChunkSource::RetireChunk);
        break;
      }
      if (c.phase == ChunkPhase::kRetired) {
        // Reopening a retired chunk (tests, never the pipeline): the
        // boundary is known, only the bytes may need re-reading. Counts
        // against the window high-water mark but does not wait for a
        // slot — a reopened chunk must not deadlock a full window.
        c.phase = ChunkPhase::kLoading;
        lock.unlock();
        Status reloaded = ReloadChunk(&c);
        lock.lock();
        if (!reloaded.ok()) {
          c.phase = ChunkPhase::kRetired;
          cv_.notify_all();
          out = std::make_unique<ErrorCursor>(std::move(reloaded));
          break;
        }
        c.phase = ChunkPhase::kLoaded;
        ++resident_;
        resident_bytes_ += c.end - c.begin;
        peak_resident_bytes_ =
            std::max(peak_resident_bytes_, resident_bytes_);
        cv_.notify_all();
        continue;
      }
      if (c.phase == ChunkPhase::kLoading) {
        cv_.wait(lock);
        continue;
      }
      // Unresolved: resolution is strictly sequential and windowed.
      if (resolving_ || resident_ >= window_ || next_unresolved_ > i) {
        cv_.wait(lock);
        continue;
      }
      const std::size_t k = next_unresolved_;
      const std::uint64_t begin =
          format_ == StreamFormat::kBinary ? chunks_[k].begin : next_begin_;
      std::string recycled;
      if (!free_buffers_.empty()) {
        recycled = std::move(free_buffers_.back());
        free_buffers_.pop_back();
      }
      resolving_ = true;
      lock.unlock();
      LoadResult r = LoadChunk(k, begin, std::move(recycled));
      lock.lock();
      resolving_ = false;
      if (!r.status.ok()) {
        if (feeder_error_.ok()) {
          feeder_error_ = std::move(r.status);
          failed_chunk_ = k;
        }
      } else {
        ChunkState& loaded = chunks_[k];
        if (format_ != StreamFormat::kBinary) {
          loaded.begin = begin;
          loaded.end = r.end;
          loaded.base_line = lines_so_far_;
          next_begin_ = r.end;
          lines_so_far_ += r.newlines;
        }
        loaded.buffer = std::move(r.buffer);
        loaded.phase = ChunkPhase::kLoaded;
        next_unresolved_ = k + 1;
        ++resident_;
        resident_bytes_ += loaded.end - loaded.begin;
        peak_resident_bytes_ =
            std::max(peak_resident_bytes_, resident_bytes_);
      }
      cv_.notify_all();
    }
  }
  stall_ns_.fetch_add(ElapsedNs(t0), std::memory_order_relaxed);
  return out;
}

void FileChunkSource::RetireChunk(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  ChunkState& c = chunks_[i];
  if (c.opens > 0) --c.opens;
  if (c.opens > 0 || c.phase != ChunkPhase::kLoaded) return;
  c.phase = ChunkPhase::kRetired;
  --resident_;
  resident_bytes_ -= c.end - c.begin;
  if (!c.buffer.empty()) {
    free_buffers_.push_back(std::move(c.buffer));
    c.buffer = std::string();
  }
#if defined(SGQ_FILE_SOURCE_POSIX)
  if (map_ != nullptr && c.end > c.begin) {
    // Return the chunk's pages to the kernel so the mapping's resident
    // set slides with the window. Inner page-aligned range only;
    // advisory, so failure is ignorable.
    const std::uint64_t page = static_cast<std::uint64_t>(
        ::sysconf(_SC_PAGESIZE));
    const std::uint64_t lo = (c.begin + page - 1) / page * page;
    const std::uint64_t hi = c.end / page * page;
    if (hi > lo) {
      ::madvise(const_cast<char*>(map_) + lo,
                static_cast<std::size_t>(hi - lo), MADV_DONTNEED);
    }
  }
#endif
  cv_.notify_all();
}

Result<StreamFormat> DetectStreamFileFormat(const std::string& path) {
#if defined(SGQ_FILE_SOURCE_POSIX)
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("cannot open stream file: " + path +
                                   ": is a directory");
  }
#endif
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open stream file: " + path + ": " +
                            ErrnoText(errno));
  }
  char magic[sizeof(kBinaryStreamMagic)] = {0};
  const std::size_t n = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return DetectStreamFormat(std::string_view(magic, n));
}

Result<std::unique_ptr<FileChunkSource>> MakeFileChunkSource(
    const std::string& path, StreamFormat format, Vocabulary* vocab,
    const FileChunkOptions& options) {
  auto source = std::unique_ptr<FileChunkSource>(new FileChunkSource());
  source->path_ = path;
  source->format_ = format;
  source->vocab_ = vocab;
  source->allow_disorder_ = options.allow_disorder;
  source->window_ = std::max<std::size_t>(options.readahead_chunks, 2);

#if defined(SGQ_FILE_SOURCE_POSIX)
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("cannot open stream file: " + path +
                                   ": is a directory");
  }
  errno = 0;
  source->fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (source->fd_ < 0) {
    return Status::NotFound("cannot open stream file: " + path + ": " +
                            ErrnoText(errno));
  }
  if (::fstat(source->fd_, &st) != 0) {
    return Status::Internal("read error on stream file: " + path + ": " +
                            ErrnoText(errno));
  }
  if (!S_ISREG(st.st_mode)) {
    // Pipes and other non-seekable inputs cannot be windowed (chunk
    // count needs the total size up front): degrade to a resident
    // buffer. Forced mmap has nothing to map.
    if (options.mode == FileIngestMode::kMmap) {
      return Status::InvalidArgument(
          "cannot mmap non-regular stream file: " + path);
    }
    SGQ_ASSIGN_OR_RETURN(source->owned_, ReadFileBytes(path));
    source->materialized_ = true;
    source->mode_ = FileIngestMode::kBuffered;
    source->file_size_ = source->owned_.size();
  } else {
    source->file_size_ = static_cast<std::uint64_t>(st.st_size);
    const bool want_mmap = options.mode != FileIngestMode::kBuffered;
    if (want_mmap && source->file_size_ > 0) {
      void* map = ::mmap(nullptr,
                         static_cast<std::size_t>(source->file_size_),
                         PROT_READ, MAP_PRIVATE, source->fd_, 0);
      if (map != MAP_FAILED) {
        source->map_ = static_cast<const char*>(map);
        source->map_size_ = static_cast<std::size_t>(source->file_size_);
        source->mode_ = FileIngestMode::kMmap;
        ::madvise(map, source->map_size_, MADV_SEQUENTIAL);
      } else if (options.mode == FileIngestMode::kMmap) {
        return Status::Internal("cannot mmap stream file: " + path + ": " +
                                ErrnoText(errno));
      }
    }
    if (source->map_ == nullptr) {
      if (source->file_size_ == 0) {
        // Empty file: nothing to map or window.
        source->materialized_ = true;
      }
      source->mode_ = FileIngestMode::kBuffered;
    }
  }
#else
  // No mmap/pread on this platform: materialize (the chunk contract and
  // error text still match; only the memory bound degrades, and only
  // here).
  if (options.mode == FileIngestMode::kMmap) {
    return Status::Unsupported("mmap ingest is unsupported on this platform");
  }
  SGQ_ASSIGN_OR_RETURN(source->owned_, ReadFileBytes(path));
  source->materialized_ = true;
  source->mode_ = FileIngestMode::kBuffered;
  source->file_size_ = source->owned_.size();
#endif
  if (source->materialized_) {
    source->peak_resident_bytes_ = source->owned_.size();
  }

  std::size_t num_chunks;
  if (format == StreamFormat::kBinary) {
    // Parse the header once, up front (deterministic interning). Mapped
    // and materialized sources parse in place; buffered sources read a
    // growing prefix until the dictionaries fit.
    BinaryStreamHeader parsed;
    if (source->map_ != nullptr || source->materialized_) {
      const char* base =
          source->materialized_ ? source->owned_.data() : source->map_;
      SGQ_ASSIGN_OR_RETURN(
          parsed,
          ParseBinaryStreamHeader(
              std::string_view(
                  base, static_cast<std::size_t>(source->file_size_)),
              vocab));
    } else {
#if defined(SGQ_FILE_SOURCE_POSIX)
      std::string prefix;
      std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
          source->file_size_, 2 * kStreamIoBufferBytes));
      for (;;) {
        prefix.resize(want);
        SGQ_RETURN_NOT_OK(
            PreadExact(source->fd_, prefix.data(), want, 0, path));
        Result<BinaryStreamHeader> header = ParseBinaryStreamHeaderPrefix(
            prefix, source->file_size_, vocab);
        if (header.ok()) {
          parsed = std::move(header).ValueOrDie();
          break;
        }
        // Grow only while the dictionaries extend past the prefix; any
        // other failure (bad magic, bad version, bad counts) is final
        // and already matches the whole-buffer parse's text.
        const bool truncated =
            header.status().message().find("truncated header") !=
            std::string::npos;
        if (!truncated || want >= source->file_size_) {
          return header.status();
        }
        want = static_cast<std::size_t>(std::min<std::uint64_t>(
            source->file_size_, static_cast<std::uint64_t>(want) * 4));
      }
#else
      return Status::Internal("file chunk source: no read path");
#endif
    }
    const std::uint64_t records = parsed.num_records;
    const std::uint64_t records_offset = parsed.records_offset;
    source->header_ =
        std::make_shared<const BinaryStreamHeader>(std::move(parsed));
    num_chunks = PickNumChunks(
        static_cast<std::size_t>(records) * kBinaryRecordBytes,
        options.min_chunks);
    source->chunks_.resize(num_chunks);
    std::uint64_t begin = 0;
    for (std::size_t i = 0; i < num_chunks; ++i) {
      const std::uint64_t end =
          (i + 1 == num_chunks)
              ? records
              : (records * static_cast<std::uint64_t>(i + 1)) / num_chunks;
      source->chunks_[i].begin =
          records_offset + begin * kBinaryRecordBytes;
      source->chunks_[i].end =
          records_offset + std::max(end, begin) * kBinaryRecordBytes;
      begin = std::max(end, begin);
    }
  } else {
    num_chunks = PickNumChunks(
        static_cast<std::size_t>(source->file_size_), options.min_chunks);
    source->chunks_.resize(num_chunks);
  }
  return source;
}

}  // namespace sgq

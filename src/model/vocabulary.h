// Vocabulary: interning of vertex names and edge/path labels.
//
// The paper partitions Sigma into labels reserved for input graph edges
// (phi(E_I), the Datalog EDB) and labels minted for derived edges and paths
// (the IDB). The Vocabulary tracks that partition so the planner can reject
// rules whose head reuses an input label (Def. 13).

#ifndef SGQ_MODEL_VOCABULARY_H_
#define SGQ_MODEL_VOCABULARY_H_

#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "model/types.h"

namespace sgq {

/// \brief Bidirectional string <-> id mapping for labels and vertices.
///
/// Thread-safe: lookups take a shared lock, interning an exclusive one, so
/// sharded workers (runtime/executor.h) may resolve names while a driver
/// thread interns new ones. Name storage is a deque — references returned
/// by LabelName/VertexName stay valid across concurrent interning (deque
/// growth never relocates elements, and interning never removes names) —
/// but NOT across copy-assignment, which replaces the storage wholesale:
/// do not assign over a vocabulary other threads are reading.
class Vocabulary {
 public:
  Vocabulary() = default;
  Vocabulary(const Vocabulary& other) { CopyFrom(other); }
  Vocabulary& operator=(const Vocabulary& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// \brief Interns `name` as an *input* (EDB) label, or returns the
  /// existing id. Fails if `name` was already interned as derived.
  Result<LabelId> InternInputLabel(std::string_view name);

  /// \brief Interns `name` as a *derived* (IDB) label, or returns the
  /// existing id. Fails if `name` was already interned as an input label.
  Result<LabelId> InternDerivedLabel(std::string_view name);

  /// \brief Looks up an existing label id.
  Result<LabelId> FindLabel(std::string_view name) const;

  /// \brief True when `label` belongs to phi(E_I), the input alphabet.
  bool IsInputLabel(LabelId label) const;

  /// \brief Name of `label`; "<invalid>" when out of range.
  const std::string& LabelName(LabelId label) const;

  std::size_t NumLabels() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return label_names_.size();
  }

  /// \brief Interns a vertex name (all vertices share one id space).
  VertexId InternVertex(std::string_view name);

  /// \brief Looks up an existing vertex id.
  Result<VertexId> FindVertex(std::string_view name) const;

  const std::string& VertexName(VertexId v) const;

  std::size_t NumVertices() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return vertex_names_.size();
  }

 private:
  Result<LabelId> InternLabel(std::string_view name, bool is_input);
  void CopyFrom(const Vocabulary& other);

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, LabelId> label_ids_;
  std::deque<std::string> label_names_;
  std::vector<bool> label_is_input_;

  std::unordered_map<std::string, VertexId> vertex_ids_;
  std::deque<std::string> vertex_names_;
};

}  // namespace sgq

#endif  // SGQ_MODEL_VOCABULARY_H_

// Vocabulary: interning of vertex names and edge/path labels.
//
// The paper partitions Sigma into labels reserved for input graph edges
// (phi(E_I), the Datalog EDB) and labels minted for derived edges and paths
// (the IDB). The Vocabulary tracks that partition so the planner can reject
// rules whose head reuses an input label (Def. 13).

#ifndef SGQ_MODEL_VOCABULARY_H_
#define SGQ_MODEL_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "model/types.h"

namespace sgq {

/// \brief Bidirectional string <-> id mapping for labels and vertices.
///
/// Thread-compatible (external synchronization required for concurrent use).
class Vocabulary {
 public:
  /// \brief Interns `name` as an *input* (EDB) label, or returns the
  /// existing id. Fails if `name` was already interned as derived.
  Result<LabelId> InternInputLabel(std::string_view name);

  /// \brief Interns `name` as a *derived* (IDB) label, or returns the
  /// existing id. Fails if `name` was already interned as an input label.
  Result<LabelId> InternDerivedLabel(std::string_view name);

  /// \brief Looks up an existing label id.
  Result<LabelId> FindLabel(std::string_view name) const;

  /// \brief True when `label` belongs to phi(E_I), the input alphabet.
  bool IsInputLabel(LabelId label) const;

  /// \brief Name of `label`; "<invalid>" when out of range.
  const std::string& LabelName(LabelId label) const;

  std::size_t NumLabels() const { return label_names_.size(); }

  /// \brief Interns a vertex name (all vertices share one id space).
  VertexId InternVertex(std::string_view name);

  /// \brief Looks up an existing vertex id.
  Result<VertexId> FindVertex(std::string_view name) const;

  const std::string& VertexName(VertexId v) const;

  std::size_t NumVertices() const { return vertex_names_.size(); }

 private:
  Result<LabelId> InternLabel(std::string_view name, bool is_input);

  std::unordered_map<std::string, LabelId> label_ids_;
  std::vector<std::string> label_names_;
  std::vector<bool> label_is_input_;

  std::unordered_map<std::string, VertexId> vertex_ids_;
  std::vector<std::string> vertex_names_;
};

}  // namespace sgq

#endif  // SGQ_MODEL_VOCABULARY_H_

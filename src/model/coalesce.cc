#include "model/coalesce.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace sgq {

Payload KeepLastExpiringPayload(const std::vector<const Payload*>& payloads,
                                const std::vector<Interval>& intervals) {
  SGQ_CHECK(!payloads.empty());
  SGQ_CHECK_EQ(payloads.size(), intervals.size());
  std::size_t best = 0;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].exp > intervals[best].exp) best = i;
  }
  return *payloads[best];
}

std::vector<Sgt> Coalesce(const std::vector<Sgt>& tuples) {
  // Group indexes by distinguished triple.
  std::unordered_map<EdgeRef, std::vector<std::size_t>, EdgeRefHash> groups;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    groups[tuples[i].edge()].push_back(i);
  }
  // Deterministic output: process keys in sorted order.
  std::vector<EdgeRef> keys;
  keys.reserve(groups.size());
  for (const auto& [key, _] : groups) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::vector<Sgt> out;
  for (const EdgeRef& key : keys) {
    std::vector<std::size_t>& idx = groups[key];
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return tuples[a].validity.ts < tuples[b].validity.ts;
    });
    // Sweep: merge maximal runs of overlapping/adjacent intervals.
    std::size_t run_start = 0;
    while (run_start < idx.size()) {
      Interval merged = tuples[idx[run_start]].validity;
      std::vector<const Payload*> payloads = {
          &tuples[idx[run_start]].payload};
      std::vector<Interval> intervals = {merged};
      std::size_t next = run_start + 1;
      while (next < idx.size() &&
             tuples[idx[next]].validity.ts <= merged.exp) {
        merged = merged.Span(tuples[idx[next]].validity);
        payloads.push_back(&tuples[idx[next]].payload);
        intervals.push_back(tuples[idx[next]].validity);
        ++next;
      }
      out.emplace_back(key.src, key.trg, key.label, merged,
                       KeepLastExpiringPayload(payloads, intervals));
      run_start = next;
    }
  }
  return out;
}

bool StreamingCoalescer::Offer(const Sgt& t) {
  if (t.is_deletion) return true;  // deletions pass through unconsolidated
  if (t.validity.Empty()) return false;
  auto& ivs = covered_[t.edge()];

  // Fast path: the common case is an interval touching the last recorded
  // one (results for a key arrive with non-decreasing start).
  if (!ivs.empty()) {
    Interval& last = ivs.back();
    if (last.ts <= t.validity.ts) {
      if (t.validity.exp <= last.exp) return false;  // covered: suppress
      if (t.validity.ts <= last.exp) {
        last.exp = t.validity.exp;  // extend in place
        return true;
      }
      ivs.push_back(t.validity);  // disjoint, later
      return true;
    }
  }

  // General case: binary search for the insertion point, then splice.
  std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(
          ivs.begin(), ivs.end(), t.validity,
          [](const Interval& a, const Interval& b) { return a.ts < b.ts; }) -
      ivs.begin());
  if (lo > 0 && ivs[lo - 1].exp >= t.validity.ts) --lo;
  if (lo < ivs.size() && ivs[lo].ts <= t.validity.ts &&
      t.validity.exp <= ivs[lo].exp) {
    return false;  // fully covered
  }
  Timestamp ts = t.validity.ts;
  Timestamp exp = t.validity.exp;
  std::size_t hi = lo;
  while (hi < ivs.size() && ivs[hi].ts <= exp) {
    ts = std::min(ts, ivs[hi].ts);
    exp = std::max(exp, ivs[hi].exp);
    ++hi;
  }
  ivs.erase_range(lo, hi);
  ivs.insert_at(lo, Interval(ts, exp));
  return true;
}

void StreamingCoalescer::Forget(const EdgeRef& key, Timestamp from) {
  auto it = covered_.find(key);
  if (it == covered_.end()) return;
  auto& ivs = it->second;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    Interval iv = ivs[i];
    iv.exp = std::min(iv.exp, from);
    if (!iv.Empty()) ivs[keep++] = iv;
  }
  ivs.erase_range(keep, ivs.size());
  if (ivs.empty()) covered_.erase(it);
}

void StreamingCoalescer::SerializeState(std::string* out) const {
  std::vector<EdgeRef> keys;
  keys.reserve(covered_.size());
  for (const auto& [key, ivs] : covered_) {
    (void)ivs;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  PutU64(out, keys.size());
  for (const EdgeRef& key : keys) {
    const auto it = covered_.find(key);
    PutU64(out, key.src);
    PutU64(out, key.trg);
    PutU32(out, key.label);
    const auto& ivs = it->second;
    PutU32(out, static_cast<std::uint32_t>(ivs.size()));
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      PutI64(out, ivs[i].ts);
      PutI64(out, ivs[i].exp);
    }
  }
}

Status StreamingCoalescer::DeserializeState(ByteReader* in) {
  if (!covered_.empty()) {
    return in->Fail("coalescer not empty before restore");
  }
  const std::uint64_t num_keys = in->U64();
  for (std::uint64_t k = 0; k < num_keys && in->ok(); ++k) {
    EdgeRef key;
    key.src = in->U64();
    key.trg = in->U64();
    key.label = in->U32();
    const std::uint32_t n = in->U32();
    if (!in->ok()) break;
    auto& ivs = covered_[key];
    for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
      Interval iv;
      iv.ts = in->I64();
      iv.exp = in->I64();
      ivs.push_back(iv);
    }
  }
  return in->status();
}

void StreamingCoalescer::PurgeBefore(Timestamp t) {
  for (auto it = covered_.begin(); it != covered_.end();) {
    auto& ivs = it->second;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      if (ivs[i].exp > t) ivs[keep++] = ivs[i];
    }
    ivs.erase_range(keep, ivs.size());
    if (ivs.empty()) {
      it = covered_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<EdgeRef> SnapshotEdges(const SgtStream& stream, Timestamp t) {
  // An explicit deletion at instant td truncates the validity of all prior
  // value-equivalent insertions to end no later than td (§3.2, [39]).
  std::unordered_map<EdgeRef, std::vector<Interval>, EdgeRefHash> intervals;
  for (const Sgt& sgt : stream) {
    if (sgt.is_deletion) {
      auto it = intervals.find(sgt.edge());
      if (it == intervals.end()) continue;
      for (Interval& iv : it->second) {
        iv.exp = std::min(iv.exp, sgt.validity.ts);
      }
    } else {
      intervals[sgt.edge()].push_back(sgt.validity);
    }
  }
  std::set<EdgeRef> live;
  for (const auto& [edge, ivs] : intervals) {
    for (const Interval& iv : ivs) {
      if (iv.Contains(t)) {
        live.insert(edge);
        break;
      }
    }
  }
  return std::vector<EdgeRef>(live.begin(), live.end());
}

}  // namespace sgq

#include "model/stream_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace sgq {

Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab) {
  InputStream stream;
  Timestamp last_t = kMinTimestamp;
  std::size_t line_no = 0;
  for (const std::string& raw_line : SplitString(text, '\n')) {
    ++line_no;
    std::string_view line = TrimString(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != 4 && fields.size() != 5) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 4 or 5 fields, got " +
                                std::to_string(fields.size()));
    }
    const std::string_view src = TrimString(fields[0]);
    const std::string_view label = TrimString(fields[1]);
    const std::string_view trg = TrimString(fields[2]);
    if (src.empty() || label.empty() || trg.empty()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": empty src/label/trg field");
    }
    Sge sge;
    sge.src = vocab->InternVertex(src);
    {
      auto interned = vocab->InternInputLabel(label);
      if (!interned.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  interned.status().message());
      }
      sge.label = *interned;
    }
    sge.trg = vocab->InternVertex(trg);
    // Strict integer parse: "12abc" and the like must error, not silently
    // truncate.
    if (!ParseInt64(TrimString(fields[3]), &sge.t)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": bad timestamp '" + fields[3] + "'");
    }
    if (sge.t < kMinTimestamp) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": negative timestamp " +
                                std::to_string(sge.t) +
                                " (time domain is non-negative)");
    }
    if (sge.t < last_t) {
      return Status::ParseError(
          "line " + std::to_string(line_no) +
          ": timestamps must be non-decreasing (got " +
          std::to_string(sge.t) + " after " + std::to_string(last_t) + ")");
    }
    last_t = sge.t;
    if (fields.size() == 5) {
      std::string_view op = TrimString(fields[4]);
      if (op == "-") {
        sge.is_deletion = true;
      } else if (op != "+") {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": op must be '+' or '-'");
      }
    }
    stream.push_back(sge);
  }
  return stream;
}

std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab) {
  std::ostringstream os;
  for (const Sge& sge : stream) {
    os << vocab.VertexName(sge.src) << "," << vocab.LabelName(sge.label)
       << "," << vocab.VertexName(sge.trg) << "," << sge.t;
    if (sge.is_deletion) os << ",-";
    os << "\n";
  }
  return os.str();
}

Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open stream file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseStreamCsv(buffer.str(), vocab);
}

}  // namespace sgq

#include "model/stream_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace sgq {

namespace {

/// \brief Parses one trimmed, non-empty CSV line into `*sge`. `last_t` is
/// the previous element's timestamp (ordering check, skipped when
/// `allow_disorder`). Error messages carry the 1-based `line_no`.
Status ParseStreamLine(std::string_view line, std::size_t line_no,
                       Vocabulary* vocab, bool allow_disorder,
                       Timestamp last_t, Sge* sge) {
  std::vector<std::string> fields = SplitString(line, ',');
  if (fields.size() != 4 && fields.size() != 5) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": expected 4 or 5 fields, got " +
                              std::to_string(fields.size()));
  }
  const std::string_view src = TrimString(fields[0]);
  const std::string_view label = TrimString(fields[1]);
  const std::string_view trg = TrimString(fields[2]);
  if (src.empty() || label.empty() || trg.empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": empty src/label/trg field");
  }
  sge->src = vocab->InternVertex(src);
  {
    auto interned = vocab->InternInputLabel(label);
    if (!interned.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                interned.status().message());
    }
    sge->label = *interned;
  }
  sge->trg = vocab->InternVertex(trg);
  // Strict integer parse: "12abc" and the like must error, not silently
  // truncate.
  if (!ParseInt64(TrimString(fields[3]), &sge->t)) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": bad timestamp '" + fields[3] + "'");
  }
  if (sge->t < kMinTimestamp) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": negative timestamp " +
                              std::to_string(sge->t) +
                              " (time domain is non-negative)");
  }
  if (!allow_disorder && sge->t < last_t) {
    return Status::ParseError(
        "line " + std::to_string(line_no) +
        ": timestamps must be non-decreasing (got " +
        std::to_string(sge->t) + " after " + std::to_string(last_t) + ")");
  }
  sge->is_deletion = false;
  if (fields.size() == 5) {
    std::string_view op = TrimString(fields[4]);
    if (op == "-") {
      sge->is_deletion = true;
    } else if (op != "+") {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": op must be '+' or '-'");
    }
  }
  return Status::OK();
}

}  // namespace

std::size_t StreamCsvCursor::Next(Sge* out, std::size_t cap) {
  if (!status_.ok()) return 0;
  std::size_t produced = 0;
  const std::string& text = *text_;
  while (produced < cap && offset_ < text.size()) {
    std::size_t end = text.find('\n', offset_);
    if (end == std::string::npos) end = text.size();
    const std::string_view raw_line(text.data() + offset_, end - offset_);
    offset_ = end + (end < text.size() ? 1 : 0);
    ++line_no_;
    const std::string_view line = TrimString(raw_line);
    if (line.empty() || line.front() == '#') continue;
    Sge sge;
    status_ = ParseStreamLine(line, line_no_, vocab_, allow_disorder_,
                              last_t_, &sge);
    if (!status_.ok()) return produced;
    last_t_ = sge.t;
    out[produced++] = sge;
  }
  return produced;
}

Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab) {
  InputStream stream;
  StreamCsvCursor cursor(text, vocab);
  Sge buffer[256];
  for (;;) {
    const std::size_t n = cursor.Next(buffer, 256);
    if (n == 0) break;
    stream.insert(stream.end(), buffer, buffer + n);
  }
  if (!cursor.ok()) return cursor.status();
  return stream;
}

std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab) {
  std::ostringstream os;
  for (const Sge& sge : stream) {
    os << vocab.VertexName(sge.src) << "," << vocab.LabelName(sge.label)
       << "," << vocab.VertexName(sge.trg) << "," << sge.t;
    if (sge.is_deletion) os << ",-";
    os << "\n";
  }
  return os.str();
}

Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open stream file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseStreamCsv(buffer.str(), vocab);
}

}  // namespace sgq

#include "model/stream_io.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#if !defined(_WIN32)
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/string_util.h"

namespace sgq {

namespace {

/// \brief Parses one trimmed, non-empty CSV line into `*sge`. `last_t` is
/// the previous element's timestamp (ordering check, skipped when
/// `allow_disorder`). Error messages carry the 1-based `line_no`.
Status ParseStreamLine(std::string_view line, std::size_t line_no,
                       Vocabulary* vocab, bool allow_disorder,
                       Timestamp last_t, Sge* sge) {
  std::vector<std::string> fields = SplitString(line, ',');
  if (fields.size() != 4 && fields.size() != 5) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": expected 4 or 5 fields, got " +
                              std::to_string(fields.size()));
  }
  const std::string_view src = TrimString(fields[0]);
  const std::string_view label = TrimString(fields[1]);
  const std::string_view trg = TrimString(fields[2]);
  if (src.empty() || label.empty() || trg.empty()) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": empty src/label/trg field");
  }
  sge->src = vocab->InternVertex(src);
  {
    auto interned = vocab->InternInputLabel(label);
    if (!interned.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                interned.status().message());
    }
    sge->label = *interned;
  }
  sge->trg = vocab->InternVertex(trg);
  // Strict integer parse: "12abc" and the like must error, not silently
  // truncate.
  if (!ParseInt64(TrimString(fields[3]), &sge->t)) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": bad timestamp '" + fields[3] + "'");
  }
  if (sge->t < kMinTimestamp) {
    return Status::ParseError("line " + std::to_string(line_no) +
                              ": negative timestamp " +
                              std::to_string(sge->t) +
                              " (time domain is non-negative)");
  }
  if (!allow_disorder && sge->t < last_t) {
    return Status::ParseError(
        "line " + std::to_string(line_no) +
        ": timestamps must be non-decreasing (got " +
        std::to_string(sge->t) + " after " + std::to_string(last_t) + ")");
  }
  sge->is_deletion = false;
  if (fields.size() == 5) {
    std::string_view op = TrimString(fields[4]);
    if (op == "-") {
      sge->is_deletion = true;
    } else if (op != "+") {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": op must be '+' or '-'");
    }
  }
  return Status::OK();
}

// --- little-endian scalar encode/decode (portable, no aliasing) ---

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

Status TruncatedHeader(std::size_t need, std::size_t have) {
  return Status::ParseError("binary stream: truncated header (need " +
                            std::to_string(need) + " bytes, have " +
                            std::to_string(have) + ")");
}

/// \brief Decodes one 24-byte record at absolute byte offset `abs` into
/// `*sge`, resolving dictionary indexes through `header`.
Status DecodeRecord(const char* p, std::size_t abs,
                    const BinaryStreamHeader& header, bool allow_disorder,
                    Timestamp last_t, Sge* sge) {
  const std::uint64_t raw_t = GetU64(p);
  sge->t = static_cast<Timestamp>(raw_t);
  const std::uint32_t src = GetU32(p + 8);
  const std::uint32_t trg = GetU32(p + 12);
  const std::uint32_t label = GetU32(p + 16);
  const unsigned char op = static_cast<unsigned char>(p[20]);
  if (sge->t < kMinTimestamp) {
    return Status::ParseError("binary stream offset " + std::to_string(abs) +
                              ": negative timestamp " +
                              std::to_string(sge->t) +
                              " (time domain is non-negative)");
  }
  if (!allow_disorder && sge->t < last_t) {
    return Status::ParseError(
        "binary stream offset " + std::to_string(abs) +
        ": timestamps must be non-decreasing (got " + std::to_string(sge->t) +
        " after " + std::to_string(last_t) + ")");
  }
  if (src >= header.vertices.size() || trg >= header.vertices.size()) {
    return Status::ParseError("binary stream offset " + std::to_string(abs) +
                              ": vertex index out of range (" +
                              std::to_string(src >= header.vertices.size()
                                                 ? src
                                                 : trg) +
                              " >= " + std::to_string(header.vertices.size()) +
                              ")");
  }
  if (label >= header.labels.size()) {
    return Status::ParseError("binary stream offset " + std::to_string(abs) +
                              ": label index out of range (" +
                              std::to_string(label) + " >= " +
                              std::to_string(header.labels.size()) + ")");
  }
  if (op > 1) {
    return Status::ParseError("binary stream offset " + std::to_string(abs) +
                              ": bad op byte " + std::to_string(op) +
                              " (expected 0=insert or 1=delete)");
  }
  sge->src = header.vertices[src];
  sge->trg = header.vertices[trg];
  sge->label = header.labels[label];
  sge->is_deletion = (op == 1);
  return Status::OK();
}

}  // namespace

StreamFormat DetectStreamFormat(std::string_view bytes) {
  if (bytes.size() >= sizeof(kBinaryStreamMagic) &&
      std::memcmp(bytes.data(), kBinaryStreamMagic,
                  sizeof(kBinaryStreamMagic)) == 0) {
    return StreamFormat::kBinary;
  }
  return StreamFormat::kCsv;
}

std::size_t StreamCsvCursor::Next(Sge* out, std::size_t cap) {
  if (!status_.ok()) return 0;
  std::size_t produced = 0;
  const std::string_view text = text_;
  while (produced < cap && offset_ < text.size()) {
    std::size_t end = text.find('\n', offset_);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view raw_line(text.data() + offset_, end - offset_);
    offset_ = end + (end < text.size() ? 1 : 0);
    ++line_no_;
    const std::string_view line = TrimString(raw_line);
    if (line.empty() || line.front() == '#') continue;
    Sge sge;
    status_ = ParseStreamLine(line, line_no_, vocab_, allow_disorder_,
                              last_t_, &sge);
    if (!status_.ok()) return produced;
    last_t_ = sge.t;
    out[produced++] = sge;
  }
  return produced;
}

Result<InputStream> ParseStreamCsv(const std::string& text,
                                   Vocabulary* vocab) {
  InputStream stream;
  StreamCsvCursor cursor(text, vocab);
  Sge buffer[256];
  for (;;) {
    const std::size_t n = cursor.Next(buffer, 256);
    if (n == 0) break;
    stream.insert(stream.end(), buffer, buffer + n);
  }
  if (!cursor.ok()) return cursor.status();
  return stream;
}

void AppendCsvLine(const Sge& sge, const Vocabulary& vocab,
                   std::string* out) {
  out->append(vocab.VertexName(sge.src));
  out->push_back(',');
  out->append(vocab.LabelName(sge.label));
  out->push_back(',');
  out->append(vocab.VertexName(sge.trg));
  out->push_back(',');
  out->append(std::to_string(sge.t));
  if (sge.is_deletion) out->append(",-");
  out->push_back('\n');
}

std::string FormatStreamCsv(const InputStream& stream,
                            const Vocabulary& vocab) {
  std::string out;
  for (const Sge& sge : stream) AppendCsvLine(sge, vocab, &out);
  return out;
}

Result<BinaryStreamHeader> ParseBinaryStreamHeader(std::string_view bytes,
                                                   Vocabulary* vocab) {
  return ParseBinaryStreamHeaderPrefix(bytes, bytes.size(), vocab);
}

Result<BinaryStreamHeader> ParseBinaryStreamHeaderPrefix(
    std::string_view bytes, std::uint64_t total_bytes, Vocabulary* vocab) {
  constexpr std::size_t kFixedHeader = 24;  // magic + version + counts
  if (bytes.size() < sizeof(kBinaryStreamMagic) ||
      std::memcmp(bytes.data(), kBinaryStreamMagic,
                  sizeof(kBinaryStreamMagic)) != 0) {
    return Status::ParseError(
        "binary stream: bad magic (expected \"SGQB\")");
  }
  if (bytes.size() < kFixedHeader) {
    return TruncatedHeader(kFixedHeader, bytes.size());
  }
  const std::uint32_t version = GetU32(bytes.data() + 4);
  if (version != kBinaryStreamVersion) {
    return Status::ParseError("binary stream: unsupported version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kBinaryStreamVersion) + ")");
  }
  BinaryStreamHeader header;
  const std::uint32_t label_count = GetU32(bytes.data() + 8);
  const std::uint32_t vertex_count = GetU32(bytes.data() + 12);
  header.num_records = GetU64(bytes.data() + 16);

  std::size_t off = kFixedHeader;
  header.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    if (off + 2 > bytes.size()) return TruncatedHeader(off + 2, bytes.size());
    const std::uint16_t len = GetU16(bytes.data() + off);
    off += 2;
    if (off + len > bytes.size()) {
      return TruncatedHeader(off + len, bytes.size());
    }
    const std::string_view name(bytes.data() + off, len);
    off += len;
    if (name.empty()) {
      return Status::ParseError("binary stream: empty label name in "
                                "dictionary entry " + std::to_string(i));
    }
    auto interned = vocab->InternInputLabel(name);
    if (!interned.ok()) {
      return Status::ParseError("binary stream: label dictionary entry " +
                                std::to_string(i) + ": " +
                                interned.status().message());
    }
    header.labels.push_back(*interned);
  }
  header.vertices.reserve(vertex_count);
  for (std::uint32_t i = 0; i < vertex_count; ++i) {
    if (off + 2 > bytes.size()) return TruncatedHeader(off + 2, bytes.size());
    const std::uint16_t len = GetU16(bytes.data() + off);
    off += 2;
    if (off + len > bytes.size()) {
      return TruncatedHeader(off + len, bytes.size());
    }
    const std::string_view name(bytes.data() + off, len);
    off += len;
    if (name.empty()) {
      return Status::ParseError("binary stream: empty vertex name in "
                                "dictionary entry " + std::to_string(i));
    }
    header.vertices.push_back(vocab->InternVertex(name));
  }
  header.records_offset = off;

  const std::uint64_t record_bytes = total_bytes - off;
  if (header.num_records > record_bytes / kBinaryRecordBytes) {
    return Status::ParseError(
        "binary stream: truncated records (header promises " +
        std::to_string(header.num_records) + " records, region holds " +
        std::to_string(record_bytes / kBinaryRecordBytes) + ")");
  }
  if (record_bytes != header.num_records * kBinaryRecordBytes) {
    return Status::ParseError(
        "binary stream: trailing garbage after records (region is " +
        std::to_string(record_bytes) + " bytes, expected " +
        std::to_string(header.num_records * kBinaryRecordBytes) + ")");
  }
  return header;
}

BinaryStreamCursor::BinaryStreamCursor(const std::string& bytes,
                                       Vocabulary* vocab,
                                       bool allow_disorder)
    : allow_disorder_(allow_disorder) {
  auto header = ParseBinaryStreamHeader(bytes, vocab);
  if (!header.ok()) {
    status_ = header.status();
    return;
  }
  base_offset_ = header->records_offset;
  records_ = std::string_view(bytes).substr(header->records_offset);
  header_ = std::make_shared<const BinaryStreamHeader>(*std::move(header));
}

BinaryStreamCursor::BinaryStreamCursor(
    std::shared_ptr<const BinaryStreamHeader> header,
    std::string_view records, std::size_t base_offset, bool allow_disorder)
    : header_(std::move(header)),
      records_(records),
      base_offset_(base_offset),
      allow_disorder_(allow_disorder) {
  if (records_.size() % kBinaryRecordBytes != 0) {
    status_ = Status::InvalidArgument(
        "binary stream chunk is not record-aligned");
  }
}

std::size_t BinaryStreamCursor::Next(Sge* out, std::size_t cap) {
  if (!status_.ok()) return 0;
  std::size_t produced = 0;
  while (produced < cap && pos_ + kBinaryRecordBytes <= records_.size()) {
    Sge sge;
    status_ = DecodeRecord(records_.data() + pos_, base_offset_ + pos_,
                           *header_, allow_disorder_, last_t_, &sge);
    if (!status_.ok()) return produced;
    pos_ += kBinaryRecordBytes;
    last_t_ = sge.t;
    out[produced++] = sge;
  }
  return produced;
}

Result<InputStream> ParseStreamBinary(const std::string& bytes,
                                      Vocabulary* vocab) {
  InputStream stream;
  BinaryStreamCursor cursor(bytes, vocab);
  Sge buffer[256];
  for (;;) {
    const std::size_t n = cursor.Next(buffer, 256);
    if (n == 0) break;
    stream.insert(stream.end(), buffer, buffer + n);
  }
  if (!cursor.ok()) return cursor.status();
  return stream;
}

Result<std::string> FormatStreamBinary(const InputStream& stream,
                                       const Vocabulary& vocab) {
  // First-use-order dictionaries: walk the stream once assigning dense
  // indexes, so a fresh CSV parse and a binary decode intern identically.
  std::unordered_map<LabelId, std::uint32_t> label_index;
  std::unordered_map<VertexId, std::uint32_t> vertex_index;
  std::vector<LabelId> labels;
  std::vector<VertexId> vertices;
  const auto vertex_idx = [&](VertexId v) {
    auto [it, inserted] =
        vertex_index.emplace(v, static_cast<std::uint32_t>(vertices.size()));
    if (inserted) vertices.push_back(v);
    return it->second;
  };
  const auto label_idx = [&](LabelId l) {
    auto [it, inserted] =
        label_index.emplace(l, static_cast<std::uint32_t>(labels.size()));
    if (inserted) labels.push_back(l);
    return it->second;
  };
  struct Encoded {
    std::uint32_t src, trg, label;
  };
  std::vector<Encoded> encoded;
  encoded.reserve(stream.size());
  for (const Sge& sge : stream) {
    Encoded e;
    // CSV intern order is src, label, trg per line; match it exactly.
    e.src = vertex_idx(sge.src);
    e.label = label_idx(sge.label);
    e.trg = vertex_idx(sge.trg);
    encoded.push_back(e);
    if (labels.size() > UINT32_MAX || vertices.size() > UINT32_MAX) {
      return Status::Unsupported(
          "binary stream: more than 2^32 - 1 distinct labels/vertices");
    }
  }

  std::string out;
  out.reserve(64 + stream.size() * kBinaryRecordBytes);
  SGQ_RETURN_NOT_OK(AppendBinaryStreamHeader(
      labels, vertices, static_cast<std::uint64_t>(stream.size()), vocab,
      &out));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    AppendBinaryStreamRecord(stream[i], encoded[i].src, encoded[i].trg,
                             encoded[i].label, &out);
  }
  return out;
}

Status AppendBinaryStreamHeader(const std::vector<LabelId>& labels,
                                const std::vector<VertexId>& vertices,
                                std::uint64_t num_records,
                                const Vocabulary& vocab, std::string* out) {
  out->append(kBinaryStreamMagic, sizeof(kBinaryStreamMagic));
  PutU32(out, kBinaryStreamVersion);
  PutU32(out, static_cast<std::uint32_t>(labels.size()));
  PutU32(out, static_cast<std::uint32_t>(vertices.size()));
  PutU64(out, num_records);
  const auto put_name = [out](const std::string& name) -> Status {
    if (name.size() > UINT16_MAX) {
      return Status::Unsupported("binary stream: name longer than 64 KiB: " +
                                 name.substr(0, 32) + "…");
    }
    PutU16(out, static_cast<std::uint16_t>(name.size()));
    out->append(name);
    return Status::OK();
  };
  for (LabelId l : labels) SGQ_RETURN_NOT_OK(put_name(vocab.LabelName(l)));
  for (VertexId v : vertices) {
    SGQ_RETURN_NOT_OK(put_name(vocab.VertexName(v)));
  }
  return Status::OK();
}

void AppendBinaryStreamRecord(const Sge& sge, std::uint32_t src,
                              std::uint32_t trg, std::uint32_t label,
                              std::string* out) {
  PutU64(out, static_cast<std::uint64_t>(sge.t));
  PutU32(out, src);
  PutU32(out, trg);
  PutU32(out, label);
  out->push_back(sge.is_deletion ? 1 : 0);
  out->append(3, '\0');
}

std::size_t PickNumChunks(std::size_t payload_bytes, std::size_t min_chunks) {
  constexpr std::size_t kChunkTargetBytes = 256 * 1024;
  min_chunks = std::max<std::size_t>(min_chunks, 1);
  const std::size_t by_size =
      (payload_bytes + kChunkTargetBytes - 1) / kChunkTargetBytes;
  return std::max(min_chunks, by_size);
}

Status ChunkBoundaryError(std::size_t chunk, Timestamp got, Timestamp prev) {
  return Status::ParseError(
      "chunk " + std::to_string(chunk) +
      ": timestamps must be non-decreasing across chunk boundaries (got " +
      std::to_string(got) + " after " + std::to_string(prev) + ")");
}

std::size_t ChunkWalkCursor::Next(Sge* buf, std::size_t cap) {
  if (!status_.ok()) return 0;
  for (;;) {
    if (cursor_ == nullptr) {
      if (next_chunk_ >= stream_.NumChunks()) return 0;
      chunk_ = next_chunk_++;
      cursor_ = stream_.OpenChunk(chunk_);
      fresh_chunk_ = true;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = cursor_->Next(buf, cap);
    busy_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (n > 0) {
      if (fresh_chunk_ && check_order_ && buf[0].t < last_t_) {
        status_ = ChunkBoundaryError(chunk_, buf[0].t, last_t_);
        return 0;
      }
      fresh_chunk_ = false;
      last_t_ = buf[n - 1].t;
      return n;
    }
    if (!cursor_->ok()) {
      status_ = cursor_->status();
      return 0;
    }
    // Dropping the cursor before opening the successor retires the chunk
    // on windowed file sources — exactly one chunk stays resident.
    cursor_.reset();
  }
}

namespace {

class CsvChunkedStream : public ChunkedStream {
 public:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t base_line = 0;  ///< lines preceding `begin`
  };

  CsvChunkedStream(const std::string& text, Vocabulary* vocab,
                   bool allow_disorder, std::size_t min_chunks)
      : text_(text), vocab_(vocab), allow_disorder_(allow_disorder) {
    const std::size_t n = PickNumChunks(text.size(), min_chunks);
    // Split at the first newline at or after each ideal boundary; a chunk
    // that would start past its successor's boundary collapses to empty.
    std::size_t begin = 0;
    std::size_t lines_before = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t end = (i + 1 == n) ? text.size() : (text.size() * (i + 1)) / n;
      if (end < text.size()) {
        const std::size_t nl = text.find('\n', end);
        end = (nl == std::string::npos) ? text.size() : nl + 1;
      }
      end = std::max(end, begin);
      chunks_.push_back({begin, end, lines_before});
      lines_before += static_cast<std::size_t>(
          std::count(text.data() + begin, text.data() + end, '\n'));
      begin = end;
    }
  }

  std::size_t NumChunks() const override { return chunks_.size(); }

  std::unique_ptr<StreamCursor> OpenChunk(std::size_t i) const override {
    const Chunk& c = chunks_[i];
    return std::make_unique<StreamCsvCursor>(
        std::string_view(text_).substr(c.begin, c.end - c.begin), vocab_,
        allow_disorder_, c.base_line);
  }

  StreamFormat format() const override { return StreamFormat::kCsv; }

 private:
  const std::string& text_;
  Vocabulary* vocab_;
  bool allow_disorder_;
  std::vector<Chunk> chunks_;
};

class BinaryChunkedStream : public ChunkedStream {
 public:
  BinaryChunkedStream(const std::string& bytes,
                      std::shared_ptr<const BinaryStreamHeader> header,
                      bool allow_disorder, std::size_t min_chunks)
      : bytes_(bytes), header_(std::move(header)),
        allow_disorder_(allow_disorder) {
    const std::uint64_t records = header_->num_records;
    const std::size_t n =
        PickNumChunks(static_cast<std::size_t>(records) * kBinaryRecordBytes,
                      min_chunks);
    std::uint64_t begin = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t end =
          (i + 1 == n) ? records : (records * (i + 1)) / n;
      bounds_.push_back({begin, std::max(end, begin)});
      begin = std::max(end, begin);
    }
  }

  std::size_t NumChunks() const override { return bounds_.size(); }

  std::unique_ptr<StreamCursor> OpenChunk(std::size_t i) const override {
    const auto [begin, end] = bounds_[i];
    const std::size_t byte_begin =
        header_->records_offset +
        static_cast<std::size_t>(begin) * kBinaryRecordBytes;
    const std::size_t len =
        static_cast<std::size_t>(end - begin) * kBinaryRecordBytes;
    return std::make_unique<BinaryStreamCursor>(
        header_, std::string_view(bytes_).substr(byte_begin, len), byte_begin,
        allow_disorder_);
  }

  StreamFormat format() const override { return StreamFormat::kBinary; }

 private:
  const std::string& bytes_;
  std::shared_ptr<const BinaryStreamHeader> header_;
  bool allow_disorder_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bounds_;
};

}  // namespace

Result<std::unique_ptr<ChunkedStream>> MakeChunkedStream(
    const std::string& bytes, StreamFormat format, Vocabulary* vocab,
    bool allow_disorder, std::size_t min_chunks) {
  if (format == StreamFormat::kBinary) {
    SGQ_ASSIGN_OR_RETURN(BinaryStreamHeader header,
                         ParseBinaryStreamHeader(bytes, vocab));
    return std::unique_ptr<ChunkedStream>(new BinaryChunkedStream(
        bytes, std::make_shared<const BinaryStreamHeader>(std::move(header)),
        allow_disorder, min_chunks));
  }
  return std::unique_ptr<ChunkedStream>(
      new CsvChunkedStream(bytes, vocab, allow_disorder, min_chunks));
}

namespace {

/// \brief errno rendered for error messages, with a fallback for the
/// cases (logical stream-state failures) where the C library left errno
/// untouched.
std::string ErrnoText(int err) {
  if (err == 0) return "unknown error";
  return std::strerror(err);
}

}  // namespace

Result<std::string> ReadFileBytes(const std::string& path) {
#if !defined(_WIN32)
  // ifstream happily opens a directory on POSIX and only fails at the
  // first read (EISDIR) — catch it up front with a clear message.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("cannot open stream file: " + path +
                                   ": is a directory");
  }
#endif
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open stream file: " + path + ": " +
                            ErrnoText(errno));
  }
  std::string out;
  char buffer[kStreamIoBufferBytes];
  errno = 0;
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    out.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    return Status::Internal("read error on stream file: " + path + ": " +
                            ErrnoText(errno));
  }
  return out;
}

FileByteSink::FileByteSink(const std::string& path) : path_(path) {
  errno = 0;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::NotFound("cannot create file: " + path + ": " +
                               ErrnoText(errno));
    return;
  }
  buffer_.reserve(kStreamIoBufferBytes);
}

FileByteSink::~FileByteSink() { Close(); }

Status FileByteSink::Flush() {
  if (!status_.ok() || buffer_.empty()) return status_;
  errno = 0;
  const std::size_t wrote =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  if (wrote != buffer_.size()) {
    status_ = Status::Internal(
        "short write on file: " + path_ + ": wrote " + std::to_string(wrote) +
        " of " + std::to_string(buffer_.size()) + " bytes: " +
        ErrnoText(errno));
  }
  buffer_.clear();
  return status_;
}

Status FileByteSink::Sync() {
  SGQ_RETURN_NOT_OK(Flush());
  errno = 0;
  if (std::fflush(file_) != 0) {
    status_ = Status::Internal("flush error on file: " + path_ + ": " +
                               ErrnoText(errno));
    return status_;
  }
#if !defined(_WIN32)
  errno = 0;
  if (::fsync(::fileno(file_)) != 0) {
    status_ = Status::Internal("fsync error on file: " + path_ + ": " +
                               ErrnoText(errno));
  }
#endif
  return status_;
}

Status FileByteSink::Append(std::string_view bytes) {
  if (!status_.ok()) return status_;
  bytes_written_ += bytes.size();
  while (!bytes.empty()) {
    const std::size_t room = kStreamIoBufferBytes - buffer_.size();
    const std::size_t n = std::min(room, bytes.size());
    buffer_.append(bytes.data(), n);
    bytes.remove_prefix(n);
    if (buffer_.size() == kStreamIoBufferBytes) {
      SGQ_RETURN_NOT_OK(Flush());
    }
  }
  return status_;
}

Status FileByteSink::Close() {
  if (file_ == nullptr) return status_;
  Flush();
  errno = 0;
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::Internal("write error on file: " + path_ + ": " +
                               ErrnoText(errno));
  }
  file_ = nullptr;
  return status_;
}

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  FileByteSink sink(path);
  SGQ_RETURN_NOT_OK(sink.Append(bytes));
  return sink.Close();
}

Result<InputStream> ReadStreamFile(const std::string& path,
                                   Vocabulary* vocab) {
  SGQ_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  if (DetectStreamFormat(bytes) == StreamFormat::kBinary) {
    return ParseStreamBinary(bytes, vocab);
  }
  return ParseStreamCsv(bytes, vocab);
}

}  // namespace sgq

#include "model/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "model/stream_io.h"

namespace sgq {
namespace {

std::string ErrnoText(int err) {
  return err != 0 ? std::strerror(err) : "unknown error";
}

std::string Hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

/// Directory part of `path` ("" when none) — for the post-rename fsync.
std::string DirName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash == 0 ? 1 : slash);
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutSge(std::string* out, const Sge& e) {
  PutU64(out, e.src);
  PutU64(out, e.trg);
  PutU32(out, e.label);
  PutI64(out, e.t);
  PutU8(out, e.is_deletion ? 1 : 0);
}

Sge GetSge(ByteReader* in) {
  Sge e;
  e.src = in->U64();
  e.trg = in->U64();
  e.label = in->U32();
  e.t = in->I64();
  e.is_deletion = in->U8() != 0;
  return e;
}

void PutSgt(std::string* out, const Sgt& t) {
  PutU64(out, t.src);
  PutU64(out, t.trg);
  PutU32(out, t.label);
  PutI64(out, t.validity.ts);
  PutI64(out, t.validity.exp);
  PutU8(out, t.is_deletion ? 1 : 0);
  PutU32(out, static_cast<std::uint32_t>(t.payload.size()));
  for (const EdgeRef& e : t.payload) {
    PutU64(out, e.src);
    PutU64(out, e.trg);
    PutU32(out, e.label);
  }
}

Sgt GetSgt(ByteReader* in) {
  Sgt t;
  t.src = in->U64();
  t.trg = in->U64();
  t.label = in->U32();
  t.validity.ts = in->I64();
  t.validity.exp = in->I64();
  t.is_deletion = in->U8() != 0;
  const std::uint32_t n = in->U32();
  if (in->ok()) t.payload.reserve(n);
  for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
    EdgeRef e;
    e.src = in->U64();
    e.trg = in->U64();
    e.label = in->U32();
    t.payload.push_back(e);
  }
  return t;
}

// ---------------------------------------------------------------------------
// ByteReader
// ---------------------------------------------------------------------------

Status ByteReader::Fail(const std::string& what) {
  if (status_.ok()) {
    status_ = Status::ParseError(context_ + ": offset " +
                                 std::to_string(offset_) + ": " + what);
    offset_ = bytes_.size();  // poison further reads
  }
  return status_;
}

std::string_view ByteReader::Raw(std::size_t n) {
  if (!status_.ok()) return {};
  if (bytes_.size() - offset_ < n) {
    Fail("truncated: need " + std::to_string(n) + " bytes, have " +
         std::to_string(bytes_.size() - offset_));
    return {};
  }
  const std::string_view out = bytes_.substr(offset_, n);
  offset_ += n;
  return out;
}

std::uint8_t ByteReader::U8() {
  const std::string_view b = Raw(1);
  return b.empty() ? 0 : static_cast<std::uint8_t>(b[0]);
}

std::uint16_t ByteReader::U16() {
  const std::string_view b = Raw(2);
  if (b.empty()) return 0;
  return static_cast<std::uint16_t>(static_cast<unsigned char>(b[0])) |
         static_cast<std::uint16_t>(
             static_cast<std::uint16_t>(static_cast<unsigned char>(b[1]))
             << 8);
}

std::uint32_t ByteReader::U32() {
  const std::string_view b = Raw(4);
  if (b.empty()) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[i]);
  }
  return v;
}

std::uint64_t ByteReader::U64() {
  const std::string_view b = Raw(8);
  if (b.empty()) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[i]);
  }
  return v;
}

std::int64_t ByteReader::I64() { return static_cast<std::int64_t>(U64()); }

std::string ByteReader::Str() {
  const std::uint32_t len = U32();
  if (!status_.ok()) return {};
  if (bytes_.size() - offset_ < len) {
    Fail("truncated string: length " + std::to_string(len) + ", have " +
         std::to_string(bytes_.size() - offset_));
    return {};
  }
  return std::string(Raw(len));
}

Status ByteReader::ExpectEnd() {
  SGQ_RETURN_NOT_OK(status_);
  if (offset_ != bytes_.size()) {
    return Fail(std::to_string(bytes_.size() - offset_) +
                " trailing bytes after the last expected field");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string CheckpointWriter::Encode() const {
  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU32(&out, kCheckpointVersion);
  PutU32(&out, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    PutU16(&out, static_cast<std::uint16_t>(name.size()));
    out.append(name);
    PutU64(&out, payload.size());
    PutU32(&out, Crc32(payload));
    out.append(payload);
  }
  out.append(kCheckpointEndMagic, sizeof(kCheckpointEndMagic));
  PutU32(&out, Crc32(out));
  return out;
}

Status CheckpointWriter::WriteTo(ByteSink* sink) const {
  SGQ_RETURN_NOT_OK(sink->Append(Encode()));
  return sink->Close();
}

Status CheckpointWriter::WriteFile(const std::string& path) const {
  return WriteFileDurable(path, Encode());
}

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  // Never expose a partially written file under the final name: stage the
  // image under a temp name, force it to stable storage, then rename —
  // POSIX rename(2) atomically replaces any previous checkpoint.
  const std::string tmp = path + ".tmp";
  {
    FileByteSink sink(tmp);
    Status st = sink.Append(bytes);
    if (st.ok()) st = sink.Sync();
    if (st.ok()) st = sink.Close();
    if (!st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::Internal("cannot rename " + tmp + " to " +
                                       path + ": " + ErrnoText(errno));
    std::remove(tmp.c_str());
    return st;
  }
#if !defined(_WIN32)
  // The rename is only durable once the directory entry is flushed.
  const std::string dir = DirName(path);
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointReader
// ---------------------------------------------------------------------------

Result<CheckpointReader> CheckpointReader::Parse(std::string bytes,
                                                 std::string context) {
  CheckpointReader reader;
  reader.bytes_ = std::move(bytes);
  reader.context_ = std::move(context);
  const std::string& buf = reader.bytes_;

  // Footer first: the whole-file CRC proves the image is complete and
  // uncorrupted before any frame is trusted (a truncated file could
  // otherwise still parse if it happened to end on a frame boundary).
  constexpr std::size_t kFooterBytes = sizeof(kCheckpointEndMagic) + 4;
  ByteReader in(buf, reader.context_);
  if (buf.size() < 12 + kFooterBytes) {
    return Status::ParseError(reader.context_ + ": offset 0: file too small "
                              "for an SGQC checkpoint (" +
                              std::to_string(buf.size()) + " bytes)");
  }
  const std::size_t footer_at = buf.size() - kFooterBytes;
  if (std::memcmp(buf.data() + footer_at, kCheckpointEndMagic,
                  sizeof(kCheckpointEndMagic)) != 0) {
    return Status::ParseError(
        reader.context_ + ": offset " + std::to_string(footer_at) +
        ": footer magic missing (truncated or torn checkpoint)");
  }
  ByteReader footer(std::string_view(buf).substr(footer_at + 4),
                    reader.context_);
  const std::uint32_t stored_file_crc = footer.U32();
  const std::uint32_t file_crc = Crc32(buf.data(), footer_at + 4);
  if (stored_file_crc != file_crc) {
    return Status::ParseError(reader.context_ + ": offset " +
                              std::to_string(footer_at + 4) +
                              ": file CRC mismatch (stored " +
                              Hex32(stored_file_crc) + ", computed " +
                              Hex32(file_crc) + ")");
  }

  const std::string_view magic = in.Raw(sizeof(kCheckpointMagic));
  if (std::memcmp(magic.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::ParseError(reader.context_ +
                              ": offset 0: bad magic (not an SGQC file)");
  }
  reader.version_ = in.U32();
  if (reader.version_ != kCheckpointVersion) {
    return Status::ParseError(
        reader.context_ + ": offset 4: unsupported checkpoint version " +
        std::to_string(reader.version_) + " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint32_t count = in.U32();
  reader.sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CheckpointSection section;
    const std::uint16_t name_len = in.U16();
    section.name = std::string(in.Raw(name_len));
    section.length = in.U64();
    section.crc = in.U32();
    if (!in.ok()) return in.status();
    const std::uint64_t avail =
        in.offset() <= footer_at ? footer_at - in.offset() : 0;
    if (section.length > avail) {
      return in.Fail("section '" + section.name + "' truncated: payload of " +
                     std::to_string(section.length) + " bytes, have " +
                     std::to_string(avail));
    }
    section.offset = in.offset();
    const std::string_view payload = in.Raw(section.length);
    const std::uint32_t crc = Crc32(payload);
    if (crc != section.crc) {
      return Status::ParseError(
          reader.context_ + ": offset " + std::to_string(section.offset) +
          ": section '" + section.name + "': payload CRC mismatch (stored " +
          Hex32(section.crc) + ", computed " + Hex32(crc) + ")");
    }
    for (const CheckpointSection& prev : reader.sections_) {
      if (prev.name == section.name) {
        return in.Fail("duplicate section '" + section.name + "'");
      }
    }
    reader.sections_.push_back(std::move(section));
  }
  if (in.offset() != footer_at) {
    return in.Fail("unframed bytes between the last section and the footer");
  }
  return reader;
}

Result<CheckpointReader> CheckpointReader::ParseFile(const std::string& path) {
  SGQ_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return Parse(std::move(bytes), path);
}

const CheckpointSection* CheckpointReader::Find(std::string_view name) const {
  for (const CheckpointSection& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<ByteReader> CheckpointReader::Open(std::string_view name) const {
  const CheckpointSection* section = Find(name);
  if (section == nullptr) {
    return Status::NotFound(context_ + ": checkpoint has no section '" +
                            std::string(name) + "'");
  }
  return ByteReader(payload(*section),
                    context_ + ": section '" + std::string(name) + "'");
}

}  // namespace sgq

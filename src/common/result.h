// Result<T>: a value-or-Status union, mirroring arrow::Result.

#ifndef SGQ_COMMON_RESULT_H_
#define SGQ_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace sgq {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// Usage:
/// \code
///   Result<Dfa> r = CompileRegex("a b*");
///   if (!r.ok()) return r.status();
///   Dfa dfa = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from an error Status (must not be OK).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK");
  }
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status; Status::OK() when holding a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief Access the value; requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace sgq

/// \brief Assigns the value of a Result expression or propagates its error.
#define SGQ_ASSIGN_OR_RETURN(lhs, expr)              \
  SGQ_ASSIGN_OR_RETURN_IMPL(                         \
      SGQ_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define SGQ_CONCAT_NAME_INNER(x, y) x##y
#define SGQ_CONCAT_NAME(x, y) SGQ_CONCAT_NAME_INNER(x, y)

#define SGQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#endif  // SGQ_COMMON_RESULT_H_

#include "common/crc32.h"

#include <array>

namespace sgq {
namespace {

// Table generated at first use from the reflected polynomial; byte-at-a-
// time is plenty for checkpoint-sized payloads (the write path is
// dominated by serialization and fsync, not the checksum).
std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> kTable = MakeTable();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sgq

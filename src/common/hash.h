// Hash combiners for composite keys used by join tables and indexes.

#ifndef SGQ_COMMON_HASH_H_
#define SGQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sgq {

/// \brief Mixes `value` into `seed` (boost::hash_combine construction).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// \brief Hashes a pair of hashable values; used for (vertex, state) keys.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// \brief Hashes a vector of 64-bit integers; used for join-key bindings.
struct VecHash {
  std::size_t operator()(const std::vector<uint64_t>& v) const {
    std::size_t seed = v.size();
    for (uint64_t x : v) HashCombine(&seed, std::hash<uint64_t>{}(x));
    return seed;
  }
};

}  // namespace sgq

#endif  // SGQ_COMMON_HASH_H_

#include "common/string_util.h"

#include <cctype>

namespace sgq {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace sgq

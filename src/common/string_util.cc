#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <limits>

namespace sgq {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (text[0] == '-' || text[0] == '+') i = 1;
  if (i == text.size()) return false;  // sign only
  uint64_t magnitude = 0;
  const uint64_t limit =
      negative ? static_cast<uint64_t>(
                     std::numeric_limits<int64_t>::max()) +
                     1
               : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) return false;  // overflow
    magnitude = magnitude * 10 + digit;
  }
  if (negative) {
    *out = magnitude == limit ? std::numeric_limits<int64_t>::min()
                              : -static_cast<int64_t>(magnitude);
  } else {
    *out = static_cast<int64_t>(magnitude);
  }
  return true;
}

}  // namespace sgq

#include "common/status.h"

namespace sgq {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(new State{code, std::move(msg)}) {}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace sgq

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check of the SGQC checkpoint format (model/checkpoint.h, DESIGN.md §7).
// Every checkpoint section carries the CRC of its payload and the file
// footer carries the CRC of everything before it, so truncation and
// bit-rot are both detected before any state is deserialized.

#ifndef SGQ_COMMON_CRC32_H_
#define SGQ_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sgq {

/// \brief CRC-32 of `len` bytes at `data`, continuing from `crc` (pass the
/// previous call's return value to checksum a buffer in pieces; the
/// pre/post conditioning composes so chunked and one-shot results match).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

inline std::uint32_t Crc32(std::string_view bytes, std::uint32_t crc = 0) {
  return Crc32(bytes.data(), bytes.size(), crc);
}

}  // namespace sgq

#endif  // SGQ_COMMON_CRC32_H_

// Open-addressing flat hash containers for hot operator state.
//
// FlatMap/FlatSet replace std::unordered_map/std::unordered_set on the
// paths the paper's evaluation shows dominate tail latency: spanning-forest
// node lookups, window-adjacency probes, and PATTERN join-table access.
// The design is ordered robin-hood probing over one contiguous slot array:
//
//  - power-of-two capacity, probe sequence i, i+1, ... (cache-linear);
//  - one metadata byte per slot holding probe distance + 1 (0 = empty), so
//    probes touch a dense byte array before any key comparison;
//  - inserts keep every probe chain ordered by distance ("ordered robin
//    hood"): a new element is placed at its insertion point and the tail
//    of the chain shifts right one slot — no tombstones ever;
//  - erase reverses that with a backward shift, so deletion-heavy
//    workloads (window expiry, retraction scrubs) cannot degrade the
//    table the way tombstone schemes do;
//  - hashes are finalized with a 64-bit mixer before masking, so identity
//    std::hash (libstdc++ integers) still spreads across buckets.
//
// The API is the std::unordered_map subset the engine uses (find /
// operator[] / try_emplace / insert_or_assign / emplace / erase / range
// iteration / clear / reserve). Semantics differences, by design:
//
//  - iteration order is the slot order (hash order), not insertion order,
//    and differs from std::unordered_map — callers whose emission order is
//    observable must drain through an explicit sort (see DESIGN.md,
//    "State layout");
//  - references and iterators are invalidated by rehash AND by any
//    insert/erase (elements shift within the array);
//  - erase(it) returns the iterator to continue a forward scan with; when
//    the backward shift wraps around the array end, an already-visited
//    element can be revisited — erase-during-scan predicates must be
//    idempotent (every caller in this codebase purges by expiry, which
//    is).
//
// Property-tested against std::unordered_map in tests/flat_map_test.cc.

#ifndef SGQ_COMMON_FLAT_MAP_H_
#define SGQ_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sgq {

/// \brief 64-bit finalizer (splitmix64) applied to every hash before
/// masking: power-of-two tables need the low bits to depend on all input
/// bits, and std::hash for integers is the identity on libstdc++.
inline std::size_t FlatHashMix(std::size_t h) {
  uint64_t x = static_cast<uint64_t>(h);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

/// \brief Flat hash map. See the file comment for the API contract.
template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<Key>>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  /// Unlike std::unordered_map the key is not const-qualified: slots move
  /// during shifts and rehash. Callers must not mutate `first` in place.
  using value_type = std::pair<Key, T>;

  template <bool kConst>
  class Iterator {
   public:
    using map_type = std::conditional_t<kConst, const FlatMap, FlatMap>;
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatMap::value_type;
    using difference_type = std::ptrdiff_t;
    using reference =
        std::conditional_t<kConst, const value_type&, value_type&>;
    using pointer =
        std::conditional_t<kConst, const value_type*, value_type*>;

    Iterator() = default;
    Iterator(map_type* map, std::size_t index) : map_(map), index_(index) {}
    /// Const iterators construct from mutable ones (std compatibility).
    template <bool kOther,
              typename = std::enable_if_t<kConst && !kOther>>
    Iterator(const Iterator<kOther>& o) : map_(o.map_), index_(o.index_) {}

    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }

    Iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }
    Iterator operator++(int) {
      Iterator copy = *this;
      ++*this;
      return copy;
    }

    template <bool kOther>
    bool operator==(const Iterator<kOther>& o) const {
      return index_ == o.index_;
    }
    template <bool kOther>
    bool operator!=(const Iterator<kOther>& o) const {
      return index_ != o.index_;
    }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iterator;
    void SkipEmpty() {
      while (index_ < map_->capacity_ && map_->dist_[index_] == 0) ++index_;
    }

    map_type* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatMap() = default;

  FlatMap(const FlatMap& other) { CopyFrom(other); }
  FlatMap& operator=(const FlatMap& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }

  FlatMap(FlatMap&& other) noexcept { Steal(&other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      Destroy();
      Steal(&other);
    }
    return *this;
  }

  ~FlatMap() { Destroy(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() {
    iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  const_iterator begin() const {
    const_iterator it(this, 0);
    it.SkipEmpty();
    return it;
  }
  iterator end() { return iterator(this, capacity_); }
  const_iterator end() const { return const_iterator(this, capacity_); }

  void clear() {
    if (capacity_ == 0) return;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) slots_[i].~value_type();
    }
    std::memset(dist_, 0, capacity_);
    size_ = 0;
  }

  /// \brief Grows the table so `n` elements fit without rehash.
  void reserve(std::size_t n) {
    std::size_t want = 8;
    while (want * 3 < n * 4) want <<= 1;  // invert the 0.75 load bound
    if (want > capacity_) Rehash(want);
  }

  iterator find(const Key& key) {
    const std::size_t i = FindSlot(key);
    return i == kNpos ? end() : iterator(this, i);
  }
  const_iterator find(const Key& key) const {
    const std::size_t i = FindSlot(key);
    return i == kNpos ? end() : const_iterator(this, i);
  }
  std::size_t count(const Key& key) const {
    return FindSlot(key) == kNpos ? 0 : 1;
  }
  bool contains(const Key& key) const { return FindSlot(key) != kNpos; }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    std::size_t i = FindSlot(key);
    if (i != kNpos) return {iterator(this, i), false};
    i = InsertNew(key, T(std::forward<Args>(args)...));
    return {iterator(this, i), true};
  }

  /// \brief std::unordered_map::emplace for the (key, value) arity the
  /// engine uses.
  std::pair<iterator, bool> emplace(const Key& key, T value) {
    std::size_t i = FindSlot(key);
    if (i != kNpos) return {iterator(this, i), false};
    i = InsertNew(key, std::move(value));
    return {iterator(this, i), true};
  }

  std::pair<iterator, bool> insert_or_assign(const Key& key, T value) {
    std::size_t i = FindSlot(key);
    if (i != kNpos) {
      slots_[i].second = std::move(value);
      return {iterator(this, i), false};
    }
    i = InsertNew(key, std::move(value));
    return {iterator(this, i), true};
  }

  std::size_t erase(const Key& key) {
    const std::size_t i = FindSlot(key);
    if (i == kNpos) return 0;
    EraseSlot(i);
    return 1;
  }

  /// \brief Erases the element at `it` and returns the iterator to resume
  /// a forward scan with (the same slot when the backward shift refilled
  /// it). See the file comment for the wrap-around revisit caveat.
  iterator erase(iterator it) {
    assert(it.map_ == this && it.index_ < capacity_ &&
           dist_[it.index_] != 0);
    EraseSlot(it.index_);
    iterator next(this, it.index_);
    next.SkipEmpty();
    return next;
  }

  /// \brief Bytes resident in the slot and metadata arrays (capacity, not
  /// size); element-owned heap memory is not included.
  std::size_t capacity_bytes() const {
    return capacity_ * (sizeof(value_type) + 1);
  }

  std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  /// Probe distances are uint8 (0 = empty, 1 = home slot); chains close to
  /// the limit force a rehash, which shortens them.
  static constexpr unsigned kMaxDist = 250;

  std::size_t IndexFor(const Key& key) const {
    return FlatHashMix(Hash{}(key)) & (capacity_ - 1);
  }

  std::size_t FindSlot(const Key& key) const {
    if (size_ == 0) return kNpos;
    std::size_t i = IndexFor(key);
    unsigned d = 1;
    while (true) {
      const unsigned slot_d = dist_[i];
      if (slot_d < d) return kNpos;  // empty or poorer: key is absent
      if (slot_d == d && KeyEqual{}(slots_[i].first, key)) return i;
      i = (i + 1) & (capacity_ - 1);
      ++d;
    }
  }

  /// \brief Inserts a key known to be absent; returns its slot.
  std::size_t InsertNew(const Key& key, T value) {
    if (capacity_ == 0 || (size_ + 1) * 4 > capacity_ * 3) {
      Rehash(capacity_ == 0 ? 8 : capacity_ * 2);
    }
    while (true) {
      const std::size_t i = TryPlace(key, &value);
      if (i != kNpos) {
        ++size_;
        return i;
      }
      Rehash(capacity_ * 2);  // probe chain hit kMaxDist
    }
  }

  /// \brief Ordered robin-hood placement: finds the insertion point of
  /// `key`, shifts the tail of the chain right one slot, and constructs
  /// the element there. Returns kNpos when a shifted distance would
  /// overflow (caller rehashes).
  std::size_t TryPlace(const Key& key, T* value) {
    const std::size_t mask = capacity_ - 1;
    std::size_t i = IndexFor(key);
    unsigned d = 1;
    // Insertion point: the first slot whose occupant is closer to home
    // than `key` would be (or an empty slot).
    while (dist_[i] >= d) {
      i = (i + 1) & mask;
      ++d;
      if (d > kMaxDist) return kNpos;
    }
    if (dist_[i] != 0) {
      // Find the end of the occupied run, then shift it right one slot.
      std::size_t empty = i;
      while (dist_[empty] != 0) {
        if (dist_[empty] >= kMaxDist) return kNpos;
        empty = (empty + 1) & mask;
      }
      for (std::size_t j = empty; j != i;) {
        const std::size_t prev = (j + capacity_ - 1) & mask;
        new (&slots_[j]) value_type(std::move(slots_[prev]));
        slots_[prev].~value_type();
        dist_[j] = static_cast<uint8_t>(dist_[prev] + 1);
        j = prev;
      }
    }
    new (&slots_[i]) value_type(key, std::move(*value));
    dist_[i] = static_cast<uint8_t>(d);
    return i;
  }

  void EraseSlot(std::size_t i) {
    const std::size_t mask = capacity_ - 1;
    slots_[i].~value_type();
    std::size_t cur = i;
    std::size_t next = (i + 1) & mask;
    while (dist_[next] > 1) {  // backward-shift the rest of the chain
      new (&slots_[cur]) value_type(std::move(slots_[next]));
      slots_[next].~value_type();
      dist_[cur] = static_cast<uint8_t>(dist_[next] - 1);
      cur = next;
      next = (next + 1) & mask;
    }
    dist_[cur] = 0;
    --size_;
  }

  void Rehash(std::size_t new_capacity) {
    FlatMap old;
    old.Steal(this);
    AllocateArrays(new_capacity);
    size_ = old.size_;
    for (std::size_t i = 0; i < old.capacity_; ++i) {
      if (old.dist_[i] == 0) continue;
      value_type& slot = old.slots_[i];
      // A fresh table at <= 0.75 load with a mixed hash cannot produce a
      // probe chain near kMaxDist (robin-hood max probe length is
      // O(log n) in expectation; 250 is orders of magnitude above any
      // observable chain), so placement here must succeed.
      const std::size_t placed = TryPlace(slot.first, &slot.second);
      assert(placed != kNpos && "probe chain overflow during rehash");
      (void)placed;
    }
  }

  void AllocateArrays(std::size_t capacity) {
    capacity_ = capacity;
    size_ = 0;
    slots_ = std::allocator<value_type>().allocate(capacity_);
    dist_ = new uint8_t[capacity_];
    std::memset(dist_, 0, capacity_);
  }

  void Destroy() {
    if (capacity_ == 0) return;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (dist_[i] != 0) slots_[i].~value_type();
    }
    std::allocator<value_type>().deallocate(slots_, capacity_);
    delete[] dist_;
    slots_ = nullptr;
    dist_ = nullptr;
    capacity_ = 0;
    size_ = 0;
  }

  void Steal(FlatMap* other) {
    slots_ = other->slots_;
    dist_ = other->dist_;
    capacity_ = other->capacity_;
    size_ = other->size_;
    other->slots_ = nullptr;
    other->dist_ = nullptr;
    other->capacity_ = 0;
    other->size_ = 0;
  }

  void CopyFrom(const FlatMap& other) {
    slots_ = nullptr;
    dist_ = nullptr;
    capacity_ = 0;
    size_ = 0;
    if (other.size_ == 0) return;
    reserve(other.size_);
    for (const value_type& v : other) InsertNew(v.first, v.second);
  }

  value_type* slots_ = nullptr;
  uint8_t* dist_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

/// \brief Flat hash set over the same probing scheme (a FlatMap with an
/// empty payload; the std::unordered_set subset the engine uses).
template <typename Key, typename Hash = std::hash<Key>,
          typename KeyEqual = std::equal_to<Key>>
class FlatSet {
  struct Empty {};
  using Map = FlatMap<Key, Empty, Hash, KeyEqual>;

 public:
  /// Iterates keys only (the payload is empty).
  template <bool kConst>
  class Iterator {
    using Inner = typename Map::template Iterator<kConst>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Key;
    using difference_type = std::ptrdiff_t;
    using reference = const Key&;
    using pointer = const Key*;

    Iterator() = default;
    explicit Iterator(Inner it) : it_(it) {}
    const Key& operator*() const { return it_->first; }
    const Key* operator->() const { return &it_->first; }
    Iterator& operator++() {
      ++it_;
      return *this;
    }
    template <bool kOther>
    bool operator==(const Iterator<kOther>& o) const {
      return it_ == o.it_;
    }
    template <bool kOther>
    bool operator!=(const Iterator<kOther>& o) const {
      return it_ != o.it_;
    }

   private:
    template <typename, typename, typename>
    friend class FlatSet;
    Inner it_;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  std::pair<iterator, bool> insert(const Key& key) {
    auto [it, inserted] = map_.try_emplace(key);
    return {iterator(it), inserted};
  }
  std::size_t count(const Key& key) const { return map_.count(key); }
  bool contains(const Key& key) const { return map_.contains(key); }
  std::size_t erase(const Key& key) { return map_.erase(key); }

  iterator begin() { return iterator(map_.begin()); }
  iterator end() { return iterator(map_.end()); }
  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

  std::size_t capacity_bytes() const { return map_.capacity_bytes(); }

 private:
  Map map_;
};

}  // namespace sgq

#endif  // SGQ_COMMON_FLAT_MAP_H_

// Lightweight assertion/check macros (Arrow's DCHECK family, simplified).

#ifndef SGQ_COMMON_LOGGING_H_
#define SGQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sgq {
namespace internal {

/// \brief Terminates the process after streaming a fatal message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sgq

/// \brief Always-on invariant check; aborts with a message on failure.
#define SGQ_CHECK(cond)                                      \
  if (!(cond))                                               \
  ::sgq::internal::FatalLogMessage(__FILE__, __LINE__).stream() << #cond << " "

#define SGQ_CHECK_EQ(a, b) SGQ_CHECK((a) == (b))
#define SGQ_CHECK_NE(a, b) SGQ_CHECK((a) != (b))
#define SGQ_CHECK_LT(a, b) SGQ_CHECK((a) < (b))
#define SGQ_CHECK_LE(a, b) SGQ_CHECK((a) <= (b))
#define SGQ_CHECK_GT(a, b) SGQ_CHECK((a) > (b))
#define SGQ_CHECK_GE(a, b) SGQ_CHECK((a) >= (b))

#ifdef NDEBUG
#define SGQ_DCHECK(cond) SGQ_CHECK(true || (cond))
#else
#define SGQ_DCHECK(cond) SGQ_CHECK(cond)
#endif

#endif  // SGQ_COMMON_LOGGING_H_

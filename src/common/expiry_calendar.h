// Slide-aligned expiry calendar: the bucketed index that makes window
// expiry O(expiring bucket) instead of O(total state).
//
// Stateful operators used to find expired entries by re-scanning their
// whole state at each purge, guarded only by a min-expiry lower bound —
// exactly the structure the paper's evaluation blames for tail latency
// under high-rate sliding windows. The calendar replaces the scan: every
// entry registers a *hint* in the bucket exp / slide at insertion (and
// re-registers whenever its expiry changes), and a time advance to `now`
// drains only the buckets whose time range has passed.
//
// Hints are hints, not ownership: the entry's live container remains the
// source of truth. A drained hint may be stale (the entry was deleted,
// re-derived, or its expiry moved), so the drain callback re-checks the
// live entry and acts only when it really expired. The invariant that
// makes the drain complete is:
//
//   every live entry with finite expiry `exp` has a hint in bucket
//   exp / slide of the calendar.
//
// Maintained by: registering on insert, re-registering on every expiry
// change, and — because draining bucket now/slide may pop hints for
// entries that expire later within the same bucket — re-registering
// survivors for which NeedsReAdd(exp, now) holds during the drain.
// Stale duplicates cost one extra verification each and never accumulate.

#ifndef SGQ_COMMON_EXPIRY_CALENDAR_H_
#define SGQ_COMMON_EXPIRY_CALENDAR_H_

#include <algorithm>
#include <cstddef>
#include <queue>
#include <vector>

#include "common/flat_map.h"
#include "model/types.h"

namespace sgq {

/// \brief Bucketed expiry index. `Hint` is a small trivially-copyable
/// locator (a map key, a (root, node) pair) the drain callback uses to
/// find the live entry.
template <typename Hint>
class ExpiryCalendar {
 public:
  /// \brief Sets the bucket granularity (the window slide). Existing
  /// hints are re-bucketed; typically called once, before streaming,
  /// when the executor fixes the engine's slide. Slide 1 (the default)
  /// is always correct — one bucket per distinct expiry instant.
  void ConfigureSlide(Timestamp slide) {
    if (slide <= 0 || slide == slide_) return;
    std::vector<Entry> all;
    all.reserve(num_hints_);
    for (auto& [bucket, data] : buckets_) {
      (void)bucket;
      all.insert(all.end(), data.entries.begin(), data.entries.end());
    }
    buckets_.clear();
    heap_ = {};
    num_hints_ = 0;
    slide_ = slide;
    for (const Entry& e : all) Add(e.exp, e.hint);
  }

  Timestamp slide() const { return slide_; }

  /// \brief Registers `hint` for an entry expiring at `exp`. Entries that
  /// never expire (kMaxTimestamp) are not tracked.
  void Add(Timestamp exp, const Hint& hint) {
    if (exp == kMaxTimestamp) return;
    const Timestamp bucket = exp / slide_;
    auto [it, inserted] = buckets_.try_emplace(bucket);
    if (inserted) {
      heap_.push(bucket);
      it->second.min_exp = exp;
    } else if (exp < it->second.min_exp) {
      it->second.min_exp = exp;
    }
    it->second.entries.push_back(Entry{exp, hint});
    ++num_hints_;
  }

  /// \brief True when a time advance to `now` has hints to drain. O(1):
  /// buckets are checked by their tracked earliest expiry (bucket order
  /// implies min-expiry order), so a bucket whose time range has started
  /// but whose earliest entry is still in the future triggers nothing.
  bool AnyDue(Timestamp now) const {
    if (heap_.empty()) return false;
    const auto it = buckets_.find(heap_.top());
    return it != buckets_.end() && it->second.min_exp <= now;
  }

  /// \brief True when a surviving entry seen during a drain at `now` must
  /// re-register: its expiry lies in the bucket being drained, so its
  /// hint was just popped.
  bool NeedsReAdd(Timestamp exp, Timestamp now) const {
    return exp > now && exp != kMaxTimestamp &&
           exp / slide_ == now / slide_;
  }

  /// \brief Pops every due bucket and calls `fn(hint)` for each hint, in
  /// bucket order then registration order (deterministic). `fn` must
  /// re-check the live entry (hints may be stale) and may call Add —
  /// including, via NeedsReAdd, for survivors in the current bucket;
  /// buckets created during the drain are not drained again in this call.
  template <typename Fn>
  void DrainDue(Timestamp now, Fn&& fn) {
    if (!AnyDue(now)) return;
    drain_scratch_.clear();
    while (!heap_.empty()) {
      const Timestamp bucket = heap_.top();
      auto it = buckets_.find(bucket);
      if (it == buckets_.end()) {  // defensive; buckets outlive heap ids
        heap_.pop();
        continue;
      }
      if (it->second.min_exp > now) break;
      heap_.pop();
      num_hints_ -= it->second.entries.size();
      drain_scratch_.push_back(std::move(it->second.entries));
      buckets_.erase(it);
    }
    for (const std::vector<Entry>& bucket : drain_scratch_) {
      for (const Entry& e : bucket) {
        ++hints_drained_;
        fn(e.hint);
      }
    }
    drain_scratch_.clear();
  }

  void Clear() {
    buckets_.clear();
    heap_ = {};
    num_hints_ = 0;
  }

  std::size_t num_hints() const { return num_hints_; }

  /// \brief Total hints ever passed to a drain callback (diagnostics; the
  /// O(expiring bucket) tests assert this stays 0 while nothing is due).
  std::size_t hints_drained() const { return hints_drained_; }

  /// \brief Visits every pending hint as `fn(exp, hint)`, buckets in
  /// ascending id order and entries within a bucket in registration
  /// order — exactly DrainDue's delivery order. Checkpointing
  /// (model/checkpoint.h) replays Add(exp, hint) in visit order into a
  /// Clear()'d calendar with the same slide, which reconstructs an
  /// identical drain schedule (bucket ids, min_exp, entry order,
  /// num_hints); the heap is rebuilt with the same id set, and its pop
  /// order depends only on the ids.
  template <typename Fn>
  void VisitEntries(Fn&& fn) const {
    std::vector<Timestamp> ids;
    ids.reserve(buckets_.size());
    for (const auto& [bucket, data] : buckets_) {
      (void)data;
      ids.push_back(bucket);
    }
    std::sort(ids.begin(), ids.end());
    for (const Timestamp bucket : ids) {
      const auto it = buckets_.find(bucket);
      for (const Entry& e : it->second.entries) fn(e.exp, e.hint);
    }
  }

  /// \brief Approximate resident bytes (bucket map + hint vectors).
  std::size_t ApproxBytes() const {
    std::size_t n = buckets_.capacity_bytes();
    for (const auto& [bucket, data] : buckets_) {
      (void)bucket;
      n += data.entries.capacity() * sizeof(Entry);
    }
    return n;
  }

 private:
  struct Entry {
    Timestamp exp;
    Hint hint;
  };
  struct Bucket {
    Timestamp min_exp = kMaxTimestamp;
    std::vector<Entry> entries;
  };

  Timestamp slide_ = 1;
  FlatMap<Timestamp, Bucket> buckets_;
  /// Min-heap of bucket ids with content (no duplicates: pushed only when
  /// the bucket is created).
  std::priority_queue<Timestamp, std::vector<Timestamp>,
                      std::greater<Timestamp>>
      heap_;
  std::size_t num_hints_ = 0;
  std::size_t hints_drained_ = 0;
  std::vector<std::vector<Entry>> drain_scratch_;
};

}  // namespace sgq

#endif  // SGQ_COMMON_EXPIRY_CALENDAR_H_

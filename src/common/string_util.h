// Small string helpers used by the parsers and report printers.

#ifndef SGQ_COMMON_STRING_UTIL_H_
#define SGQ_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sgq {

/// \brief Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view TrimString(std::string_view text);

/// \brief True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief Strict signed-integer parse: the whole of `text` must be a
/// base-10 integer (optional leading '-'/'+'), no trailing garbage, no
/// empty input. Returns false on any violation or overflow.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace sgq

#endif  // SGQ_COMMON_STRING_UTIL_H_

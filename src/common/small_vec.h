// Small-size-inlined vector with full value semantics, for the tiny
// fixed-arity arrays PATTERN state is made of: variable bindings
// (num_vars values) and join keys (1-3 values). Unlike SmallRun
// (common/arena.h) it owns its overflow on the global heap and is
// copyable/comparable, so it can live inside container values that are
// copied and compared — at the cost of a heap allocation in the (rare)
// overflow case.

#ifndef SGQ_COMMON_SMALL_VEC_H_
#define SGQ_COMMON_SMALL_VEC_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>

#include "common/hash.h"

namespace sgq {

template <typename T, unsigned N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVec elements are moved with memcpy");

 public:
  SmallVec() : size_(0), cap_(N) {}
  SmallVec(std::size_t n, const T& value) : SmallVec() { assign(n, value); }

  SmallVec(const SmallVec& o) : SmallVec() { CopyFrom(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      size_ = 0;
      CopyFrom(o);
    }
    return *this;
  }
  SmallVec(SmallVec&& o) noexcept : SmallVec() { MoveFrom(&o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) MoveFrom(&o);
    return *this;
  }

  ~SmallVec() {
    if (cap_ != N) delete[] heap_;
  }

  T* data() { return cap_ == N ? inline_ : heap_; }
  const T* data() const { return cap_ == N ? inline_ : heap_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  void assign(std::size_t n, const T& value) {
    size_ = 0;
    Reserve(n);
    T* d = data();
    for (std::size_t i = 0; i < n; ++i) d[i] = value;
    size_ = static_cast<uint32_t>(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) Reserve(cap_ * 2);
    data()[size_++] = v;
  }

  /// \brief Inserts `v` before index `i`, shifting the tail right.
  void insert_at(std::size_t i, const T& v) {
    if (size_ == cap_) Reserve(cap_ * 2);
    T* d = data();
    std::memmove(d + i + 1, d + i, (size_ - i) * sizeof(T));
    d[i] = v;
    ++size_;
  }

  /// \brief Removes the elements in [i, j), shifting the tail left.
  void erase_range(std::size_t i, std::size_t j) {
    T* d = data();
    std::memmove(d + i, d + j, (size_ - j) * sizeof(T));
    size_ -= static_cast<uint32_t>(j - i);
  }

  void reserve(std::size_t n) { Reserve(n); }

  bool operator==(const SmallVec& o) const {
    if (size_ != o.size_) return false;
    return std::memcmp(data(), o.data(), size_ * sizeof(T)) == 0;
  }
  bool operator!=(const SmallVec& o) const { return !(*this == o); }

  /// \brief Bytes held beyond the inline storage.
  std::size_t overflow_bytes() const {
    return cap_ == N ? 0 : cap_ * sizeof(T);
  }

 private:
  void Reserve(std::size_t n) {
    if (n <= cap_) return;
    uint32_t new_cap = cap_;
    while (new_cap < n) new_cap *= 2;
    T* block = new T[new_cap];
    std::memcpy(block, data(), size_ * sizeof(T));
    if (cap_ != N) delete[] heap_;
    heap_ = block;
    cap_ = new_cap;
  }

  void CopyFrom(const SmallVec& o) {
    Reserve(o.size_);
    std::memcpy(data(), o.data(), o.size_ * sizeof(T));
    size_ = o.size_;
  }

  void MoveFrom(SmallVec* o) {
    if (cap_ != N) {
      delete[] heap_;
      cap_ = N;
    }
    if (o->cap_ == N) {
      // size_ <= N in inline mode; the min makes the bound provable.
      std::memcpy(inline_, o->inline_,
                  std::min<std::size_t>(o->size_, N) * sizeof(T));
    } else {
      heap_ = o->heap_;
      cap_ = o->cap_;
      o->cap_ = N;
    }
    size_ = o->size_;
    o->size_ = 0;
  }

  uint32_t size_;
  uint32_t cap_;  ///< == N: inline storage active; > N: heap_ active
  union {
    T inline_[N];
    T* heap_;
  };
};

/// \brief Hash for SmallVec<uint64-like> join keys (mirrors VecHash).
struct SmallVecHash {
  template <typename T, unsigned N>
  std::size_t operator()(const SmallVec<T, N>& v) const {
    std::size_t seed = v.size();
    for (const T& x : v) HashCombine(&seed, std::hash<T>{}(x));
    return seed;
  }
};

}  // namespace sgq

#endif  // SGQ_COMMON_SMALL_VEC_H_

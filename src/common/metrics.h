// Measurement helpers shared by the benchmark harness and tests:
// wall-clock timers, latency percentile tracking, throughput accounting.

#ifndef SGQ_COMMON_METRICS_H_
#define SGQ_COMMON_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sgq {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Collects per-event latencies and reports percentiles.
///
/// The paper reports the 99th-percentile ("tail") latency of each window
/// slide; LatencyRecorder::Percentile(0.99) computes exactly that with the
/// nearest-rank method.
class LatencyRecorder {
 public:
  /// \brief Records one latency sample, in seconds.
  void Record(double seconds) { samples_.push_back(seconds); }

  std::size_t count() const { return samples_.size(); }

  /// \brief Nearest-rank percentile, q in [0, 1]; 0 when no samples.
  double Percentile(double q) const;

  /// \brief Arithmetic mean; 0 when no samples.
  double Mean() const;

  double Max() const;

  void Clear() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
};

/// \brief Aggregate result of one benchmark run.
struct RunMetrics {
  std::string name;              ///< configuration label (query, plan, ...)
  std::size_t edges_processed = 0;
  double elapsed_seconds = 0;
  double tail_latency_seconds = 0;  ///< p99 of per-slide processing time
  std::size_t results_emitted = 0;

  /// \brief Sustained input rate in edges per second.
  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(edges_processed) /
                                     elapsed_seconds
                               : 0;
  }
};

}  // namespace sgq

#endif  // SGQ_COMMON_METRICS_H_

// Measurement helpers shared by the benchmark harness and tests:
// wall-clock timers, latency percentile tracking, throughput accounting.
//
// Counter and LatencyRecorder are thread-safe: sharded execution
// (runtime/executor.h, num_workers > 1) lets per-shard operators bump
// shared counters concurrently, so Counter is a relaxed atomic and
// LatencyRecorder serializes its sample vector behind a mutex.

#ifndef SGQ_COMMON_METRICS_H_
#define SGQ_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sgq {

/// \brief Monotonically increasing event counter, safe to bump from any
/// worker thread. Relaxed ordering: counts are diagnostics, not
/// synchronization — readers that need a consistent view read after a
/// pool barrier.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Collects per-event latencies and reports percentiles.
///
/// The paper reports the 99th-percentile ("tail") latency of each window
/// slide; LatencyRecorder::Percentile(0.99) computes exactly that with the
/// nearest-rank method. Thread-safe: samples may be recorded from any
/// worker thread.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder& other) : samples_(other.Samples()) {}
  LatencyRecorder& operator=(const LatencyRecorder& other) {
    std::vector<double> copy = other.Samples();
    std::lock_guard<std::mutex> lock(mu_);
    samples_ = std::move(copy);
    return *this;
  }

  /// \brief Records one latency sample, in seconds.
  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(seconds);
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  /// \brief Nearest-rank percentile, q in [0, 1]; 0 when no samples.
  double Percentile(double q) const;

  /// \brief Arithmetic mean; 0 when no samples.
  double Mean() const;

  double Max() const;

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

 private:
  /// \brief Snapshot of the samples under the lock.
  std::vector<double> Samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

  mutable std::mutex mu_;
  std::vector<double> samples_;
};

/// \brief Aggregate result of one benchmark run.
struct RunMetrics {
  std::string name;              ///< configuration label (query, plan, ...)
  std::size_t edges_processed = 0;
  double elapsed_seconds = 0;
  double tail_latency_seconds = 0;  ///< p99 of per-slide processing time
  std::size_t results_emitted = 0;
  std::size_t state_entries = 0;  ///< operator state entries at end of run
  std::size_t state_bytes = 0;    ///< resident operator-state bytes at end
  /// Async-ingest pipeline stalls (runtime/ingest_pipeline.h); both 0 on
  /// synchronous runs. ingest_stall_ns: the ingest thread blocked on
  /// backpressure (execution-bound run); exec_stall_ns: the execution
  /// thread starved for parsed input (ingest-bound run).
  uint64_t ingest_stall_ns = 0;
  uint64_t exec_stall_ns = 0;
  /// Sharded parse stage (runtime/ingest_pipeline.h RunSharded); zeros /
  /// empty on synchronous and single-producer runs. parsers: parser
  /// threads used; merge_stall_ns: the order-restoring merge blocked on
  /// empty gutters; parser_stall_ns: per parser, blocked on gutter
  /// backpressure; parse_busy_ns: the slowest parser's time inside the
  /// cursor — the parse-stage critical path.
  std::size_t parsers = 0;
  uint64_t merge_stall_ns = 0;
  std::vector<uint64_t> parser_stall_ns;
  uint64_t parse_busy_ns = 0;
  /// File-backed ingest only (workload/harness.h RunSgaFile): summed
  /// nanoseconds parser threads spent inside the chunk feeder — pread /
  /// boundary-scan time plus readahead-window backpressure. 0 for
  /// in-memory streams.
  uint64_t readahead_stall_ns = 0;
  /// Query-index dispatch accounting (runtime/executor.h). ops_touched:
  /// operator activations the run actually paid (OnSge deliveries,
  /// per-(operator, port) batch executions, time-advance / purge phases).
  /// index_skipped_dispatches: operator visits the query index pruned
  /// relative to the legacy full-scan dispatch (0 with the index off).
  std::size_t ops_touched = 0;
  std::size_t index_skipped_dispatches = 0;
  /// Checkpointing (core/engine.h Engine::Checkpoint): serialization time
  /// of the most recent snapshot (the foreground stall — the durable file
  /// write happens on a background thread) and its encoded size. Both 0
  /// when the run never checkpointed.
  uint64_t checkpoint_write_ns = 0;
  uint64_t checkpoint_bytes = 0;

  /// \brief Dispatch fanout actually paid per processed edge — stays
  /// O(matching operators) with the query index on, grows O(registered
  /// queries) under legacy broadcast phases; 0 when nothing was processed.
  double OpsTouchedPerEdge() const {
    return edges_processed > 0 ? static_cast<double>(ops_touched) /
                                     static_cast<double>(edges_processed)
                               : 0;
  }

  /// \brief Sustained input rate in edges per second.
  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(edges_processed) /
                                     elapsed_seconds
                               : 0;
  }

  /// \brief Parse-stage throughput: elements decoded per second of the
  /// slowest parser's busy time (what the sharded parse scales); 0 when
  /// parse time was not measured.
  double ParseTuplesPerSec() const {
    return parse_busy_ns > 0 ? static_cast<double>(edges_processed) /
                                   (static_cast<double>(parse_busy_ns) * 1e-9)
                             : 0;
  }
};

}  // namespace sgq

#endif  // SGQ_COMMON_METRICS_H_

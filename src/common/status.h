// Status: error-handling primitive used across the sgq public API.
//
// Follows the Apache Arrow / RocksDB idiom: fallible operations return a
// Status (or a Result<T>, see result.h) instead of throwing. Exceptions do
// not cross the public API boundary.

#ifndef SGQ_COMMON_STATUS_H_
#define SGQ_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace sgq {

/// \brief Machine-readable category for a Status.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,   ///< malformed input from the caller
  kParseError = 2,        ///< query/regex/stream text could not be parsed
  kNotFound = 3,          ///< a referenced entity does not exist
  kAlreadyExists = 4,     ///< uniqueness constraint violated
  kUnsupported = 5,       ///< valid but outside the implemented fragment
  kInternal = 6,          ///< invariant violation inside the engine
};

/// \brief Returns a human-readable name for a StatusCode (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// The OK status is represented without allocation; error states carry a
/// heap-allocated code/message pair (the "pointer-sized Status" layout used
/// by Arrow and RocksDB).
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept : state_(nullptr) {}
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// \brief Error message; empty for OK.
  const std::string& message() const;

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sgq

/// \brief Propagates a non-OK Status to the caller (Arrow's RETURN_NOT_OK).
#define SGQ_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::sgq::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

#endif  // SGQ_COMMON_STATUS_H_

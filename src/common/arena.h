// Slab arena, size-class freelist pool, and small-size-inlined runs for
// operator state payloads.
//
// Node-based containers pay one heap allocation (and one cache line of
// allocator metadata) per element; the hot operator state of this engine
// is dominated by *many tiny arrays* — the StoredEdge runs of the window
// adjacency and the root lists of the PATH inverted index. The layer here
// removes those allocations:
//
//  - Arena: bump allocator over fixed-size slabs; allocation is a pointer
//    increment, deallocation is wholesale (the owning store dies or is
//    cleared). Oversized requests get a dedicated slab.
//  - SlabPool: power-of-two size-class freelists on top of an Arena.
//    Freed blocks are recycled per class, so steady-state windowed
//    workloads (insert edges / expire edges forever) reach a fixed
//    footprint instead of growing the arena monotonically.
//  - SmallRun<T, N>: a dynamic array of trivially-copyable elements with N
//    slots stored inline; overflow storage comes from a SlabPool passed to
//    the mutating calls (the owner of the map that holds the runs owns the
//    pool — see DESIGN.md "State layout" for the ownership rules). The
//    destructor is a no-op by design: unreleased overflow is reclaimed
//    when the owning pool's arena dies; containers that erase runs
//    mid-life call Release() to put the block back on the freelist.

#ifndef SGQ_COMMON_ARENA_H_
#define SGQ_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sgq {

/// \brief Bump allocator over fixed-size slabs.
class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 1 << 16;
  /// All blocks are aligned to this (covers every state payload type).
  static constexpr std::size_t kAlign = 16;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& o) noexcept { MoveFrom(&o); }
  Arena& operator=(Arena&& o) noexcept {
    if (this != &o) MoveFrom(&o);
    return *this;
  }

  /// \brief Returns `bytes` of kAlign-aligned storage. Never fails short
  /// of std::bad_alloc; storage lives until Clear() or destruction.
  void* Allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > slab_bytes_) {
      // Dedicated slab, inserted behind the bump slab so the latter keeps
      // filling.
      slabs_.push_back(NewSlab(bytes));
      reserved_bytes_ += bytes;
      used_bytes_ += bytes;
      char* p = slabs_.back().get();
      if (slabs_.size() >= 2) {
        std::swap(slabs_[slabs_.size() - 1], slabs_[slabs_.size() - 2]);
      }
      return p;
    }
    if (offset_ + bytes > current_slab_bytes_) {
      slabs_.push_back(NewSlab(slab_bytes_));
      reserved_bytes_ += slab_bytes_;
      current_slab_bytes_ = slab_bytes_;
      offset_ = 0;
    }
    char* p = slabs_.back().get() + offset_;
    offset_ += bytes;
    used_bytes_ += bytes;
    return p;
  }

  /// \brief Frees every slab. All blocks handed out become invalid.
  void Clear() {
    slabs_.clear();
    offset_ = 0;
    current_slab_bytes_ = 0;
    reserved_bytes_ = 0;
    used_bytes_ = 0;
  }

  std::size_t reserved_bytes() const { return reserved_bytes_; }
  std::size_t used_bytes() const { return used_bytes_; }

 private:
  void MoveFrom(Arena* o) {
    slab_bytes_ = o->slab_bytes_;
    slabs_ = std::move(o->slabs_);
    offset_ = o->offset_;
    current_slab_bytes_ = o->current_slab_bytes_;
    reserved_bytes_ = o->reserved_bytes_;
    used_bytes_ = o->used_bytes_;
    o->offset_ = 0;
    o->current_slab_bytes_ = 0;
    o->reserved_bytes_ = 0;
    o->used_bytes_ = 0;
  }

  using Slab = std::unique_ptr<char[]>;
  static Slab NewSlab(std::size_t bytes) {
    // char[] from new[] is sufficiently aligned for kAlign on every
    // platform we build on (glibc malloc returns 16-byte alignment);
    // static_assert keeps us honest.
    static_assert(kAlign <= alignof(std::max_align_t),
                  "arena alignment exceeds allocator guarantee");
    return Slab(new char[bytes]);
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t offset_ = 0;
  std::size_t current_slab_bytes_ = 0;  ///< capacity of slabs_.back()
  std::size_t reserved_bytes_ = 0;
  std::size_t used_bytes_ = 0;
};

/// \brief Power-of-two size-class freelists over an Arena. Blocks are at
/// least 16 bytes (a freed block stores the next-pointer in place).
class SlabPool {
 public:
  SlabPool() = default;
  explicit SlabPool(std::size_t slab_bytes) : arena_(slab_bytes) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  SlabPool(SlabPool&& o) noexcept : arena_(std::move(o.arena_)) {
    for (unsigned c = 0; c < kNumClasses; ++c) {
      lists_[c] = o.lists_[c];
      o.lists_[c] = nullptr;
    }
  }
  SlabPool& operator=(SlabPool&& o) noexcept {
    if (this != &o) {
      arena_ = std::move(o.arena_);
      for (unsigned c = 0; c < kNumClasses; ++c) {
        lists_[c] = o.lists_[c];
        o.lists_[c] = nullptr;
      }
    }
    return *this;
  }

  /// \brief Allocates a block of at least `bytes` (rounded to the next
  /// power-of-two class, minimum 16).
  void* Alloc(std::size_t bytes) {
    const unsigned cls = ClassOf(bytes);
    void*& head = lists_[cls];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    return arena_.Allocate(std::size_t{1} << (cls + kMinShift));
  }

  /// \brief Returns a block obtained from Alloc(bytes) to its class list.
  void Free(void* p, std::size_t bytes) {
    const unsigned cls = ClassOf(bytes);
    *static_cast<void**>(p) = lists_[cls];
    lists_[cls] = p;
  }

  /// \brief Frees everything (freelists included).
  void Clear() {
    arena_.Clear();
    for (void*& head : lists_) head = nullptr;
  }

  std::size_t reserved_bytes() const { return arena_.reserved_bytes(); }

 private:
  static constexpr unsigned kMinShift = 4;  // smallest class: 16 bytes
  static constexpr unsigned kNumClasses = 44;

  static unsigned ClassOf(std::size_t bytes) {
    unsigned cls = 0;
    std::size_t cap = std::size_t{1} << kMinShift;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  Arena arena_;
  void* lists_[kNumClasses] = {};
};

/// \brief Dynamic array with N elements inline and pool-backed overflow.
///
/// T must be trivially copyable and destructible (the runs are raw byte
/// payloads: StoredEdge, VertexId). Mutating operations that may grow take
/// the owning SlabPool. The destructor does not free overflow — the pool's
/// arena owns it; call Release(pool) when erasing a run whose block should
/// be recycled. Moving transfers the block and empties the source.
template <typename T, unsigned N>
class SmallRun {
  // memcpy relocation needs trivial copy *construction* and destruction.
  // (Full is_trivially_copyable is deliberately not required: std::pair
  // of trivial members fails it only because of its user-provided
  // assignment operator, while its object representation is still safe
  // to relocate byte-wise.)
  static_assert(std::is_trivially_copy_constructible_v<T>,
                "SmallRun elements are moved with memcpy");
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallRun never runs element destructors");
  static_assert(N >= 1, "inline capacity must be positive");

 public:
  SmallRun() : size_(0), cap_(N) {}

  SmallRun(const SmallRun&) = delete;
  SmallRun& operator=(const SmallRun&) = delete;

  SmallRun(SmallRun&& o) noexcept { MoveFrom(&o); }
  SmallRun& operator=(SmallRun&& o) noexcept {
    if (this != &o) MoveFrom(&o);
    return *this;
  }

  T* data() { return cap_ == N ? inline_ : heap_; }
  const T* data() const { return cap_ == N ? inline_ : heap_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(SlabPool* pool, const T& v) {
    if (size_ == cap_) Grow(pool);
    data()[size_++] = v;
  }

  /// \brief Removes the element at index `i`, preserving order.
  void erase_at(std::size_t i) {
    T* d = data();
    std::memmove(d + i, d + i + 1, (size_ - i - 1) * sizeof(T));
    --size_;
  }

  /// \brief Removes the element at index `i` by swapping the last in
  /// (order not preserved).
  void swap_pop(std::size_t i) {
    T* d = data();
    d[i] = d[size_ - 1];
    --size_;
  }

  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  /// \brief Returns overflow storage to the pool and resets to inline.
  void Release(SlabPool* pool) {
    if (cap_ != N) {
      pool->Free(heap_, cap_ * sizeof(T));
      cap_ = N;
    }
    size_ = 0;
  }

  /// \brief Bytes of pool overflow held (0 while inline).
  std::size_t overflow_bytes() const {
    return cap_ == N ? 0 : cap_ * sizeof(T);
  }

 private:
  void Grow(SlabPool* pool) {
    const uint32_t new_cap = cap_ * 2;
    T* block = static_cast<T*>(pool->Alloc(new_cap * sizeof(T)));
    std::memcpy(block, data(), size_ * sizeof(T));
    if (cap_ != N) pool->Free(heap_, cap_ * sizeof(T));
    heap_ = block;
    cap_ = new_cap;
  }

  void MoveFrom(SmallRun* o) {
    size_ = o->size_;
    cap_ = o->cap_;
    if (cap_ == N) {
      // size_ <= N in inline mode; the min makes the bound provable.
      std::memcpy(inline_, o->inline_,
                  std::min<std::size_t>(size_, N) * sizeof(T));
    } else {
      heap_ = o->heap_;
    }
    o->size_ = 0;
    o->cap_ = N;
  }

  uint32_t size_;
  uint32_t cap_;  ///< == N: inline storage active; > N: heap_ active
  union {
    T inline_[N];
    T* heap_;
  };
};

/// \brief Dynamic array with N elements inline and pool-backed overflow,
/// for *non-trivial* payloads that are still memcpy-relocatable.
///
/// SmallRun covers raw byte payloads; the PATTERN join-table buckets hold
/// Bindings (a SmallVec plus an interval), whose user-provided copy and
/// destructor disqualify them from SmallRun's triviality requirements even
/// though their object representation is safe to relocate byte-wise (no
/// interior or self pointers — SmallVec's overflow pointer points into the
/// global heap, never at itself). PoolVec relocates with memcpy like
/// SmallRun but runs element *destructors* exactly once, at removal
/// (truncate / Release / PoolVec destruction), so payloads owning heap
/// memory do not leak. Like SmallRun, the destructor does not return the
/// overflow block — the owning pool's arena reclaims it wholesale; callers
/// erasing a run mid-life call Release(pool) to recycle the block.
template <typename T, unsigned N>
class PoolVec {
  static_assert(std::is_nothrow_move_constructible_v<T> &&
                    std::is_nothrow_move_assignable_v<T>,
                "PoolVec compaction moves elements");
  static_assert(N >= 1, "inline capacity must be positive");

 public:
  PoolVec() : size_(0), cap_(N) {}

  PoolVec(const PoolVec&) = delete;
  PoolVec& operator=(const PoolVec&) = delete;

  PoolVec(PoolVec&& o) noexcept { MoveFrom(&o); }
  PoolVec& operator=(PoolVec&& o) noexcept {
    if (this != &o) {
      DestroyElements();
      // Note the overflow block (if any) is abandoned to the arena, like
      // ~PoolVec: container shuffles (FlatMap backward-shift) only ever
      // move *into* freshly-constructed or emptied slots.
      MoveFrom(&o);
    }
    return *this;
  }

  ~PoolVec() { DestroyElements(); }

  T* data() { return cap_ == N ? reinterpret_cast<T*>(inline_) : heap_; }
  const T* data() const {
    return cap_ == N ? reinterpret_cast<const T*>(inline_) : heap_;
  }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(SlabPool* pool, T v) {
    if (size_ == cap_) Grow(pool);
    new (data() + size_) T(std::move(v));
    ++size_;
  }

  /// \brief Destroys the elements at [n, size) and shrinks to n.
  void truncate(std::size_t n) {
    T* d = data();
    for (std::size_t i = n; i < size_; ++i) d[i].~T();
    size_ = static_cast<uint32_t>(n);
  }

  /// \brief Destroys every element, returns overflow storage to the pool
  /// and resets to inline.
  void Release(SlabPool* pool) {
    DestroyElements();
    if (cap_ != N) {
      pool->Free(heap_, cap_ * sizeof(T));
      cap_ = N;
    }
    size_ = 0;
  }

  /// \brief Bytes of pool overflow held (0 while inline).
  std::size_t overflow_bytes() const {
    return cap_ == N ? 0 : cap_ * sizeof(T);
  }

 private:
  void DestroyElements() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

  void Grow(SlabPool* pool) {
    const uint32_t new_cap = cap_ * 2;
    T* block = static_cast<T*>(pool->Alloc(new_cap * sizeof(T)));
    // Byte-wise relocation: the old objects are *moved*, not destroyed —
    // their lifetime continues in the new block (see class comment).
    std::memcpy(static_cast<void*>(block), static_cast<const void*>(data()),
                size_ * sizeof(T));
    if (cap_ != N) pool->Free(heap_, cap_ * sizeof(T));
    heap_ = block;
    cap_ = new_cap;
  }

  void MoveFrom(PoolVec* o) {
    size_ = o->size_;
    cap_ = o->cap_;
    if (cap_ == N) {
      std::memcpy(static_cast<void*>(inline_),
                  static_cast<const void*>(o->inline_),
                  std::min<std::size_t>(size_, N) * sizeof(T));
    } else {
      heap_ = o->heap_;
    }
    o->size_ = 0;
    o->cap_ = N;
  }

  uint32_t size_;
  uint32_t cap_;  ///< == N: inline storage active; > N: heap_ active
  union {
    alignas(T) unsigned char inline_[N * sizeof(T)];
    T* heap_;
  };
};

}  // namespace sgq

#endif  // SGQ_COMMON_ARENA_H_

#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sgq {

double LatencyRecorder::Percentile(double q) const {
  std::vector<double> sorted = Samples();
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: ceil(q * N)-th smallest sample (1-indexed).
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

double LatencyRecorder::Mean() const {
  const std::vector<double> samples = Samples();
  if (samples.empty()) return 0;
  const double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
  return sum / static_cast<double>(samples.size());
}

double LatencyRecorder::Max() const {
  const std::vector<double> samples = Samples();
  if (samples.empty()) return 0;
  return *std::max_element(samples.begin(), samples.end());
}

}  // namespace sgq

#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sgq {

double LatencyRecorder::Percentile(double q) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: ceil(q * N)-th smallest sample (1-indexed).
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0;
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace sgq

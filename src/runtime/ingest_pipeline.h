// Double-buffered async ingest (DESIGN.md §6): a dedicated ingest thread
// produces micro-batch N+1 — pulling elements from a producer callback
// (stream parsing, generators) and, when slack is configured, absorbing
// bounded out-of-order arrival through a ReorderBuffer — while the
// execution thread runs batch N through the operator topology.
//
// Hand-off protocol: fixed pool of batch buffers cycling through two
// bounded SPSC queues (runtime/spsc_queue.h) —
//
//     ingest thread                       execution thread
//        fill / reorder / batch   full →    ExecuteOrderedBatch
//        (parse cost lives here)  ← free    (dataflow waves, worker pool)
//
// The `full` queue (ingest_queue_depth batches) carries ready batches; the
// `free` queue returns drained buffers, so steady state allocates nothing.
// Backpressure is buffer-pool exhaustion: with every buffer queued or in
// use the ingest thread blocks on `free` until execution catches up, and
// each side's blocked time is recorded (ingest_stall_ns: ingest waited on
// execution; exec_stall_ns: execution starved for input — the pipeline is
// ingest-bound). Execution order and batch boundaries are exactly those of
// the synchronous Ingest/Flush path, so async_ingest changes *where* the
// producer work happens, never what the operators observe: workers=1 /
// batch=1 output stays byte-identical, everything else keeps the runtime's
// established snapshot-equivalence contract.
//
// Sharded parse stage (RunSharded): when a single parser thread is the
// throughput ceiling, the parse fans out over N parser threads consuming
// byte-range chunks of the input (model/stream_io.h ChunkedStream, chunk c
// owned by parser c mod N) into per-parser "gutter" segment queues, and an
// order-restoring merge — chunks visited in index order, segments FIFO per
// parser — re-serializes the element stream before the unchanged slack /
// batch staging and SPSC hand-off:
//
//     parser 0 ──gutter 0──┐
//     parser 1 ──gutter 1──┤  merge (chunk order) → slack/batch → full →
//        …        …        │    ← free gutter segments    exec thread
//     parser N-1 ─gutter N-1┘
//
// Because the merge restores exact stream order, every downstream
// equivalence contract is untouched; with one parser RunSharded collapses
// to the classic single-producer pipeline (byte-identical output). Per-
// parser blocked/busy time lands in IngestStats (parser_stall_ns /
// parser_busy_ns — busy time is the pure tokenize/decode cost, the number
// parse_tuples_per_sec is derived from).
//
// Pinning policy (ExecutorOptions::pin_workers): pool workers own cores
// [pin 0, num_workers); the ingest/merge thread takes the next slot
// (num_workers) and parser threads the slots after it, so parsing never
// migrates onto an execution core. The execution thread is pinned to slot
// 0 for the duration of Run and its previous affinity is restored on
// exit. All pins are best-effort.

#ifndef SGQ_RUNTIME_INGEST_PIPELINE_H_
#define SGQ_RUNTIME_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "model/sgt.h"
#include "runtime/spsc_queue.h"

namespace sgq {

class ChunkedStream;
class Executor;

/// \brief Producer side of the pipeline: fills up to `cap` stream elements
/// into `buf` and returns how many were written; 0 ends the stream.
/// Called repeatedly from the dedicated ingest thread — producers touching
/// shared state (Vocabulary interning does its own locking) must be safe
/// to call off the execution thread. Elements must be timestamp-ordered
/// unless the pipeline runs with reorder slack.
using IngestProducer = std::function<std::size_t(Sge* buf, std::size_t cap)>;

/// \brief Counters of one or more pipelined runs (cumulative).
struct IngestStats {
  /// Nanoseconds the ingest/merge thread spent blocked on backpressure
  /// (every batch buffer queued or executing). High value = execution-
  /// bound.
  uint64_t ingest_stall_ns = 0;
  /// Nanoseconds the execution thread spent starved for a ready batch.
  /// High value = ingest-bound (the pipeline's parse stage is the
  /// bottleneck async ingest exists to hide).
  uint64_t exec_stall_ns = 0;
  std::size_t batches = 0;       ///< batches handed across the queue
  std::size_t late_dropped = 0;  ///< late elements dropped by the slack stage
  bool ingest_pinned = false;    ///< the ingest/merge thread's pin took

  // --- sharded parse stage (RunSharded; zero/empty when only the single-
  // producer Run() was used) ---
  /// Parser threads of the most recent sharded run (1 = the collapsed
  /// single-producer path).
  std::size_t parsers = 0;
  /// Nanoseconds the merge thread spent blocked on empty gutters (all
  /// parsers behind) — the sharded analogue of exec_stall_ns one stage up.
  uint64_t merge_stall_ns = 0;
  /// Per parser thread: nanoseconds blocked on gutter backpressure (the
  /// merge, and transitively execution, not keeping up).
  std::vector<uint64_t> parser_stall_ns;
  /// Per parser thread: nanoseconds inside StreamCursor::Next — the pure
  /// parse/decode cost (parse_tuples_per_sec = elements / max busy).
  std::vector<uint64_t> parser_busy_ns;
  /// Nanoseconds spent inside the chunk feeder across all parser threads
  /// (file-backed sources only: pread/page-scan time plus readahead-
  /// window backpressure; 0 for fully materialized streams). High value =
  /// the run is I/O-bound or the window is too small.
  uint64_t readahead_stall_ns = 0;
};

/// \brief One pipelined ingest run over an Executor. Construct, Run once,
/// read stats. Executor::RunPipelined wraps this.
class IngestPipeline {
 public:
  explicit IngestPipeline(Executor* executor) : executor_(executor) {}

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// \brief Runs `fill` to exhaustion: spawns the ingest thread, executes
  /// every produced batch on the calling thread, joins. Blocking; the
  /// executor is in a normal between-pushes state afterwards (more input
  /// or AdvanceTo may follow).
  void Run(const IngestProducer& fill);

  /// \brief Sharded parse run: `parsers` threads decode `stream`'s chunks
  /// into gutter buffers, the order-restoring merge feeds the batch
  /// hand-off, execution stays on the calling thread. Parse errors (and
  /// cross-chunk ordering violations) surface as the returned Status —
  /// elements preceding the error still execute, exactly like the
  /// sequential cursor path. `parsers <= 1` collapses to Run() over a
  /// sequential chunk walk.
  Status RunSharded(const ChunkedStream& stream, std::size_t parsers);

  const IngestStats& stats() const { return stats_; }

 private:
  using Batch = std::vector<Sge>;

  /// \brief Ingest-thread body: fill -> (reorder) -> batch -> full queue.
  void IngestThread(const IngestProducer& fill, SpscQueue<Batch>* full,
                    SpscQueue<Batch>* free_buffers);

  /// \brief Pops ready batches off `full` and executes them on the
  /// calling thread until the queue closes (shared by Run/RunSharded).
  void ExecuteLoop(SpscQueue<Batch>* full, SpscQueue<Batch>* free_buffers);

  /// \brief Folds one run's per-parser counters into the cumulative stats.
  void AccumulateParserStats(std::size_t parsers, const uint64_t* stall_ns,
                             const uint64_t* busy_ns);

  Executor* executor_;
  IngestStats stats_;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_INGEST_PIPELINE_H_

// Double-buffered async ingest (DESIGN.md §6): a dedicated ingest thread
// produces micro-batch N+1 — pulling elements from a producer callback
// (stream parsing, generators) and, when slack is configured, absorbing
// bounded out-of-order arrival through a ReorderBuffer — while the
// execution thread runs batch N through the operator topology.
//
// Hand-off protocol: fixed pool of batch buffers cycling through two
// bounded SPSC queues (runtime/spsc_queue.h) —
//
//     ingest thread                       execution thread
//        fill / reorder / batch   full →    ExecuteOrderedBatch
//        (parse cost lives here)  ← free    (dataflow waves, worker pool)
//
// The `full` queue (ingest_queue_depth batches) carries ready batches; the
// `free` queue returns drained buffers, so steady state allocates nothing.
// Backpressure is buffer-pool exhaustion: with every buffer queued or in
// use the ingest thread blocks on `free` until execution catches up, and
// each side's blocked time is recorded (ingest_stall_ns: ingest waited on
// execution; exec_stall_ns: execution starved for input — the pipeline is
// ingest-bound). Execution order and batch boundaries are exactly those of
// the synchronous Ingest/Flush path, so async_ingest changes *where* the
// producer work happens, never what the operators observe: workers=1 /
// batch=1 output stays byte-identical, everything else keeps the runtime's
// established snapshot-equivalence contract.
//
// Pinning policy (ExecutorOptions::pin_workers): pool workers own cores
// [pin 0, num_workers); the ingest thread takes the next slot
// (num_workers), so parsing never migrates onto an execution core. The
// execution thread is pinned to slot 0 for the duration of Run and its
// previous affinity is restored on exit. All pins are best-effort.

#ifndef SGQ_RUNTIME_INGEST_PIPELINE_H_
#define SGQ_RUNTIME_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "model/sgt.h"
#include "runtime/spsc_queue.h"

namespace sgq {

class Executor;

/// \brief Producer side of the pipeline: fills up to `cap` stream elements
/// into `buf` and returns how many were written; 0 ends the stream.
/// Called repeatedly from the dedicated ingest thread — producers touching
/// shared state (Vocabulary interning does its own locking) must be safe
/// to call off the execution thread. Elements must be timestamp-ordered
/// unless the pipeline runs with reorder slack.
using IngestProducer = std::function<std::size_t(Sge* buf, std::size_t cap)>;

/// \brief Counters of one or more pipelined runs (cumulative).
struct IngestStats {
  /// Nanoseconds the ingest thread spent blocked on backpressure (every
  /// batch buffer queued or executing). High value = execution-bound.
  uint64_t ingest_stall_ns = 0;
  /// Nanoseconds the execution thread spent starved for a ready batch.
  /// High value = ingest-bound (the pipeline's parse stage is the
  /// bottleneck async ingest exists to hide).
  uint64_t exec_stall_ns = 0;
  std::size_t batches = 0;       ///< batches handed across the queue
  std::size_t late_dropped = 0;  ///< late elements dropped by the slack stage
  bool ingest_pinned = false;    ///< the ingest thread's pin took
};

/// \brief One pipelined ingest run over an Executor. Construct, Run once,
/// read stats. Executor::RunPipelined wraps this.
class IngestPipeline {
 public:
  explicit IngestPipeline(Executor* executor) : executor_(executor) {}

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// \brief Runs `fill` to exhaustion: spawns the ingest thread, executes
  /// every produced batch on the calling thread, joins. Blocking; the
  /// executor is in a normal between-pushes state afterwards (more input
  /// or AdvanceTo may follow).
  void Run(const IngestProducer& fill);

  const IngestStats& stats() const { return stats_; }

 private:
  using Batch = std::vector<Sge>;

  /// \brief Ingest-thread body: fill -> (reorder) -> batch -> full queue.
  void IngestThread(const IngestProducer& fill, SpscQueue<Batch>* full,
                    SpscQueue<Batch>* free_buffers);

  Executor* executor_;
  IngestStats stats_;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_INGEST_PIPELINE_H_

#include "runtime/executor.h"

#include <algorithm>

#include "common/logging.h"

namespace sgq {

// ---------------------------------------------------------------------------
// OutputChannel
// ---------------------------------------------------------------------------

void OutputChannel::Push(const Sgt& tuple) {
  if (direct_op_ != nullptr) {
    direct_op_->OnTuple(direct_port_, tuple);
    return;
  }
  if (exec_ != nullptr) exec_->Route(*this, tuple);
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

Executor::Executor(ExecutorOptions options) : options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Executor::~Executor() = default;

OpId Executor::AddOp(std::unique_ptr<PhysicalOp> op) {
  SGQ_CHECK(!finalized_) << "topology is frozen after Finalize()";
  const OpId id = static_cast<OpId>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().op = std::move(op);
  return id;
}

PhysicalOp* Executor::op(OpId id) const {
  SGQ_CHECK_GE(id, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].op.get();
}

Status Executor::Connect(OpId from, OpId to, int port) {
  if (finalized_) return Status::Internal("Connect after Finalize");
  if (from < 0 || static_cast<std::size_t>(from) >= nodes_.size() ||
      to < 0 || static_cast<std::size_t>(to) >= nodes_.size()) {
    return Status::InvalidArgument("Connect: unknown operator id");
  }
  if (from >= to) {
    // Insertion order doubles as the wave order; a forward edge would make
    // it non-topological.
    return Status::InvalidArgument(
        "Connect: channels must go from earlier to later operators "
        "(children-first insertion)");
  }
  auto& node = nodes_[static_cast<std::size_t>(from)];
  node.out.dests_.push_back(PortRef{to, port});
  auto& pending = nodes_[static_cast<std::size_t>(to)].pending;
  if (pending.size() <= static_cast<std::size_t>(port)) {
    pending.resize(static_cast<std::size_t>(port) + 1);
  }
  return Status::OK();
}

Status Executor::RegisterSource(LabelId label, OpId source, Timestamp slide) {
  if (finalized_) return Status::Internal("RegisterSource after Finalize");
  if (source < 0 || static_cast<std::size_t>(source) >= nodes_.size()) {
    return Status::InvalidArgument("RegisterSource: unknown operator id");
  }
  if (dynamic_cast<SourceOp*>(op(source)) == nullptr) {
    return Status::InvalidArgument("RegisterSource: not a SourceOp");
  }
  sources_[label].push_back(source);
  min_slide_ = std::min(min_slide_, slide);
  return Status::OK();
}

Status Executor::Finalize() {
  if (finalized_) return Status::Internal("Finalize called twice");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    OpNode& node = nodes_[i];
    node.out.exec_ = this;
    node.out.from_ = static_cast<OpId>(i);
    node.op->BindOutput(&node.out);
    for (const PortRef& dst : node.out.dests_) {
      if (dst.op <= static_cast<OpId>(i)) {
        return Status::Internal("non-topological channel");
      }
    }
  }
  // The engine's slide granularity is the finest slide of any source.
  slide_ = min_slide_ == kMaxTimestamp ? 1 : min_slide_;
  finalized_ = true;
  return Status::OK();
}

std::string Executor::DescribeTopology() const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out += "#" + std::to_string(i) + " " + nodes_[i].op->Name();
    const auto& dests = nodes_[i].out.destinations();
    if (!dests.empty()) {
      out += " ->";
      for (const PortRef& d : dests) {
        out += " #" + std::to_string(d.op) + ":" + std::to_string(d.port);
      }
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

void Executor::Route(const OutputChannel& channel, const Sgt& tuple) {
  if (wave_mode()) {
    for (const PortRef& dst : channel.dests_) {
      nodes_[static_cast<std::size_t>(dst.op)]
          .pending[static_cast<std::size_t>(dst.port)]
          .push_back(tuple);
    }
    return;
  }
  // Tuple mode: collect into the current delivery segment; DrainStack
  // pushes the segment in reverse so the first emission is processed (and
  // its cascade completed) first — exactly the old recursion order.
  SGQ_CHECK(segment_ != nullptr) << "emission outside a delivery";
  for (const PortRef& dst : channel.dests_) {
    segment_->emplace_back(dst, tuple);
  }
}

void Executor::DrainStack() {
  std::vector<std::pair<PortRef, Sgt>> segment;
  while (!stack_.empty()) {
    auto [dst, tuple] = std::move(stack_.back());
    stack_.pop_back();
    segment.clear();
    segment_ = &segment;
    nodes_[static_cast<std::size_t>(dst.op)].op->OnTuple(dst.port, tuple);
    segment_ = nullptr;
    for (auto it = segment.rbegin(); it != segment.rend(); ++it) {
      stack_.push_back(std::move(*it));
    }
  }
}

void Executor::RunWave() {
  ++num_waves_;
  bool any = true;
  while (any) {  // a tree topology settles in one pass; loop is a safety net
    any = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      OpNode& node = nodes_[i];
      for (std::size_t port = 0; port < node.pending.size(); ++port) {
        if (node.pending[port].empty()) continue;
        any = true;
        std::vector<Sgt> batch;
        batch.swap(node.pending[port]);
        node.op->OnBatch(static_cast<int>(port), batch.data(), batch.size());
      }
    }
  }
}

template <typename Fn>
void Executor::RunOpPhase(Fn&& fn) {
  if (wave_mode()) {
    fn();  // emissions buffer in the pending queues until the next wave
    return;
  }
  // Tuple mode: collect the call's emissions, then run each cascade to
  // completion in emission order — the recursive engine's depth-first
  // order exactly.
  std::vector<std::pair<PortRef, Sgt>> segment;
  segment_ = &segment;
  fn();
  segment_ = nullptr;
  for (auto rit = segment.rbegin(); rit != segment.rend(); ++rit) {
    stack_.push_back(std::move(*rit));
  }
  DrainStack();
}

void Executor::DeliverSge(const Sge& sge) {
  auto it = sources_.find(sge.label);
  if (it == sources_.end()) return;  // label not referenced by the query
  ++edges_processed_;
  for (OpId source : it->second) {
    auto* src =
        static_cast<SourceOp*>(nodes_[static_cast<std::size_t>(source)]
                                   .op.get());
    RunOpPhase([&] { src->OnSge(sge); });
  }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

void Executor::TimeAdvanceWave(Timestamp now) {
  // Negative-tuple operators can emit retractions/re-derivations during
  // OnTimeAdvance; RunOpPhase delivers them downstream.
  for (auto& node : nodes_) {
    RunOpPhase([&] { node.op->OnTimeAdvance(now); });
  }
  if (wave_mode()) RunWave();
}

void Executor::ProcessBoundary(Timestamp boundary) {
  Stopwatch timer;
  TimeAdvanceWave(boundary);
  for (auto& node : nodes_) {
    RunOpPhase([&] { node.op->MaybePurge(boundary); });
  }
  if (wave_mode()) RunWave();
  slide_accum_seconds_ += timer.ElapsedSeconds();
  // The paper's per-slide latency: all processing attributable to the
  // slide that just closed (arrivals within it plus expiry work).
  slide_latencies_.Record(slide_accum_seconds_);
  slide_accum_seconds_ = 0;
}

void Executor::AdvanceClock(Timestamp t) {
  if (!started_) {
    current_time_ = t;
    next_boundary_ = (t / slide_) * slide_ + slide_;
    started_ = true;
    return;
  }
  SGQ_CHECK_GE(t, current_time_) << "stream timestamps must be ordered";
  while (next_boundary_ <= t) {
    ProcessBoundary(next_boundary_);
    next_boundary_ += slide_;
  }
  if (t > current_time_) {
    // Exact expiry processing for negative-tuple operators (they check a
    // heap and return immediately when nothing is due).
    Stopwatch timer;
    TimeAdvanceWave(t);
    slide_accum_seconds_ += timer.ElapsedSeconds();
    current_time_ = t;
  }
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

void Executor::Ingest(const Sge& sge) {
  SGQ_CHECK(finalized_) << "Ingest before Finalize";
  const Timestamp floor = queue_.empty() ? current_time_ : queue_.back().t;
  if (started_ || !queue_.empty()) {
    SGQ_CHECK_GE(sge.t, floor) << "stream timestamps must be ordered";
  }
  ++edges_pushed_;
  queue_.push_back(sge);
  if (queue_.size() >= options_.batch_size) Flush();
}

void Executor::Flush() {
  if (queue_.empty()) return;
  std::vector<Sge> batch;
  batch.swap(queue_);
  std::size_t i = 0;
  while (i < batch.size()) {
    // One micro-batch = one distinct timestamp: window boundaries and
    // expirations between groups are processed exactly as in
    // tuple-at-a-time mode.
    std::size_t j = i;
    while (j < batch.size() && batch[j].t == batch[i].t) ++j;
    AdvanceClock(batch[i].t);
    Stopwatch timer;
    for (std::size_t k = i; k < j; ++k) DeliverSge(batch[k]);
    if (wave_mode()) RunWave();
    slide_accum_seconds_ += timer.ElapsedSeconds();
    i = j;
  }
}

void Executor::AdvanceTo(Timestamp t) {
  SGQ_CHECK(finalized_) << "AdvanceTo before Finalize";
  Flush();
  AdvanceClock(t);
}

std::size_t Executor::StateSize() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.op->StateSize();
  return n;
}

}  // namespace sgq

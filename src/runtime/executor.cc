#include "runtime/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/logging.h"

namespace sgq {

// ---------------------------------------------------------------------------
// OutputChannel
// ---------------------------------------------------------------------------

void OutputChannel::Push(const Sgt& tuple) {
  if (capture_ != nullptr) {
    // Sharded mode: buffer locally, merge after the parallel section.
    capture_->push_back(tuple);
    return;
  }
  if (direct_op_ != nullptr) {
    direct_op_->OnTuple(direct_port_, tuple);
    return;
  }
  if (exec_ != nullptr) exec_->Route(*this, tuple);
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

Executor::Executor(ExecutorOptions options) : options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.num_workers == 0) options_.num_workers = 1;
}

Executor::~Executor() = default;

OpId Executor::AddOp(std::unique_ptr<PhysicalOp> op) {
  // Post-Finalize appends are the live-attach path: the new node is bound
  // by FinalizeNewOps() before the next ingest (DESIGN.md §10).
  const OpId id = static_cast<OpId>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().op = std::move(op);
  ++num_live_;
  return id;
}

PhysicalOp* Executor::op(OpId id) const {
  SGQ_CHECK_GE(id, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)].op.get();
}

std::size_t Executor::NumInstances(OpId id) const {
  SGQ_CHECK_GE(id, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return 1 + nodes_[static_cast<std::size_t>(id)].replicas.size();
}

PhysicalOp* Executor::instance(OpId id, std::size_t shard) const {
  const OpNode& node = nodes_[static_cast<std::size_t>(id)];
  return shard == 0 ? node.op.get() : node.replicas[shard - 1].get();
}

Status Executor::AddShardReplica(OpId id, std::unique_ptr<PhysicalOp> shard) {
  if (finalized_ && static_cast<std::size_t>(id) < finalized_nodes_) {
    return Status::Internal(
        "AddShardReplica on an already-finalized operator");
  }
  if (!sharded()) {
    return Status::InvalidArgument(
        "AddShardReplica requires num_workers > 1");
  }
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    return Status::InvalidArgument("AddShardReplica: unknown operator id");
  }
  OpNode& node = nodes_[static_cast<std::size_t>(id)];
  if (1 + node.replicas.size() >= options_.num_workers) {
    return Status::InvalidArgument(
        "AddShardReplica: operator already has num_workers shards");
  }
  node.replicas.push_back(std::move(shard));
  return Status::OK();
}

Status Executor::Connect(OpId from, OpId to, int port) {
  if (finalized_ && static_cast<std::size_t>(to) < finalized_nodes_) {
    // Live attaches may fan an existing (shared) operator out to a NEW
    // consumer; rewiring two already-running operators is not a thing.
    return Status::Internal(
        "Connect into an already-finalized operator");
  }
  if (from < 0 || static_cast<std::size_t>(from) >= nodes_.size() ||
      to < 0 || static_cast<std::size_t>(to) >= nodes_.size()) {
    return Status::InvalidArgument("Connect: unknown operator id");
  }
  if (nodes_[static_cast<std::size_t>(from)].op == nullptr ||
      nodes_[static_cast<std::size_t>(to)].op == nullptr) {
    return Status::InvalidArgument("Connect: removed operator id");
  }
  if (from >= to) {
    // Insertion order doubles as the wave order; a forward edge would make
    // it non-topological.
    return Status::InvalidArgument(
        "Connect: channels must go from earlier to later operators "
        "(children-first insertion)");
  }
  auto& node = nodes_[static_cast<std::size_t>(from)];
  node.out.dests_.push_back(PortRef{to, port});
  auto& pending = nodes_[static_cast<std::size_t>(to)].pending;
  if (pending.size() <= static_cast<std::size_t>(port)) {
    pending.resize(static_cast<std::size_t>(port) + 1);
  }
  return Status::OK();
}

Status Executor::RegisterSource(LabelId label, OpId source, Timestamp slide) {
  if (finalized_ && static_cast<std::size_t>(source) < finalized_nodes_) {
    return Status::Internal(
        "RegisterSource on an already-finalized operator");
  }
  if (source < 0 || static_cast<std::size_t>(source) >= nodes_.size()) {
    return Status::InvalidArgument("RegisterSource: unknown operator id");
  }
  if (dynamic_cast<SourceOp*>(op(source)) == nullptr) {
    return Status::InvalidArgument("RegisterSource: not a SourceOp");
  }
  if (finalized_ && slide < slide_) {
    // The slide granularity is fixed at the first Finalize; a finer live
    // attach would need boundary instants the running clock already
    // passed. Callers pre-check (Engine::AddPlan), so refusal here is a
    // backstop that leaves the executor usable.
    return Status::InvalidArgument(
        "live-attached source slide " + std::to_string(slide) +
        " is finer than the running granularity " + std::to_string(slide_));
  }
  // Both dispatch structures are maintained so use_query_index can flip
  // without recompiling (the differential tests compare the two paths).
  sources_[label].push_back(source);
  query_index_.Add(label, source);
  nodes_[static_cast<std::size_t>(source)].source_label = label;
  if (!finalized_) min_slide_ = std::min(min_slide_, slide);
  return Status::OK();
}

Status Executor::RegisterWildcardSource(OpId source, Timestamp slide) {
  if (finalized_ && static_cast<std::size_t>(source) < finalized_nodes_) {
    return Status::Internal(
        "RegisterWildcardSource on an already-finalized operator");
  }
  if (source < 0 || static_cast<std::size_t>(source) >= nodes_.size()) {
    return Status::InvalidArgument(
        "RegisterWildcardSource: unknown operator id");
  }
  if (dynamic_cast<SourceOp*>(op(source)) == nullptr) {
    return Status::InvalidArgument("RegisterWildcardSource: not a SourceOp");
  }
  if (finalized_ && slide < slide_) {
    return Status::InvalidArgument(
        "live-attached source slide " + std::to_string(slide) +
        " is finer than the running granularity " + std::to_string(slide_));
  }
  wildcard_sources_.push_back(source);
  query_index_.AddWildcard(source);
  nodes_[static_cast<std::size_t>(source)].source_wildcard = true;
  if (!finalized_) min_slide_ = std::min(min_slide_, slide);
  return Status::OK();
}

Status Executor::SetupNodeTopology(std::size_t i) {
  OpNode& node = nodes_[i];
  node.out.exec_ = this;
  node.out.from_ = static_cast<OpId>(i);
  if (!sharded()) node.op->BindOutput(&node.out);
  for (const PortRef& dst : node.out.dests_) {
    if (dst.op <= static_cast<OpId>(i)) {
      return Status::Internal("non-topological channel");
    }
  }
  if (!sharded()) return Status::OK();
  const std::size_t instances = 1 + node.replicas.size();
  if (instances != 1 && instances != options_.num_workers) {
    return Status::Internal(
        "sharded operator must have 1 or num_workers instances");
  }
  // Cache the per-port routing declared by the operator. Sources have
  // no connected input port; their sges route through port 0.
  const std::size_t ports = std::max<std::size_t>(node.pending.size(), 1);
  node.routing.reserve(ports);
  for (std::size_t p = 0; p < ports; ++p) {
    node.routing.push_back(node.op->InputRouting(static_cast<int>(p)));
  }
  // Every instance emits into its own capture buffer; addresses are
  // stable because neither vector is resized after this point.
  node.shard_emit.assign(instances, {});
  node.shard_out.clear();
  node.shard_out.reserve(instances);
  for (std::size_t s = 0; s < instances; ++s) {
    node.shard_out.emplace_back(&node.shard_emit[s]);
  }
  for (std::size_t s = 0; s < instances; ++s) {
    instance(static_cast<OpId>(i), s)->BindOutput(&node.shard_out[s]);
  }
  node.shard_pending.assign(node.pending.size(),
                            std::vector<std::vector<Sgt>>(instances));
  node.shard_scratch.assign(node.pending.size(),
                            std::vector<std::vector<Sgt>>(instances));
  node.merge_coalesce = instances > 1 && node.op->CoalesceAtMerge();
  if (instances > 1 && node.op->NeedsDeletionCoordination()) {
    node.coordination.reserve(instances);
    for (std::size_t s = 0; s < instances; ++s) {
      auto* coordination = dynamic_cast<DeletionCoordination*>(
          instance(static_cast<OpId>(i), s));
      if (coordination == nullptr) {
        return Status::Internal(
            "operator requests deletion coordination but does not "
            "implement DeletionCoordination");
      }
      node.coordination.push_back(coordination);
    }
  }
  return Status::OK();
}

Status Executor::Finalize() {
  if (finalized_) return Status::Internal("Finalize called twice");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    SGQ_RETURN_NOT_OK(SetupNodeTopology(i));
  }
  if (sharded()) {
    WorkerPoolOptions pool_options;
    pool_options.pin = options_.pin_workers;
    pool_ = std::make_unique<WorkerPool>(options_.num_workers, pool_options);
  }
  // Time-advance phases fire per distinct input timestamp; the indexed
  // dispatch only visits operators that declared time-driven work (plus
  // the sharded state-bar promotions, kept in time_advance_hinted_).
  time_driven_ops_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].op->HasTimeDrivenWork()) {
      time_driven_ops_.push_back(static_cast<OpId>(i));
    }
  }
  // The engine's slide granularity is the finest slide of any source.
  slide_ = min_slide_ == kMaxTimestamp ? 1 : min_slide_;
  // Expiry calendars bucket by the slide: align every stateful operator's
  // calendar and every shared window partition (slide 1 until now, which
  // is correct but finer-bucketed than necessary).
  window_store_.ConfigureExpirySlide(slide_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t s = 0; s < NumInstances(static_cast<OpId>(i)); ++s) {
      instance(static_cast<OpId>(i), s)->ConfigureExpirySlide(slide_);
    }
  }
  finalized_ = true;
  finalized_nodes_ = nodes_.size();
  return Status::OK();
}

Status Executor::FinalizeNewOps() {
  if (!finalized_) return Status::Internal("FinalizeNewOps before Finalize");
  if (!queue_.empty() || !stack_.empty() || !dirty_heap_.empty()) {
    return Status::Internal("FinalizeNewOps outside a batch boundary");
  }
  // Appending the new nodes may have reallocated the node table, and
  // operators hold their bound channel by address: the unsharded `out`
  // channel lives inline in the OpNode and moved with it. Re-point every
  // already-finalized operator at its channel's new address before any
  // further ingest. (Sharded `shard_out`/`shard_emit` live in member-
  // vector heap buffers that survive the move; rebound anyway for
  // uniformity.)
  for (std::size_t i = 0; i < finalized_nodes_; ++i) {
    OpNode& node = nodes_[i];
    if (node.op == nullptr) continue;
    if (!sharded()) {
      node.op->BindOutput(&node.out);
    } else {
      for (std::size_t s = 0; s < node.shard_out.size(); ++s) {
        instance(static_cast<OpId>(i), s)->BindOutput(&node.shard_out[s]);
      }
    }
  }
  for (std::size_t i = finalized_nodes_; i < nodes_.size(); ++i) {
    SGQ_RETURN_NOT_OK(SetupNodeTopology(i));
    // The slide granularity is already fixed; the appended operators just
    // adopt it (RegisterSource refused finer slides). New ids are larger
    // than every existing one, so push_back keeps the ascending order the
    // indexed time-advance wave merges by.
    for (std::size_t s = 0; s < NumInstances(static_cast<OpId>(i)); ++s) {
      instance(static_cast<OpId>(i), s)->ConfigureExpirySlide(slide_);
    }
    if (nodes_[i].op->HasTimeDrivenWork()) {
      time_driven_ops_.push_back(static_cast<OpId>(i));
    }
  }
  finalized_nodes_ = nodes_.size();
  return Status::OK();
}

Status Executor::RemoveOps(const std::vector<OpId>& dead,
                           const std::vector<std::pair<OpId, OpId>>& unlink) {
  if (!finalized_) return Status::Internal("RemoveOps before Finalize");
  if (!queue_.empty() || !stack_.empty() || !dirty_heap_.empty()) {
    return Status::Internal("RemoveOps outside a batch boundary");
  }
  for (const OpId id : dead) {
    if (id < 0 || static_cast<std::size_t>(id) >= finalized_nodes_ ||
        nodes_[static_cast<std::size_t>(id)].op == nullptr) {
      return Status::Internal(
          "RemoveOps: unknown or already-removed operator " +
          std::to_string(id));
    }
  }
  auto erase_id = [](std::vector<OpId>* v, OpId id) {
    v->erase(std::remove(v->begin(), v->end(), id), v->end());
  };
  for (const OpId id : dead) {
    OpNode& node = nodes_[static_cast<std::size_t>(id)];
    // Source/index deregistration: surviving postings keep registration
    // order, so survivor dispatch is byte-identical to a never-added run.
    if (node.source_wildcard) {
      erase_id(&wildcard_sources_, id);
      query_index_.RemoveWildcard(id);
    } else if (node.source_label != kInvalidLabel) {
      auto it = sources_.find(node.source_label);
      if (it != sources_.end()) {
        erase_id(&it->second, id);
        // An empty per-label entry must disappear entirely: its presence
        // alone would count edges_processed for a label no query consumes.
        if (it->second.empty()) sources_.erase(it);
      }
      query_index_.Remove(node.source_label, id);
    }
    erase_id(&time_driven_ops_, id);
    erase_id(&time_advance_hinted_, id);
    // Tombstone the slot: ids are never reused (channels and checkpoints
    // reference them positionally); every full-scan loop skips null ops.
    node.op.reset();
    node.replicas.clear();
    node.out = OutputChannel();
    node.pending.clear();
    node.shard_out.clear();
    node.shard_emit.clear();
    node.shard_pending.clear();
    node.shard_scratch.clear();
    node.routing.clear();
    node.coordination.clear();
    node.merge_coalesce = false;
    node.merge_coalescer = StreamingCoalescer();
    node.merge_retracted.clear();
    node.merge_purge_watermark = 1024;
    node.time_advance_parallel = false;
    node.dirty = false;
    node.touched = false;
    node.source_label = kInvalidLabel;
    node.source_wildcard = false;
    --num_live_;
  }
  // Unlink the channel edges feeding the removed subtree from surviving
  // operators. The caller enumerates exactly (live child, dead parent)
  // pairs, so the whole removal stays O(removed subtree): no full-topology
  // channel sweep.
  for (const auto& [from, to] : unlink) {
    if (from < 0 || static_cast<std::size_t>(from) >= nodes_.size() ||
        nodes_[static_cast<std::size_t>(from)].op == nullptr) {
      return Status::Internal("RemoveOps: unlink from a removed operator");
    }
    auto& dests = nodes_[static_cast<std::size_t>(from)].out.dests_;
    const OpId gone = to;
    dests.erase(std::remove_if(dests.begin(), dests.end(),
                               [gone](const PortRef& p) {
                                 return p.op == gone;
                               }),
                dests.end());
  }
  return Status::OK();
}

std::string Executor::DescribeTopology() const {
  std::string out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].op == nullptr) {
      out += "#" + std::to_string(i) + " (removed)\n";
      continue;
    }
    out += "#" + std::to_string(i) + " " + nodes_[i].op->Name();
    if (!nodes_[i].replicas.empty()) {
      out += " x" + std::to_string(1 + nodes_[i].replicas.size());
    }
    const auto& dests = nodes_[i].out.destinations();
    if (!dests.empty()) {
      out += " ->";
      for (const PortRef& d : dests) {
        out += " #" + std::to_string(d.op) + ":" + std::to_string(d.port);
      }
    }
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

void Executor::MarkDirty(OpId id) {
  OpNode& node = nodes_[static_cast<std::size_t>(id)];
  if (node.dirty) return;
  node.dirty = true;
  dirty_heap_.push_back(id);
  std::push_heap(dirty_heap_.begin(), dirty_heap_.end(),
                 std::greater<OpId>());
}

void Executor::MarkTouchedCone(OpId id) {
  if (nodes_[static_cast<std::size_t>(id)].touched) return;
  // `touched` is monotone, so each node is expanded at most once over the
  // executor's lifetime — amortized O(channels) total, not per edge.
  std::vector<OpId> work = {id};
  while (!work.empty()) {
    const OpId cur = work.back();
    work.pop_back();
    OpNode& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.touched) continue;
    node.touched = true;
    for (const PortRef& dst : node.out.dests_) work.push_back(dst.op);
  }
}

void Executor::Route(const OutputChannel& channel, const Sgt& tuple) {
  if (wave_mode()) {
    const bool mark = indexed();
    for (const PortRef& dst : channel.dests_) {
      nodes_[static_cast<std::size_t>(dst.op)]
          .pending[static_cast<std::size_t>(dst.port)]
          .push_back(tuple);
      if (mark) MarkDirty(dst.op);
    }
    return;
  }
  // Tuple mode: collect into the current delivery segment; DrainStack
  // pushes the segment in reverse so the first emission is processed (and
  // its cascade completed) first — exactly the old recursion order.
  SGQ_CHECK(segment_ != nullptr) << "emission outside a delivery";
  for (const PortRef& dst : channel.dests_) {
    segment_->emplace_back(dst, tuple);
  }
}

void Executor::DrainStack() {
  std::vector<std::pair<PortRef, Sgt>> segment;
  while (!stack_.empty()) {
    auto [dst, tuple] = std::move(stack_.back());
    stack_.pop_back();
    segment.clear();
    segment_ = &segment;
    nodes_[static_cast<std::size_t>(dst.op)].op->OnTuple(dst.port, tuple);
    segment_ = nullptr;
    for (auto it = segment.rbegin(); it != segment.rend(); ++it) {
      stack_.push_back(std::move(*it));
    }
  }
}

void Executor::RunWave() {
  ++num_waves_;
  if (indexed()) {
    // Worklist wave: pop dirty operators in ascending id order. A channel
    // only goes low -> high id, so each pop sees all of the wave's input
    // for that operator — identical visit order to the legacy full scan,
    // minus the O(K) sweep over idle operators.
    std::size_t visited = 0;
    while (!dirty_heap_.empty()) {
      std::pop_heap(dirty_heap_.begin(), dirty_heap_.end(),
                    std::greater<OpId>());
      const OpId id = dirty_heap_.back();
      dirty_heap_.pop_back();
      OpNode& node = nodes_[static_cast<std::size_t>(id)];
      node.dirty = false;
      ++visited;
      for (std::size_t port = 0; port < node.pending.size(); ++port) {
        if (node.pending[port].empty()) continue;
        ++ops_touched_;
        std::vector<Sgt> batch;
        batch.swap(node.pending[port]);
        node.op->OnBatch(static_cast<int>(port), batch.data(), batch.size());
      }
    }
    index_skipped_ += nodes_.size() - visited;
    return;
  }
  bool any = true;
  while (any) {  // a tree topology settles in one pass; loop is a safety net
    any = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      OpNode& node = nodes_[i];
      for (std::size_t port = 0; port < node.pending.size(); ++port) {
        if (node.pending[port].empty()) continue;
        any = true;
        ++ops_touched_;
        std::vector<Sgt> batch;
        batch.swap(node.pending[port]);
        node.op->OnBatch(static_cast<int>(port), batch.data(), batch.size());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded delivery (num_workers > 1)
// ---------------------------------------------------------------------------

namespace {

/// \brief Appends `tuple` to the per-shard slot(s) its routing selects.
void AppendByRouting(RoutingKey routing, const Sgt& tuple,
                     std::vector<std::vector<Sgt>>* slots) {
  switch (routing) {
    case RoutingKey::kBroadcast:
      for (auto& slot : *slots) slot.push_back(tuple);
      break;
    case RoutingKey::kEdgeValue:
      (*slots)[ShardOfEdge(tuple.src, tuple.trg, slots->size())].push_back(
          tuple);
      break;
  }
}

}  // namespace

void Executor::RouteToShards(const PortRef& dst, const Sgt& tuple) {
  // Driver thread only (MergeAndRoute runs after the parallel section), so
  // the dirty worklist needs no synchronization.
  if (indexed()) MarkDirty(dst.op);
  OpNode& dn = nodes_[static_cast<std::size_t>(dst.op)];
  auto& slots = dn.shard_pending[static_cast<std::size_t>(dst.port)];
  // Single-instance operators and coordination-needing operators receive
  // the batch in global arrival order on slot 0 (the latter re-partition
  // at execution time, around deletion barriers).
  if (slots.size() == 1 || !dn.coordination.empty()) {
    slots[0].push_back(tuple);
    return;
  }
  AppendByRouting(dn.routing[static_cast<std::size_t>(dst.port)], tuple,
                  &slots);
}

bool Executor::OfferAtMerge(OpNode& node, const Sgt& tuple) {
  if (tuple.is_deletion) {
    // One coordinated deletion can retract the same output value on
    // several shards; a single instance emits that retraction once.
    if (!node.merge_retracted.insert(tuple.edge()).second) return false;
    node.merge_coalescer.Forget(tuple.edge(), tuple.validity.ts);
    return true;
  }
  node.merge_retracted.erase(tuple.edge());
  return node.merge_coalescer.Offer(tuple);
}

void Executor::MergeAndRoute(OpId id) {
  OpNode& node = nodes_[static_cast<std::size_t>(id)];
  // Shard-order concatenation: deterministic run-to-run because shard
  // sub-batches, and therefore per-shard emission sequences, are a pure
  // function of the input stream.
  for (std::vector<Sgt>& buffer : node.shard_emit) {
    for (const Sgt& tuple : buffer) {
      if (node.merge_coalesce && !OfferAtMerge(node, tuple)) {
        // A sibling shard already covered this emission; a single
        // instance's output coalescer would have suppressed it too.
        ++merge_suppressed_;
        continue;
      }
      for (const PortRef& dst : node.out.dests_) RouteToShards(dst, tuple);
    }
    buffer.clear();
  }
}

template <typename Fn>
void Executor::RunShardsMaybeParallel(std::size_t instances,
                                      std::size_t active_shards,
                                      Fn&& run_shard) {
  // A wave feeding a single shard (the common case at batch_size = 1
  // with hash routing) skips the pool dispatch; empty shards are no-ops.
  if (active_shards <= 1) {
    for (std::size_t s = 0; s < instances; ++s) run_shard(s);
  } else {
    pool_->ParallelFor(instances, run_shard);
  }
}

template <typename Fn>
void Executor::RunInstances(OpId id, bool parallel, Fn&& fn) {
  const std::size_t instances = NumInstances(id);
  if (!parallel || instances == 1) {
    // Inline in shard order: identical per-shard computation and merge
    // order, minus the pool dispatch.
    for (std::size_t s = 0; s < instances; ++s) fn(instance(id, s));
  } else {
    pool_->ParallelFor(instances,
                       [&](std::size_t s) { fn(instance(id, s)); });
  }
  MergeAndRoute(id);
}

void Executor::RunCoordinatedBatch(OpId id, int port,
                                   std::vector<Sgt>& batch) {
  OpNode& node = nodes_[static_cast<std::size_t>(id)];
  const std::size_t instances = NumInstances(id);
  const RoutingKey routing = node.routing[static_cast<std::size_t>(port)];
  std::vector<std::vector<Sgt>> split(instances);
  std::size_t i = 0;
  while (i < batch.size()) {
    if (!batch[i].is_deletion) {
      // Maximal run of positives: partition by the port's routing key and
      // process shard-parallel.
      for (auto& slot : split) slot.clear();
      std::size_t j = i;
      for (; j < batch.size() && !batch[j].is_deletion; ++j) {
        AppendByRouting(routing, batch[j], &split);
      }
      std::size_t active_shards = 0;
      for (const auto& slot : split) {
        if (!slot.empty()) ++active_shards;
      }
      RunShardsMaybeParallel(instances, active_shards, [&](std::size_t s) {
        if (!split[s].empty()) {
          instance(id, s)->OnBatch(port, split[s].data(), split[s].size());
        }
      });
      MergeAndRoute(id);
      i = j;
      continue;
    }
    // Two-phase deletion (see DeletionCoordination in core/physical.h).
    const Sgt deletion = batch[i++];
    std::vector<std::vector<EdgeRef>> retracted(instances);
    if (routing == RoutingKey::kBroadcast) {
      pool_->ParallelFor(instances, [&](std::size_t s) {
        retracted[s] = node.coordination[s]->RetractForDeletion(port,
                                                               deletion);
      });
    } else {
      // Hash-routed port: only the owner shard holds derivations of the
      // deleted binding.
      const ShardId owner =
          ShardOfEdge(deletion.src, deletion.trg, instances);
      retracted[owner] =
          node.coordination[owner]->RetractForDeletion(port, deletion);
    }
    MergeAndRoute(id);  // the negative tuples
    std::set<EdgeRef> all_retracted;
    for (const auto& shard_retracted : retracted) {
      all_retracted.insert(shard_retracted.begin(), shard_retracted.end());
    }
    if (!all_retracted.empty()) {
      const std::vector<EdgeRef> union_vec(all_retracted.begin(),
                                           all_retracted.end());
      pool_->ParallelFor(instances, [&](std::size_t s) {
        node.coordination[s]->ReassertRetracted(union_vec);
      });
      MergeAndRoute(id);  // the surviving re-assertions
    }
    // The retraction-dedup scope is exactly one deletion's two phases: a
    // later deletion of the same value only produces negatives if the
    // value was re-derived in between, which a single instance would also
    // re-retract.
    node.merge_retracted.clear();
  }
  batch.clear();
}

void Executor::RunShardedOpBatches(OpId id) {
  OpNode& node = nodes_[static_cast<std::size_t>(id)];
  auto& take = node.shard_scratch;
  if (!node.coordination.empty()) {
    for (std::size_t p = 0; p < take.size(); ++p) {
      if (!take[p][0].empty()) {
        RunCoordinatedBatch(id, static_cast<int>(p), take[p][0]);
      }
    }
    return;
  }
  const std::size_t instances = NumInstances(id);
  std::size_t active_shards = 0;
  for (std::size_t s = 0; s < instances && active_shards < 2; ++s) {
    for (std::size_t p = 0; p < take.size(); ++p) {
      if (!take[p][s].empty()) {
        ++active_shards;
        break;
      }
    }
  }
  RunShardsMaybeParallel(instances, active_shards, [&](std::size_t s) {
    PhysicalOp* shard_op = instance(id, s);
    for (std::size_t p = 0; p < take.size(); ++p) {
      auto& sub = take[p][s];
      if (!sub.empty()) {
        shard_op->OnBatch(static_cast<int>(p), sub.data(), sub.size());
        sub.clear();  // capacity kept for the next wave
      }
    }
  });
  MergeAndRoute(id);
}

void Executor::RunShardedWave() {
  ++num_waves_;
  if (indexed()) {
    // Same pop-min worklist as RunWave: ascending pops + low -> high
    // channels give the exact visit order of the legacy full scan.
    std::size_t visited = 0;
    while (!dirty_heap_.empty()) {
      std::pop_heap(dirty_heap_.begin(), dirty_heap_.end(),
                    std::greater<OpId>());
      const OpId id = dirty_heap_.back();
      dirty_heap_.pop_back();
      OpNode& node = nodes_[static_cast<std::size_t>(id)];
      node.dirty = false;
      ++visited;
      bool has_input = false;
      for (const auto& port : node.shard_pending) {
        for (const auto& slot : port) {
          if (!slot.empty()) {
            has_input = true;
            break;
          }
        }
        if (has_input) break;
      }
      if (!has_input) continue;
      ++ops_touched_;
      for (std::size_t p = 0; p < node.shard_pending.size(); ++p) {
        for (std::size_t s = 0; s < node.shard_pending[p].size(); ++s) {
          node.shard_scratch[p][s].swap(node.shard_pending[p][s]);
        }
      }
      RunShardedOpBatches(id);
    }
    index_skipped_ += nodes_.size() - visited;
    return;
  }
  bool any = true;
  while (any) {  // a tree topology settles in one pass; loop is a safety net
    any = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      OpNode& node = nodes_[i];
      bool has_input = false;
      for (const auto& port : node.shard_pending) {
        for (const auto& slot : port) {
          if (!slot.empty()) {
            has_input = true;
            break;
          }
        }
        if (has_input) break;
      }
      if (!has_input) continue;
      any = true;
      ++ops_touched_;
      // Swap pending batches into the scratch (whose slots are empty but
      // hold the previous wave's capacity) so buffers are reused instead
      // of reallocated; emissions route into the now-empty pending slots.
      for (std::size_t p = 0; p < node.shard_pending.size(); ++p) {
        for (std::size_t s = 0; s < node.shard_pending[p].size(); ++s) {
          node.shard_scratch[p][s].swap(node.shard_pending[p][s]);
        }
      }
      RunShardedOpBatches(static_cast<OpId>(i));
    }
  }
}

void Executor::DeliverSgesSharded(const Sge* sges, std::size_t n) {
  // Per-(source, shard) sub-batches, in ascending operator order so the
  // merge is deterministic.
  std::map<OpId, std::vector<std::vector<Sge>>> batches;
  auto append = [&](OpId source, const Sge& sge) {
    auto [entry, inserted] = batches.try_emplace(source);
    const std::size_t instances = NumInstances(source);
    if (inserted) entry->second.resize(instances);
    const std::size_t shard =
        instances == 1 ? 0 : ShardOfEdge(sge.src, sge.trg, instances);
    entry->second[shard].push_back(sge);
  };
  for (std::size_t k = 0; k < n; ++k) {
    const Sge& sge = sges[k];
    if (indexed()) {
      const auto* postings = query_index_.Find(sge.label);
      const auto& wildcard = query_index_.wildcard();
      if (postings == nullptr && wildcard.empty()) continue;
      edges_processed_.Add();
      if (postings != nullptr) {
        for (const SourcePosting& p : *postings) append(p.op, sge);
      }
      for (const SourcePosting& p : wildcard) append(p.op, sge);
    } else {
      auto it = sources_.find(sge.label);
      // Label not referenced by any query and no always-on source.
      if (it == sources_.end() && wildcard_sources_.empty()) continue;
      edges_processed_.Add();
      if (it != sources_.end()) {
        for (OpId source : it->second) append(source, sge);
      }
      for (OpId source : wildcard_sources_) append(source, sge);
    }
  }
  if (batches.empty()) return;
  // Scans are stateless interval maps: running them inline (in shard
  // order, into per-shard capture buffers) is cheaper than a pool
  // dispatch; the heavy lifting parallelizes downstream.
  for (const auto& [source, per_shard] : batches) {
    if (indexed()) MarkTouchedCone(source);
    ++ops_touched_;
    for (std::size_t s = 0; s < per_shard.size(); ++s) {
      if (per_shard[s].empty()) continue;
      auto* src = static_cast<SourceOp*>(instance(source, s));
      for (const Sge& sge : per_shard[s]) src->OnSge(sge);
    }
    MergeAndRoute(source);
  }
  RunShardedWave();
}

template <typename Fn>
void Executor::RunOpPhase(Fn&& fn) {
  if (wave_mode()) {
    fn();  // emissions buffer in the pending queues until the next wave
    return;
  }
  // Tuple mode: collect the call's emissions, then run each cascade to
  // completion in emission order — the recursive engine's depth-first
  // order exactly.
  std::vector<std::pair<PortRef, Sgt>> segment;
  segment_ = &segment;
  fn();
  segment_ = nullptr;
  for (auto rit = segment.rbegin(); rit != segment.rend(); ++rit) {
    stack_.push_back(std::move(*rit));
  }
  DrainStack();
}

void Executor::DeliverSgeToSource(const Sge& sge, OpId source) {
  if (indexed()) MarkTouchedCone(source);
  ++ops_touched_;
  auto* src = static_cast<SourceOp*>(
      nodes_[static_cast<std::size_t>(source)].op.get());
  RunOpPhase([&] { src->OnSge(sge); });
}

void Executor::DeliverSge(const Sge& sge) {
  // Both paths deliver in the same order — label-matched sources in
  // registration order, then the wildcard bucket in registration order —
  // so index on/off is byte-identical (see query_index.h).
  if (indexed()) {
    const auto* postings = query_index_.Find(sge.label);
    const auto& wildcard = query_index_.wildcard();
    if (postings == nullptr && wildcard.empty()) return;
    edges_processed_.Add();
    if (postings != nullptr) {
      for (const SourcePosting& p : *postings) DeliverSgeToSource(sge, p.op);
    }
    for (const SourcePosting& p : wildcard) DeliverSgeToSource(sge, p.op);
    return;
  }
  auto it = sources_.find(sge.label);
  // Label not referenced by any query and no always-on source.
  if (it == sources_.end() && wildcard_sources_.empty()) return;
  edges_processed_.Add();
  if (it != sources_.end()) {
    for (OpId source : it->second) DeliverSgeToSource(sge, source);
  }
  for (OpId source : wildcard_sources_) DeliverSgeToSource(sge, source);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

void Executor::UpdateTimeAdvanceHints() {
  // Finer dispatch heuristic (ROADMAP): beyond operators that declare
  // time-driven work, an operator whose shards have grown past the state
  // bar is worth the pool wakeup — its expiry/purge-adjacent work scales
  // with state. Evaluated at slide boundaries, not per distinct
  // timestamp: StateSize() walks operator tables.
  const std::size_t bar = options_.time_advance_parallel_state_bar;
  if (bar == 0) return;
  time_advance_hinted_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    OpNode& node = nodes_[i];
    if (node.op == nullptr) continue;  // removed (tombstoned) slot
    if (node.replicas.empty() || node.op->HasTimeDrivenWork()) continue;
    if (indexed() && !node.touched) {
      // Never received input: StateSize() is 0 on every shard, below any
      // positive bar — skip the state walk entirely.
      node.time_advance_parallel = false;
      continue;
    }
    bool hit = false;
    for (std::size_t s = 0; s < 1 + node.replicas.size() && !hit; ++s) {
      const PhysicalOp* op =
          s == 0 ? node.op.get() : node.replicas[s - 1].get();
      hit = op->StateSize() >= bar;
    }
    node.time_advance_parallel = hit;
    if (hit) time_advance_hinted_.push_back(static_cast<OpId>(i));
  }
}

void Executor::TimeAdvanceWave(Timestamp now) {
  if (sharded()) {
    if (indexed()) {
      // Only operators with declared time-driven work plus the state-bar
      // promotions can do anything in this phase: the base OnTimeAdvance
      // is a no-op (core/physical.h contract), so skipping the rest is
      // exact. The two ascending lists are disjoint (UpdateTimeAdvanceHints
      // excludes declared ops); merge them to keep the legacy visit order.
      std::size_t a = 0;
      std::size_t b = 0;
      std::size_t visited = 0;
      while (a < time_driven_ops_.size() ||
             b < time_advance_hinted_.size()) {
        bool declared;
        OpId id;
        if (b >= time_advance_hinted_.size() ||
            (a < time_driven_ops_.size() &&
             time_driven_ops_[a] < time_advance_hinted_[b])) {
          id = time_driven_ops_[a++];
          declared = true;
        } else {
          id = time_advance_hinted_[b++];
          declared = false;
        }
        OpNode& node = nodes_[static_cast<std::size_t>(id)];
        if (!declared && !node.replicas.empty()) ++state_bar_dispatches_;
        ++ops_touched_;
        ++visited;
        RunInstances(id, /*parallel=*/true,
                     [now](PhysicalOp* op) { op->OnTimeAdvance(now); });
      }
      index_skipped_ += nodes_.size() - visited;
      RunShardedWave();
      return;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      // Time advances fire per distinct timestamp; operators with heavy
      // time-driven work (Δ-tree expiry) are always worth a pool
      // dispatch, and so are operators whose shard state passed the
      // boundary-evaluated bar (UpdateTimeAdvanceHints).
      OpNode& node = nodes_[i];
      if (node.op == nullptr) continue;  // removed (tombstoned) slot
      const bool declared = node.op->HasTimeDrivenWork();
      const bool parallel = declared || node.time_advance_parallel;
      if (parallel && !declared && !node.replicas.empty()) {
        ++state_bar_dispatches_;
      }
      ++ops_touched_;
      RunInstances(static_cast<OpId>(i), parallel,
                   [now](PhysicalOp* op) { op->OnTimeAdvance(now); });
    }
    RunShardedWave();
    return;
  }
  if (indexed()) {
    // Skip operators without declared time-driven work — their
    // OnTimeAdvance is the base no-op, so the skip is byte-exact.
    for (OpId id : time_driven_ops_) {
      ++ops_touched_;
      OpNode& node = nodes_[static_cast<std::size_t>(id)];
      RunOpPhase([&] { node.op->OnTimeAdvance(now); });
    }
    index_skipped_ += nodes_.size() - time_driven_ops_.size();
    if (wave_mode()) RunWave();
    return;
  }
  // Negative-tuple operators can emit retractions/re-derivations during
  // OnTimeAdvance; RunOpPhase delivers them downstream.
  for (auto& node : nodes_) {
    if (node.op == nullptr) continue;  // removed (tombstoned) slot
    ++ops_touched_;
    RunOpPhase([&] { node.op->OnTimeAdvance(now); });
  }
  if (wave_mode()) RunWave();
}

void Executor::ProcessBoundary(Timestamp boundary) {
  Stopwatch timer;
  TimeAdvanceWave(boundary);
  if (sharded()) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const OpId id = static_cast<OpId>(i);
      if (nodes_[i].op == nullptr) continue;  // removed (tombstoned) slot
      if (indexed() && !nodes_[i].touched) {
        // Never received input: every shard's StateSize() is 0, below the
        // purge watermark, so MaybePurge would return immediately.
        ++index_skipped_;
        continue;
      }
      // Worth a pool dispatch only when at least two shards will actually
      // run their O(state) purge scan; watermark checks run inline.
      const std::size_t instances = NumInstances(id);
      std::size_t due = 0;
      for (std::size_t s = 0; s < instances && due < 2; ++s) {
        if (instance(id, s)->PurgeDue()) ++due;
      }
      ++ops_touched_;
      RunInstances(id, /*parallel=*/due >= 2,
                   [boundary](PhysicalOp* op) { op->MaybePurge(boundary); });
    }
    RunShardedWave();
    for (OpNode& node : nodes_) {
      // Amortized merge-coalescer purge (memory only, like MaybePurge).
      if (!node.merge_coalesce ||
          node.merge_coalescer.NumKeys() < node.merge_purge_watermark) {
        continue;
      }
      node.merge_coalescer.PurgeBefore(boundary);
      node.merge_purge_watermark =
          std::max<std::size_t>(1024, 2 * node.merge_coalescer.NumKeys());
    }
    UpdateTimeAdvanceHints();
  } else {
    for (auto& node : nodes_) {
      if (node.op == nullptr) continue;  // removed (tombstoned) slot
      if (indexed() && !node.touched) {
        ++index_skipped_;  // StateSize() 0 < watermark: MaybePurge no-ops
        continue;
      }
      ++ops_touched_;
      RunOpPhase([&] { node.op->MaybePurge(boundary); });
    }
    if (wave_mode()) RunWave();
  }
  slide_accum_seconds_ += timer.ElapsedSeconds();
  // The paper's per-slide latency: all processing attributable to the
  // slide that just closed (arrivals within it plus expiry work).
  slide_latencies_.Record(slide_accum_seconds_);
  slide_accum_seconds_ = 0;
}

void Executor::AdvanceClock(Timestamp t) {
  if (!started_) {
    current_time_ = t;
    next_boundary_ = (t / slide_) * slide_ + slide_;
    started_ = true;
    return;
  }
  SGQ_CHECK_GE(t, current_time_) << "stream timestamps must be ordered";
  while (next_boundary_ <= t) {
    ProcessBoundary(next_boundary_);
    next_boundary_ += slide_;
  }
  if (t > current_time_) {
    // Exact expiry processing for negative-tuple operators (they check a
    // heap and return immediately when nothing is due).
    Stopwatch timer;
    TimeAdvanceWave(t);
    slide_accum_seconds_ += timer.ElapsedSeconds();
    current_time_ = t;
  }
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

void Executor::Ingest(const Sge& sge) {
  SGQ_CHECK(finalized_) << "Ingest before Finalize";
  const Timestamp floor = queue_.empty() ? current_time_ : queue_.back().t;
  if (started_ || !queue_.empty()) {
    SGQ_CHECK_GE(sge.t, floor) << "stream timestamps must be ordered";
  }
  edges_pushed_.Add();
  queue_.push_back(sge);
  if (queue_.size() >= options_.batch_size) Flush();
}

void Executor::ExecuteOrderedBatch(const Sge* sges, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    // One micro-batch = one distinct timestamp: window boundaries and
    // expirations between groups are processed exactly as in
    // tuple-at-a-time mode.
    std::size_t j = i;
    while (j < n && sges[j].t == sges[i].t) ++j;
    AdvanceClock(sges[i].t);
    Stopwatch timer;
    if (sharded()) {
      DeliverSgesSharded(sges + i, j - i);
    } else {
      for (std::size_t k = i; k < j; ++k) DeliverSge(sges[k]);
      if (wave_mode()) RunWave();
    }
    slide_accum_seconds_ += timer.ElapsedSeconds();
    i = j;
  }
}

void Executor::Flush() {
  if (queue_.empty()) return;
  std::vector<Sge> batch;
  batch.swap(queue_);
  ExecuteOrderedBatch(batch.data(), batch.size());
}

void Executor::ExecutePipelinedBatch(const Sge* sges, std::size_t n) {
  // The pipeline bypasses Ingest(), so its ordering contract is enforced
  // here: within the batch and against the clock left by earlier batches.
  for (std::size_t k = 0; k < n; ++k) {
    const Timestamp floor = k > 0 ? sges[k - 1].t : current_time_;
    if (started_ || k > 0) {
      SGQ_CHECK_GE(sges[k].t, floor) << "stream timestamps must be ordered";
    }
  }
  edges_pushed_.Add(n);
  ExecuteOrderedBatch(sges, n);
}

namespace {

/// \brief Folds one pipeline run's counters into the executor's
/// cumulative stats (shared by RunPipelined / RunPipelinedSharded).
void AccumulateIngestStats(IngestStats* total, const IngestStats& run) {
  total->ingest_stall_ns += run.ingest_stall_ns;
  total->exec_stall_ns += run.exec_stall_ns;
  total->batches += run.batches;
  total->late_dropped += run.late_dropped;
  total->ingest_pinned = run.ingest_pinned;
  total->merge_stall_ns += run.merge_stall_ns;
  if (run.parsers > 0) total->parsers = run.parsers;
  if (total->parser_stall_ns.size() < run.parser_stall_ns.size()) {
    total->parser_stall_ns.resize(run.parser_stall_ns.size(), 0);
    total->parser_busy_ns.resize(run.parser_busy_ns.size(), 0);
  }
  for (std::size_t p = 0; p < run.parser_stall_ns.size(); ++p) {
    total->parser_stall_ns[p] += run.parser_stall_ns[p];
    total->parser_busy_ns[p] += run.parser_busy_ns[p];
  }
}

}  // namespace

void Executor::RunPipelined(const IngestProducer& fill) {
  SGQ_CHECK(finalized_) << "RunPipelined before Finalize";
  IngestPipeline pipeline(this);
  pipeline.Run(fill);
  AccumulateIngestStats(&ingest_stats_, pipeline.stats());
}

Status Executor::RunPipelinedSharded(const ChunkedStream& stream) {
  SGQ_CHECK(finalized_) << "RunPipelinedSharded before Finalize";
  IngestPipeline pipeline(this);
  const Status status =
      pipeline.RunSharded(stream, std::max<std::size_t>(
                                      options_.ingest_parsers, 1));
  AccumulateIngestStats(&ingest_stats_, pipeline.stats());
  return status;
}

void Executor::AdvanceTo(Timestamp t) {
  SGQ_CHECK(finalized_) << "AdvanceTo before Finalize";
  Flush();
  AdvanceClock(t);
}

std::size_t Executor::StateSize() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.op == nullptr) continue;  // removed (tombstoned) slot
    n += node.op->StateSize();
    for (const auto& replica : node.replicas) n += replica->StateSize();
  }
  return n;
}

std::size_t Executor::StateBytes() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.op == nullptr) continue;  // removed (tombstoned) slot
    n += node.op->StateBytes();
    for (const auto& replica : node.replicas) n += replica->StateBytes();
  }
  return n;
}

void Executor::SerializeClock(std::string* out) const {
  PutI64(out, current_time_);
  PutI64(out, next_boundary_);
  PutU8(out, started_ ? 1 : 0);
  PutI64(out, slide_);
  PutI64(out, min_slide_);
  // Pending micro-batch queue: restoring it preserves batch grouping, so
  // the resumed run flushes at the same boundaries as the original.
  PutU64(out, queue_.size());
  for (const Sge& sge : queue_) PutSge(out, sge);
}

Status Executor::DeserializeClock(ByteReader* in) {
  SGQ_CHECK(finalized_) << "restore before Finalize";
  if (started_ || !queue_.empty()) {
    return in->Fail("executor not fresh before restore");
  }
  const Timestamp current_time = in->I64();
  const Timestamp next_boundary = in->I64();
  const bool started = in->U8() != 0;
  const Timestamp slide = in->I64();
  const Timestamp min_slide = in->I64();
  if (in->ok() && (slide != slide_ || min_slide != min_slide_)) {
    return in->Fail("window slide mismatch (checkpoint was taken with a "
                    "different query set)");
  }
  const std::uint64_t n = in->U64();
  for (std::uint64_t i = 0; i < n && in->ok(); ++i) {
    queue_.push_back(GetSge(in));
  }
  if (!in->ok()) return in->status();
  current_time_ = current_time;
  next_boundary_ = next_boundary;
  started_ = started;
  return Status::OK();
}

void Executor::SerializeOps(std::string* out) const {
  PutU32(out, static_cast<std::uint32_t>(nodes_.size()));
  for (const OpNode& node : nodes_) {
    // Tombstoned slots serialize as a single liveness byte: a removed
    // query's operators carry no sections, and restore refuses a snapshot
    // whose live set differs from the replayed registration history.
    PutU8(out, node.op != nullptr ? 1 : 0);
    if (node.op == nullptr) continue;
    PutU8(out, node.touched ? 1 : 0);
    PutU8(out, node.merge_coalesce ? 1 : 0);
    if (node.merge_coalesce) {
      node.merge_coalescer.SerializeState(out);
      PutU64(out, node.merge_purge_watermark);
    }
    const std::size_t instances = 1 + node.replicas.size();
    PutU32(out, static_cast<std::uint32_t>(instances));
    for (std::size_t s = 0; s < instances; ++s) {
      const PhysicalOp* inst =
          s == 0 ? node.op.get() : node.replicas[s - 1].get();
      PutU64(out, inst->checkpoint_purge_watermark());
      std::string blob;
      inst->SerializeState(&blob);
      PutStr(out, blob);
    }
  }
}

Status Executor::DeserializeOps(ByteReader* in) {
  SGQ_CHECK(finalized_) << "restore before Finalize";
  const std::uint32_t num_nodes = in->U32();
  if (in->ok() && num_nodes != nodes_.size()) {
    return in->Fail("operator count mismatch (checkpoint was taken with a "
                    "different plan topology)");
  }
  for (std::size_t id = 0; id < nodes_.size() && in->ok(); ++id) {
    OpNode& node = nodes_[id];
    const bool live = in->U8() != 0;
    if (in->ok() && live != (node.op != nullptr)) {
      return in->Fail("operator " + std::to_string(id) +
                      " liveness mismatch (checkpoint was taken with a "
                      "different set of removed queries)");
    }
    if (!live) continue;
    node.touched = in->U8() != 0;
    const bool merge_coalesce = in->U8() != 0;
    if (in->ok() && merge_coalesce != node.merge_coalesce) {
      return in->Fail("merge-coalescer flag mismatch at operator " +
                      std::to_string(id));
    }
    if (node.merge_coalesce) {
      SGQ_RETURN_NOT_OK(node.merge_coalescer.DeserializeState(in));
      node.merge_purge_watermark = in->U64();
    }
    const std::uint32_t instances = in->U32();
    if (in->ok() && instances != 1 + node.replicas.size()) {
      return in->Fail("shard count mismatch at operator " +
                      std::to_string(id) +
                      " (checkpoint was taken with a different --workers)");
    }
    for (std::size_t s = 0; s < 1 + node.replicas.size() && in->ok(); ++s) {
      PhysicalOp* inst = s == 0 ? node.op.get() : node.replicas[s - 1].get();
      const std::uint64_t watermark = in->U64();
      const std::string blob = in->Str();
      if (!in->ok()) break;
      ByteReader sub(blob, in->context() + ": operator " +
                               std::to_string(id) + " (" + inst->Name() +
                               ") shard " + std::to_string(s));
      SGQ_RETURN_NOT_OK(inst->DeserializeState(&sub));
      SGQ_RETURN_NOT_OK(sub.ExpectEnd());
      inst->restore_purge_watermark(watermark);
    }
  }
  return in->status();
}

}  // namespace sgq

// Explicit dataflow runtime (§6.1): the Executor owns the physical
// operator topology of one compiled query — operator IDs, their typed
// output channels, and the per-timestamp micro-batch ingest queue — and
// drives OnTuple/OnTimeAdvance/MaybePurge waves in topological order.
//
// This replaces the previous recursive push architecture (operator ->
// parent_->OnTuple()) whose unbounded recursion could not batch, share
// state across operators, or parallelize. Delivery is iterative:
//
//  - batch_size == 1 ("tuple-at-a-time"): every ingested sge is routed to
//    its source operators and the resulting cascade is drained on an
//    explicit stack whose segment-reversal discipline reproduces the old
//    depth-first recursion order *exactly* — batch=1 output is
//    byte-identical to the recursive engine.
//  - batch_size > 1: sges buffer in the micro-batch queue (grouped by
//    timestamp, so window semantics are untouched) and each group is
//    processed as a topological wave: every operator receives its pending
//    inputs per port as one OnBatch call. Equivalent result *sets*,
//    amortized per-tuple overhead.
//  - num_workers > 1 ("sharded mode"): every operator has num_workers
//    shard instances, each owning a hash-partition of the operator's
//    state (runtime/shard.h). A persistent WorkerPool drives each
//    topological wave shard-parallel: shard s of the current operator
//    runs on worker s with a lock-free capture channel; the post-wave
//    merge concatenates the capture buffers in shard order (deterministic
//    run-to-run) and the exchange re-partitions the merged tuples onto
//    the destination operators' shards according to their declared
//    RoutingKey. Results are snapshot-equivalent to num_workers = 1;
//    num_workers = 1 takes the unsharded code paths untouched and stays
//    byte-identical to the pre-sharding engine.
//
// Window bookkeeping is consolidated in a shared WindowStore
// (runtime/window_store.h) owned by the executor. Sharded instances
// acquire shard-suffixed partitions, so a partition is only ever touched
// by one shard index — the worker-pool barrier between operators orders
// accesses by co-indexed shards of different operators.

#ifndef SGQ_RUNTIME_EXECUTOR_H_
#define SGQ_RUNTIME_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/physical.h"
#include "model/coalesce.h"
#include "model/sgt.h"
#include "runtime/channel.h"
#include "runtime/ingest_pipeline.h"
#include "runtime/query_index.h"
#include "runtime/shard.h"
#include "runtime/window_store.h"
#include "runtime/worker_pool.h"

namespace sgq {

/// \brief Default state bar for the time-advance dispatch heuristic —
/// defined once; EngineOptions forwards the same knob (core/engine.h).
inline constexpr std::size_t kDefaultTimeAdvanceParallelStateBar = 8192;

/// \brief Runtime configuration.
struct ExecutorOptions {
  /// Micro-batch size: how many sges the ingest queue buffers before a
  /// flush. 1 reproduces tuple-at-a-time semantics exactly.
  std::size_t batch_size = 1;
  /// Number of workers (= shards per operator). 1 (the default) runs the
  /// classic single-threaded engine byte-identically; N > 1 partitions
  /// operator state N ways and drives waves shard-parallel.
  std::size_t num_workers = 1;
  /// Sharded mode: dispatch an operator's time-advance wave to the worker
  /// pool once any single shard instance holds at least this much state —
  /// in addition to operators declaring HasTimeDrivenWork(), whose expiry
  /// work is always worth the dispatch. The bar is re-evaluated at slide
  /// boundaries (amortized: StateSize() is not free, and time advances
  /// fire per distinct input timestamp). 0 disables the heuristic.
  std::size_t time_advance_parallel_state_bar =
      kDefaultTimeAdvanceParallelStateBar;
  /// Double-buffered async ingest (DESIGN.md §6): RunPipelined parses /
  /// produces batch N+1 on a dedicated ingest thread while batch N
  /// executes. Execution order is unchanged — workers=1/batch=1 output
  /// stays byte-identical; the flag only selects where producer work runs.
  bool async_ingest = false;
  /// Bounded depth of the pipeline's ready-batch SPSC queue (backpressure
  /// bound: at most this many parsed batches wait for execution).
  std::size_t ingest_queue_depth = 4;
  /// Pin threads to cores (best-effort pthread affinity, silent fallback
  /// where unsupported): pool workers to cores [0, num_workers), the
  /// ingest thread to the next slot. See runtime/ingest_pipeline.h.
  bool pin_workers = false;
  /// Out-of-order slack absorbed by the ingest stage of RunPipelined: a
  /// producer may emit elements up to this far behind the newest timestamp
  /// seen; older elements are dropped (IngestStats::late_dropped). 0 (the
  /// default) requires an ordered producer.
  Timestamp ingest_slack = 0;
  /// Parser threads of the sharded parse stage (RunPipelinedSharded):
  /// N > 1 decodes the stream's chunks on N threads with an order-
  /// restoring merge ahead of the batch hand-off; 1 (the default) is the
  /// classic single-producer pipeline (byte-identical output at
  /// num_workers=1/batch_size=1). See runtime/ingest_pipeline.h.
  std::size_t ingest_parsers = 1;
  /// Query-index dispatch (DESIGN.md §3.1): route work through the
  /// label-discrimination index so per-edge cost tracks the operators that
  /// can match, not the registered-query population — wave scans walk a
  /// dirty worklist instead of the whole topology, time-advance waves
  /// visit only operators with declared time-driven work (plus the
  /// state-bar hints in sharded mode), and purge scans skip operators
  /// that never received input. Off reproduces the legacy full-scan
  /// dispatch. Both settings are byte-identical at num_workers=1/
  /// batch_size=1 and snapshot-equivalent + deterministic sharded
  /// (tests/query_index_test.cc).
  bool use_query_index = true;
};

/// \brief Owns and drives the operator topology of one running query.
class Executor {
 public:
  explicit Executor(ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// \name Topology construction (before Finalize)
  /// @{

  /// \brief Adds an operator; returns its id. Operators must be added
  /// children-first: the insertion order doubles as the wave order and is
  /// verified to be topological by Finalize().
  OpId AddOp(std::unique_ptr<PhysicalOp> op);

  /// \brief Attaches one additional shard instance to operator `id`
  /// (sharded mode only). The compiler calls this num_workers - 1 times
  /// per sharded operator; an operator left with a single instance (the
  /// sink) receives every tuple on that instance. Replicas must be
  /// structurally identical to the primary — they share its channel
  /// destinations and routing declarations.
  Status AddShardReplica(OpId id, std::unique_ptr<PhysicalOp> shard);

  /// \brief Connects `from`'s output channel to input `port` of `to`.
  /// A channel may have several destinations (fan-out); delivery follows
  /// connection order.
  Status Connect(OpId from, OpId to, int port);

  /// \brief Registers `source` as a consumer of raw sges with `label`.
  /// `slide` is the source's window slide; the engine's slide granularity
  /// is the finest slide of any source.
  Status RegisterSource(LabelId label, OpId source, Timestamp slide);

  /// \brief Registers `source` as a consumer of *every* raw sge
  /// regardless of label (the query index's always-on bucket). Each edge
  /// is delivered to label-matched sources first (registration order),
  /// then wildcard sources in their registration order.
  Status RegisterWildcardSource(OpId source, Timestamp slide);

  /// \brief Validates the topology (edges must go from lower to higher op
  /// id — children-first insertion), binds channels, and fixes the slide
  /// granularity. Must be called once before ingesting.
  Status Finalize();
  /// @}

  /// \name Live topology updates (after Finalize, DESIGN.md §10)
  ///
  /// A finalized executor can still grow and shrink at batch boundaries
  /// (queue, delivery stack and dirty worklist empty — i.e. between
  /// Flush()es on the synchronous ingest path). AddOp / Connect /
  /// RegisterSource / AddShardReplica accept appends that only touch
  /// operators added since the last (re-)finalize; FinalizeNewOps then
  /// binds and verifies exactly those appended nodes. The slide
  /// granularity is immutable once fixed: registering a post-Finalize
  /// source with a finer slide is refused (callers pre-check, so a
  /// refused live attach leaves the executor untouched).
  /// @{

  /// \brief Binds channels, shard structures, expiry calendars and
  /// time-advance registration for every operator appended after the last
  /// Finalize()/FinalizeNewOps(). O(appended subtree).
  Status FinalizeNewOps();

  /// \brief Removes `dead` operators from the running topology —
  /// tombstoning their node slots (ids are never reused), releasing their
  /// state, pruning their source/index/time-advance registrations — and
  /// unlinks the channel edges in `unlink` (pairs of live child → dead
  /// parent, computed by the caller from its sharing refcounts). Callable
  /// only at a batch boundary; O(removed subtree).
  Status RemoveOps(const std::vector<OpId>& dead,
                   const std::vector<std::pair<OpId, OpId>>& unlink);

  /// \brief Operators alive (added minus removed); NumOps() counts slots,
  /// tombstones included.
  std::size_t NumLiveOps() const { return num_live_; }
  /// @}

  /// \name Streaming
  /// @{

  /// \brief Feeds one stream element into the micro-batch queue;
  /// timestamps must be non-decreasing. Flushes when the queue reaches
  /// batch_size.
  void Ingest(const Sge& sge);

  /// \brief Drains the micro-batch queue: groups buffered sges by
  /// timestamp, advances the clock between groups (processing slide
  /// boundaries and expirations), and runs each group through the
  /// topology.
  void Flush();

  /// \brief Flushes, then advances time to `t` without new input
  /// (processing slide boundaries and expirations on the way).
  void AdvanceTo(Timestamp t);

  /// \brief Pipelined ingest (DESIGN.md §6): drains `fill` through the
  /// double-buffered ingest pipeline — producer work on a dedicated
  /// ingest thread, execution on the calling thread — and returns when
  /// the producer is exhausted and every batch has executed. Equivalent
  /// to Ingest()-ing every produced element in order (byte-identical at
  /// workers=1/batch=1). Honors options().ingest_slack; stall/late
  /// counters accumulate in ingest_stats(). Callable repeatedly.
  void RunPipelined(const IngestProducer& fill);

  /// \brief Sharded-parse pipelined ingest: options().ingest_parsers
  /// threads decode `stream`'s chunks concurrently, the order-restoring
  /// merge re-serializes them, and execution runs on the calling thread —
  /// element order and batch boundaries are exactly RunPipelined's over a
  /// sequential cursor. Parse errors surface as the returned Status
  /// (elements preceding the error still execute). Counters accumulate in
  /// ingest_stats(), including per-parser stall/busy time.
  Status RunPipelinedSharded(const ChunkedStream& stream);
  /// @}

  /// \name Introspection
  /// @{
  PhysicalOp* op(OpId id) const;
  std::size_t NumOps() const { return nodes_.size(); }

  /// \brief Number of shard instances of operator `id` (1 when unsharded).
  std::size_t NumInstances(OpId id) const;
  /// \brief Shard instance `shard` of operator `id` (shard 0 == op(id)).
  PhysicalOp* instance(OpId id, std::size_t shard) const;
  WindowStore* window_store() { return &window_store_; }
  const WindowStore* window_store() const { return &window_store_; }
  const ExecutorOptions& options() const { return options_; }

  const LatencyRecorder& slide_latencies() const { return slide_latencies_; }
  std::size_t edges_pushed() const { return edges_pushed_.value(); }
  std::size_t edges_processed() const { return edges_processed_.value(); }
  std::size_t num_waves() const { return num_waves_; }

  /// \brief Time-advance pool dispatches credited to the state-bar
  /// heuristic (i.e. for operators without declared time-driven work).
  std::size_t state_bar_dispatches() const { return state_bar_dispatches_; }

  /// \brief The label-discrimination dispatch index (populated by
  /// RegisterSource / RegisterWildcardSource as queries compile).
  const QueryIndex& query_index() const { return query_index_; }

  /// \brief Operator activations: OnSge deliveries, per-(operator, port)
  /// batch executions, and per-operator time-advance / purge phases.
  /// Divided by edges_processed() this is the fanout the dispatch layer
  /// actually paid — O(registered queries) per edge under legacy
  /// broadcast phases, O(matching operators) with the query index on.
  /// (Tuple-mode cascades within one delivery count as one activation.)
  std::size_t ops_touched() const { return ops_touched_; }

  /// \brief Operator visits the query index pruned relative to the legacy
  /// full-scan dispatch: skipped wave-scan visits, skipped time-advance
  /// phases, skipped purge phases. Always 0 with use_query_index off.
  std::size_t index_skipped_dispatches() const { return index_skipped_; }

  /// \brief Tuples the merge-side coalescer suppressed as cross-shard
  /// duplicates (diagnostics; 0 when unsharded).
  std::size_t merge_suppressed() const { return merge_suppressed_; }

  /// \brief Cumulative pipeline counters of every RunPipelined call
  /// (zeros when the pipeline never ran).
  const IngestStats& ingest_stats() const { return ingest_stats_; }

  /// \brief Total operator state entries (diagnostics). Shared window
  /// partitions are counted once per consumer (each consumer's watermark
  /// must see them).
  std::size_t StateSize() const;

  /// \brief Resident operator-state bytes (diagnostics; approximate —
  /// container capacities plus arena slabs, shared window partitions
  /// counted once per consumer like StateSize).
  std::size_t StateBytes() const;

  /// \brief Timestamps every operator has been advanced to so far.
  Timestamp now() const { return current_time_; }
  Timestamp slide() const { return slide_; }

  /// \brief Human-readable topology: one line per operator with its
  /// channel destinations.
  std::string DescribeTopology() const;
  /// @}

  /// \name Checkpoint/restore (model/checkpoint.h, DESIGN.md §7)
  ///
  /// Callable only at a batch boundary (between Flush()es): the delivery
  /// stack is empty, no wave is in flight, and the deletion scratch state
  /// of every operator is provably clear. The restore counterpart runs on
  /// a freshly built executor of the same topology and options, before any
  /// tuple.
  /// @{

  /// \brief Serializes the clock (current time, next slide boundary,
  /// started flag) and the pending micro-batch queue; slide granularities
  /// are recorded for topology verification at restore.
  void SerializeClock(std::string* out) const;
  Status DeserializeClock(ByteReader* in);

  /// \brief Serializes per-node runtime state: the touched bit (indexed
  /// purge dispatch), the merge-side coalescer + its purge watermark when
  /// enabled, and every shard instance's purge watermark plus its
  /// length-framed SerializeState blob.
  void SerializeOps(std::string* out) const;
  Status DeserializeOps(ByteReader* in);
  /// @}

 private:
  friend class OutputChannel;
  friend class IngestPipeline;

  struct OpNode {
    std::unique_ptr<PhysicalOp> op;
    OutputChannel out;
    /// Per-port pending input buffers (wave mode).
    std::vector<std::vector<Sgt>> pending;

    // --- sharded mode (num_workers > 1) ---
    /// Shard instances 1..W-1 (shard 0 is `op`); empty when unsharded.
    std::vector<std::unique_ptr<PhysicalOp>> replicas;
    /// One capture channel + emission buffer per instance.
    std::vector<OutputChannel> shard_out;
    std::vector<std::vector<Sgt>> shard_emit;
    /// Pending inputs per [port][shard]. Coordinated-deletion operators
    /// keep the whole port batch in shard slot 0 (global arrival order)
    /// and partition at execution time.
    std::vector<std::vector<std::vector<Sgt>>> shard_pending;
    /// Same shape as shard_pending; waves swap pending batches in here
    /// before running them, so buffer capacity is reused across waves.
    std::vector<std::vector<std::vector<Sgt>>> shard_scratch;
    /// Input routing per port (cached from InputRouting at Finalize).
    std::vector<RoutingKey> routing;
    /// Deletion-coordination handles, one per instance; empty when the
    /// operator does not require coordination.
    std::vector<DeletionCoordination*> coordination;

    /// Merge-side coalescer (set at Finalize when the operator is
    /// multi-instance and declares CoalesceAtMerge): the deterministic
    /// shard-order merged stream passes through it before the exchange,
    /// suppressing positives a sibling shard already covered and
    /// duplicate cross-shard retractions of one deletion.
    bool merge_coalesce = false;
    StreamingCoalescer merge_coalescer;
    /// Output values retracted by the in-flight coordinated deletion;
    /// dedupes the negative each retracting shard emits for the same
    /// value. Cleared after the deletion's reassert phase.
    FlatSet<EdgeRef, EdgeRefHash> merge_retracted;
    /// Amortized purge watermark for merge_coalescer (doubling, like
    /// PhysicalOp::MaybePurge).
    std::size_t merge_purge_watermark = 1024;

    /// Time-advance dispatch hint (sharded mode): true when some shard's
    /// StateSize() met options_.time_advance_parallel_state_bar at the
    /// last slide boundary. OR-ed with the operator's HasTimeDrivenWork().
    bool time_advance_parallel = false;

    /// Source registration of this node (WSCAN leaves), recorded so
    /// RemoveOps can prune the per-label tables and the query index
    /// without scanning them: the label, or the wildcard bucket.
    LabelId source_label = kInvalidLabel;
    bool source_wildcard = false;

    /// Indexed dispatch (use_query_index): true while the node sits in the
    /// dirty worklist of the current wave (it has pending input to run).
    bool dirty = false;
    /// Monotone: the node received input at least once (directly or via
    /// its upstream cone), so it may hold state worth a purge scan.
    /// Never-touched operators are skipped by the indexed boundary
    /// phases — exact, because operator state only grows from input.
    bool touched = false;
  };

  /// \brief Channel entry point: dispatches an emitted tuple according to
  /// the active drain mode.
  void Route(const OutputChannel& channel, const Sgt& tuple);

  /// \brief Routes one sge to its registered sources. In tuple mode each
  /// source's cascade is drained to completion before the next source
  /// (matching the recursive engine); in wave mode emissions buffer.
  void DeliverSge(const Sge& sge);

  /// \brief True when the runtime batches (batch_size > 1): emissions
  /// buffer per (op, port) and propagate in topological waves. Tuple mode
  /// (batch_size == 1) reproduces recursive depth-first delivery exactly.
  bool wave_mode() const { return options_.batch_size > 1; }

  /// \brief True when dispatch consults the query index (DESIGN.md §3.1).
  bool indexed() const { return options_.use_query_index; }

  /// \brief Channel/shard/coordination setup of one node — the per-node
  /// body shared by Finalize() and FinalizeNewOps().
  Status SetupNodeTopology(std::size_t i);

  /// \brief Adds `id` to the current wave's dirty worklist (min-heap on
  /// OpId: popping ascending reproduces the legacy full scan's node
  /// order — channels only point to higher ids, so one ascending pass
  /// settles a wave).
  void MarkDirty(OpId id);

  /// \brief Marks `id` and its downstream cone as touched (first input).
  void MarkTouchedCone(OpId id);

  /// \brief Delivers one sge to `source` in tuple/wave mode (shared body
  /// of the indexed and legacy DeliverSge paths).
  void DeliverSgeToSource(const Sge& sge, OpId source);

  /// \brief Runs one operator phase call (OnSge / OnTimeAdvance /
  /// MaybePurge) and delivers whatever it emitted.
  template <typename Fn>
  void RunOpPhase(Fn&& fn);

  /// \brief Drains the tuple-mode delivery stack (exact DFS order).
  void DrainStack();

  /// \brief Runs one topological wave over the pending buffers.
  void RunWave();

  /// \name Sharded execution (num_workers > 1)
  /// @{
  bool sharded() const { return options_.num_workers > 1; }

  /// \brief Exchange: appends `tuple` to the destination's per-shard
  /// pending buffers according to the destination's routing key.
  void RouteToShards(const PortRef& dst, const Sgt& tuple);

  /// \brief Merges operator `id`'s per-shard emission buffers in shard
  /// order and routes every tuple through the exchange (through the
  /// merge-side coalescer first when the node enables it).
  void MergeAndRoute(OpId id);

  /// \brief Merge-side coalescer admission: returns false when `tuple` is
  /// a cross-shard duplicate (covered positive, or repeated retraction of
  /// the in-flight deletion) that a single instance would not have
  /// emitted.
  bool OfferAtMerge(OpNode& node, const Sgt& tuple);

  /// \brief Re-evaluates every node's time-advance dispatch hint against
  /// the state bar (called at slide boundaries).
  void UpdateTimeAdvanceHints();

  /// \brief Runs `run_shard(s)` for every shard — on the worker pool when
  /// more than one shard has work, inline in shard order otherwise (same
  /// result, no dispatch cost).
  template <typename Fn>
  void RunShardsMaybeParallel(std::size_t instances,
                              std::size_t active_shards, Fn&& run_shard);

  /// \brief Runs `fn(instance)` across the operator's instances — on the
  /// worker pool when `parallel`, inline in shard order otherwise (same
  /// result, no dispatch cost) — and merges the captured emissions.
  template <typename Fn>
  void RunInstances(OpId id, bool parallel, Fn&& fn);

  /// \brief One topological wave over the sharded pending buffers.
  void RunShardedWave();

  /// \brief Runs the operator's port batches (previously swapped into its
  /// shard_scratch), shard-parallel; leaves the scratch slots empty with
  /// their capacity intact.
  void RunShardedOpBatches(OpId id);

  /// \brief Coordinated-deletion execution of one globally-ordered port
  /// batch: parallel runs of positive segments, two-phase deletions.
  /// Clears `batch` (capacity preserved).
  void RunCoordinatedBatch(OpId id, int port, std::vector<Sgt>& batch);

  /// \brief Routes one timestamp group of sges to the source shards and
  /// drains the resulting waves.
  void DeliverSgesSharded(const Sge* sges, std::size_t n);
  /// @}

  /// \brief Runs one timestamp-ordered batch through the topology:
  /// groups by distinct timestamp, advances the clock between groups and
  /// delivers each group — the body shared by Flush() and the pipeline.
  void ExecuteOrderedBatch(const Sge* sges, std::size_t n);

  /// \brief Pipeline entry point (called from IngestPipeline on the
  /// execution thread): validates the ordering contract Ingest() would
  /// have enforced per element, then executes the batch.
  void ExecutePipelinedBatch(const Sge* sges, std::size_t n);

  /// \brief Advances the clock to `t`: processes every slide boundary
  /// passed on the way and runs a time-advance wave for the new distinct
  /// timestamp. Does not touch the ingest queue.
  void AdvanceClock(Timestamp t);

  void ProcessBoundary(Timestamp boundary);
  void TimeAdvanceWave(Timestamp now);

  ExecutorOptions options_;
  std::vector<OpNode> nodes_;  ///< index == OpId; insertion is wave order
  /// Legacy per-label source table (use_query_index off). The indexed
  /// path reads query_index_ instead; both are maintained by
  /// RegisterSource so the flag can differ between otherwise-identical
  /// runs (the differential tests rely on that).
  std::unordered_map<LabelId, std::vector<OpId>> sources_;
  std::vector<OpId> wildcard_sources_;  ///< legacy always-on bucket
  QueryIndex query_index_;
  /// Operators with declared time-driven work (HasTimeDrivenWork), in
  /// ascending id order — the only operators whose OnTimeAdvance the
  /// indexed time-advance wave must run (the contract in core/physical.h
  /// requires overriders to declare themselves).
  std::vector<OpId> time_driven_ops_;
  /// Sharded indexed mode: operators promoted by the state-bar hint at
  /// the last boundary (ascending; disjoint from time_driven_ops_).
  std::vector<OpId> time_advance_hinted_;
  /// Min-heap (std::greater) of dirty node ids for the indexed waves.
  std::vector<OpId> dirty_heap_;
  WindowStore window_store_;
  std::unique_ptr<WorkerPool> pool_;  ///< created by Finalize when sharded
  bool finalized_ = false;
  /// Nodes already bound by Finalize()/FinalizeNewOps(); nodes at or past
  /// this index are un-finalized appends of an in-flight live attach.
  std::size_t finalized_nodes_ = 0;
  /// Operators alive: added minus removed (tombstoned slots excluded).
  std::size_t num_live_ = 0;

  // --- micro-batch ingest queue ---
  std::vector<Sge> queue_;

  // --- drain state ---
  std::vector<std::pair<PortRef, Sgt>> stack_;
  std::vector<std::pair<PortRef, Sgt>>* segment_ = nullptr;
  std::size_t num_waves_ = 0;

  // --- clock ---
  Timestamp current_time_ = kMinTimestamp;
  Timestamp min_slide_ = kMaxTimestamp;  ///< finest registered source slide
  Timestamp slide_ = 1;
  Timestamp next_boundary_ = kMinTimestamp;
  bool started_ = false;

  // --- metrics ---
  LatencyRecorder slide_latencies_;
  double slide_accum_seconds_ = 0;
  Counter edges_pushed_;
  Counter edges_processed_;
  std::size_t state_bar_dispatches_ = 0;
  std::size_t merge_suppressed_ = 0;
  std::size_t ops_touched_ = 0;    ///< driver-thread only (see getter)
  std::size_t index_skipped_ = 0;  ///< driver-thread only (see getter)
  IngestStats ingest_stats_;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_EXECUTOR_H_

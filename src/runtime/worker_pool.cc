#include "runtime/worker_pool.h"

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sgq {

bool WorkerPool::PinThisThread(std::size_t cpu) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % cores), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  // No portable thread affinity on this platform; run unpinned.
  (void)cpu;
  return false;
#endif
}

WorkerPool::WorkerPool(std::size_t num_workers, WorkerPoolOptions options)
    : num_workers_(num_workers == 0 ? 1 : num_workers), options_(options) {
  threads_.reserve(num_workers_ - 1);
  for (std::size_t id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (num_workers_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    SGQ_CHECK(fn_ == nullptr) << "nested ParallelFor on one pool";
    fn_ = &fn;
    n_ = n;
    outstanding_ = threads_.size();
    ++epoch_;
  }
  cv_start_.notify_all();
  // The caller is worker 0.
  for (std::size_t i = 0; i < n; i += num_workers_) fn(i);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::WorkerLoop(std::size_t worker_id) {
  if (options_.pin && PinThisThread(options_.pin_offset + worker_id)) {
    pinned_workers_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_start_.wait(lock,
                   [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const auto* fn = fn_;
    const std::size_t n = n_;
    lock.unlock();
    for (std::size_t i = worker_id; i < n; i += num_workers_) (*fn)(i);
    lock.lock();
    if (--outstanding_ == 0) {
      lock.unlock();
      cv_done_.notify_one();
    }
  }
}

}  // namespace sgq

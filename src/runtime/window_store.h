// Shared window state of one running query (runtime subsystem).
//
// Before this registry existed every stateful operator owned a private
// copy of its input window: two PATH operators over the same scanned
// stream each maintained a full adjacency, and PATTERN kept the same edges
// again in its per-port join tables — duplicate memory and duplicate
// expiry scans. The WindowStore consolidates that: operators acquire a
// partition keyed by the *plan signature* of the subplan that produces
// their input (algebra/translate.h), so structurally identical inputs
// resolve to one shared WindowEdgeStore. Inserts are idempotent
// (value-equivalent edges coalesce, Def. 11) and purges are cheap to
// repeat (the partition tracks its earliest expiry), so any number of
// consumers can maintain the shared partition without coordination.

#ifndef SGQ_RUNTIME_WINDOW_STORE_H_
#define SGQ_RUNTIME_WINDOW_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/window_store.h"

namespace sgq {

/// \brief Registry of shared WindowEdgeStore partitions, one per distinct
/// input-subplan signature. Owned by the Executor; handles stay valid for
/// the lifetime of the store.
class WindowStore {
 public:
  /// \brief Returns the partition for `signature`, creating it on first
  /// use. Subsequent calls with the same signature return the same
  /// partition (that is the sharing). Every Acquire counts one consumer;
  /// pair it with Release when the consumer is deregistered.
  WindowEdgeStore* Acquire(const std::string& signature);

  /// \brief Drops one consumer of `signature` (live query deregistration,
  /// DESIGN.md §10). The partition — and its state — is destroyed when the
  /// last consumer releases it, so a removed query's window memory is
  /// reclaimed and later checkpoints no longer carry the partition.
  /// Releasing an unknown signature or one with no outstanding consumers
  /// is a checked error.
  Status Release(const std::string& signature);

  /// \brief Sets the expiry-calendar granularity of every partition
  /// (existing and future) to the engine's slide. Called by the executor
  /// once the slide is fixed at Finalize.
  void ConfigureExpirySlide(Timestamp slide);

  std::size_t NumPartitions() const { return partitions_.size(); }

  /// \brief Number of Acquire() calls that hit an existing partition —
  /// i.e. how much duplicate state the consolidation removed.
  std::size_t NumSharedAcquires() const { return shared_acquires_; }

  /// \brief Total entries across partitions (diagnostics).
  std::size_t NumEntries() const;

  /// \brief Resident bytes across partitions (diagnostics).
  std::size_t StateBytes() const;

  /// \brief Purges every partition (memory only; results unaffected).
  void PurgeExpired(Timestamp now);

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7):
  /// partitions enumerated in sorted signature order, each with its
  /// signature string and WindowEdgeStore::SerializeState blob. Restore
  /// runs on a registry whose partitions were re-created by rebuilding the
  /// same plans — the signature sets must match exactly.
  void SerializeState(std::string* out) const;
  Status DeserializeState(ByteReader* in);
  std::size_t shared_acquires() const { return shared_acquires_; }

 private:
  struct Partition {
    std::unique_ptr<WindowEdgeStore> store;
    /// Outstanding Acquire() consumers; the partition dies at zero.
    std::size_t consumers = 0;
  };

  std::unordered_map<std::string, Partition> partitions_;
  std::size_t shared_acquires_ = 0;
  Timestamp slide_ = 1;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_WINDOW_STORE_H_

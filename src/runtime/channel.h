// Typed output channels of the dataflow runtime.
//
// An operator never holds a pointer to its consumer: it emits into its
// OutputChannel, and the channel either (a) hands the tuple to the Executor
// that owns the topology (engine mode), or (b) delivers it synchronously to
// a single destination operator (direct mode — unit tests and
// micro-benchmarks that exercise one operator in isolation).
//
// A channel may have several destinations (fan-out): this is what lets the
// runtime share one WSCAN operator between every consumer of the same
// (label, window) pair. Sharded execution (num_workers > 1) adds a third
// mode: *capture* channels buffer each shard instance's emissions locally
// (no locks on the hot path); after the parallel section the Executor
// merges the buffers in shard order and re-partitions them through the
// exchange onto the destination shards (executor.cc, DESIGN.md §2.4).

#ifndef SGQ_RUNTIME_CHANNEL_H_
#define SGQ_RUNTIME_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "model/sgt.h"

namespace sgq {

class Executor;
class PhysicalOp;

/// \brief Identifier of an operator inside an Executor's topology.
using OpId = int32_t;
inline constexpr OpId kInvalidOpId = -1;

/// \brief One destination of a channel: an operator input port.
struct PortRef {
  OpId op = kInvalidOpId;
  int port = 0;
};

/// \brief The output edge(s) of one operator in the dataflow topology.
class OutputChannel {
 public:
  OutputChannel() = default;

  /// \brief Direct mode: deliver every pushed tuple synchronously to
  /// `op`/`port`. For standalone operator harnesses only — the engine
  /// always routes through an Executor.
  OutputChannel(PhysicalOp* op, int port)
      : direct_op_(op), direct_port_(port) {}

  /// \brief Capture mode: append every pushed tuple to `buffer`. Used for
  /// the per-shard emission buffers of sharded execution; the buffer is
  /// owned by the Executor and drained by the post-wave merge.
  explicit OutputChannel(std::vector<Sgt>* buffer) : capture_(buffer) {}

  /// \brief Pushes one output tuple (called by PhysicalOp::EmitTuple).
  void Push(const Sgt& tuple);

  /// \brief Destinations in delivery order (engine mode).
  const std::vector<PortRef>& destinations() const { return dests_; }

  bool connected() const {
    return direct_op_ != nullptr || capture_ != nullptr ||
           (exec_ != nullptr && !dests_.empty());
  }

 private:
  friend class Executor;

  // Engine mode (set by Executor::Connect / Finalize).
  Executor* exec_ = nullptr;
  OpId from_ = kInvalidOpId;
  std::vector<PortRef> dests_;

  // Direct mode.
  PhysicalOp* direct_op_ = nullptr;
  int direct_port_ = 0;

  // Capture mode (sharded execution).
  std::vector<Sgt>* capture_ = nullptr;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_CHANNEL_H_

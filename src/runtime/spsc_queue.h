// Bounded single-producer/single-consumer queue — the hand-off stage of
// the async ingest pipeline (runtime/ingest_pipeline.h, DESIGN.md §6).
//
// The fast path is lock-free: head/tail are monotonically increasing
// atomics; the producer publishes a slot with a store of tail, the
// consumer retires it with a store of head. The mutex is touched only
// when a side actually sleeps (a full queue exerting backpressure on the
// producer, an empty queue stalling the consumer) or to wake a sleeper —
// an uncontended push or pop performs no lock operation at all. Both
// sides account their blocked time so the pipeline can report where the
// bottleneck sits (ingest_stall_ns vs exec_stall_ns in RunMetrics).
//
// Wakeups are race-free by the store-then-load (Dekker) discipline: a
// waiter registers its waiting flag and re-checks the index atomics
// under the mutex before sleeping; a signaler publishes its index and
// then checks the flag. All four accesses are seq_cst, so in the total
// order either the publish precedes the waiter's re-check (it never
// sleeps) or the flag store precedes the signaler's load (it notifies,
// through an empty mutex critical section so the notify cannot land
// between the waiter's re-check and its sleep).

#ifndef SGQ_RUNTIME_SPSC_QUEUE_H_
#define SGQ_RUNTIME_SPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace sgq {

/// \brief Bounded SPSC queue of T with blocking push/pop and stall
/// accounting. Exactly one producer thread may call Push/TryPush/Close and
/// exactly one consumer thread may call Pop/TryPop.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// \brief Elements currently queued (racy snapshot; exact only from the
  /// producer or consumer thread between its own operations).
  std::size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  /// \brief Non-blocking push; false when the queue is full or closed.
  bool TryPush(T&& v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;
    }
    slots_[tail % slots_.size()] = std::move(v);
    // seq_cst publish: ordered against the consumer_waiting_ load below
    // (see the Dekker note in the file comment).
    tail_.store(tail + 1, std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_seq_cst)) WakeConsumer();
    return true;
  }

  /// \brief Blocking push: waits while the queue is full (backpressure),
  /// adding the blocked nanoseconds to `*stall_ns`. Returns false if the
  /// queue was closed.
  bool Push(T&& v, uint64_t* stall_ns) {
    if (TryPush(std::move(v))) return true;
    const auto start = Clock::now();
    {
      std::unique_lock<std::mutex> lock(mu_);
      producer_waiting_.store(true, std::memory_order_seq_cst);
      cv_not_full_.wait(lock, [&] {
        return closed_.load(std::memory_order_acquire) ||
               tail_.load(std::memory_order_relaxed) -
                       head_.load(std::memory_order_seq_cst) <
                   slots_.size();
      });
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    if (stall_ns != nullptr) *stall_ns += ElapsedNs(start);
    return TryPush(std::move(v));
  }

  /// \brief Non-blocking pop; false when the queue is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head % slots_.size()]);
    // seq_cst retire: ordered against the producer_waiting_ load below.
    head_.store(head + 1, std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_seq_cst)) WakeProducer();
    return true;
  }

  /// \brief Blocking pop: waits while the queue is empty, adding the
  /// blocked nanoseconds to `*stall_ns`. Returns false only when the queue
  /// is closed AND drained — every pushed element is delivered first.
  bool Pop(T* out, uint64_t* stall_ns) {
    for (;;) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Closed: one final check (the producer may have pushed right
        // before closing).
        return TryPop(out);
      }
      const auto start = Clock::now();
      {
        std::unique_lock<std::mutex> lock(mu_);
        consumer_waiting_.store(true, std::memory_order_seq_cst);
        cv_not_empty_.wait(lock, [&] {
          return closed_.load(std::memory_order_acquire) ||
                 head_.load(std::memory_order_relaxed) !=
                     tail_.load(std::memory_order_seq_cst);
        });
        consumer_waiting_.store(false, std::memory_order_relaxed);
      }
      if (stall_ns != nullptr) *stall_ns += ElapsedNs(start);
    }
  }

  /// \brief Marks the end of the stream: blocked producers and consumers
  /// wake, Pop drains the remainder and then returns false.
  void Close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    cv_not_empty_.notify_all();
    cv_not_full_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  using Clock = std::chrono::steady_clock;

  static uint64_t ElapsedNs(Clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }

  void WakeConsumer() {
    // Empty critical section before the notify (see file comment): the
    // waiter holds mu_ from its predicate re-check until it sleeps, so
    // acquiring mu_ here orders the notify after the sleep (or after the
    // re-check observed our publish and skipped sleeping).
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_not_empty_.notify_one();
  }

  void WakeProducer() {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_not_full_.notify_one();
  }

  std::vector<T> slots_;
  std::atomic<uint64_t> head_{0};  ///< next slot to pop
  std::atomic<uint64_t> tail_{0};  ///< next slot to fill
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex mu_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_SPSC_QUEUE_H_

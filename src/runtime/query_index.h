// Label-discrimination query index over the standing-query population
// (ROADMAP "sublinear query indexing"; Zervakis et al., "Efficient
// Continuous Multi-Query Processing over Graph Streams", PAPERS.md).
//
// With K registered queries the executor hosts O(K) source operators.
// Source dispatch must not pay O(K) per edge: the index maps each stream
// label to the posting list of (operator, port) pairs whose *admission
// predicate* (algebra/translate.h PlanAdmission) can match it, so an edge
// only reaches the sources actually interested in its label. Sources
// without a label constraint (wildcard WSCANs) live in an always-on
// bucket appended to every lookup.
//
// Layout: a robin-hood FlatMap keyed by label, values inline-small
// SmallVecs — the common case (one or two subscribers per label, the
// mostly-disjoint subscription regime) resolves without a second
// indirection. The index is built incrementally: Engine::AddQuery compiles
// sources one at a time and each RegisterSource call appends its posting,
// so queries added mid-topology-build are indexed immediately.
//
// Ordering contract (determinism): postings of one label keep their
// registration order — exactly the order the executor's legacy per-label
// source table delivered in — and every lookup visits label postings
// first, then the wildcard bucket in its registration order. Indexed and
// non-indexed dispatch therefore produce identical call sequences
// (byte-identical results at workers=1/batch=1; DESIGN.md §3.1).

#ifndef SGQ_RUNTIME_QUERY_INDEX_H_
#define SGQ_RUNTIME_QUERY_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vec.h"
#include "model/types.h"
#include "runtime/channel.h"

namespace sgq {

/// \brief One interested consumer of a stream label: the source operator
/// and the input port the edge enters on (today every source consumes raw
/// sges on port 0; the port is kept so non-scan admission points — e.g. a
/// PATH automaton fed directly — can join the index without a format
/// change).
struct SourcePosting {
  OpId op = -1;
  int port = 0;

  bool operator==(const SourcePosting& o) const {
    return op == o.op && port == o.port;
  }
};

/// \brief label -> posting-list discrimination index plus the always-on
/// wildcard bucket. Not thread-safe for writes; the executor only mutates
/// it during topology construction and reads it single-threaded from the
/// dispatch loop.
class QueryIndex {
 public:
  using PostingList = SmallVec<SourcePosting, 2>;

  /// \brief Appends a posting for `label` (registration order preserved).
  void Add(LabelId label, OpId op, int port = 0) {
    postings_[label].push_back(SourcePosting{op, port});
    ++num_postings_;
  }

  /// \brief Appends `op` to the always-on bucket: it admits every label.
  void AddWildcard(OpId op, int port = 0) {
    wildcard_.push_back(SourcePosting{op, port});
  }

  /// \brief Removes every posting of `op` under `label` (live query
  /// deregistration, DESIGN.md §10). Surviving postings keep their
  /// registration order, so indexed dispatch stays byte-identical to a
  /// never-added run. Erases the label's list entirely when it empties.
  void Remove(LabelId label, OpId op) {
    auto it = postings_.find(label);
    if (it == postings_.end()) return;
    PostingList& list = it->second;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].op == op) {
        --num_postings_;
        continue;
      }
      list[kept++] = list[i];
    }
    list.erase_range(kept, list.size());
    if (list.size() == 0) postings_.erase(label);
  }

  /// \brief Removes `op` from the always-on bucket (order preserved).
  void RemoveWildcard(OpId op) {
    wildcard_.erase(std::remove_if(wildcard_.begin(), wildcard_.end(),
                                   [op](const SourcePosting& p) {
                                     return p.op == op;
                                   }),
                    wildcard_.end());
  }

  /// \brief Postings whose admission predicate names `label` exactly;
  /// nullptr when no registered query constrains to it. Wildcard sources
  /// are NOT included — callers append wildcard() to every match.
  const PostingList* Find(LabelId label) const {
    auto it = postings_.find(label);
    return it == postings_.end() ? nullptr : &it->second;
  }

  /// \brief The always-on bucket, in registration order.
  const std::vector<SourcePosting>& wildcard() const { return wildcard_; }

  /// \name Introspection (tests, DescribeTopology)
  /// @{
  std::size_t NumLabels() const { return postings_.size(); }
  std::size_t NumPostings() const { return num_postings_; }
  std::size_t NumWildcard() const { return wildcard_.size(); }

  /// \brief All indexed labels (hash order; sort before comparing).
  std::vector<LabelId> Labels() const {
    std::vector<LabelId> out;
    out.reserve(postings_.size());
    for (const auto& [label, list] : postings_) out.push_back(label);
    return out;
  }
  /// @}

 private:
  FlatMap<LabelId, PostingList> postings_;
  std::vector<SourcePosting> wildcard_;
  std::size_t num_postings_ = 0;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_QUERY_INDEX_H_

#include "runtime/ingest_pipeline.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "core/reorder_buffer.h"
#include "runtime/executor.h"
#include "runtime/worker_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sgq {

namespace {

/// \brief RAII pin of the calling (execution) thread to `cpu` that
/// restores the previous affinity mask on destruction, so a pinned
/// pipelined run does not leak core affinity into later unpinned runs of
/// the same process (bench binaries interleave both).
class ScopedThreadPin {
 public:
  ScopedThreadPin(bool enable, std::size_t cpu) {
#if defined(__linux__)
    if (!enable) return;
    saved_valid_ = pthread_getaffinity_np(pthread_self(), sizeof(saved_),
                                          &saved_) == 0;
    pinned_ = saved_valid_ && WorkerPool::PinThisThread(cpu);
#else
    (void)enable;
    (void)cpu;
#endif
  }
  ~ScopedThreadPin() {
#if defined(__linux__)
    if (pinned_) {
      pthread_setaffinity_np(pthread_self(), sizeof(saved_), &saved_);
    }
#endif
  }

  bool pinned() const { return pinned_; }

 private:
#if defined(__linux__)
  cpu_set_t saved_;
  bool saved_valid_ = false;
#endif
  bool pinned_ = false;
};

}  // namespace

void IngestPipeline::IngestThread(const IngestProducer& fill,
                                  SpscQueue<Batch>* full,
                                  SpscQueue<Batch>* free_buffers) {
  const ExecutorOptions& options = executor_->options();
  if (options.pin_workers &&
      options.num_workers < std::thread::hardware_concurrency()) {
    // The slot after the worker range, so parsing never competes with a
    // pinned execution core. When the workers already cover every core
    // the slot would wrap onto core 0 — the execution thread's pin — and
    // force exactly the timesharing pinning exists to avoid, so the
    // ingest thread floats instead.
    stats_.ingest_pinned = WorkerPool::PinThisThread(options.num_workers);
  }
  const std::size_t batch_size = options.batch_size;
  ReorderBuffer reorder(options.ingest_slack);

  Batch current;
  uint64_t* stall = &stats_.ingest_stall_ns;
  bool ok = free_buffers->Pop(&current, stall);
  SGQ_CHECK(ok) << "free-buffer pool starts prefilled";

  // Ships the staged batch and acquires the next buffer. Blocking on the
  // free queue is the backpressure: every buffer is queued or executing.
  auto ship = [&]() {
    if (!full->Push(std::move(current), stall)) return false;
    return free_buffers->Pop(&current, stall);
  };
  auto emit = [&](const Sge& sge) {
    current.push_back(sge);
    return current.size() < batch_size || ship();
  };

  // Producer chunks need not align with batches; a modest fixed chunk
  // keeps per-call overhead low without adding latency at small batches.
  std::vector<Sge> chunk(std::clamp<std::size_t>(batch_size, 1, 1024));
  for (;;) {
    const std::size_t n = fill(chunk.data(), chunk.size());
    if (n == 0) break;
    for (std::size_t i = 0; i < n && ok; ++i) {
      if (options.ingest_slack == 0) {
        ok = emit(chunk[i]);
        continue;
      }
      // Slack stage: out-of-order slack is absorbed here, on the ingest
      // thread, releasing a timestamp-ordered stream into the batches.
      for (const Sge& released : reorder.Offer(chunk[i])) {
        if (!(ok = emit(released))) break;
      }
    }
    if (!ok) break;
  }
  if (ok && options.ingest_slack > 0) {
    for (const Sge& released : reorder.Flush()) {
      if (!(ok = emit(released))) break;
    }
  }
  if (ok && !current.empty()) full->Push(std::move(current), stall);
  stats_.late_dropped += reorder.LateCount();
  full->Close();
}

void IngestPipeline::Run(const IngestProducer& fill) {
  // Drain anything the synchronous Ingest path queued before the pipeline
  // takes over, so batch boundaries stay exactly the synchronous ones.
  executor_->Flush();

  const ExecutorOptions& options = executor_->options();
  const std::size_t depth = std::max<std::size_t>(options.ingest_queue_depth,
                                                  1);
  SpscQueue<Batch> full(depth);
  // Buffer pool: `depth` in the queue + 1 staging at ingest + 1 executing.
  SpscQueue<Batch> free_buffers(depth + 2);
  for (std::size_t i = 0; i < depth + 2; ++i) {
    Batch buffer;
    buffer.reserve(options.batch_size);
    SGQ_CHECK(free_buffers.TryPush(std::move(buffer)));
  }

  std::thread ingest(
      [&] { IngestThread(fill, &full, &free_buffers); });

  {
    ScopedThreadPin pin_exec_thread(options.pin_workers, 0);
    (void)pin_exec_thread;
    Batch batch;
    while (full.Pop(&batch, &stats_.exec_stall_ns)) {
      executor_->ExecutePipelinedBatch(batch.data(), batch.size());
      ++stats_.batches;
      batch.clear();
      // Never blocks: the pool holds at most depth + 2 buffers.
      SGQ_CHECK(free_buffers.TryPush(std::move(batch)));
    }
  }
  ingest.join();
}

}  // namespace sgq

#include "runtime/ingest_pipeline.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "core/reorder_buffer.h"
#include "model/stream_io.h"
#include "runtime/executor.h"
#include "runtime/worker_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sgq {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// \brief RAII pin of the calling (execution) thread to `cpu` that
/// restores the previous affinity mask on destruction, so a pinned
/// pipelined run does not leak core affinity into later unpinned runs of
/// the same process (bench binaries interleave both).
class ScopedThreadPin {
 public:
  ScopedThreadPin(bool enable, std::size_t cpu) {
#if defined(__linux__)
    if (!enable) return;
    saved_valid_ = pthread_getaffinity_np(pthread_self(), sizeof(saved_),
                                          &saved_) == 0;
    pinned_ = saved_valid_ && WorkerPool::PinThisThread(cpu);
#else
    (void)enable;
    (void)cpu;
#endif
  }
  ~ScopedThreadPin() {
#if defined(__linux__)
    if (pinned_) {
      pthread_setaffinity_np(pthread_self(), sizeof(saved_), &saved_);
    }
#endif
  }

  bool pinned() const { return pinned_; }

 private:
#if defined(__linux__)
  cpu_set_t saved_;
  bool saved_valid_ = false;
#endif
  bool pinned_ = false;
};

/// \brief The slack / batch staging stage shared by the single-producer
/// ingest thread and the sharded merge thread: elements pass through the
/// ReorderBuffer when slack is configured, accumulate into batch buffers,
/// and ship on the `full` queue, acquiring replacements from `free`
/// (blocking = the pipeline's backpressure, accounted to `*stall_ns`).
class BatchStager {
 public:
  using Batch = std::vector<Sge>;

  BatchStager(const ExecutorOptions& options, SpscQueue<Batch>* full,
              SpscQueue<Batch>* free_buffers, uint64_t* stall_ns)
      : batch_size_(options.batch_size),
        use_slack_(options.ingest_slack > 0),
        reorder_(options.ingest_slack),
        full_(full),
        free_(free_buffers),
        stall_(stall_ns) {}

  /// \brief Acquires the first staging buffer.
  bool Start() {
    const bool ok = free_->Pop(&current_, stall_);
    SGQ_CHECK(ok) << "free-buffer pool starts prefilled";
    return ok;
  }

  /// \brief Stages one element (through the slack stage when configured);
  /// false when the downstream queue closed mid-run.
  bool Emit(const Sge& sge) {
    if (!use_slack_) return Stage(sge);
    // Slack stage: out-of-order slack is absorbed here, on the producer
    // side, releasing a timestamp-ordered stream into the batches.
    for (const Sge& released : reorder_.Offer(sge)) {
      if (!Stage(released)) return false;
    }
    return true;
  }

  /// \brief Flushes the slack stage and ships any partial batch (skipped
  /// when `ok` is false — the run is aborting). Returns the slack stage's
  /// late-drop count. Call exactly once.
  std::size_t Finish(bool ok) {
    if (ok && use_slack_) {
      for (const Sge& released : reorder_.Flush()) {
        if (!Stage(released)) {
          ok = false;
          break;
        }
      }
    }
    if (ok && !current_.empty()) full_->Push(std::move(current_), stall_);
    return reorder_.LateCount();
  }

 private:
  /// \brief Appends to the staged batch; ships when it reaches batch size.
  /// Blocking on the free queue is the backpressure: every buffer is
  /// queued or executing.
  bool Stage(const Sge& sge) {
    current_.push_back(sge);
    if (current_.size() < batch_size_) return true;
    if (!full_->Push(std::move(current_), stall_)) return false;
    return free_->Pop(&current_, stall_);
  }

  const std::size_t batch_size_;
  const bool use_slack_;
  ReorderBuffer reorder_;
  SpscQueue<Batch>* full_;
  SpscQueue<Batch>* free_;
  uint64_t* stall_;
  Batch current_;
};

/// \brief Unit of the gutter hand-off: one run of consecutive elements of
/// one chunk, or the chunk's end marker (publishes its parse status).
struct Segment {
  std::vector<Sge> elems;
  std::size_t chunk = 0;
  bool end_of_chunk = false;
};

/// \brief Segments a parser may have in flight toward the merge; the free
/// pool holds kGutterDepth + 2 (one staging at the parser, one draining at
/// the merge), so steady state allocates nothing.
constexpr std::size_t kGutterDepth = 4;

}  // namespace

void IngestPipeline::IngestThread(const IngestProducer& fill,
                                  SpscQueue<Batch>* full,
                                  SpscQueue<Batch>* free_buffers) {
  const ExecutorOptions& options = executor_->options();
  if (options.pin_workers &&
      options.num_workers < std::thread::hardware_concurrency()) {
    // The slot after the worker range, so parsing never competes with a
    // pinned execution core. When the workers already cover every core
    // the slot would wrap onto core 0 — the execution thread's pin — and
    // force exactly the timesharing pinning exists to avoid, so the
    // ingest thread floats instead.
    stats_.ingest_pinned = WorkerPool::PinThisThread(options.num_workers);
  }
  BatchStager stager(options, full, free_buffers, &stats_.ingest_stall_ns);
  bool ok = stager.Start();

  // Producer chunks need not align with batches; a modest fixed chunk
  // keeps per-call overhead low without adding latency at small batches.
  std::vector<Sge> chunk(
      std::clamp<std::size_t>(options.batch_size, 1, 1024));
  while (ok) {
    const std::size_t n = fill(chunk.data(), chunk.size());
    if (n == 0) break;
    for (std::size_t i = 0; i < n && ok; ++i) ok = stager.Emit(chunk[i]);
  }
  stats_.late_dropped += stager.Finish(ok);
  full->Close();
}

void IngestPipeline::ExecuteLoop(SpscQueue<Batch>* full,
                                 SpscQueue<Batch>* free_buffers) {
  Batch batch;
  while (full->Pop(&batch, &stats_.exec_stall_ns)) {
    executor_->ExecutePipelinedBatch(batch.data(), batch.size());
    ++stats_.batches;
    batch.clear();
    // Never blocks: the pool holds at most depth + 2 buffers.
    SGQ_CHECK(free_buffers->TryPush(std::move(batch)));
  }
}

void IngestPipeline::Run(const IngestProducer& fill) {
  // Drain anything the synchronous Ingest path queued before the pipeline
  // takes over, so batch boundaries stay exactly the synchronous ones.
  executor_->Flush();

  const ExecutorOptions& options = executor_->options();
  const std::size_t depth = std::max<std::size_t>(options.ingest_queue_depth,
                                                  1);
  SpscQueue<Batch> full(depth);
  // Buffer pool: `depth` in the queue + 1 staging at ingest + 1 executing.
  SpscQueue<Batch> free_buffers(depth + 2);
  for (std::size_t i = 0; i < depth + 2; ++i) {
    Batch buffer;
    buffer.reserve(options.batch_size);
    SGQ_CHECK(free_buffers.TryPush(std::move(buffer)));
  }

  std::thread ingest(
      [&] { IngestThread(fill, &full, &free_buffers); });

  {
    ScopedThreadPin pin_exec_thread(options.pin_workers, 0);
    (void)pin_exec_thread;
    ExecuteLoop(&full, &free_buffers);
  }
  ingest.join();
}

void IngestPipeline::AccumulateParserStats(std::size_t parsers,
                                           const uint64_t* stall_ns,
                                           const uint64_t* busy_ns) {
  stats_.parsers = parsers;
  if (stats_.parser_stall_ns.size() < parsers) {
    stats_.parser_stall_ns.resize(parsers, 0);
    stats_.parser_busy_ns.resize(parsers, 0);
  }
  for (std::size_t p = 0; p < parsers; ++p) {
    stats_.parser_stall_ns[p] += stall_ns[p];
    stats_.parser_busy_ns[p] += busy_ns[p];
  }
}

Status IngestPipeline::RunSharded(const ChunkedStream& stream,
                                  std::size_t parsers) {
  const ExecutorOptions& options = executor_->options();
  const bool allow_disorder = options.ingest_slack > 0;
  // Windowed file sources accumulate feeder time across every OpenChunk;
  // accounting the per-run delta keeps cumulative stats correct when one
  // pipeline serves several runs.
  const uint64_t readahead_before = stream.ReadaheadStallNs();

  if (parsers <= 1) {
    // Collapsed form: one sequential chunk walk on the classic single-
    // producer pipeline — the same element sequence as an unchunked
    // cursor, so output stays byte-identical to Run().
    ChunkWalkCursor seq(stream, allow_disorder);
    Run([&seq](Sge* buf, std::size_t cap) { return seq.Next(buf, cap); });
    const uint64_t stall = 0;
    const uint64_t busy = seq.busy_ns();
    AccumulateParserStats(1, &stall, &busy);
    stats_.readahead_stall_ns += stream.ReadaheadStallNs() - readahead_before;
    return seq.status();
  }

  executor_->Flush();
  const std::size_t chunks = stream.NumChunks();
  const std::size_t depth = std::max<std::size_t>(options.ingest_queue_depth,
                                                  1);
  SpscQueue<Batch> full(depth);
  SpscQueue<Batch> free_buffers(depth + 2);
  for (std::size_t i = 0; i < depth + 2; ++i) {
    Batch buffer;
    buffer.reserve(options.batch_size);
    SGQ_CHECK(free_buffers.TryPush(std::move(buffer)));
  }

  // Gutter stage: per-parser SPSC segment queues (parser -> merge) with a
  // free-list back-channel (merge -> parser). Chunk c is owned by parser
  // c mod parsers, and a parser walks its chunks in ascending order, so
  // per-queue FIFO delivery hands the merge whole chunks in index order.
  const std::size_t seg_cap =
      std::clamp<std::size_t>(options.batch_size, 1, 1024);
  std::vector<std::unique_ptr<SpscQueue<Segment>>> gutter;
  std::vector<std::unique_ptr<SpscQueue<Segment>>> gutter_free;
  for (std::size_t p = 0; p < parsers; ++p) {
    gutter.push_back(std::make_unique<SpscQueue<Segment>>(kGutterDepth));
    gutter_free.push_back(
        std::make_unique<SpscQueue<Segment>>(kGutterDepth + 2));
    for (std::size_t i = 0; i < kGutterDepth + 2; ++i) {
      Segment seg;
      seg.elems.reserve(seg_cap);
      SGQ_CHECK(gutter_free[p]->TryPush(std::move(seg)));
    }
  }
  // Per-chunk parse status, written by the owning parser before its
  // end-of-chunk marker (the queue's release publish orders it); the
  // merge reads it when the marker arrives, so the first error in chunk
  // order wins — exactly the sequential cursor's error.
  std::vector<Status> chunk_status(chunks);
  std::vector<uint64_t> parser_stall(parsers, 0);
  std::vector<uint64_t> parser_busy(parsers, 0);

  std::vector<std::thread> parser_threads;
  parser_threads.reserve(parsers);
  for (std::size_t p = 0; p < parsers; ++p) {
    parser_threads.emplace_back([&, p] {
      if (options.pin_workers) {
        // Parsers line up after the merge thread's slot (num_workers);
        // best-effort, and never onto a slot that does not exist.
        const std::size_t slot = options.num_workers + 1 + p;
        if (slot < std::thread::hardware_concurrency()) {
          WorkerPool::PinThisThread(slot);
        }
      }
      uint64_t stall = 0;
      uint64_t busy = 0;
      Segment seg;
      bool ok = gutter_free[p]->Pop(&seg, &stall);
      for (std::size_t c = p; ok && c < chunks; c += parsers) {
        std::unique_ptr<StreamCursor> cursor = stream.OpenChunk(c);
        for (;;) {
          seg.elems.resize(seg_cap);
          const auto t0 = Clock::now();
          const std::size_t n = cursor->Next(seg.elems.data(), seg_cap);
          busy += ElapsedNs(t0);
          if (n == 0) break;
          seg.elems.resize(n);
          seg.chunk = c;
          seg.end_of_chunk = false;
          // A failed push/pop means the merge aborted and closed the
          // gutters — stop parsing, the error is already decided.
          if (!gutter[p]->Push(std::move(seg), &stall) ||
              !gutter_free[p]->Pop(&seg, &stall)) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
        chunk_status[c] = cursor->status();
        seg.elems.clear();
        seg.chunk = c;
        seg.end_of_chunk = true;
        if (!gutter[p]->Push(std::move(seg), &stall)) break;
        if (c + parsers < chunks &&
            !gutter_free[p]->Pop(&seg, &stall)) {
          break;
        }
      }
      gutter[p]->Close();
      parser_stall[p] = stall;
      parser_busy[p] = busy;
    });
  }

  Status merge_error;
  std::thread merge([&] {
    if (options.pin_workers &&
        options.num_workers < std::thread::hardware_concurrency()) {
      stats_.ingest_pinned = WorkerPool::PinThisThread(options.num_workers);
    }
    BatchStager stager(options, &full, &free_buffers,
                       &stats_.ingest_stall_ns);
    bool ok = stager.Start();
    const bool check_order = !allow_disorder;
    Timestamp last_t = kMinTimestamp;
    for (std::size_t c = 0; ok && c < chunks; ++c) {
      SpscQueue<Segment>& q = *gutter[c % parsers];
      for (;;) {
        Segment seg;
        if (!q.Pop(&seg, &stats_.merge_stall_ns)) {
          // Parser vanished without an end-of-chunk marker: only happens
          // when the run is already aborting.
          if (merge_error.ok()) {
            merge_error =
                Status::Internal("sharded parse stage ended unexpectedly");
          }
          ok = false;
          break;
        }
        if (seg.end_of_chunk) {
          SGQ_CHECK_EQ(seg.chunk, c) << "gutters deliver chunks in order";
          if (!chunk_status[c].ok()) {
            merge_error = chunk_status[c];
            ok = false;
          }
          seg.elems.clear();
          gutter_free[c % parsers]->TryPush(std::move(seg));
          break;
        }
        // Chunk-local cursors validate ordering internally; the merge
        // closes the gap across chunk boundaries. (Within a chunk the
        // check never fires: front >= previous back already.)
        if (check_order && !seg.elems.empty() &&
            seg.elems.front().t < last_t) {
          merge_error = ChunkBoundaryError(c, seg.elems.front().t, last_t);
          ok = false;
        } else {
          for (const Sge& sge : seg.elems) {
            if (!(ok = stager.Emit(sge))) break;
          }
          if (!seg.elems.empty()) last_t = seg.elems.back().t;
        }
        seg.elems.clear();
        gutter_free[c % parsers]->TryPush(std::move(seg));
        if (!ok) break;
      }
    }
    if (!ok) {
      // Abort: wake every parser blocked on a gutter so the threads exit
      // (Close is safe from either side of an SPSC queue), and every
      // parser blocked inside a windowed file source's OpenChunk — a
      // chunk that will never retire once the merge stops draining.
      stream.Abort();
      for (std::size_t p = 0; p < parsers; ++p) {
        gutter[p]->Close();
        gutter_free[p]->Close();
      }
    }
    stats_.late_dropped += stager.Finish(ok);
    full.Close();
  });

  {
    ScopedThreadPin pin_exec_thread(options.pin_workers, 0);
    (void)pin_exec_thread;
    ExecuteLoop(&full, &free_buffers);
  }
  merge.join();
  for (std::thread& t : parser_threads) t.join();
  AccumulateParserStats(parsers, parser_stall.data(), parser_busy.data());
  stats_.readahead_stall_ns += stream.ReadaheadStallNs() - readahead_before;
  return merge_error;
}

}  // namespace sgq

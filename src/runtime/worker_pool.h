// Persistent worker pool driving shard-parallel waves (DESIGN.md §2.4).
//
// The Executor creates one pool per query when num_workers > 1 and reuses
// it for every wave: threads park on a condition variable between waves
// instead of being respawned, so the per-wave dispatch cost is two lock
// acquisitions per worker. The calling thread participates as worker 0 —
// a pool of N workers spawns N-1 threads.
//
// ParallelFor is a barrier: it returns only after every index has been
// processed, and the mutex hand-off publishes all worker writes to the
// caller (the merge step that follows a wave reads shard emission buffers
// without any further synchronization).
//
// Core pinning (DESIGN.md §6): with WorkerPoolOptions::pin, each spawned
// worker sets its own pthread affinity to core (pin_offset + id) mod
// hardware cores, eliminating the migration jitter a barrier pool is
// sensitive to (one late worker delays every wave). Pinning worker 0 — the
// caller — is the caller's decision (PinThisThread), because the pool does
// not own that thread. Affinity is best-effort: on platforms without
// pthread_setaffinity_np, or when the syscall is refused (containers with
// restricted cpusets), workers run unpinned and everything else behaves
// identically — pinned_workers() reports how many pins actually took.

#ifndef SGQ_RUNTIME_WORKER_POOL_H_
#define SGQ_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgq {

/// \brief Pinning configuration of a WorkerPool.
struct WorkerPoolOptions {
  /// Pin each spawned worker to core (pin_offset + worker_id) mod the
  /// hardware core count. Best-effort; see pinned_workers().
  bool pin = false;
  /// First core of the pool's pin range (worker 0, the caller, would own
  /// it; spawned workers start at pin_offset + 1).
  std::size_t pin_offset = 0;
};

/// \brief Fixed-size pool of persistent workers with barrier dispatch.
class WorkerPool {
 public:
  /// \brief Creates a pool of `num_workers` (>= 1); spawns num_workers - 1
  /// threads. A pool of 1 never spawns and runs everything inline.
  explicit WorkerPool(std::size_t num_workers,
                      WorkerPoolOptions options = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const { return num_workers_; }

  /// \brief Runs fn(0) .. fn(n-1) across the pool and waits for all of
  /// them. Index i is processed by worker (i % num_workers): with
  /// n == num_workers (the shard-per-worker case) the assignment is one
  /// task per worker and deterministic. `fn` must not call ParallelFor
  /// on the same pool (no nesting).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// \brief Spawned workers whose affinity call succeeded (0 when pinning
  /// is off or unsupported). Excludes worker 0, which the pool never pins.
  std::size_t pinned_workers() const {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  /// \brief Pins the calling thread to `cpu` mod the hardware core count.
  /// Returns false when the platform has no thread affinity or the kernel
  /// refused — callers must treat pinning as an optimization, never a
  /// requirement. Used for worker 0 (the pool's caller) and the ingest
  /// thread's dedicated slot (runtime/ingest_pipeline.cc).
  static bool PinThisThread(std::size_t cpu);

 private:
  void WorkerLoop(std::size_t worker_id);

  const std::size_t num_workers_;
  const WorkerPoolOptions options_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> pinned_workers_{0};

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mu_
  std::size_t n_ = 0;                                     // guarded by mu_
  uint64_t epoch_ = 0;            ///< bumps once per ParallelFor
  std::size_t outstanding_ = 0;   ///< workers still in the current epoch
  bool shutdown_ = false;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_WORKER_POOL_H_

// Persistent worker pool driving shard-parallel waves (DESIGN.md §2.4).
//
// The Executor creates one pool per query when num_workers > 1 and reuses
// it for every wave: threads park on a condition variable between waves
// instead of being respawned, so the per-wave dispatch cost is two lock
// acquisitions per worker. The calling thread participates as worker 0 —
// a pool of N workers spawns N-1 threads.
//
// ParallelFor is a barrier: it returns only after every index has been
// processed, and the mutex hand-off publishes all worker writes to the
// caller (the merge step that follows a wave reads shard emission buffers
// without any further synchronization).

#ifndef SGQ_RUNTIME_WORKER_POOL_H_
#define SGQ_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgq {

/// \brief Fixed-size pool of persistent workers with barrier dispatch.
class WorkerPool {
 public:
  /// \brief Creates a pool of `num_workers` (>= 1); spawns num_workers - 1
  /// threads. A pool of 1 never spawns and runs everything inline.
  explicit WorkerPool(std::size_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const { return num_workers_; }

  /// \brief Runs fn(0) .. fn(n-1) across the pool and waits for all of
  /// them. Index i is processed by worker (i % num_workers): with
  /// n == num_workers (the shard-per-worker case) the assignment is one
  /// task per worker and deterministic. `fn` must not call ParallelFor
  /// on the same pool (no nesting).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop(std::size_t worker_id);

  const std::size_t num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mu_
  std::size_t n_ = 0;                                     // guarded by mu_
  uint64_t epoch_ = 0;            ///< bumps once per ParallelFor
  std::size_t outstanding_ = 0;   ///< workers still in the current epoch
  bool shutdown_ = false;
};

}  // namespace sgq

#endif  // SGQ_RUNTIME_WORKER_POOL_H_

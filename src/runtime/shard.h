// Shard identity and tuple routing for the sharded execution engine.
//
// With ExecutorOptions::num_workers = N > 1 every operator of the compiled
// topology is instantiated N times; each instance (a *shard*) owns a
// hash-partition of the operator's state, keyed by the operator's routing
// key. The RoutingKey an operator declares per input port (see
// PhysicalOp::InputRouting) tells the exchange layer how tuples reach the
// shards:
//
//  - kEdgeValue:  hash-partition on the tuple endpoints (src, trg). Every
//                 value-equivalent tuple — including its deletion — lands
//                 on the same shard, so per-value state (join bindings,
//                 output coalescers) stays shard-local.
//  - kBroadcast:  replicate the tuple to every shard. Used by operators
//                 whose per-key state can grow from any input tuple (PATH
//                 trees are keyed by *root*, but any edge can extend any
//                 tree), trading duplicated window maintenance for
//                 coordination-free parallel traversals.
//
// The hash must be stable across runs and platforms (determinism contract,
// DESIGN.md §2.4), so it is a fixed splitmix64 finalizer rather than
// std::hash.

#ifndef SGQ_RUNTIME_SHARD_H_
#define SGQ_RUNTIME_SHARD_H_

#include <cstdint>

#include "model/types.h"

namespace sgq {

/// \brief Index of one shard of a sharded operator, in [0, num_shards).
using ShardId = uint32_t;

/// \brief How tuples arriving on an input port are distributed across the
/// destination operator's shards.
enum class RoutingKey {
  kEdgeValue,  ///< hash-partition by (src, trg); value-stable
  kBroadcast,  ///< replicate to every shard
};

/// \brief splitmix64 finalizer: a fixed, platform-independent 64-bit mixer.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Shard owning key `v` among `num_shards` partitions.
inline ShardId ShardOfVertex(VertexId v, std::size_t num_shards) {
  return static_cast<ShardId>(MixBits(static_cast<uint64_t>(v)) %
                              static_cast<uint64_t>(num_shards));
}

/// \brief Shard owning the edge value (src, trg). Deliberately ignores the
/// label: operators that key state on endpoint bindings (PATTERN) must see
/// every tuple with the same endpoints on one shard even when labels mix
/// (label-preserving UNION inputs).
inline ShardId ShardOfEdge(VertexId src, VertexId trg,
                           std::size_t num_shards) {
  const uint64_t h =
      MixBits(MixBits(static_cast<uint64_t>(src)) ^
              (static_cast<uint64_t>(trg) * 0xc2b2ae3d27d4eb4fULL));
  return static_cast<ShardId>(h % static_cast<uint64_t>(num_shards));
}

}  // namespace sgq

#endif  // SGQ_RUNTIME_SHARD_H_

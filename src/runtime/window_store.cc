#include "runtime/window_store.h"

#include <algorithm>

namespace sgq {

WindowEdgeStore* WindowStore::Acquire(const std::string& signature) {
  auto [it, inserted] = partitions_.try_emplace(signature);
  if (inserted) {
    it->second.store = std::make_unique<WindowEdgeStore>();
    it->second.store->ConfigureExpirySlide(slide_);
  } else {
    ++shared_acquires_;
  }
  ++it->second.consumers;
  return it->second.store.get();
}

Status WindowStore::Release(const std::string& signature) {
  auto it = partitions_.find(signature);
  if (it == partitions_.end()) {
    return Status::Internal("WindowStore::Release: unknown partition '" +
                            signature + "'");
  }
  if (it->second.consumers == 0) {
    return Status::Internal(
        "WindowStore::Release: partition '" + signature +
        "' has no outstanding consumers");
  }
  if (--it->second.consumers == 0) partitions_.erase(it);
  return Status::OK();
}

void WindowStore::ConfigureExpirySlide(Timestamp slide) {
  if (slide <= 0) return;
  slide_ = slide;
  for (auto& [_, p] : partitions_) p.store->ConfigureExpirySlide(slide);
}

std::size_t WindowStore::NumEntries() const {
  std::size_t n = 0;
  for (const auto& [_, p] : partitions_) n += p.store->NumEntries();
  return n;
}

std::size_t WindowStore::StateBytes() const {
  std::size_t n = 0;
  for (const auto& [_, p] : partitions_) n += p.store->StateBytes();
  return n;
}

void WindowStore::PurgeExpired(Timestamp now) {
  for (auto& [_, p] : partitions_) p.store->PurgeExpired(now);
}

void WindowStore::SerializeState(std::string* out) const {
  std::vector<const std::string*> signatures;
  signatures.reserve(partitions_.size());
  for (const auto& [sig, p] : partitions_) {
    (void)p;
    signatures.push_back(&sig);
  }
  std::sort(signatures.begin(), signatures.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  PutU32(out, static_cast<std::uint32_t>(signatures.size()));
  for (const std::string* sig : signatures) {
    PutStr(out, *sig);
    std::string blob;
    partitions_.at(*sig).store->SerializeState(&blob);
    PutStr(out, blob);
  }
}

Status WindowStore::DeserializeState(ByteReader* in) {
  const std::uint32_t n = in->U32();
  if (in->ok() && n != partitions_.size()) {
    return in->Fail("window partition count mismatch (checkpoint was taken "
                    "with a different query set): stored " +
                    std::to_string(n) + ", rebuilt " +
                    std::to_string(partitions_.size()));
  }
  for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
    const std::string sig = in->Str();
    const std::string blob = in->Str();
    if (!in->ok()) break;
    auto it = partitions_.find(sig);
    if (it == partitions_.end()) {
      return in->Fail("unknown window partition signature '" + sig +
                      "' (checkpoint was taken with a different query set)");
    }
    ByteReader sub(blob, in->context() + ": window partition '" + sig + "'");
    SGQ_RETURN_NOT_OK(it->second.store->DeserializeState(&sub));
    SGQ_RETURN_NOT_OK(sub.ExpectEnd());
  }
  return in->status();
}

}  // namespace sgq

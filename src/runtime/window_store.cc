#include "runtime/window_store.h"

namespace sgq {

WindowEdgeStore* WindowStore::Acquire(const std::string& signature) {
  auto [it, inserted] = partitions_.try_emplace(signature);
  if (inserted) {
    it->second = std::make_unique<WindowEdgeStore>();
  } else {
    ++shared_acquires_;
  }
  return it->second.get();
}

std::size_t WindowStore::NumEntries() const {
  std::size_t n = 0;
  for (const auto& [_, store] : partitions_) n += store->NumEntries();
  return n;
}

void WindowStore::PurgeExpired(Timestamp now) {
  for (auto& [_, store] : partitions_) store->PurgeExpired(now);
}

}  // namespace sgq

#include "runtime/window_store.h"

namespace sgq {

WindowEdgeStore* WindowStore::Acquire(const std::string& signature) {
  auto [it, inserted] = partitions_.try_emplace(signature);
  if (inserted) {
    it->second = std::make_unique<WindowEdgeStore>();
    it->second->ConfigureExpirySlide(slide_);
  } else {
    ++shared_acquires_;
  }
  return it->second.get();
}

void WindowStore::ConfigureExpirySlide(Timestamp slide) {
  if (slide <= 0) return;
  slide_ = slide;
  for (auto& [_, store] : partitions_) store->ConfigureExpirySlide(slide);
}

std::size_t WindowStore::NumEntries() const {
  std::size_t n = 0;
  for (const auto& [_, store] : partitions_) n += store->NumEntries();
  return n;
}

std::size_t WindowStore::StateBytes() const {
  std::size_t n = 0;
  for (const auto& [_, store] : partitions_) n += store->StateBytes();
  return n;
}

void WindowStore::PurgeExpired(Timestamp now) {
  for (auto& [_, store] : partitions_) store->PurgeExpired(now);
}

}  // namespace sgq

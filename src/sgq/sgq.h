// Umbrella header: the public API of the sgq streaming graph query
// processor. Including this header gives access to:
//
//   - the streaming graph data model (sgts, validity intervals, coalesce,
//     snapshot graphs),
//   - the SGQ query model (Regular Queries + windows) with a Datalog text
//     parser and the one-time oracle evaluator,
//   - the logical streaming graph algebra (SGA), the canonical SGQ -> SGA
//     translation and the transformation rules,
//   - the incremental query processor with its physical operators
//     (S-PATH, Δ-tree PATH, symmetric-hash-join PATTERN),
//   - the standing-query subscription session server (live attach/detach
//     of queries on a running engine — DESIGN.md §10),
//   - the DD-style baseline engine, and
//   - the workload generators and benchmark harness.

#ifndef SGQ_SGQ_H_
#define SGQ_SGQ_H_

#include "algebra/logical_plan.h"     // IWYU pragma: export
#include "algebra/transform.h"        // IWYU pragma: export
#include "algebra/translate.h"        // IWYU pragma: export
#include "baseline/engine.h"          // IWYU pragma: export
#include "common/metrics.h"           // IWYU pragma: export
#include "common/result.h"            // IWYU pragma: export
#include "common/status.h"            // IWYU pragma: export
#include "core/engine.h"              // IWYU pragma: export
#include "core/optimizer.h"           // IWYU pragma: export
#include "core/query_processor.h"     // IWYU pragma: export
#include "core/reorder_buffer.h"      // IWYU pragma: export
#include "model/coalesce.h"           // IWYU pragma: export
#include "model/file_chunk_source.h"  // IWYU pragma: export
#include "model/interval.h"           // IWYU pragma: export
#include "model/sgt.h"                // IWYU pragma: export
#include "model/snapshot_graph.h"     // IWYU pragma: export
#include "model/stream_io.h"          // IWYU pragma: export
#include "model/vocabulary.h"         // IWYU pragma: export
#include "model/window.h"             // IWYU pragma: export
#include "query/gcore.h"              // IWYU pragma: export
#include "query/normalize.h"          // IWYU pragma: export
#include "query/oracle.h"             // IWYU pragma: export
#include "query/rq.h"                 // IWYU pragma: export
#include "regex/dfa.h"                // IWYU pragma: export
#include "regex/regex.h"              // IWYU pragma: export
#include "server/session.h"           // IWYU pragma: export
#include "workload/generators.h"      // IWYU pragma: export
#include "workload/harness.h"         // IWYU pragma: export
#include "workload/queries.h"         // IWYU pragma: export

#endif  // SGQ_SGQ_H_

#include "baseline/engine.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "query/normalize.h"

namespace sgq {
namespace baseline {

namespace {
using Binding = std::unordered_map<std::string, VertexId>;
}  // namespace

Result<std::unique_ptr<DifferentialEngine>> DifferentialEngine::Create(
    const StreamingGraphQuery& query, const Vocabulary& vocab) {
  SGQ_RETURN_NOT_OK(query.rq.Validate(vocab));
  std::unique_ptr<DifferentialEngine> engine(new DifferentialEngine());
  engine->rq_ = ExpandStarClosures(query.rq);
  SGQ_RETURN_NOT_OK(engine->rq_.Validate(vocab));
  engine->vocab_ = &vocab;
  engine->window_ = query.window;
  engine->per_label_windows_ = query.per_label_windows;

  SGQ_ASSIGN_OR_RETURN(engine->topo_order_, engine->rq_.TopologicalOrder());
  for (const Rule& r : engine->rq_.rules()) {
    for (const BodyAtom& a : r.body) {
      if (a.IsClosure()) {
        SGQ_CHECK(a.closure == ClosureKind::kPlus);
        engine->alias_to_base_[a.alias] = a.label;
      }
      if (vocab.IsInputLabel(a.label)) {
        engine->input_labels_.insert(a.label);
      }
    }
  }
  Timestamp slide = kMaxTimestamp;
  for (LabelId l : engine->input_labels_) {
    const WindowSpec& w = query.WindowFor(l);
    slide = std::min(slide, w.slide);
  }
  engine->slide_ = slide == kMaxTimestamp ? 1 : slide;

  // Pre-create every relation so that references taken during epoch
  // processing are never invalidated by rehashing.
  for (LabelId l : engine->input_labels_) engine->relations_[l];
  for (const Rule& r : engine->rq_.rules()) {
    engine->relations_[r.head];
    engine->supports_[r.head];
    for (const BodyAtom& a : r.body) {
      engine->relations_[a.label];
      if (a.IsClosure()) engine->relations_[a.alias];
    }
  }
  return engine;
}

void DifferentialEngine::Push(const Sge& sge) {
  AdvanceTo(sge.t);
  ++edges_pushed_;
  if (input_labels_.count(sge.label) == 0) return;
  ++edges_processed_;
  pending_.push_back(sge);
}

void DifferentialEngine::PushAll(const InputStream& stream) {
  for (const Sge& sge : stream) Push(sge);
  if (!stream.empty()) AdvanceTo(stream.back().t + 1);
}

void DifferentialEngine::AdvanceTo(Timestamp t) {
  if (!started_) {
    next_boundary_ = (t / slide_) * slide_ + slide_;
    started_ = true;
    return;
  }
  while (next_boundary_ <= t) {
    ProcessEpoch(next_boundary_);
    next_boundary_ += slide_;
  }
}

void DifferentialEngine::ProcessEpoch(Timestamp boundary) {
  Stopwatch timer;

  // 1. Window maintenance: expirations first, then the batched arrivals.
  for (LabelId l : input_labels_) {
    auto& content = window_content_[l];
    VersionedRelation& rel = RelationOf(l);
    for (auto it = content.begin(); it != content.end();) {
      if (it->second <= boundary) {
        rel.Apply(it->first.first, it->first.second, -1);
        it = content.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const Sge& sge : pending_) {
    auto& content = window_content_[sge.label];
    VersionedRelation& rel = RelationOf(sge.label);
    const auto key = std::make_pair(sge.src, sge.trg);
    if (sge.is_deletion) {
      if (content.erase(key) > 0) rel.Apply(sge.src, sge.trg, -1);
      continue;
    }
    WindowSpec w = window_;
    auto wit = per_label_windows_.find(sge.label);
    if (wit != per_label_windows_.end()) w = wit->second;
    const Timestamp exp = w.ExpiryFor(sge.t);
    if (exp <= boundary) continue;  // expired within its own epoch
    auto [it, inserted] = content.emplace(key, exp);
    if (inserted) {
      rel.Apply(sge.src, sge.trg, +1);
    } else {
      it->second = std::max(it->second, exp);  // coalesce (Def. 11)
    }
  }
  pending_.clear();

  // 2. Propagate deltas through the dataflow in dependency order.
  for (LabelId label : topo_order_) {
    auto alias_it = alias_to_base_.find(label);
    if (alias_it != alias_to_base_.end()) {
      MaintainClosure(label, alias_it->second);
      continue;
    }
    for (const Rule* rule : rq_.RulesFor(label)) {
      EvaluateRuleDelta(*rule);
    }
  }

  // 3. Close the epoch.
  for (const SignedPair& d : RelationOf(rq_.answer()).delta()) {
    if (d.sign > 0) ++answers_emitted_;
  }
  for (auto& [label, rel] : relations_) {
    (void)label;
    rel.Commit();
  }
  epoch_latencies_.Record(timer.ElapsedSeconds());
}

void DifferentialEngine::EvaluateRuleDelta(const Rule& rule) {
  const std::size_t n = rule.body.size();
  auto effective = [&](const BodyAtom& a) {
    return a.IsClosure() ? a.alias : a.label;
  };

  auto& head_support = supports_[rule.head];
  VersionedRelation& head_rel = RelationOf(rule.head);

  for (std::size_t i = 0; i < n; ++i) {
    const BodyAtom& pivot = rule.body[i];
    // Copy: the head relation may appear in its own delta only for
    // different labels (non-recursive), but RelationOf can rehash the map.
    const std::vector<SignedPair> pivot_delta =
        RelationOf(effective(pivot)).delta();
    if (pivot_delta.empty()) continue;

    for (const SignedPair& d : pivot_delta) {
      if (pivot.src == pivot.trg && d.src != d.trg) continue;
      Binding seed;
      seed[pivot.src] = d.src;
      seed[pivot.trg] = d.trg;
      std::vector<Binding> bindings = {std::move(seed)};

      // Delta rule: atoms before the pivot read the NEW version, atoms
      // after it the OLD version (each delta-derivation counted once).
      for (std::size_t j = 0; j < n && !bindings.empty(); ++j) {
        if (j == i) continue;
        const BodyAtom& atom = rule.body[j];
        const VersionedRelation& vrel = RelationOf(effective(atom));
        const RelationVersion& rel =
            j < i ? vrel.new_version() : vrel.old_version();
        std::vector<Binding> next;
        for (const Binding& b : bindings) {
          auto s_it = b.find(atom.src);
          auto t_it = b.find(atom.trg);
          const bool s_bound = s_it != b.end();
          const bool t_bound = t_it != b.end();
          if (s_bound && t_bound) {
            if (rel.Contains(s_it->second, t_it->second)) next.push_back(b);
          } else if (s_bound) {
            for (VertexId v : rel.TargetsOf(s_it->second)) {
              if (atom.src == atom.trg && v != s_it->second) continue;
              Binding nb = b;
              nb[atom.trg] = v;
              next.push_back(std::move(nb));
            }
          } else if (t_bound) {
            for (VertexId u : rel.SourcesOf(t_it->second)) {
              Binding nb = b;
              nb[atom.src] = u;
              next.push_back(std::move(nb));
            }
          } else {
            for (const auto& [u, v] : rel.Pairs()) {
              if (atom.src == atom.trg && u != v) continue;
              Binding nb = b;
              nb[atom.src] = u;
              nb[atom.trg] = v;
              next.push_back(std::move(nb));
            }
          }
        }
        bindings = std::move(next);
      }

      // Counting IVM: a head tuple exists while its support is positive.
      for (const Binding& b : bindings) {
        const auto head_pair =
            std::make_pair(b.at(rule.head_src), b.at(rule.head_trg));
        long& support = head_support[head_pair];
        const long before = support;
        support += d.sign;
        if (before <= 0 && support > 0) {
          head_rel.Apply(head_pair.first, head_pair.second, +1);
        } else if (before > 0 && support <= 0) {
          head_rel.Apply(head_pair.first, head_pair.second, -1);
        }
      }
    }
  }
}

void DifferentialEngine::MaintainClosure(LabelId alias, LabelId base) {
  VersionedRelation& base_rel = RelationOf(base);
  VersionedRelation& tc = RelationOf(alias);
  if (!base_rel.HasDelta()) return;

  // DRed-flavoured maintenance: every source that (in the old closure)
  // reached the source endpoint of a changed base edge may gain or lose
  // tuples; recompute those rows from scratch over the new base relation.
  std::set<VertexId> affected;
  for (const SignedPair& d : base_rel.delta()) {
    affected.insert(d.src);
    for (VertexId x : tc.old_version().SourcesOf(d.src)) {
      affected.insert(x);
    }
  }

  const RelationVersion& adj = base_rel.new_version();
  for (VertexId x : affected) {
    // BFS (semi-naive re-derivation) for the row of x.
    std::set<VertexId> reach;
    std::queue<VertexId> q;
    q.push(x);
    while (!q.empty()) {
      VertexId u = q.front();
      q.pop();
      for (VertexId v : adj.TargetsOf(u)) {
        if (reach.insert(v).second) q.push(v);
      }
    }
    std::set<VertexId> current;
    for (VertexId y : tc.new_version().TargetsOf(x)) current.insert(y);
    for (VertexId y : reach) {
      if (current.count(y) == 0) tc.Apply(x, y, +1);
    }
    for (VertexId y : current) {
      if (reach.count(y) == 0) tc.Apply(x, y, -1);
    }
  }
}

VertexPairSet DifferentialEngine::Answers() const {
  VertexPairSet out;
  auto it = relations_.find(rq_.answer());
  if (it == relations_.end()) return out;
  for (const auto& [s, t] : it->second.new_version().Pairs()) {
    out.insert({s, t});
  }
  return out;
}

}  // namespace baseline
}  // namespace sgq

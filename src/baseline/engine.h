// Epoch-batched incremental Datalog engine: the Differential-Dataflow-style
// baseline of §7.2.2 (see DESIGN.md for the substitution rationale).
//
// The engine evaluates the same SGQ as the SGA query processor but in the
// general-purpose IVM style the paper attributes to DD:
//  - all arrivals within one slide interval are batched into an epoch and
//    processed together under one logical timestamp (which is why its
//    throughput grows with the slide interval, Fig. 11);
//  - non-recursive rules are maintained with counting IVM (a head tuple's
//    support is its number of derivations);
//  - transitive closures are maintained with semi-naive evaluation plus
//    DRed-style delete/re-derive: every source whose reachable set may be
//    affected is recomputed, which ignores the temporal structure of
//    sliding windows and is therefore expensive on dense cyclic graphs
//    (the SO dataset) — the behaviour Table 2 demonstrates.

#ifndef SGQ_BASELINE_ENGINE_H_
#define SGQ_BASELINE_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "baseline/relation.h"
#include "common/metrics.h"
#include "common/result.h"
#include "model/sgt.h"
#include "model/vocabulary.h"
#include "query/oracle.h"
#include "query/rq.h"

namespace sgq {
namespace baseline {

/// \brief Incremental evaluator of an SGQ over epoch-batched windows.
class DifferentialEngine {
 public:
  /// \brief Prepares the dataflow for `query` (stars are normalized away;
  /// the query must be a valid SGQ).
  static Result<std::unique_ptr<DifferentialEngine>> Create(
      const StreamingGraphQuery& query, const Vocabulary& vocab);

  /// \brief Feeds one stream element (buffered until its epoch closes).
  void Push(const Sge& sge);

  /// \brief Feeds a whole stream in order and closes the final epoch —
  /// the batch driver loop mirroring QueryProcessor::PushAll.
  void PushAll(const InputStream& stream);

  /// \brief Advances the clock to `t`, closing and processing every epoch
  /// boundary passed on the way.
  void AdvanceTo(Timestamp t);

  /// \brief Current content of the Answer relation (as of the last closed
  /// epoch).
  VertexPairSet Answers() const;

  /// \name Metrics
  /// @{
  const LatencyRecorder& epoch_latencies() const { return epoch_latencies_; }
  std::size_t edges_pushed() const { return edges_pushed_; }
  std::size_t edges_processed() const { return edges_processed_; }
  std::size_t answers_emitted() const { return answers_emitted_; }
  /// @}

 private:
  DifferentialEngine() = default;

  /// Closes the epoch ending at `boundary`: expires window content, applies
  /// buffered arrivals, and propagates deltas through the dataflow in
  /// topological order.
  void ProcessEpoch(Timestamp boundary);

  /// Delta-rule evaluation for one rule; updates support counts and applies
  /// net changes to the head relation.
  void EvaluateRuleDelta(const Rule& rule);

  /// Semi-naive + DRed maintenance of a transitive-closure alias.
  void MaintainClosure(LabelId alias, LabelId base);

  VersionedRelation& RelationOf(LabelId label) {
    return relations_[label];
  }

  // --- query structure ---
  RegularQuery rq_;  // star-normalized
  const Vocabulary* vocab_ = nullptr;
  WindowSpec window_;
  std::unordered_map<LabelId, WindowSpec> per_label_windows_;
  std::vector<LabelId> topo_order_;
  std::unordered_map<LabelId, LabelId> alias_to_base_;
  std::set<LabelId> input_labels_;

  // --- state ---
  std::unordered_map<LabelId, VersionedRelation> relations_;
  /// Support counts of rule-derived tuples (counting IVM).
  std::unordered_map<LabelId,
                     std::map<std::pair<VertexId, VertexId>, long>>
      supports_;
  /// Window content per input label: (src,trg) -> expiry (coalesced max).
  std::unordered_map<LabelId,
                     std::map<std::pair<VertexId, VertexId>, Timestamp>>
      window_content_;
  /// Arrivals buffered for the open epoch.
  std::vector<Sge> pending_;

  Timestamp slide_ = 1;
  Timestamp next_boundary_ = kMinTimestamp;
  bool started_ = false;

  LatencyRecorder epoch_latencies_;
  std::size_t edges_pushed_ = 0;
  std::size_t edges_processed_ = 0;
  std::size_t answers_emitted_ = 0;
};

}  // namespace baseline
}  // namespace sgq

#endif  // SGQ_BASELINE_ENGINE_H_

#include "baseline/relation.h"

#include <algorithm>

namespace sgq {
namespace baseline {

namespace {
const std::vector<VertexId> kEmpty;

void EraseValue(std::vector<VertexId>* vec, VertexId v) {
  auto it = std::find(vec->begin(), vec->end(), v);
  if (it != vec->end()) {
    *it = vec->back();
    vec->pop_back();
  }
}

}  // namespace

bool RelationVersion::Contains(VertexId src, VertexId trg) const {
  auto it = by_src_.find(src);
  if (it == by_src_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), trg) !=
         it->second.end();
}

void RelationVersion::Insert(VertexId src, VertexId trg) {
  if (Contains(src, trg)) return;
  by_src_[src].push_back(trg);
  by_trg_[trg].push_back(src);
  ++size_;
}

void RelationVersion::Erase(VertexId src, VertexId trg) {
  if (!Contains(src, trg)) return;
  EraseValue(&by_src_[src], trg);
  EraseValue(&by_trg_[trg], src);
  --size_;
}

const std::vector<VertexId>& RelationVersion::TargetsOf(VertexId src) const {
  auto it = by_src_.find(src);
  return it == by_src_.end() ? kEmpty : it->second;
}

const std::vector<VertexId>& RelationVersion::SourcesOf(VertexId trg) const {
  auto it = by_trg_.find(trg);
  return it == by_trg_.end() ? kEmpty : it->second;
}

std::vector<std::pair<VertexId, VertexId>> RelationVersion::Pairs() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(size_);
  for (const auto& [src, targets] : by_src_) {
    for (VertexId trg : targets) out.emplace_back(src, trg);
  }
  return out;
}

void VersionedRelation::Apply(VertexId src, VertexId trg, int sign) {
  if (sign > 0) {
    if (new_.Contains(src, trg)) return;
    new_.Insert(src, trg);
    delta_.push_back(SignedPair{src, trg, +1});
  } else {
    if (!new_.Contains(src, trg)) return;
    new_.Erase(src, trg);
    delta_.push_back(SignedPair{src, trg, -1});
  }
}

void VersionedRelation::Commit() {
  for (const SignedPair& d : delta_) {
    if (d.sign > 0) {
      old_.Insert(d.src, d.trg);
    } else {
      old_.Erase(d.src, d.trg);
    }
  }
  delta_.clear();
}

}  // namespace baseline
}  // namespace sgq

// Versioned binary relations for the epoch-batched incremental engine
// (the Differential-Dataflow-style baseline, see DESIGN.md substitutions).
//
// During an epoch transition each relation exposes its OLD version (state
// at the previous epoch), its NEW version (old + delta), and the signed
// delta itself — exactly the three views the classical delta rule
//   Δ(A1 ⋈ ... ⋈ An) = Σ_i  A1^new ⋈ ... ⋈ ΔAi ⋈ ... ⋈ An^old
// consumes.

#ifndef SGQ_BASELINE_RELATION_H_
#define SGQ_BASELINE_RELATION_H_

#include <unordered_map>
#include <vector>

#include "model/types.h"

namespace sgq {
namespace baseline {

/// \brief A vertex pair with a diff sign (+1 insert, -1 delete).
struct SignedPair {
  VertexId src;
  VertexId trg;
  int sign;
};

/// \brief One version (old or new) of a binary relation, with probe
/// indexes by source and by target.
class RelationVersion {
 public:
  bool Contains(VertexId src, VertexId trg) const;
  void Insert(VertexId src, VertexId trg);
  void Erase(VertexId src, VertexId trg);

  const std::vector<VertexId>& TargetsOf(VertexId src) const;
  const std::vector<VertexId>& SourcesOf(VertexId trg) const;

  /// \brief All pairs (unordered).
  std::vector<std::pair<VertexId, VertexId>> Pairs() const;

  std::size_t Size() const { return size_; }

 private:
  std::unordered_map<VertexId, std::vector<VertexId>> by_src_;
  std::unordered_map<VertexId, std::vector<VertexId>> by_trg_;
  std::size_t size_ = 0;
};

/// \brief A relation with old/new versions and the epoch delta.
class VersionedRelation {
 public:
  const RelationVersion& old_version() const { return old_; }
  const RelationVersion& new_version() const { return new_; }
  const std::vector<SignedPair>& delta() const { return delta_; }

  /// \brief Applies a signed change to the NEW version and records it in
  /// the delta. Idempotent per set semantics: inserting a present pair or
  /// deleting an absent one is a no-op.
  void Apply(VertexId src, VertexId trg, int sign);

  /// \brief Finishes the epoch: old := new, delta cleared.
  void Commit();

  bool HasDelta() const { return !delta_.empty(); }

 private:
  RelationVersion old_;
  RelationVersion new_;
  std::vector<SignedPair> delta_;
};

}  // namespace baseline
}  // namespace sgq

#endif  // SGQ_BASELINE_RELATION_H_

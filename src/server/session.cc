#include "server/session.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/string_util.h"
#include "workload/queries.h"

namespace sgq {

namespace {

/// First whitespace-delimited token of `line` and the remainder (with the
/// separating whitespace stripped).
std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  std::size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos) return {"", ""};
  std::size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) {
    std::string cmd = line.substr(start);
    while (!cmd.empty() && (cmd.back() == '\r' || cmd.back() == '\n')) {
      cmd.pop_back();
    }
    return {cmd, ""};
  }
  std::string rest = line.substr(line.find_first_not_of(" \t", end) ==
                                         std::string::npos
                                     ? line.size()
                                     : line.find_first_not_of(" \t", end));
  while (!rest.empty() && (rest.back() == '\r' || rest.back() == '\n')) {
    rest.pop_back();
  }
  return {line.substr(start, end - start), rest};
}

}  // namespace

SessionServer::SessionServer(SessionOptions options, Vocabulary* vocab)
    : options_(std::move(options)), vocab_(vocab),
      engine_(options_.engine) {}

Status SessionServer::Init() {
  if (initialized_) return Status::Internal("SessionServer::Init twice");
  // Finalizing with zero queries fixes the slide granularity at 1 — the
  // finest possible — so no later SUBSCRIBE can be refused for its slide.
  SGQ_RETURN_NOT_OK(engine_.Finalize());
  initialized_ = true;
  return Status::OK();
}

void SessionServer::StreamResults(QueryId q, std::ostream& out) {
  for (const Sgt& r : engine_.TakeResults(q)) {
    out << "s" << q << "\t" << r.ToString(*vocab_) << "\n";
  }
}

Status SessionServer::HandleLine(const std::string& line,
                                 const InputStream& stream, std::ostream& out,
                                 bool* quit) {
  if (!initialized_) return Status::Internal("SessionServer not initialized");
  auto [cmd, rest] = SplitCommand(line);
  if (cmd.empty() || cmd[0] == '#') return Status::OK();  // blank / comment

  // Subscription-id commands share the validation: a live id in range.
  auto parse_live_id = [&](QueryId* q) -> bool {
    std::int64_t id = 0;
    if (!ParseInt64(rest.c_str(), &id) || id < 0 ||
        static_cast<std::size_t>(id) >= engine_.num_queries()) {
      out << "ERR unknown subscription '" << rest << "'\n";
      return false;
    }
    if (!engine_.IsLive(static_cast<QueryId>(id))) {
      out << "ERR subscription " << id << " is already unsubscribed\n";
      return false;
    }
    *q = static_cast<QueryId>(id);
    return true;
  };

  if (cmd == "SUBSCRIBE") {
    if (rest.empty()) {
      out << "ERR SUBSCRIBE needs a query\n";
      return Status::OK();
    }
    auto query = MakeQuery(rest, options_.window, vocab_);
    if (!query.ok()) {
      out << "ERR " << query.status().message() << "\n";
      return Status::OK();
    }
    auto id = engine_.AddQuery(*query, *vocab_);
    if (!id.ok()) {
      out << "ERR " << id.status().message() << "\n";
      return Status::OK();
    }
    out << "SUBSCRIBED " << *id << "\n";
  } else if (cmd == "UNSUBSCRIBE") {
    QueryId q;
    if (!parse_live_id(&q)) return Status::OK();
    // Drain before detach: RemoveQuery destroys the sink, and buffered
    // results belong to the subscriber.
    StreamResults(q, out);
    Status st = engine_.RemoveQuery(q);
    if (!st.ok()) {
      out << "ERR " << st.message() << "\n";
      return Status::OK();
    }
    out << "UNSUBSCRIBED " << q << "\n";
  } else if (cmd == "RESULTS") {
    QueryId q;
    if (!parse_live_id(&q)) return Status::OK();
    StreamResults(q, out);
    out << "OK " << q << "\n";
  } else if (cmd == "INGEST") {
    std::size_t n = 0;
    if (rest == "ALL") {
      n = stream.size() - position_;
    } else {
      std::int64_t parsed = 0;
      if (!ParseInt64(rest.c_str(), &parsed) || parsed < 0) {
        out << "ERR INGEST expects a count or ALL, got '" << rest << "'\n";
        return Status::OK();
      }
      n = std::min(static_cast<std::size_t>(parsed),
                   stream.size() - position_);
    }
    for (std::size_t i = 0; i < n; ++i) engine_.Push(stream[position_ + i]);
    position_ += n;
    // New results stream eagerly, in subscription-id order (deterministic:
    // each sink's buffer order is the engine's delivery order).
    for (std::size_t q = 0; q < engine_.num_queries(); ++q) {
      if (engine_.IsLive(static_cast<QueryId>(q))) {
        StreamResults(static_cast<QueryId>(q), out);
      }
    }
    out << "INGESTED " << n << "\n";
  } else if (cmd == "QUIT") {
    out << "BYE\n";
    *quit = true;
  } else {
    out << "ERR unknown command '" << cmd << "'\n";
  }
  return Status::OK();
}

Status SessionServer::Run(const InputStream& stream, std::istream& in,
                          std::ostream& out) {
  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    SGQ_RETURN_NOT_OK(HandleLine(line, stream, out, &quit));
    out.flush();  // interactive transports see each response promptly
  }
  return Status::OK();
}

}  // namespace sgq

// Standing-query subscription sessions (DESIGN.md §10): a line-oriented
// control protocol that attaches and detaches queries on a RUNNING
// Engine, interleaved with stream ingest. The transport is any
// std::istream/std::ostream pair — the CLI wires it to stdin/stdout
// (`stream_query_cli --serve`), tests drive it from string streams.
//
// Protocol (one command per line, responses and results on stdout):
//
//   SUBSCRIBE <datalog rules>     -> SUBSCRIBED <id>
//       Compiles the query onto the running engine (live attach, at a
//       batch boundary). The query sees the stream from this point on;
//       when it shares an operator subtree with running subscriptions it
//       adopts that subtree's accumulated window state (the sharing is
//       the point — DESIGN.md §3).
//   UNSUBSCRIBE <id>              -> pending results, UNSUBSCRIBED <id>
//       Drains the subscription's buffered results, then detaches it via
//       Engine::RemoveQuery — operators only it referenced are destroyed
//       and their state released. The id is never reused.
//   RESULTS <id>                  -> results, OK <id>
//       Drains and prints the subscription's accumulated results.
//   INGEST <n|ALL>                -> results of all live subscriptions,
//                                    INGESTED <count>
//       Pushes the next n elements (or the whole remainder) of the
//       session's stream, then streams every live subscription's new
//       results in subscription-id order.
//   QUIT                          -> BYE
//       Ends the session (EOF does the same, without the BYE).
//
// Every result line is tagged `s<id>\t` so per-subscription output can
// be separated (`grep '^s0'`); a refused command prints `ERR <reason>`
// and leaves the session — and the engine — running.
//
// Determinism: with num_workers=1 and batch_size=1 a subscription that
// attaches fresh (sharing nothing) at stream position k produces results
// byte-identical to a static `--query` run over the stream suffix [k..);
// one attached before any ingest matches the full static run. The CI
// session smoke test (scripts/session_smoke.sh) enforces both.

#ifndef SGQ_SERVER_SESSION_H_
#define SGQ_SERVER_SESSION_H_

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "model/stream_io.h"
#include "model/vocabulary.h"
#include "model/window.h"

namespace sgq {

/// \brief Configuration of a subscription session.
struct SessionOptions {
  /// Runtime configuration of the hosted engine. The session engine is
  /// finalized EMPTY (before the first SUBSCRIBE), which fixes the slide
  /// granularity at 1 — every later attach is admissible and, at
  /// num_workers=1/batch_size=1, byte-identical to a static run.
  EngineOptions engine;
  /// Window attached to every subscribed query (the CLI's window/slide
  /// positionals).
  WindowSpec window;
};

/// \brief Hosts one Engine behind the SUBSCRIBE/UNSUBSCRIBE/INGEST line
/// protocol above. Subscription ids are the engine's QueryIds: assigned
/// in SUBSCRIBE order, never reused after UNSUBSCRIBE.
class SessionServer {
 public:
  /// \brief `vocab` is shared with the stream parse (result text resolves
  /// through it) and must outlive the server.
  SessionServer(SessionOptions options, Vocabulary* vocab);

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// \brief Finalizes the (empty) engine; call once before Run/HandleLine.
  Status Init();

  /// \brief Runs the command loop over `in`/`out` until QUIT or EOF,
  /// drawing INGEST elements from `stream` (timestamp-ordered). Protocol
  /// errors (unparsable query, unknown id) are reported inline as ERR
  /// lines and do not end the session; only transport failure does.
  Status Run(const InputStream& stream, std::istream& in, std::ostream& out);

  /// \brief Dispatches one protocol line (the Run loop body; tests call
  /// it directly). Sets `*quit` on QUIT.
  Status HandleLine(const std::string& line, const InputStream& stream,
                    std::ostream& out, bool* quit);

  /// \brief Elements of the session stream ingested so far.
  std::size_t position() const { return position_; }

  /// \brief The hosted engine (refcount/StateBytes introspection).
  Engine& engine() { return engine_; }

 private:
  /// \brief Drains query `q`'s buffered results to `out`, one
  /// `s<id>\t<sgt>` line each.
  void StreamResults(QueryId q, std::ostream& out);

  SessionOptions options_;
  Vocabulary* vocab_;
  Engine engine_;
  std::size_t position_ = 0;  ///< cursor into the session stream
  bool initialized_ = false;
};

}  // namespace sgq

#endif  // SGQ_SERVER_SESSION_H_

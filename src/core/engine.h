// Multi-query engine: hosts N persistent queries on one shared Executor
// with cross-query operator sharing.
//
// The paper evaluates one standing query per engine; a production service
// evaluates many against the same stream, and real workloads overlap
// heavily (Zervakis et al., "Efficient Continuous Multi-Query Processing
// over Graph Streams"). The Engine exploits that: every registered logical
// plan is compiled onto the *same* dataflow topology, and any subtree whose
// canonical PlanSignature (algebra/translate.h) matches an already-compiled
// subtree resolves to the existing physical operator — its output channel
// simply fans out to the new consumer. A WSCAN, FILTER chain, PATH (equal
// regex + window + input) or whole PATTERN prefix referenced by K queries
// therefore runs ONCE per stream element, regardless of K; only the
// disjoint suffixes and the per-query SinkOps multiply.
//
// Sharing rules (what is shareable and why — see DESIGN.md §3):
//  - signature equality is the *sole* criterion: PlanSignature equality
//    implies output-stream equality for every input, so fanning one
//    operator out to every consumer is behaviorally invisible;
//  - PATTERN variables are alpha-renamed inside the signature, so patterns
//    differing only in variable spelling share;
//  - operators with signature-distinct inputs are never merged, which
//    keeps the per-operator WindowStore partition discipline (PATTERN
//    deletion replay) intact — distinct operators keep distinct `atom:`
//    partitions exactly as before;
//  - the physical PATH implementation is engine-wide (EngineOptions::
//    path_impl), so a signature never aliases two different operator
//    implementations.
//
// Output demultiplexing: every query gets its own SinkOp appended after
// its (possibly shared) root, so per-query results accumulate
// independently. With num_workers = 1 and batch_size = 1 each query's
// result stream is byte-identical to compiling it alone: a shared
// operator's emissions are a pure function of the input stream, and the
// depth-first tuple-mode drain preserves each query's relative delivery
// order under fan-out. Larger batches and sharded execution keep the
// established runtime contract (snapshot-equivalent, run-to-run
// deterministic). tests/multi_query_test.cc verifies all three.

#ifndef SGQ_CORE_ENGINE_H_
#define SGQ_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/basic_ops.h"
#include "core/physical.h"
#include "model/checkpoint.h"
#include "model/stream_io.h"
#include "query/rq.h"
#include "runtime/executor.h"

namespace sgq {

/// \brief Identifier of one registered query inside an Engine.
using QueryId = int32_t;

/// \brief Engine configuration.
struct EngineOptions {
  /// Physical implementation chosen for PATH operators (§6.2.3/§6.2.4).
  /// Engine-wide: a shared subtree must resolve to one implementation.
  PathImpl path_impl = PathImpl::kSPath;
  /// Coalesce value-equivalent results at each query's sink (Def. 11).
  bool coalesce_output = true;
  /// Micro-batch size of the runtime's ingest queue. 1 (the default)
  /// reproduces tuple-at-a-time semantics exactly; larger values trade
  /// result latency for throughput (results materialize when the batch
  /// flushes — on overflow, timestamp change handling, AdvanceTo, or
  /// TakeResults).
  std::size_t batch_size = 1;
  /// Number of runtime workers (DESIGN.md §2.4). 1 (the default) runs the
  /// classic single-threaded engine byte-identically. N > 1 compiles every
  /// operator into N shard instances whose state is hash-partitioned by
  /// the operator's routing key, and drives waves shard-parallel on a
  /// persistent worker pool; results are snapshot-equivalent to
  /// num_workers = 1 and deterministic run-to-run. Best combined with
  /// batch_size > 1 so each wave carries enough tuples to spread.
  std::size_t num_workers = 1;
  /// Share signature-identical operator subtrees across registered
  /// queries (DESIGN.md §3). When false, sharing is scoped to one query
  /// (each AddPlan compiles a private topology) — the ablation baseline
  /// bench_multi_query measures against.
  bool cross_query_sharing = true;
  /// Sharded execution: dispatch an operator's time-advance wave to the
  /// worker pool once any one of its shards holds at least this much
  /// state, in addition to the operators that declare HasTimeDrivenWork()
  /// (DESIGN.md §2.4). 0 disables the state heuristic. Forwarded to
  /// ExecutorOptions under the same name.
  std::size_t time_advance_parallel_state_bar =
      kDefaultTimeAdvanceParallelStateBar;
  /// Double-buffered async ingest (DESIGN.md §6): PushAll/RunPipelined
  /// produce batch N+1 (stream parsing included) on a dedicated ingest
  /// thread while batch N executes. Execution order is unchanged, so
  /// results keep the exact contract of the synchronous path
  /// (byte-identical at num_workers=1/batch_size=1). Forwarded to
  /// ExecutorOptions under the same name, like the knobs below.
  bool async_ingest = false;
  /// Ready-batch queue depth of the ingest pipeline (backpressure bound).
  std::size_t ingest_queue_depth = 4;
  /// Pin runtime threads to cores: workers to [0, num_workers), the
  /// ingest thread to the next slot. Best-effort pthread affinity with
  /// silent fallback on unsupported platforms.
  bool pin_workers = false;
  /// Out-of-order slack absorbed by the async ingest stage (elements more
  /// than this far behind the newest seen timestamp are dropped late).
  /// Only meaningful with async_ingest through RunPipelined.
  Timestamp ingest_slack = 0;
  /// Parser threads of the sharded parse stage (DESIGN.md §6): N > 1
  /// decodes stream chunks on N threads behind an order-restoring merge;
  /// 1 (the default) keeps the classic single-producer ingest thread.
  /// Only meaningful with async_ingest (RunPipelinedSharded). Forwarded
  /// to ExecutorOptions under the same name.
  std::size_t ingest_parsers = 1;
  /// Declared encoding of raw stream bytes fed through the parse-as-you-
  /// go ingest paths (workload/harness.h RunSgaText, the CLI): CSV text
  /// or the SGQB binary record format. Engine-level only — the executor
  /// sees decoded elements either way.
  StreamFormat ingest_format = StreamFormat::kCsv;
  /// How file-backed ingest (workload/harness.h RunSgaFile, the CLI's
  /// async path) maps stream bytes: mmap with sequential readahead where
  /// available (kAuto), forced mmap, or portable buffered preads. Either
  /// way the file is served through a bounded readahead window — peak
  /// ingest-buffer memory is O(ingest_readahead_chunks · ~256 KB), not
  /// O(file) — and the decoded element sequence is byte-identical to
  /// materializing the file first (model/file_chunk_source.h).
  FileIngestMode ingest_file_mode = FileIngestMode::kAuto;
  /// Readahead window of file-backed ingest, in chunks: how many chunks
  /// may be resolved but not yet retired at once. Clamped to at least
  /// ingest_parsers + 1 by RunSgaFile so every parser can hold a chunk
  /// while one more loads.
  std::size_t ingest_readahead_chunks = 8;
  /// Query-index dispatch (DESIGN.md §3.1): consult the label ->
  /// posting-list discrimination index built at AddQuery compile time so
  /// per-edge dispatch cost tracks the operators whose admission
  /// predicate can match, not the registered-query population K. On (the
  /// default) is byte-identical to off at num_workers=1/batch_size=1 and
  /// snapshot-equivalent + deterministic sharded; off restores the legacy
  /// full-scan dispatch (the `--no-query-index` escape hatch). Forwarded
  /// to ExecutorOptions under the same name.
  bool use_query_index = true;
};

/// \brief N persistent queries compiled onto one shared dataflow.
///
/// Typical use:
/// \code
///   Engine engine(options);
///   QueryId q0 = *engine.AddQuery(query0, vocab);
///   QueryId q1 = *engine.AddQuery(query1, vocab);
///   engine.Finalize().IgnoreError();  // check in real code
///   for (const Sge& e : stream) engine.Push(e);
///   for (const Sgt& r : engine.results(q0)) ...
/// \endcode
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// \name Registration (batch before Finalize, live after — DESIGN.md §10)
  /// @{

  /// \brief Compiles `plan` onto the shared topology, reusing every
  /// already-compiled subtree with an equal canonical signature, and
  /// appends a per-query sink.
  ///
  /// Callable before Finalize (batch registration) AND after (live
  /// attach): a finalized engine validates the plan up front — including
  /// that no window slide is finer than the running granularity, which is
  /// fixed at Finalize — flushes any buffered micro-batch (attach happens
  /// at a batch boundary), compiles the plan, and binds the appended
  /// operators incrementally. A refused live attach (malformed plan,
  /// too-fine slide) leaves the engine untouched and running. A
  /// live-attached query sees the stream from its attach point onward;
  /// when it shares a subtree with running queries it adopts that
  /// subtree's accumulated state (the sharing is the point). Not callable
  /// concurrently with an async ingest pipeline.
  Result<QueryId> AddPlan(const LogicalOp& plan, const Vocabulary& vocab);

  /// \brief Translates the SGQ to its canonical plan and registers it.
  Result<QueryId> AddQuery(const StreamingGraphQuery& query,
                           const Vocabulary& vocab);

  /// \brief Finalizes the runtime topology and fixes the slide
  /// granularity. Must be called once before ingesting; afterwards
  /// AddQuery/RemoveQuery keep working live at batch boundaries.
  Status Finalize();

  /// \brief Detaches a live query from the running engine without
  /// rebuilding the executor (DESIGN.md §10). Operators are
  /// reference-counted by the queries whose canonical plan signatures
  /// reach them: removal decrements the refcounts of `q`'s reachable
  /// operators, and every operator that drops to zero is unlinked from
  /// its surviving producers, deregistered from the query index and the
  /// expiry machinery, and destroyed together with its window-store
  /// partitions and (future) checkpoint sections. O(removed subtree).
  ///
  /// Surviving queries are byte-identical to a never-added run at
  /// workers=1 (snapshot-equivalent sharded) provided the removed query
  /// did not own the engine's finest slide — the granularity stays fixed
  /// at the finest slide ever registered. The QueryId is never reused;
  /// results(q)/TakeResults(q) on a removed query are programmer errors.
  /// Callable at any batch boundary; flushes buffered input first. Not
  /// callable concurrently with an async ingest pipeline.
  Status RemoveQuery(QueryId q);

  /// \brief Whether query `q` is still attached (false after RemoveQuery).
  bool IsLive(QueryId q) const;
  /// @}

  /// \name Streaming (after Finalize)
  /// @{

  /// \brief Feeds one stream element to every registered query;
  /// timestamps must be non-decreasing. Elements whose label no query
  /// consumes are discarded (§7.2.1).
  void Push(const Sge& sge) { executor_.Ingest(sge); }

  /// \name Checkpoint/restore (model/checkpoint.h, DESIGN.md §7)
  ///
  /// Checkpoint() is callable at any batch boundary — i.e. between Push()
  /// calls on the synchronous ingest path (no wave is ever in flight
  /// there; a pending partial micro-batch is captured and restored, so
  /// batch grouping survives the restart). It is NOT callable while an
  /// async ingest pipeline is running. Restore() runs on a freshly built
  /// engine: construct with the same EngineOptions, re-register the same
  /// queries in the same order, Finalize(), then Restore. At workers=1 a
  /// resumed run is byte-identical to the uninterrupted one; sharded runs
  /// keep the snapshot-equivalent + deterministic contract.
  /// @{

  /// \brief Writes a complete SGQC snapshot to `path`. State serialization
  /// runs synchronously (the measured ingest stall, checkpoint_write_ns);
  /// the durable file write (temp + fsync + atomic rename) happens on a
  /// background thread, joined by the next Checkpoint()/WaitForCheckpoint()
  /// or the destructor. `vocab` (when given) is captured for restore-time
  /// verification; `extra` sections are stored verbatim (the CLI uses one
  /// for its reorder-buffer stage). Section names starting with "x-" are
  /// reserved for extras.
  Status Checkpoint(const std::string& path,
                    const Vocabulary* vocab = nullptr,
                    std::vector<std::pair<std::string, std::string>> extra =
                        {});

  /// \brief Loads and fully validates the SGQC snapshot at `path` (CRCs,
  /// version, EngineOptions identity keys, query set, topology), then
  /// restores every operator, window partition, and the clock. Any
  /// validation failure leaves no partial restore observable — the engine
  /// must be discarded (state may be partially populated internally).
  /// `vocab` is verified-and-adopted: every stored name is re-interned and
  /// must resolve to its stored id. Extra sections ("x-…") are returned
  /// through `extra_out` when present.
  Status Restore(const std::string& path, Vocabulary* vocab = nullptr,
                 std::unordered_map<std::string, std::string>* extra_out =
                     nullptr);

  /// \brief Joins the in-flight background checkpoint write, surfacing its
  /// status (OK when none is pending).
  Status WaitForCheckpoint();

  /// \brief Stream elements ingested across restarts: elements pushed into
  /// this engine plus those replayed from a restored checkpoint. A resume
  /// driver skips this many elements of the original stream.
  std::uint64_t ingested() const {
    return restored_ingested_ + executor_.edges_pushed();
  }

  /// \brief Cumulative synchronous checkpoint stall (state serialization,
  /// nanoseconds) and total checkpoint bytes encoded.
  std::uint64_t checkpoint_write_ns() const { return checkpoint_write_ns_; }
  std::uint64_t checkpoint_bytes() const { return checkpoint_bytes_; }
  /// @}

  /// \brief Feeds a whole stream in order and flushes the ingest queue.
  /// With options().async_ingest, runs through the double-buffered ingest
  /// pipeline instead of pushing inline (same results).
  void PushAll(const InputStream& stream);

  /// \brief Pipelined ingest over an arbitrary element producer (stream
  /// parsers, generators): producer work runs on the dedicated ingest
  /// thread, execution on the calling thread; returns when the producer
  /// is exhausted and every batch has executed (runtime/ingest_pipeline.h).
  void RunPipelined(const IngestProducer& fill) {
    executor_.RunPipelined(fill);
  }

  /// \brief Sharded-parse pipelined ingest: options().ingest_parsers
  /// threads decode `stream`'s chunks behind an order-restoring merge;
  /// parse errors surface as the returned Status (elements preceding the
  /// error still execute). See runtime/ingest_pipeline.h.
  Status RunPipelinedSharded(const ChunkedStream& stream) {
    return executor_.RunPipelinedSharded(stream);
  }

  /// \brief Cumulative async-ingest pipeline counters (zeros when the
  /// pipeline never ran).
  const IngestStats& ingest_stats() const {
    return executor_.ingest_stats();
  }

  /// \brief Advances time (processing slide boundaries and expirations)
  /// without new input, e.g. to drain final window movements.
  void AdvanceTo(Timestamp t) { executor_.AdvanceTo(t); }

  /// \brief Drains any buffered micro-batch (no-op at batch_size 1).
  void Flush() { executor_.Flush(); }
  /// @}

  /// \name Per-query results (demux)
  /// @{

  /// \brief Total registrations ever (QueryId range); removed queries
  /// keep their id. See NumLiveQueries() for the attached population.
  std::size_t num_queries() const { return sinks_.size(); }

  /// \brief Queries currently attached (registered minus removed).
  std::size_t NumLiveQueries() const { return live_queries_; }

  /// \brief All results query `q` emitted so far (coalesced if
  /// configured). With batch_size > 1, reflects the input flushed so far.
  const std::vector<Sgt>& results(QueryId q) const {
    return sink(q)->results();
  }

  /// \brief Moves query `q`'s accumulated results out (resets its result
  /// buffer, not any operator state). Flushes buffered input first.
  std::vector<Sgt> TakeResults(QueryId q) {
    executor_.Flush();
    return sink(q)->TakeResults();
  }

  std::size_t results_emitted(QueryId q) const {
    return sink(q)->total_emitted();
  }

  /// \brief The (possibly shared) physical root operator of query `q`.
  OpId QueryRoot(QueryId q) const;
  /// @}

  /// \name Sharing introspection
  /// @{

  /// \brief Physical operators alive (instantiated minus removed),
  /// per-query sinks included. Registering the same plan K times yields
  /// NumOperators(1 plan) + K - 1 (each extra registration adds only its
  /// sink); removing a query subtracts exactly the operators only it
  /// referenced.
  std::size_t NumOperators() const { return executor_.NumLiveOps(); }

  /// \brief Queries whose plans currently reference operator `id`
  /// (the sharing refcount); 0 for removed operators. Tests use this to
  /// assert refcounts return to baseline across subscription churn.
  int OperatorRefCount(OpId id) const;

  /// \brief Subtree compilations that resolved to an existing operator —
  /// how much per-edge work the sharing removed. Counts reuse *within* a
  /// registration too (duplicate subtrees of one plan compile once, like
  /// the classic WSCAN dedup), so it is nonzero even with
  /// cross_query_sharing off.
  std::size_t NumSharedSubtrees() const { return shared_subtree_hits_; }

  /// \brief The subset of NumSharedSubtrees() that resolved to an
  /// operator compiled by an *earlier* registration — the cross-query
  /// sharing proper. Always 0 with cross_query_sharing off.
  std::size_t NumCrossQuerySharedSubtrees() const {
    return cross_query_shared_hits_;
  }
  /// @}

  /// \name Metrics (§7.1.1; engine-global, the stream is shared)
  /// @{
  const LatencyRecorder& slide_latencies() const {
    return executor_.slide_latencies();
  }
  std::size_t edges_pushed() const { return executor_.edges_pushed(); }
  std::size_t edges_processed() const { return executor_.edges_processed(); }
  /// @}

  /// \brief Total operator state entries (diagnostics).
  std::size_t StateSize() const { return executor_.StateSize(); }

  /// \brief Resident operator-state bytes (diagnostics). Flat across
  /// add/remove churn cycles: a removed query's state is released, not
  /// tombstoned (tests/subscription_churn_test.cc).
  std::size_t StateBytes() const { return executor_.StateBytes(); }

  /// \brief The runtime executing the registered queries.
  Executor& executor() { return executor_; }
  const Executor& executor() const { return executor_; }

  const EngineOptions& options() const { return options_; }

  /// \brief Human-readable logical plans and shared runtime topology.
  std::string Explain() const;

 private:
  SinkOp* sink(QueryId q) const;

  /// \brief Compiles `node` children-first, consulting the signature
  /// dedup map before instantiating anything. Records per-operator
  /// bookkeeping (signature, children, acquired window partitions) that
  /// RemoveQuery's refcounted teardown consumes.
  Result<OpId> Build(const LogicalOp& node, const Vocabulary& vocab);

  /// \brief Registers engine-side bookkeeping for a newly instantiated
  /// operator (grows the parallel per-OpId tables).
  void RecordOp(OpId id, std::string sig, std::vector<OpId> children,
                std::vector<std::string> window_keys);

  /// \brief Live-attach admission: every WSCAN window slide in `plan`
  /// must be at least the running slide granularity (fixed at Finalize).
  Status CheckLiveAttachable(const LogicalOp& plan) const;

  /// \brief Assembles the SGQC section set (shared by Checkpoint and the
  /// in-memory tests).
  void EncodeCheckpointSections(
      CheckpointWriter* writer, const Vocabulary* vocab,
      std::vector<std::pair<std::string, std::string>> extra) const;

  /// \brief Restore body over a parsed reader (validation + adoption).
  Status RestoreFrom(const CheckpointReader& reader, Vocabulary* vocab,
                     std::unordered_map<std::string, std::string>* extra_out);

  /// \brief The state-affecting EngineOptions, as (key, value) pairs —
  /// refused on mismatch at restore.
  std::vector<std::pair<std::string, std::string>> IdentityKeys() const;
  /// \brief Ingest-side options recorded for diagnostics (not refused:
  /// they change how bytes become elements, not what state means).
  std::vector<std::pair<std::string, std::string>> InformationalKeys() const;

  EngineOptions options_;
  Executor executor_;
  /// Canonical-signature dedup of compiled subtrees: one physical
  /// operator per distinct signature, fanned out to every consumer.
  /// Cleared between registrations when cross_query_sharing is off.
  std::unordered_map<std::string, OpId> subtree_dedup_;
  std::vector<SinkOp*> sinks_;   ///< index == QueryId; null once removed
  std::vector<OpId> roots_;      ///< index == QueryId; invalid once removed
  std::vector<std::string> plan_texts_;  ///< for Explain + checkpoint history
  /// Registration history: whether each QueryId is still attached. The
  /// checkpoint "queries" section stores (plan, live) pairs so Restore can
  /// refuse a snapshot whose removal history diverges (DESIGN.md §10).
  std::vector<bool> query_live_;
  std::size_t live_queries_ = 0;
  /// Ops reachable from each query's sink (the sink included), deduped —
  /// the set whose refcounts RemoveQuery decrements. Cleared on removal.
  std::vector<std::vector<OpId>> query_ops_;
  /// Per-OpId teardown bookkeeping, parallel to the executor's node table:
  /// sharing refcount, canonical signature (dedup-map erasure), compile-
  /// time children (channel unlinking), acquired window partition keys.
  std::vector<int> op_refs_;
  std::vector<std::string> op_sigs_;
  std::vector<std::vector<OpId>> op_children_;
  std::vector<std::vector<std::string>> op_window_keys_;
  std::size_t shared_subtree_hits_ = 0;
  std::size_t cross_query_shared_hits_ = 0;
  /// Operator count at the start of the in-flight AddPlan: dedup hits on
  /// lower ids are cross-registration hits.
  std::size_t ops_before_current_plan_ = 0;
  bool finalized_ = false;

  // --- checkpoint/restore ---
  /// Elements already replayed into a restored snapshot (resume offset).
  std::uint64_t restored_ingested_ = 0;
  std::uint64_t checkpoint_write_ns_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  /// In-flight background checkpoint write; its status lands in
  /// checkpoint_write_status_ (read only after join).
  std::thread checkpoint_writer_;
  Status checkpoint_write_status_ = Status::OK();
};

}  // namespace sgq

#endif  // SGQ_CORE_ENGINE_H_

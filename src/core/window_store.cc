#include "core/window_store.h"

#include <algorithm>

namespace sgq {

namespace {
const std::vector<StoredEdge> kNoEdges;
}  // namespace

void WindowEdgeStore::InsertInto(Adjacency* adj, VertexId key_vertex,
                                 VertexId other, LabelId label, Interval iv) {
  auto& edges = (*adj)[{key_vertex, label}];
  for (StoredEdge& e : edges) {
    if (e.trg == other && e.validity.OverlapsOrAdjacent(iv)) {
      e.validity = e.validity.Span(iv);
      return;
    }
  }
  edges.push_back(StoredEdge{other, iv});
}

void WindowEdgeStore::Insert(VertexId src, VertexId trg, LabelId label,
                             Interval iv) {
  if (iv.Empty()) return;
  auto& edges = adjacency_[{src, label}];
  bool coalesced = false;
  for (StoredEdge& e : edges) {
    if (e.trg == trg && e.validity.OverlapsOrAdjacent(iv)) {
      e.validity = e.validity.Span(iv);
      coalesced = true;
      break;
    }
  }
  if (!coalesced) {
    edges.push_back(StoredEdge{trg, iv});
    ++num_entries_;
  }
  if (in_index_enabled_) InsertInto(&in_adjacency_, trg, src, label, iv);
  min_exp_ = std::min(min_exp_, iv.exp);
}

bool WindowEdgeStore::DeleteAt(VertexId src, VertexId trg, LabelId label,
                               Timestamp t) {
  auto it = adjacency_.find({src, label});
  if (it == adjacency_.end()) return false;
  bool affected = false;
  auto& edges = it->second;
  for (auto e = edges.begin(); e != edges.end();) {
    if (e->trg == trg && e->validity.exp > t) {
      affected = true;
      e->validity.exp = t;
      min_exp_ = std::min(min_exp_, t);
      if (e->validity.Empty()) {
        e = edges.erase(e);
        --num_entries_;
        continue;
      }
    }
    ++e;
  }
  if (affected && in_index_enabled_) {
    auto rit = in_adjacency_.find({trg, label});
    if (rit != in_adjacency_.end()) {
      auto& redges = rit->second;
      for (auto e = redges.begin(); e != redges.end();) {
        if (e->trg == src && e->validity.exp > t) {
          e->validity.exp = t;
          if (e->validity.Empty()) {
            e = redges.erase(e);
            continue;
          }
        }
        ++e;
      }
      if (redges.empty()) in_adjacency_.erase(rit);
    }
  }
  return affected;
}

std::size_t WindowEdgeStore::RemoveValue(VertexId src, VertexId trg,
                                         LabelId label) {
  auto it = adjacency_.find({src, label});
  if (it == adjacency_.end()) return 0;
  auto& edges = it->second;
  std::size_t removed = 0;
  for (auto e = edges.begin(); e != edges.end();) {
    if (e->trg == trg) {
      e = edges.erase(e);
      --num_entries_;
      ++removed;
    } else {
      ++e;
    }
  }
  if (edges.empty()) adjacency_.erase(it);
  if (removed > 0 && in_index_enabled_) {
    auto rit = in_adjacency_.find({trg, label});
    if (rit != in_adjacency_.end()) {
      auto& redges = rit->second;
      redges.erase(std::remove_if(redges.begin(), redges.end(),
                                  [src](const StoredEdge& e) {
                                    return e.trg == src;
                                  }),
                   redges.end());
      if (redges.empty()) in_adjacency_.erase(rit);
    }
  }
  return removed;
}

const std::vector<StoredEdge>& WindowEdgeStore::OutEdges(
    VertexId src, LabelId label) const {
  auto it = adjacency_.find({src, label});
  return it == adjacency_.end() ? kNoEdges : it->second;
}

const std::vector<StoredEdge>& WindowEdgeStore::InEdges(VertexId trg,
                                                        LabelId label) const {
  auto it = in_adjacency_.find({trg, label});
  return it == in_adjacency_.end() ? kNoEdges : it->second;
}

void WindowEdgeStore::EnableInIndex() {
  if (in_index_enabled_) return;
  in_index_enabled_ = true;
  in_adjacency_.clear();
  for (const auto& [key, edges] : adjacency_) {
    for (const StoredEdge& e : edges) {
      InsertInto(&in_adjacency_, e.trg, key.first, key.second, e.validity);
    }
  }
}

std::vector<Sgt> WindowEdgeStore::PurgeExpired(Timestamp now) {
  if (min_exp_ > now) return {};  // nothing can have expired
  std::vector<Sgt> dropped;
  Timestamp next_min = kMaxTimestamp;
  for (auto it = adjacency_.begin(); it != adjacency_.end();) {
    auto& edges = it->second;
    for (auto e = edges.begin(); e != edges.end();) {
      if (e->validity.exp <= now) {
        dropped.emplace_back(it->first.first, e->trg, it->first.second,
                             e->validity);
        e = edges.erase(e);
        --num_entries_;
      } else {
        next_min = std::min(next_min, e->validity.exp);
        ++e;
      }
    }
    if (edges.empty()) {
      it = adjacency_.erase(it);
    } else {
      ++it;
    }
  }
  if (in_index_enabled_) {
    for (auto it = in_adjacency_.begin(); it != in_adjacency_.end();) {
      auto& edges = it->second;
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [now](const StoredEdge& e) {
                                   return e.validity.exp <= now;
                                 }),
                  edges.end());
      if (edges.empty()) {
        it = in_adjacency_.erase(it);
      } else {
        ++it;
      }
    }
  }
  min_exp_ = next_min;
  return dropped;
}

}  // namespace sgq

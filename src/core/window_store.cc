#include "core/window_store.h"

#include <algorithm>

namespace sgq {

namespace {
const WindowEdgeStore::EdgeRun kNoEdges;

using AdjKey = std::pair<VertexId, LabelId>;

/// Serializes one adjacency map: keys sorted (deterministic checkpoint
/// bytes), per-key runs verbatim (probe order is run order).
template <typename Adjacency>
void SerializeAdjacency(const Adjacency& adj, std::string* out) {
  std::vector<AdjKey> keys;
  keys.reserve(adj.size());
  for (const auto& [key, edges] : adj) {
    (void)edges;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  PutU64(out, keys.size());
  for (const AdjKey& key : keys) {
    const auto it = adj.find(key);
    PutU64(out, key.first);
    PutU32(out, key.second);
    const auto& edges = it->second;
    PutU32(out, static_cast<std::uint32_t>(edges.size()));
    for (const StoredEdge& e : edges) {
      PutU64(out, e.trg);
      PutI64(out, e.validity.ts);
      PutI64(out, e.validity.exp);
    }
  }
}

template <typename Adjacency>
Status DeserializeAdjacency(Adjacency* adj, SlabPool* pool, ByteReader* in) {
  const std::uint64_t num_keys = in->U64();
  for (std::uint64_t k = 0; k < num_keys && in->ok(); ++k) {
    const VertexId vertex = in->U64();
    const LabelId label = in->U32();
    const std::uint32_t n = in->U32();
    if (!in->ok()) break;
    auto& edges = (*adj)[{vertex, label}];
    for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
      StoredEdge e;
      e.trg = in->U64();
      e.validity.ts = in->I64();
      e.validity.exp = in->I64();
      edges.push_back(pool, e);
    }
  }
  return in->status();
}

}  // namespace

void WindowEdgeStore::InsertInto(Adjacency* adj, SlabPool* pool,
                                 VertexId key_vertex, VertexId other,
                                 LabelId label, Interval iv) {
  EdgeRun& edges = (*adj)[{key_vertex, label}];
  for (StoredEdge& e : edges) {
    if (e.trg == other && e.validity.OverlapsOrAdjacent(iv)) {
      e.validity = e.validity.Span(iv);
      return;
    }
  }
  edges.push_back(pool, StoredEdge{other, iv});
}

void WindowEdgeStore::Insert(VertexId src, VertexId trg, LabelId label,
                             Interval iv) {
  if (iv.Empty()) return;
  EdgeRun& edges = adjacency_[{src, label}];
  Timestamp entry_exp = iv.exp;
  bool register_hint = true;
  bool coalesced = false;
  for (StoredEdge& e : edges) {
    if (e.trg == trg && e.validity.OverlapsOrAdjacent(iv)) {
      const Timestamp old_exp = e.validity.exp;
      e.validity = e.validity.Span(iv);
      entry_exp = e.validity.exp;
      // The entry already has a hint at old_exp; only an extended expiry
      // needs a fresh registration.
      register_hint = entry_exp > old_exp;
      coalesced = true;
      break;
    }
  }
  if (!coalesced) {
    edges.push_back(&pool_, StoredEdge{trg, iv});
    ++num_entries_;
  }
  if (in_index_enabled_) {
    InsertInto(&in_adjacency_, &in_pool_, trg, src, label, iv);
  }
  if (register_hint) calendar_.Add(entry_exp, {src, label});
}

bool WindowEdgeStore::DeleteAt(VertexId src, VertexId trg, LabelId label,
                               Timestamp t) {
  auto it = adjacency_.find({src, label});
  if (it == adjacency_.end()) return false;
  bool affected = false;
  EdgeRun& edges = it->second;
  for (std::size_t i = 0; i < edges.size();) {
    StoredEdge& e = edges[i];
    if (e.trg == trg && e.validity.exp > t) {
      affected = true;
      e.validity.exp = t;
      if (e.validity.Empty()) {
        edges.erase_at(i);
        --num_entries_;
        continue;
      }
      // Truncated but alive: its old hint is late; register the new exp.
      calendar_.Add(t, {src, label});
    }
    ++i;
  }
  if (edges.empty()) {
    edges.Release(&pool_);
    adjacency_.erase(it);
  }
  if (affected && in_index_enabled_) {
    auto rit = in_adjacency_.find({trg, label});
    if (rit != in_adjacency_.end()) {
      EdgeRun& redges = rit->second;
      for (std::size_t i = 0; i < redges.size();) {
        StoredEdge& e = redges[i];
        if (e.trg == src && e.validity.exp > t) {
          e.validity.exp = t;
          if (e.validity.Empty()) {
            redges.erase_at(i);
            continue;
          }
        }
        ++i;
      }
      if (redges.empty()) {
        redges.Release(&in_pool_);
        in_adjacency_.erase(rit);
      }
    }
  }
  return affected;
}

std::size_t WindowEdgeStore::RemoveValue(VertexId src, VertexId trg,
                                         LabelId label) {
  auto it = adjacency_.find({src, label});
  if (it == adjacency_.end()) return 0;
  EdgeRun& edges = it->second;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < edges.size();) {
    if (edges[i].trg == trg) {
      edges.erase_at(i);
      --num_entries_;
      ++removed;
    } else {
      ++i;
    }
  }
  if (edges.empty()) {
    edges.Release(&pool_);
    adjacency_.erase(it);
  }
  if (removed > 0 && in_index_enabled_) {
    auto rit = in_adjacency_.find({trg, label});
    if (rit != in_adjacency_.end()) {
      EdgeRun& redges = rit->second;
      for (std::size_t i = 0; i < redges.size();) {
        if (redges[i].trg == src) {
          redges.erase_at(i);
        } else {
          ++i;
        }
      }
      if (redges.empty()) {
        redges.Release(&in_pool_);
        in_adjacency_.erase(rit);
      }
    }
  }
  return removed;
}

const WindowEdgeStore::EdgeRun& WindowEdgeStore::OutEdges(
    VertexId src, LabelId label) const {
  auto it = adjacency_.find({src, label});
  return it == adjacency_.end() ? kNoEdges : it->second;
}

const WindowEdgeStore::EdgeRun& WindowEdgeStore::InEdges(
    VertexId trg, LabelId label) const {
  auto it = in_adjacency_.find({trg, label});
  return it == in_adjacency_.end() ? kNoEdges : it->second;
}

void WindowEdgeStore::EnableInIndex() {
  if (in_index_enabled_) return;
  in_index_enabled_ = true;
  in_adjacency_.clear();
  for (const auto& [key, edges] : adjacency_) {
    for (const StoredEdge& e : edges) {
      InsertInto(&in_adjacency_, &in_pool_, e.trg, key.first, key.second,
                 e.validity);
    }
  }
}

void WindowEdgeStore::RemoveFromInIndex(VertexId key_vertex, VertexId other,
                                        LabelId label, const Interval& iv) {
  auto rit = in_adjacency_.find({key_vertex, label});
  if (rit == in_adjacency_.end()) return;
  EdgeRun& redges = rit->second;
  for (std::size_t i = 0; i < redges.size(); ++i) {
    if (redges[i].trg == other && redges[i].validity == iv) {
      redges.erase_at(i);
      break;
    }
  }
  if (redges.empty()) {
    redges.Release(&in_pool_);
    in_adjacency_.erase(rit);
  }
}

void WindowEdgeStore::SerializeState(std::string* out) const {
  PutU8(out, in_index_enabled_ ? 1 : 0);
  PutU64(out, num_entries_);
  SerializeAdjacency(adjacency_, out);
  SerializeAdjacency(in_adjacency_, out);
  PutU64(out, calendar_.num_hints());
  calendar_.VisitEntries([&](Timestamp exp, const Key& key) {
    PutI64(out, exp);
    PutU64(out, key.first);
    PutU32(out, key.second);
  });
}

Status WindowEdgeStore::DeserializeState(ByteReader* in) {
  if (num_entries_ != 0 || !adjacency_.empty()) {
    return in->Fail("window store not empty before restore");
  }
  // The reverse-index flag is runtime state, not topology: PATH
  // consumers enable it lazily on the first delete/re-derive
  // (path_base.cc), so a snapshot may carry it either way regardless of
  // the plan. Adopt the snapshot's flag — its in_adjacency_ content (the
  // original run's exact insertion history) comes along verbatim.
  const bool in_index = in->U8() != 0;
  const std::uint64_t num_entries = in->U64();
  SGQ_RETURN_NOT_OK(DeserializeAdjacency(&adjacency_, &pool_, in));
  SGQ_RETURN_NOT_OK(DeserializeAdjacency(&in_adjacency_, &in_pool_, in));
  num_entries_ = num_entries;
  if (in_index) {
    in_index_enabled_ = true;
  } else if (in_index_enabled_) {
    // A build-time consumer (PATTERN in-probe) enabled the index on this
    // fresh store but the snapshot predates any content for it: re-index
    // the restored window exactly as EnableInIndex would have at build
    // time. (Unreachable from a same-plan snapshot — PATTERN enables the
    // index before any edge flows — but kept for safety.)
    in_index_enabled_ = false;
    EnableInIndex();
  }
  const std::uint64_t num_hints = in->U64();
  for (std::uint64_t i = 0; i < num_hints && in->ok(); ++i) {
    const Timestamp exp = in->I64();
    const VertexId vertex = in->U64();
    const LabelId label = in->U32();
    calendar_.Add(exp, {vertex, label});
  }
  return in->status();
}

std::vector<Sgt> WindowEdgeStore::PurgeExpired(Timestamp now) {
  std::vector<Sgt> dropped;
  calendar_.DrainDue(now, [&](const Key& key) {
    auto it = adjacency_.find(key);
    if (it == adjacency_.end()) return;  // stale hint: entries are gone
    EdgeRun& edges = it->second;
    for (std::size_t i = 0; i < edges.size();) {
      const StoredEdge& e = edges[i];
      if (e.validity.exp <= now) {
        dropped.emplace_back(key.first, e.trg, key.second, e.validity);
        if (in_index_enabled_) {
          RemoveFromInIndex(e.trg, key.first, key.second, e.validity);
        }
        edges.erase_at(i);
        --num_entries_;
      } else {
        // The hint for a survivor expiring within the drained bucket was
        // just popped; re-register it (calendar invariant).
        if (calendar_.NeedsReAdd(e.validity.exp, now)) {
          calendar_.Add(e.validity.exp, key);
        }
        ++i;
      }
    }
    if (edges.empty()) {
      edges.Release(&pool_);
      adjacency_.erase(it);
    }
  });
  return dropped;
}

}  // namespace sgq

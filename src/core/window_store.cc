#include "core/window_store.h"

#include <algorithm>

namespace sgq {

namespace {
const std::vector<StoredEdge> kNoEdges;
}  // namespace

void WindowEdgeStore::Insert(VertexId src, VertexId trg, LabelId label,
                             Interval iv) {
  if (iv.Empty()) return;
  auto& edges = adjacency_[{src, label}];
  for (StoredEdge& e : edges) {
    if (e.trg == trg && e.validity.OverlapsOrAdjacent(iv)) {
      e.validity = e.validity.Span(iv);
      return;
    }
  }
  edges.push_back(StoredEdge{trg, iv});
  ++num_entries_;
}

bool WindowEdgeStore::DeleteAt(VertexId src, VertexId trg, LabelId label,
                               Timestamp t) {
  auto it = adjacency_.find({src, label});
  if (it == adjacency_.end()) return false;
  bool affected = false;
  auto& edges = it->second;
  for (auto e = edges.begin(); e != edges.end();) {
    if (e->trg == trg && e->validity.exp > t) {
      affected = true;
      e->validity.exp = t;
      if (e->validity.Empty()) {
        e = edges.erase(e);
        --num_entries_;
        continue;
      }
    }
    ++e;
  }
  return affected;
}

const std::vector<StoredEdge>& WindowEdgeStore::OutEdges(VertexId src,
                                                         LabelId label) const {
  auto it = adjacency_.find({src, label});
  return it == adjacency_.end() ? kNoEdges : it->second;
}

std::vector<Sgt> WindowEdgeStore::PurgeExpired(Timestamp now) {
  std::vector<Sgt> dropped;
  for (auto it = adjacency_.begin(); it != adjacency_.end();) {
    auto& edges = it->second;
    for (auto e = edges.begin(); e != edges.end();) {
      if (e->validity.exp <= now) {
        dropped.emplace_back(it->first.first, e->trg, it->first.second,
                             e->validity);
        e = edges.erase(e);
        --num_entries_;
      } else {
        ++e;
      }
    }
    if (edges.empty()) {
      it = adjacency_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace sgq

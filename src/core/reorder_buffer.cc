#include "core/reorder_buffer.h"

#include <algorithm>

namespace sgq {

std::vector<Sge> ReorderBuffer::Offer(const Sge& sge) {
  if (sge.t < Watermark() ||
      (max_seen_ > kMinTimestamp && sge.t + slack_ < max_seen_)) {
    ++late_count_;
    if (late_handler_) late_handler_(sge);
    return {};
  }
  max_seen_ = std::max(max_seen_, sge.t);
  heap_.push(sge);

  std::vector<Sge> released;
  const Timestamp watermark = Watermark();
  while (!heap_.empty() && heap_.top().t <= watermark) {
    released.push_back(heap_.top());
    heap_.pop();
  }
  return released;
}

std::vector<Sge> ReorderBuffer::Flush() {
  std::vector<Sge> released;
  released.reserve(heap_.size());
  while (!heap_.empty()) {
    released.push_back(heap_.top());
    heap_.pop();
  }
  return released;
}

void ReorderBuffer::SerializeState(std::string* out) const {
  PutI64(out, slack_);
  PutI64(out, max_seen_);
  PutU64(out, late_count_);
  // Drain a copy: stored order is release order (the comparator is a
  // total order, so this is canonical).
  auto copy = heap_;
  PutU64(out, copy.size());
  while (!copy.empty()) {
    PutSge(out, copy.top());
    copy.pop();
  }
}

Status ReorderBuffer::DeserializeState(ByteReader* in) {
  if (!heap_.empty() || late_count_ != 0) {
    return in->Fail("reorder buffer not empty before restore");
  }
  const Timestamp slack = in->I64();
  if (in->ok() && slack != slack_) {
    return in->Fail("slack mismatch (checkpoint was taken with a "
                    "different --slack)");
  }
  max_seen_ = in->I64();
  late_count_ = in->U64();
  const std::uint64_t n = in->U64();
  for (std::uint64_t i = 0; i < n && in->ok(); ++i) {
    heap_.push(GetSge(in));
  }
  return in->status();
}

}  // namespace sgq

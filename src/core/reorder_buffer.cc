#include "core/reorder_buffer.h"

#include <algorithm>

namespace sgq {

std::vector<Sge> ReorderBuffer::Offer(const Sge& sge) {
  if (sge.t < Watermark() ||
      (max_seen_ > kMinTimestamp && sge.t + slack_ < max_seen_)) {
    ++late_count_;
    if (late_handler_) late_handler_(sge);
    return {};
  }
  max_seen_ = std::max(max_seen_, sge.t);
  heap_.push(sge);

  std::vector<Sge> released;
  const Timestamp watermark = Watermark();
  while (!heap_.empty() && heap_.top().t <= watermark) {
    released.push_back(heap_.top());
    heap_.pop();
  }
  return released;
}

std::vector<Sge> ReorderBuffer::Flush() {
  std::vector<Sge> released;
  released.reserve(heap_.size());
  while (!heap_.empty()) {
    released.push_back(heap_.top());
    heap_.pop();
  }
  return released;
}

}  // namespace sgq

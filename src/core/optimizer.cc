#include "core/optimizer.h"

#include <limits>

#include "common/metrics.h"
#include "core/query_processor.h"
#include "regex/dfa.h"

namespace sgq {

namespace {

/// Cost of the regex automaton driving a PATH operator.
double RegexCost(const Regex& regex) {
  const Dfa dfa = Dfa::FromRegex(regex);
  return 1.0 + 0.5 * static_cast<double>(dfa.NumStates()) +
         0.5 * static_cast<double>(regex.Alphabet().size());
}

double NodeCost(const LogicalOp& node) {
  switch (node.kind) {
    case LogicalOpKind::kWScan:
      return 1.0;
    case LogicalOpKind::kFilter:
      return 0.5;
    case LogicalOpKind::kUnion:
      return 1.0;
    case LogicalOpKind::kPattern:
      // One symmetric hash join per level; each level maintains two
      // tables and re-emits intermediate bindings.
      return 2.0 +
             3.0 * static_cast<double>(
                       node.children.empty() ? 0 : node.children.size() - 1);
    case LogicalOpKind::kPath: {
      double cost = 2.0 + RegexCost(node.regex);
      // Derived inputs mean a whole intermediate streaming graph is
      // materialized and re-indexed below this operator.
      for (const auto& c : node.children) {
        if (c->kind != LogicalOpKind::kWScan) cost += 2.0;
      }
      return cost;
    }
  }
  return 1.0;
}

}  // namespace

double EstimatePlanCost(const LogicalOp& plan) {
  double cost = NodeCost(plan);
  for (const auto& c : plan.children) cost += EstimatePlanCost(*c);
  return cost;
}

Result<LogicalPlan> OptimizeHeuristic(const LogicalOp& plan,
                                      Vocabulary* vocab,
                                      std::size_t budget) {
  std::vector<LogicalPlan> candidates = EnumeratePlans(plan, vocab, budget);
  if (candidates.empty()) {
    return Status::Internal("plan enumeration produced no candidates");
  }
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!ValidatePlan(*candidates[i], *vocab).ok()) continue;
    const double cost = EstimatePlanCost(*candidates[i]);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return std::move(candidates[best]);
}

Result<LogicalPlan> OptimizeBySampling(const LogicalOp& plan,
                                       Vocabulary* vocab,
                                       const InputStream& sample,
                                       std::size_t budget) {
  std::vector<LogicalPlan> candidates = EnumeratePlans(plan, vocab, budget);
  if (candidates.empty()) {
    return Status::Internal("plan enumeration produced no candidates");
  }
  std::size_t best = 0;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    auto qp = QueryProcessor::Compile(*candidates[i], *vocab, {});
    if (!qp.ok()) continue;  // unexecutable candidate: skip
    Stopwatch timer;
    (*qp)->PushAll(sample);
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed < best_seconds) {
      best_seconds = elapsed;
      best = i;
    }
  }
  return std::move(candidates[best]);
}

}  // namespace sgq

// End-to-end streaming graph query processor (§6.1).
//
// Compiles a logical SGA plan into a tree of non-blocking physical
// operators and executes the persistent query in a data-driven fashion:
// every pushed sge flows through the plan immediately and new results
// accumulate at the sink. Window slides are tracked so the processor can
// report the paper's metrics (per-slide tail latency, throughput).

#ifndef SGQ_CORE_QUERY_PROCESSOR_H_
#define SGQ_CORE_QUERY_PROCESSOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/basic_ops.h"
#include "core/physical.h"
#include "query/rq.h"

namespace sgq {

/// \brief Engine configuration.
struct EngineOptions {
  /// Physical implementation chosen for PATH operators (§6.2.3/§6.2.4).
  PathImpl path_impl = PathImpl::kSPath;
  /// Coalesce value-equivalent results at the sink (Def. 11).
  bool coalesce_output = true;
};

/// \brief A compiled, running persistent query.
///
/// Typical use:
/// \code
///   auto qp = QueryProcessor::FromQuery(sgq_query, vocab, {});
///   for (const Sge& e : stream) qp->Push(e);
///   for (const Sgt& result : qp->results()) ...
/// \endcode
class QueryProcessor {
 public:
  /// \brief Compiles a logical plan. Fails on malformed plans.
  static Result<std::unique_ptr<QueryProcessor>> Compile(
      const LogicalOp& plan, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Translates the SGQ to its canonical plan and compiles it.
  static Result<std::unique_ptr<QueryProcessor>> FromQuery(
      const StreamingGraphQuery& query, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Feeds one stream element; timestamps must be non-decreasing.
  /// Elements whose label no SGA scan consumes are discarded (§7.2.1).
  void Push(const Sge& sge);

  /// \brief Feeds a whole stream in order.
  void PushAll(const InputStream& stream);

  /// \brief Advances time (processing slide boundaries and expirations)
  /// without new input, e.g. to drain final window movements.
  void AdvanceTo(Timestamp t);

  /// \brief All results emitted so far (coalesced if configured).
  const std::vector<Sgt>& results() const { return sink_->results(); }

  /// \brief Moves the accumulated results out (resets the result buffer,
  /// not the operator state).
  std::vector<Sgt> TakeResults() { return sink_->TakeResults(); }

  /// \name Metrics (§7.1.1)
  /// @{
  const LatencyRecorder& slide_latencies() const { return slide_latencies_; }
  std::size_t edges_pushed() const { return edges_pushed_; }
  std::size_t edges_processed() const { return edges_processed_; }
  std::size_t results_emitted() const { return sink_->total_emitted(); }
  /// @}

  /// \brief Total operator state entries (diagnostics).
  std::size_t StateSize() const;

  /// \brief Human-readable physical plan.
  std::string Explain() const { return explain_; }

 private:
  QueryProcessor() = default;

  Result<PhysicalOp*> Build(const LogicalOp& node, const Vocabulary& vocab,
                            const EngineOptions& options);
  void ProcessBoundary(Timestamp boundary);
  void TimeAdvanceWave(Timestamp now);

  std::vector<std::unique_ptr<PhysicalOp>> ops_;  // bottom-up order
  std::unordered_map<LabelId, std::vector<WScanOp*>> scans_;
  SinkOp* sink_ = nullptr;
  std::string explain_;

  Timestamp current_time_ = kMinTimestamp;
  Timestamp slide_ = 1;
  Timestamp next_boundary_ = kMinTimestamp;
  bool started_ = false;

  LatencyRecorder slide_latencies_;
  double slide_accum_seconds_ = 0;
  std::size_t edges_pushed_ = 0;
  std::size_t edges_processed_ = 0;
};

}  // namespace sgq

#endif  // SGQ_CORE_QUERY_PROCESSOR_H_

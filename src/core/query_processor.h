// End-to-end streaming graph query processor (§6.1).
//
// Compiles a logical SGA plan into a physical operator topology owned by
// the dataflow runtime (runtime/executor.h) and executes the persistent
// query in a data-driven fashion: every pushed sge flows through the
// topology and new results accumulate at the sink. The QueryProcessor is
// the compiler and facade; scheduling, micro-batching, window-slide
// tracking and the shared WindowStore all live in the Executor.

#ifndef SGQ_CORE_QUERY_PROCESSOR_H_
#define SGQ_CORE_QUERY_PROCESSOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/basic_ops.h"
#include "core/physical.h"
#include "query/rq.h"
#include "runtime/executor.h"

namespace sgq {

/// \brief Engine configuration.
struct EngineOptions {
  /// Physical implementation chosen for PATH operators (§6.2.3/§6.2.4).
  PathImpl path_impl = PathImpl::kSPath;
  /// Coalesce value-equivalent results at the sink (Def. 11).
  bool coalesce_output = true;
  /// Micro-batch size of the runtime's ingest queue. 1 (the default)
  /// reproduces tuple-at-a-time semantics exactly; larger values trade
  /// result latency for throughput (results materialize when the batch
  /// flushes — on overflow, timestamp change handling, AdvanceTo, or
  /// TakeResults).
  std::size_t batch_size = 1;
  /// Number of runtime workers (DESIGN.md §2.4). 1 (the default) runs the
  /// classic single-threaded engine byte-identically. N > 1 compiles every
  /// operator into N shard instances whose state is hash-partitioned by
  /// the operator's routing key, and drives waves shard-parallel on a
  /// persistent worker pool; results are snapshot-equivalent to
  /// num_workers = 1 and deterministic run-to-run. Best combined with
  /// batch_size > 1 so each wave carries enough tuples to spread.
  std::size_t num_workers = 1;
};

/// \brief A compiled, running persistent query.
///
/// Typical use:
/// \code
///   auto qp = QueryProcessor::FromQuery(sgq_query, vocab, {});
///   for (const Sge& e : stream) qp->Push(e);
///   for (const Sgt& result : qp->results()) ...
/// \endcode
class QueryProcessor {
 public:
  /// \brief Compiles a logical plan. Fails on malformed plans.
  static Result<std::unique_ptr<QueryProcessor>> Compile(
      const LogicalOp& plan, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Translates the SGQ to its canonical plan and compiles it.
  static Result<std::unique_ptr<QueryProcessor>> FromQuery(
      const StreamingGraphQuery& query, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Feeds one stream element; timestamps must be non-decreasing.
  /// Elements whose label no SGA scan consumes are discarded (§7.2.1).
  void Push(const Sge& sge) { executor_.Ingest(sge); }

  /// \brief Feeds a whole stream in order and flushes the ingest queue.
  void PushAll(const InputStream& stream);

  /// \brief Advances time (processing slide boundaries and expirations)
  /// without new input, e.g. to drain final window movements.
  void AdvanceTo(Timestamp t) { executor_.AdvanceTo(t); }

  /// \brief Drains any buffered micro-batch (no-op at batch_size 1).
  void Flush() { executor_.Flush(); }

  /// \brief All results emitted so far (coalesced if configured). With
  /// batch_size > 1, reflects the input flushed so far.
  const std::vector<Sgt>& results() const { return sink_->results(); }

  /// \brief Moves the accumulated results out (resets the result buffer,
  /// not the operator state). Flushes buffered input first.
  std::vector<Sgt> TakeResults() {
    executor_.Flush();
    return sink_->TakeResults();
  }

  /// \name Metrics (§7.1.1)
  /// @{
  const LatencyRecorder& slide_latencies() const {
    return executor_.slide_latencies();
  }
  std::size_t edges_pushed() const { return executor_.edges_pushed(); }
  std::size_t edges_processed() const {
    return executor_.edges_processed();
  }
  std::size_t results_emitted() const { return sink_->total_emitted(); }
  /// @}

  /// \brief Total operator state entries (diagnostics).
  std::size_t StateSize() const { return executor_.StateSize(); }

  /// \brief The runtime executing this query.
  Executor& executor() { return executor_; }
  const Executor& executor() const { return executor_; }

  /// \brief Human-readable physical plan and runtime topology.
  std::string Explain() const { return explain_; }

 private:
  explicit QueryProcessor(ExecutorOptions options) : executor_(options) {}

  Result<OpId> Build(const LogicalOp& node, const Vocabulary& vocab,
                     const EngineOptions& options);

  Executor executor_;
  /// Structural-signature dedup of WSCAN operators: one scan per distinct
  /// (label, window), fanned out to every consumer.
  std::unordered_map<std::string, OpId> scan_dedup_;
  SinkOp* sink_ = nullptr;
  std::string explain_;
};

}  // namespace sgq

#endif  // SGQ_CORE_QUERY_PROCESSOR_H_

// End-to-end streaming graph query processor (§6.1).
//
// A single-query facade over the multi-query Engine (core/engine.h): it
// compiles one logical SGA plan into a physical operator topology owned by
// the dataflow runtime (runtime/executor.h) and executes the persistent
// query in a data-driven fashion: every pushed sge flows through the
// topology and new results accumulate at the sink. Compilation, subtree
// sharing, and output demultiplexing live in the Engine; scheduling,
// micro-batching, window-slide tracking and the shared WindowStore all
// live in the Executor.

#ifndef SGQ_CORE_QUERY_PROCESSOR_H_
#define SGQ_CORE_QUERY_PROCESSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/engine.h"
#include "query/rq.h"
#include "runtime/executor.h"

namespace sgq {

/// \brief A compiled, running persistent query.
///
/// Typical use:
/// \code
///   auto qp = QueryProcessor::FromQuery(sgq_query, vocab, {});
///   for (const Sge& e : stream) qp->Push(e);
///   for (const Sgt& result : qp->results()) ...
/// \endcode
class QueryProcessor {
 public:
  /// \brief Compiles a logical plan. Fails on malformed plans.
  static Result<std::unique_ptr<QueryProcessor>> Compile(
      const LogicalOp& plan, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Translates the SGQ to its canonical plan and compiles it.
  static Result<std::unique_ptr<QueryProcessor>> FromQuery(
      const StreamingGraphQuery& query, const Vocabulary& vocab,
      EngineOptions options = {});

  /// \brief Feeds one stream element; timestamps must be non-decreasing.
  /// Elements whose label no SGA scan consumes are discarded (§7.2.1).
  void Push(const Sge& sge) { engine_.Push(sge); }

  /// \brief Feeds a whole stream in order and flushes the ingest queue.
  void PushAll(const InputStream& stream) { engine_.PushAll(stream); }

  /// \brief Advances time (processing slide boundaries and expirations)
  /// without new input, e.g. to drain final window movements.
  void AdvanceTo(Timestamp t) { engine_.AdvanceTo(t); }

  /// \brief Drains any buffered micro-batch (no-op at batch_size 1).
  void Flush() { engine_.Flush(); }

  /// \brief All results emitted so far (coalesced if configured). With
  /// batch_size > 1, reflects the input flushed so far.
  const std::vector<Sgt>& results() const { return engine_.results(0); }

  /// \brief Moves the accumulated results out (resets the result buffer,
  /// not the operator state). Flushes buffered input first.
  std::vector<Sgt> TakeResults() { return engine_.TakeResults(0); }

  /// \name Metrics (§7.1.1)
  /// @{
  const LatencyRecorder& slide_latencies() const {
    return engine_.slide_latencies();
  }
  std::size_t edges_pushed() const { return engine_.edges_pushed(); }
  std::size_t edges_processed() const { return engine_.edges_processed(); }
  std::size_t results_emitted() const { return engine_.results_emitted(0); }
  /// @}

  /// \brief Total operator state entries (diagnostics).
  std::size_t StateSize() const { return engine_.StateSize(); }

  /// \brief The runtime executing this query.
  Executor& executor() { return engine_.executor(); }
  const Executor& executor() const { return engine_.executor(); }

  /// \brief The underlying (single-query) engine.
  Engine& engine() { return engine_; }

  /// \brief Human-readable physical plan and runtime topology.
  std::string Explain() const { return engine_.Explain(); }

 private:
  explicit QueryProcessor(EngineOptions options)
      : engine_(std::move(options)) {}

  Engine engine_;
};

}  // namespace sgq

#endif  // SGQ_CORE_QUERY_PROCESSOR_H_

#include "core/spath_op.h"

#include "common/logging.h"

namespace sgq {

void SPathOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (tuple.is_deletion) {
    HandleExplicitDeletion(tuple);
    return;
  }
  if (tuple.validity.Empty()) return;
  window_->Insert(tuple.src, tuple.trg, tuple.label, tuple.validity);

  std::vector<AttachWork> work;
  for (const auto& [s, q] : dfa().TransitionsOnLabel(tuple.label)) {
    if (s == dfa().start() && OwnsRoot(tuple.src)) {
      // S-PATH lines 7-8: root a new spanning tree at the source vertex
      // (under sharding, only on the shard owning the root).
      EnsureTree(tuple.src);
    }
    const NodeKey parent_key{tuple.src, s};
    for (VertexId root : TreesContaining(parent_key)) {
      auto tree_it = trees_.find(root);
      if (tree_it == trees_.end()) continue;
      auto node_it = tree_it->second.nodes.find(parent_key);
      if (node_it == tree_it->second.nodes.end()) continue;
      const Interval iv = node_it->second.iv.Intersect(tuple.validity);
      if (iv.Empty()) continue;  // parent expired w.r.t. this edge: ignore
      work.push_back(AttachWork{root, parent_key, NodeKey{tuple.trg, q},
                                tuple.edge(), iv});
    }
  }
  DrainWorklist(std::move(work));
}

void SPathOp::DrainWorklist(std::vector<AttachWork> work) {
  while (!work.empty()) {
    AttachWork w = std::move(work.back());
    work.pop_back();
    if (w.child == w.parent) continue;  // self-loop in the same state
    auto tree_it = trees_.find(w.root);
    if (tree_it == trees_.end()) continue;
    SpanningTree& tree = tree_it->second;

    auto node_it = tree.nodes.find(w.child);
    Interval result_iv;
    if (node_it == tree.nodes.end() ||
        (!node_it->second.is_root &&
         node_it->second.iv.exp <= w.iv.ts)) {
      // Expand: the target is absent (or its previous derivation already
      // expired relative to the new one, so it is replaced wholesale).
      TreeNode node;
      node.iv = w.iv;
      node.parent = w.parent;
      node.via = w.via;
      SetNode(tree, w.child, std::move(node));
      result_iv = w.iv;
    } else if (!node_it->second.is_root &&
               node_it->second.iv.exp < w.iv.exp) {
      // Propagate: the new derivation expires later; adopt it (S-PATH
      // line 18). Old and new intervals overlap here (the old one has not
      // expired), so the span introduces no validity gap. The in-place
      // interval extension bypasses SetNode, so the expiry calendar is
      // told directly.
      TreeNode& node = node_it->second;
      const NodeKey old_parent = node.parent;
      node.parent = w.parent;
      node.via = w.via;
      node.iv = node.iv.Span(w.iv);
      result_iv = node.iv;
      RegisterNodeExpiry(w.root, w.child, node.iv.exp);
      ReparentNode(tree, w.child, old_parent, w.parent);
    } else {
      // Existing derivation is at least as durable (or target is the
      // root): nothing to do.
      continue;
    }

    if (dfa().IsAccepting(w.child.second)) {
      EmitResult(tree, w.child, result_iv);
    }

    // Continue the traversal of the snapshot graph from the new/updated
    // node (Expand/Propagate lines 8-12).
    for (const auto& [label, q] : OutTransitions(w.child.second)) {
      for (const StoredEdge& e : window_->OutEdges(w.child.first, label)) {
        const Interval next_iv = result_iv.Intersect(e.validity);
        if (next_iv.Empty()) continue;
        work.push_back(AttachWork{w.root, w.child, NodeKey{e.trg, q},
                                  EdgeRef(w.child.first, e.trg, label),
                                  next_iv});
      }
    }
  }
}

}  // namespace sgq

// Bounded out-of-order ingestion (paper §3, footnote 2: "we leave
// out-of-order arrival as future work" — implemented here as an
// extension).
//
// Sources that cannot guarantee timestamp order pass their sges through a
// ReorderBuffer with a slack bound B: an element with timestamp t is held
// until the watermark (max timestamp seen minus B) passes t, then released
// in timestamp order. Elements older than the watermark at arrival are
// late; they are either dropped or reported to a callback, mirroring the
// usual watermark semantics of stream processors.

#ifndef SGQ_CORE_REORDER_BUFFER_H_
#define SGQ_CORE_REORDER_BUFFER_H_

#include <functional>
#include <queue>
#include <vector>

#include "model/checkpoint.h"
#include "model/sgt.h"

namespace sgq {

/// \brief Watermark-based reordering stage in front of a QueryProcessor.
class ReorderBuffer {
 public:
  /// \brief `slack` bounds the tolerated disorder: an element may arrive
  /// at most `slack` time units after a later-stamped element and still be
  /// delivered in order.
  explicit ReorderBuffer(Timestamp slack) : slack_(slack) {}

  /// \brief Offers one (possibly out-of-order) element; returns the
  /// elements released by the advancing watermark, in timestamp order.
  /// Late elements (older than the watermark) are routed to the late
  /// handler and dropped from the ordered output.
  std::vector<Sge> Offer(const Sge& sge);

  /// \brief Releases everything still buffered (end of stream).
  std::vector<Sge> Flush();

  /// \brief Installs a callback receiving dropped late elements.
  void OnLate(std::function<void(const Sge&)> handler) {
    late_handler_ = std::move(handler);
  }

  /// \brief Current watermark: no element at or below it will be emitted
  /// anymore.
  Timestamp Watermark() const {
    return max_seen_ >= slack_ ? max_seen_ - slack_ : kMinTimestamp;
  }

  std::size_t Buffered() const { return heap_.size(); }
  std::size_t LateCount() const { return late_count_; }

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7): the
  /// watermark state, late counter, and buffered elements in release
  /// order. The heap comparator is a total order, so release order is
  /// independent of insertion history and the rebuilt heap releases the
  /// restored elements exactly as the original would have.
  void SerializeState(std::string* out) const;
  Status DeserializeState(ByteReader* in);

 private:
  /// Total order (timestamp first, then value): equal-timestamp elements
  /// release in a canonical order regardless of arrival or heap layout —
  /// required for run-to-run determinism and checkpoint/restore.
  struct Later {
    bool operator()(const Sge& a, const Sge& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.src != b.src) return a.src > b.src;
      if (a.trg != b.trg) return a.trg > b.trg;
      if (a.label != b.label) return a.label > b.label;
      return a.is_deletion > b.is_deletion;
    }
  };

  Timestamp slack_;
  Timestamp max_seen_ = kMinTimestamp;
  std::priority_queue<Sge, std::vector<Sge>, Later> heap_;
  std::function<void(const Sge&)> late_handler_;
  std::size_t late_count_ = 0;
};

}  // namespace sgq

#endif  // SGQ_CORE_REORDER_BUFFER_H_

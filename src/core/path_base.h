// Shared machinery of the PATH physical operators (§6.2.3-§6.2.5):
// the Δ-PATH spanning forest (Defs. 21-22), the inverted (vertex, state)
// index, witness-path recovery, result emission, and the Dijkstra-style
// delete/re-derive procedure used for explicit deletions (and, by the
// negative-tuple variant, for window expirations).
//
// State layout (DESIGN.md §"State layout"): forests and the inverted
// index live on flat hash maps; inverted-index root lists are
// small-size-inlined runs backed by the operator's slab pool. Node expiry
// is indexed by a slide-aligned calendar — every finite-expiry tree node
// registers a (root, key) hint at its expiry bucket, so Purge and the
// Δ-tree's expiry re-derivation touch only the expiring bucket instead of
// re-scanning the whole forest. Where hash iteration order would be
// observable in emissions (re-derivation, retract/re-assert), the drains
// are sorted, keeping output deterministic across runs and builds.

#ifndef SGQ_CORE_PATH_BASE_H_
#define SGQ_CORE_PATH_BASE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/expiry_calendar.h"
#include "common/flat_map.h"
#include "core/physical.h"
#include "core/window_store.h"
#include "model/coalesce.h"
#include "regex/dfa.h"

namespace sgq {

/// \brief A node of a spanning tree: a (vertex, automaton state) pair.
using NodeKey = std::pair<VertexId, StateId>;

/// \brief Base of the S-PATH and Δ-tree PATH operators.
class PathOpBase : public PhysicalOp {
 public:
  PathOpBase(Dfa dfa, LabelId out_label);

  std::string Name() const override { return "PATH"; }
  std::size_t StateSize() const override;
  std::size_t StateBytes() const override;

  /// \brief Sharded execution: every input tuple is broadcast to every
  /// shard — spanning trees are keyed by *root* vertex, but any edge can
  /// extend any tree, so each shard maintains the full window adjacency
  /// (its own shard-suffixed partition) and owns the trees whose root
  /// hashes to it.
  RoutingKey InputRouting(int port) const override {
    (void)port;
    return RoutingKey::kBroadcast;
  }

  /// \brief Declares this instance shard `shard` of `num_shards`. With
  /// num_shards == 1 (the default) the operator owns every tree root —
  /// the unsharded behavior, untouched.
  void ConfigureShard(ShardId shard, std::size_t num_shards) {
    shard_ = shard;
    num_shards_ = num_shards == 0 ? 1 : num_shards;
  }

  /// \brief True when this shard owns the spanning tree rooted at `v`.
  /// Results for (root, v) pairs are emitted only by the owner, so each
  /// output value — including its retractions — stays on one shard.
  bool OwnsRoot(VertexId v) const {
    return num_shards_ == 1 || ShardOfVertex(v, num_shards_) == shard_;
  }

  /// \brief Probes and maintains window state through a partition of the
  /// runtime WindowStore instead of a private copy. Must be called before
  /// the first tuple; the caller keeps `store` alive. Safe to share with
  /// other PATH operators over the same input: inserts coalesce
  /// idempotently, deletions truncate idempotently, and repeated purges
  /// are cheap.
  void BindSharedWindow(WindowEdgeStore* store) { window_ = store; }

  bool shares_window() const { return window_ != &owned_window_; }

  /// \brief Aligns the node-expiry calendar (and the owned window's) to
  /// the engine slide.
  void ConfigureExpirySlide(Timestamp slide) override {
    node_expiry_.ConfigureSlide(slide);
    owned_window_.ConfigureExpirySlide(slide);
  }

  /// \brief Frees window edges, tree nodes and coalescer state that
  /// expired before `now` (memory only; results are unaffected because
  /// probes intersect intervals). Calendar-driven: cost is proportional
  /// to what actually expired, not to the forest size.
  void Purge(Timestamp now) override;

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7):
  /// forest, inverted index, node-expiry calendar, output coalescer, and
  /// the owned window when not shared (shared partitions are checkpointed
  /// once by the WindowStore registry). Tree/key enumeration is sorted
  /// for deterministic bytes, but child links and inverted-index runs are
  /// serialized *verbatim* — they are maintained by swap-and-pop, so
  /// their order is history-dependent and observable (TreesContaining,
  /// CollectSubtree seeds); restoring them byte-for-byte keeps resumed
  /// emission order identical.
  void SerializeState(std::string* out) const override;
  Status DeserializeState(ByteReader* in) override;

 protected:
  /// \brief Tree-node bookkeeping (Def. 21). The path from the root to a
  /// node is recovered by following parent pointers; `via` is the edge that
  /// connects the parent to this node. `children` is the inverse of
  /// `parent`, maintained by SetNode/RemoveNode/ReparentNode, so
  /// CollectSubtree is a BFS over the subtree instead of a scan of the
  /// whole tree.
  struct TreeNode {
    Interval iv;
    NodeKey parent{kInvalidVertex, 0};
    EdgeRef via;
    bool is_root = false;
    SmallRun<NodeKey, 1> children;
  };

  /// \brief Spanning tree T_x (Def. 21), rooted at (x, s0).
  struct SpanningTree {
    VertexId root = kInvalidVertex;
    FlatMap<NodeKey, TreeNode, PairHash> nodes;
  };

  /// \brief Creates T_x with root (x, s0) if absent (S-PATH lines 7-8).
  SpanningTree& EnsureTree(VertexId x);

  /// \brief Writes/overwrites `child` in `tree`, maintains the inverted
  /// index from node keys to tree roots, and registers the node's expiry
  /// in the calendar.
  void SetNode(SpanningTree& tree, const NodeKey& child, TreeNode node);

  /// \brief Removes `key` from `tree` and the inverted index.
  void RemoveNode(SpanningTree& tree, const NodeKey& key);

  /// \brief Re-registers `key`'s expiry after an in-place interval update
  /// (S-PATH's Propagate extends node intervals without going through
  /// SetNode).
  void RegisterNodeExpiry(VertexId root, const NodeKey& key, Timestamp exp) {
    node_expiry_.Add(exp, {root, key});
  }

  /// \brief Moves `child`'s child-link from `old_parent` to `new_parent`
  /// (S-PATH's Propagate adopts a new parent in place).
  void ReparentNode(SpanningTree& tree, const NodeKey& child,
                    const NodeKey& old_parent, const NodeKey& new_parent) {
    if (old_parent == new_parent) return;
    RemoveChildLink(tree, old_parent, child);
    AddChildLink(tree, new_parent, child);
  }

  /// \brief Roots of the trees currently containing `key` (copy: callers
  /// mutate the index while iterating).
  std::vector<VertexId> TreesContaining(const NodeKey& key) const;

  /// \brief Witness path from the root of `tree` to `key`: the sequence of
  /// `via` edges along parent pointers (cost O(path length), §6.2.4).
  Payload RecoverPath(const SpanningTree& tree, const NodeKey& key) const;

  /// \brief Emits the result sgt (root, v, out_label, iv, witness path),
  /// suppressing snapshot-redundant repeats.
  void EmitResult(const SpanningTree& tree, const NodeKey& key, Interval iv);

  /// \brief Emits a negative result tuple for value (root -> v) at `t`,
  /// then re-asserts the pair if another accepting witness for v survives
  /// in the tree (sorted drain: emission order is key order, not hash
  /// order).
  void RetractAndReassert(SpanningTree& tree, VertexId v, Timestamp t);

  /// \brief All keys in the subtree rooted at `key` (inclusive), found by
  /// walking parent chains of every node. Sorted (canonical order).
  std::vector<NodeKey> CollectSubtree(const SpanningTree& tree,
                                      const NodeKey& key) const;

  /// \brief Delete/re-derive (§6.2.5): detaches `subtree` from `tree`,
  /// then reattaches every node for which an alternative valid path with
  /// maximal expiry exists (Dijkstra on expiry order); nodes without an
  /// alternative are removed. When `emit_negatives`, removed accepting
  /// nodes retract their (root, v) result at instant `now`; reattached
  /// accepting nodes re-emit with the interval of the alternative path.
  void RederiveSubtree(SpanningTree& tree, const std::vector<NodeKey>& subtree,
                       Timestamp now, bool emit_negatives);

  /// \brief Explicit deletion of the edge carried by the negative sgt `t`:
  /// truncates the window store, then re-derives every subtree hanging off
  /// a deleted tree edge (deleting a non-tree edge changes nothing).
  void HandleExplicitDeletion(const Sgt& t);

  /// \brief Transitions (label, target) leaving automaton state `s`.
  const std::vector<std::pair<LabelId, StateId>>& OutTransitions(
      StateId s) const {
    return out_transitions_[s];
  }

  const Dfa& dfa() const { return dfa_; }
  LabelId out_label() const { return out_label_; }

  /// Window adjacency: points at the operator's own store, or at a shared
  /// WindowStore partition after BindSharedWindow(). Shared maintenance is
  /// safe without coordination: inserts coalesce idempotently and repeated
  /// purges are cheap (calendar-driven).
  WindowEdgeStore* window_ = &owned_window_;
  FlatMap<VertexId, SpanningTree> trees_;

  /// Node-expiry calendar: (root, key) hints at the node's expiry bucket.
  /// The Δ-tree operator drains it to find the nodes to re-derive;
  /// Purge() drains it to reclaim memory.
  ExpiryCalendar<std::pair<VertexId, NodeKey>> node_expiry_;

 private:
  WindowEdgeStore owned_window_;
  Dfa dfa_;
  LabelId out_label_;
  ShardId shard_ = 0;
  std::size_t num_shards_ = 1;
  /// Inverted index (Def. 22): node key -> roots of trees containing it.
  /// Small inlined runs, deduplicated on insert and erased by
  /// swap-and-pop: root sets are small and the index is probed on every
  /// arriving sgt.
  FlatMap<NodeKey, SmallRun<VertexId, 2>, PairHash> inverted_;
  SlabPool inverted_pool_;  ///< overflow storage of inverted_ runs
  SlabPool children_pool_;  ///< overflow storage of child-link runs

  void AddChildLink(SpanningTree& tree, const NodeKey& parent,
                    const NodeKey& child);
  void RemoveChildLink(SpanningTree& tree, const NodeKey& parent,
                       const NodeKey& child);
  /// Per-state outgoing transitions, precomputed from the DFA.
  std::vector<std::vector<std::pair<LabelId, StateId>>> out_transitions_;
  /// Per-state *incoming* transitions (label, source state): used by
  /// delete/re-derive to seed candidates from the detached nodes' in-edges
  /// instead of scanning every surviving node's out-edges.
  std::vector<std::vector<std::pair<LabelId, StateId>>> in_transitions_;
  StreamingCoalescer out_coalescer_;
  /// Total nodes across trees_ (roots included): O(1) StateSize.
  std::size_t num_tree_nodes_ = 0;
  /// Roots whose tree shrank to (or was created with) just the root node;
  /// Purge verifies and drops them instead of scanning every tree.
  std::vector<VertexId> empty_tree_candidates_;
};

}  // namespace sgq

#endif  // SGQ_CORE_PATH_BASE_H_

// Δ-tree PATH operator following the *negative tuple* approach of
// [Pacaci, Bonifati, Özsu — SIGMOD'20] ([57] in the paper): the comparison
// baseline for S-PATH (§6.2.3, §7.5, Table 3).
//
// Differences from S-PATH (paper Example 10):
//  - On arrival, a node already present in a tree is NOT updated even when
//    the new derivation would expire later (no Propagate).
//  - Window expirations are processed like explicit deletions (DRed-style
//    delete/re-derive): at each time advance, every node whose derivation
//    expired is detached and the operator searches the snapshot graph for
//    alternative valid paths (Dijkstra on maximal expiry), re-inserting
//    survivors. On cyclic graphs this re-derivation dominates the cost —
//    which is precisely the overhead the direct approach avoids.
//
// Expired nodes are found through the base node-expiry calendar (a
// slide-aligned bucket index), so a time advance that expires nothing is
// O(1) and one that expires k nodes costs O(k + re-derivation), never a
// scan of the whole forest.

#ifndef SGQ_CORE_DELTA_PATH_OP_H_
#define SGQ_CORE_DELTA_PATH_OP_H_

#include <vector>

#include "core/path_base.h"

namespace sgq {

/// \brief Streaming path navigation, negative-tuple approach ([57]).
class DeltaPathOp : public PathOpBase {
 public:
  DeltaPathOp(Dfa dfa, LabelId output_label)
      : PathOpBase(std::move(dfa), output_label) {}

  void OnTuple(int port, const Sgt& tuple) override;

  /// \brief Processes pending window expirations (delete + re-derive).
  void OnTimeAdvance(Timestamp now) override;

  /// \brief Runs pending expirations first, then frees state.
  void Purge(Timestamp now) override;

  std::string Name() const override { return "PATH[delta-tree]"; }

  /// \brief Expiry re-derivation is the Δ-tree's dominant cost; sharded
  /// time-advance phases for it are worth a pool dispatch.
  bool HasTimeDrivenWork() const override { return true; }

  /// \brief Number of delete/re-derive rounds executed (diagnostics; the
  /// S-PATH comparison expects this to dominate on cyclic inputs).
  std::size_t rederivation_rounds() const { return rederivation_rounds_; }

 private:
  struct AttachWork {
    VertexId root;
    NodeKey parent;
    NodeKey child;
    EdgeRef via;
    Interval iv;
  };

  void DrainWorklist(std::vector<AttachWork> work);

  /// Scratch for the calendar drain (capacity reused across waves).
  std::vector<std::pair<VertexId, NodeKey>> expired_scratch_;
  std::size_t rederivation_rounds_ = 0;
};

}  // namespace sgq

#endif  // SGQ_CORE_DELTA_PATH_OP_H_

#include "core/path_base.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace sgq {

PathOpBase::PathOpBase(Dfa dfa, LabelId out_label)
    : dfa_(std::move(dfa)), out_label_(out_label) {
  out_transitions_.resize(dfa_.NumStates());
  in_transitions_.resize(dfa_.NumStates());
  for (const auto& [from, label, to] : dfa_.Transitions()) {
    out_transitions_[from].emplace_back(label, to);
    in_transitions_[to].emplace_back(label, from);
  }
}

PathOpBase::SpanningTree& PathOpBase::EnsureTree(VertexId x) {
  auto [it, inserted] = trees_.try_emplace(x);
  SpanningTree& tree = it->second;
  if (inserted) {
    tree.root = x;
    TreeNode root_node;
    root_node.iv = Interval::All();
    root_node.is_root = true;
    const NodeKey key{x, dfa_.start()};
    tree.nodes.emplace(key, std::move(root_node));
    ++num_tree_nodes_;
    inverted_[key].push_back(&inverted_pool_, x);
    // Until a child attaches this tree is root-only; a later Purge drops
    // it again unless it grew (root intervals never expire, so the node
    // calendar cannot find it).
    empty_tree_candidates_.push_back(x);
  }
  return tree;
}

void PathOpBase::AddChildLink(SpanningTree& tree, const NodeKey& parent,
                              const NodeKey& child) {
  auto it = tree.nodes.find(parent);
  if (it == tree.nodes.end()) return;
  it->second.children.push_back(&children_pool_, child);
}

void PathOpBase::RemoveChildLink(SpanningTree& tree, const NodeKey& parent,
                                 const NodeKey& child) {
  auto it = tree.nodes.find(parent);
  if (it == tree.nodes.end()) return;
  auto& children = it->second.children;
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i] == child) {
      children.swap_pop(i);
      return;
    }
  }
}

void PathOpBase::SetNode(SpanningTree& tree, const NodeKey& child,
                         TreeNode node) {
  const Timestamp exp = node.iv.exp;
  auto it = tree.nodes.find(child);
  if (it == tree.nodes.end()) {
    const NodeKey parent = node.parent;
    const bool link = !node.is_root;
    tree.nodes.emplace(child, std::move(node));
    ++num_tree_nodes_;
    if (link) AddChildLink(tree, parent, child);
    auto& roots = inverted_[child];
    bool present = false;
    for (const VertexId r : roots) {
      if (r == tree.root) {
        present = true;
        break;
      }
    }
    if (!present) roots.push_back(&inverted_pool_, tree.root);
    node_expiry_.Add(exp, {tree.root, child});
  } else {
    TreeNode& slot = it->second;
    const Timestamp old_exp = slot.iv.exp;
    const NodeKey old_parent = slot.parent;
    // The node keeps its subtree across an overwrite; only its own
    // parent link may move.
    node.children = std::move(slot.children);
    slot = std::move(node);
    ReparentNode(tree, child, old_parent, slot.parent);
    // The node already has a hint at old_exp; a changed expiry needs a
    // fresh registration (the stale hint is verified away on drain).
    if (exp != old_exp) node_expiry_.Add(exp, {tree.root, child});
  }
}

void PathOpBase::RemoveNode(SpanningTree& tree, const NodeKey& key) {
  auto node_it = tree.nodes.find(key);
  if (node_it != tree.nodes.end()) {
    TreeNode& node = node_it->second;
    if (!node.is_root) RemoveChildLink(tree, node.parent, key);
    // RemoveChildLink mutates a sibling slot's run in place — the map
    // itself does not shift, so node_it stays valid.
    node_it->second.children.Release(&children_pool_);
    tree.nodes.erase(node_it);
    --num_tree_nodes_;
  }
  auto it = inverted_.find(key);
  if (it != inverted_.end()) {
    auto& roots = it->second;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      if (roots[i] == tree.root) {
        roots.swap_pop(i);
        break;
      }
    }
    if (roots.empty()) {
      roots.Release(&inverted_pool_);
      inverted_.erase(it);
    }
  }
  if (tree.nodes.size() == 1) empty_tree_candidates_.push_back(tree.root);
}

std::vector<VertexId> PathOpBase::TreesContaining(const NodeKey& key) const {
  auto it = inverted_.find(key);
  if (it == inverted_.end()) return {};
  return std::vector<VertexId>(it->second.begin(), it->second.end());
}

Payload PathOpBase::RecoverPath(const SpanningTree& tree,
                                const NodeKey& key) const {
  Payload path;
  path.reserve(8);  // most witness paths are short; avoids realloc churn
  NodeKey current = key;
  while (true) {
    auto it = tree.nodes.find(current);
    SGQ_CHECK(it != tree.nodes.end()) << "broken parent chain";
    const TreeNode& node = it->second;
    if (node.is_root) break;
    path.push_back(node.via);
    current = node.parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void PathOpBase::EmitResult(const SpanningTree& tree, const NodeKey& key,
                            Interval iv) {
  if (iv.Empty()) return;
  Sgt out(tree.root, key.first, out_label_, iv, {});
  if (!out_coalescer_.Offer(out)) return;
  out.payload = RecoverPath(tree, key);
  EmitTuple(out);
}

void PathOpBase::RetractAndReassert(SpanningTree& tree, VertexId v,
                                    Timestamp t) {
  Sgt negative(tree.root, v, out_label_, Interval(t, kMaxTimestamp), {},
               /*del=*/true);
  out_coalescer_.Forget(negative.edge(), t);
  EmitTuple(negative);
  // Another accepting (v, s) witness may survive; re-assert the pair so
  // downstream state reflects the remaining derivation. The candidate
  // keys (v, s) are enumerated by automaton state — O(|Q|) point lookups
  // instead of a scan of the whole tree — which is also an ascending,
  // hash-order-independent emission order.
  for (StateId s = 0; s < static_cast<StateId>(dfa_.NumStates()); ++s) {
    if (!dfa_.IsAccepting(s)) continue;
    auto it = tree.nodes.find(NodeKey{v, s});
    if (it == tree.nodes.end()) continue;
    const TreeNode& node = it->second;
    if (!node.is_root && node.iv.exp > t) {
      EmitResult(tree, NodeKey{v, s}, node.iv);
    }
  }
}

std::vector<NodeKey> PathOpBase::CollectSubtree(const SpanningTree& tree,
                                                const NodeKey& key) const {
  // BFS over the maintained child links: O(subtree), not O(tree).
  std::vector<NodeKey> out;
  if (tree.nodes.count(key) == 0) return out;
  out.push_back(key);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto it = tree.nodes.find(out[i]);
    if (it == tree.nodes.end()) continue;
    for (const NodeKey& child : it->second.children) {
      out.push_back(child);
    }
  }
  // Canonical order: detach/re-derive processing must not depend on the
  // discovery order.
  std::sort(out.begin(), out.end());
  return out;
}

void PathOpBase::RederiveSubtree(SpanningTree& tree,
                                 const std::vector<NodeKey>& subtree,
                                 Timestamp now, bool emit_negatives) {
  if (subtree.empty()) return;
  FlatSet<NodeKey, PairHash> detached;
  detached.reserve(subtree.size());
  for (const NodeKey& k : subtree) detached.insert(k);

  // Remember the accepting vertices whose previously reported validity may
  // shrink: every one of them is retracted and re-asserted below (sorted
  // drain at the end).
  FlatSet<VertexId> affected_vertices;
  if (emit_negatives) {
    for (const NodeKey& k : subtree) {
      if (dfa_.IsAccepting(k.second)) affected_vertices.insert(k.first);
    }
  }

  // Detach: remove the subtree from the tree (Dijkstra reattaches below).
  for (const NodeKey& k : subtree) RemoveNode(tree, k);

  // Dijkstra on maximal expiry (§6.2.5): candidates ordered by descending
  // exp so the first reattachment of a node is its best alternative. The
  // remaining fields give a canonical total order (widest interval, then
  // smallest child/parent/label), so the result is independent of the
  // seeding order.
  struct Candidate {
    Interval iv;
    NodeKey child;
    NodeKey parent;
    EdgeRef via;
    bool operator<(const Candidate& o) const {
      if (iv.exp != o.iv.exp) return iv.exp < o.iv.exp;
      if (iv.ts != o.iv.ts) return iv.ts > o.iv.ts;
      if (child != o.child) return child > o.child;
      if (parent != o.parent) return parent > o.parent;
      return via.label > o.via.label;
    }
  };
  std::priority_queue<Candidate> pq;

  auto relax_from = [&](const NodeKey& parent_key, const Interval& piv) {
    for (const auto& [label, q] : out_transitions_[parent_key.second]) {
      for (const StoredEdge& e :
           window_->OutEdges(parent_key.first, label)) {
        const NodeKey child{e.trg, q};
        if (!detached.contains(child)) continue;
        const Interval iv = piv.Intersect(e.validity);
        if (iv.Empty() || iv.exp <= now) continue;
        pq.push(Candidate{iv, child, parent_key,
                          EdgeRef(parent_key.first, e.trg, label)});
      }
    }
  };
  // Seed candidates by walking the detached nodes' *in-edges* against the
  // surviving tree — O(subtree x in-degree) instead of a scan of every
  // surviving node's out-edges. The candidate set is identical: a seed
  // (p -> c) pairs a surviving node with a detached child over a window
  // edge either way, and the queue's canonical order fixes the processing
  // order regardless of how candidates were found. The reverse index is
  // enabled lazily: the first delete/re-derive pays one re-index of the
  // partition, every later one is a point probe.
  window_->EnableInIndex();
  for (const NodeKey& child : subtree) {
    for (const auto& [label, s] : in_transitions_[child.second]) {
      // Reverse-index entries store the *source* vertex in `trg`.
      for (const StoredEdge& e : window_->InEdges(child.first, label)) {
        const NodeKey parent_key{e.trg, s};
        auto pit = tree.nodes.find(parent_key);
        if (pit == tree.nodes.end()) continue;  // detached or absent
        const TreeNode& pnode = pit->second;
        if (pnode.iv.exp <= now && !pnode.is_root) continue;
        const Interval iv = pnode.iv.Intersect(e.validity);
        if (iv.Empty() || iv.exp <= now) continue;
        pq.push(Candidate{iv, child, parent_key,
                          EdgeRef(e.trg, child.first, label)});
      }
    }
  }

  FlatSet<NodeKey, PairHash> reattached;
  std::vector<NodeKey> reattached_order;
  while (!pq.empty()) {
    Candidate c = pq.top();
    pq.pop();
    if (reattached.contains(c.child)) continue;
    TreeNode node;
    node.iv = c.iv;
    node.parent = c.parent;
    node.via = c.via;
    SetNode(tree, c.child, std::move(node));
    reattached.insert(c.child);
    reattached_order.push_back(c.child);
    // Under expiry-driven re-derivation the old result intervals ended
    // naturally, so a fresh positive suffices. Under explicit deletions
    // the affected vertices are retracted-and-reasserted wholesale below.
    if (!emit_negatives && dfa_.IsAccepting(c.child.second)) {
      EmitResult(tree, c.child, c.iv);
    }
    relax_from(c.child, c.iv);
  }

  if (emit_negatives) {
    // An explicit deletion may shrink previously reported validity even
    // for surviving results; retract every affected (root, v) pair and
    // re-assert it from the witnesses that remain in the tree. Sorted
    // drains keep the emission order canonical.
    std::vector<VertexId> affected(affected_vertices.begin(),
                                   affected_vertices.end());
    std::sort(affected.begin(), affected.end());
    for (VertexId v : affected) {
      RetractAndReassert(tree, v, now);
    }
    // Re-derived nodes for vertices that were not previously reported
    // still need their positives.
    std::sort(reattached_order.begin(), reattached_order.end());
    for (const NodeKey& k : reattached_order) {
      if (dfa_.IsAccepting(k.second) &&
          !affected_vertices.contains(k.first)) {
        auto it = tree.nodes.find(k);
        if (it != tree.nodes.end()) EmitResult(tree, k, it->second.iv);
      }
    }
  }
}

void PathOpBase::HandleExplicitDeletion(const Sgt& t) {
  const Timestamp td = t.validity.ts;
  // A shared partition may already have been truncated by a sibling
  // consumer of the same deletion, so DeleteAt's "affected" bit alone
  // cannot gate the tree repair: the forest can reference the edge as
  // `via` regardless of who truncated the store first.
  const bool affected = window_->DeleteAt(t.src, t.trg, t.label, td);
  // A deleted *tree* edge disconnects the subtree under its child node;
  // non-tree edges leave the forest unchanged (§6.2.5).
  for (const auto& [s, q] : dfa_.TransitionsOnLabel(t.label)) {
    const NodeKey parent_key{t.src, s};
    const NodeKey child_key{t.trg, q};
    for (VertexId root : TreesContaining(child_key)) {
      auto tree_it = trees_.find(root);
      if (tree_it == trees_.end()) continue;
      SpanningTree& tree = tree_it->second;
      auto node_it = tree.nodes.find(child_key);
      if (node_it == tree.nodes.end() || node_it->second.is_root) continue;
      const TreeNode& node = node_it->second;
      if (node.parent != parent_key || node.via != t.edge()) continue;
      // When the store had no live entry (the edge expired or was deleted
      // before), only still-live references need repair — the sibling-
      // truncated-first case. Dead references ended naturally with the
      // window; re-deriving them would emit spurious retractions.
      if (!affected && node.iv.exp <= td) continue;
      RederiveSubtree(tree, CollectSubtree(tree, child_key), td,
                      /*emit_negatives=*/true);
    }
  }
}

void PathOpBase::Purge(Timestamp now) {
  window_->PurgeExpired(now);
  // Calendar drain: remove exactly the nodes whose derivation expired.
  node_expiry_.DrainDue(now, [&](const std::pair<VertexId, NodeKey>& hint) {
    auto tree_it = trees_.find(hint.first);
    if (tree_it == trees_.end()) return;  // tree already dropped
    SpanningTree& tree = tree_it->second;
    auto node_it = tree.nodes.find(hint.second);
    if (node_it == tree.nodes.end()) return;  // stale hint: node is gone
    const TreeNode& node = node_it->second;
    if (node.is_root) return;
    if (node.iv.exp <= now) {
      RemoveNode(tree, hint.second);
    } else if (node_expiry_.NeedsReAdd(node.iv.exp, now)) {
      node_expiry_.Add(node.iv.exp, hint);
    }
  });
  // Drop trees reduced to just their root (recreated on demand by
  // EnsureTree). Candidates were recorded when the trees shrank. Indexed
  // loop: RemoveNode may append candidates (not for root removals today,
  // but the loop must not depend on that).
  for (std::size_t c = 0; c < empty_tree_candidates_.size(); ++c) {
    const VertexId root = empty_tree_candidates_[c];
    auto tree_it = trees_.find(root);
    if (tree_it == trees_.end()) continue;
    SpanningTree& tree = tree_it->second;
    if (tree.nodes.size() > 1) continue;  // grew again: keep
    RemoveNode(tree, NodeKey{tree.root, dfa_.start()});
    trees_.erase(tree_it);
  }
  empty_tree_candidates_.clear();
  out_coalescer_.PurgeBefore(now);
}

namespace {

void PutNodeKey(std::string* out, const NodeKey& key) {
  PutU64(out, key.first);
  PutU32(out, key.second);
}

NodeKey GetNodeKey(ByteReader* in) {
  const VertexId v = in->U64();
  const StateId s = in->U32();
  return NodeKey{v, s};
}

void PutEdgeRef(std::string* out, const EdgeRef& e) {
  PutU64(out, e.src);
  PutU64(out, e.trg);
  PutU32(out, e.label);
}

EdgeRef GetEdgeRef(ByteReader* in) {
  EdgeRef e;
  e.src = in->U64();
  e.trg = in->U64();
  e.label = in->U32();
  return e;
}

template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) {
    (void)value;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void PathOpBase::SerializeState(std::string* out) const {
  PutU8(out, shares_window() ? 1 : 0);
  if (!shares_window()) owned_window_.SerializeState(out);

  PutU64(out, trees_.size());
  for (const VertexId root : SortedKeys(trees_)) {
    const SpanningTree& tree = trees_.find(root)->second;
    PutU64(out, root);
    PutU64(out, tree.nodes.size());
    for (const NodeKey& key : SortedKeys(tree.nodes)) {
      const TreeNode& node = tree.nodes.find(key)->second;
      PutNodeKey(out, key);
      PutI64(out, node.iv.ts);
      PutI64(out, node.iv.exp);
      PutNodeKey(out, node.parent);
      PutEdgeRef(out, node.via);
      PutU8(out, node.is_root ? 1 : 0);
      PutU32(out, static_cast<std::uint32_t>(node.children.size()));
      for (const NodeKey& child : node.children) PutNodeKey(out, child);
    }
  }

  PutU64(out, inverted_.size());
  for (const NodeKey& key : SortedKeys(inverted_)) {
    const auto& roots = inverted_.find(key)->second;
    PutNodeKey(out, key);
    PutU32(out, static_cast<std::uint32_t>(roots.size()));
    for (const VertexId r : roots) PutU64(out, r);
  }

  PutU64(out, node_expiry_.num_hints());
  node_expiry_.VisitEntries(
      [&](Timestamp exp, const std::pair<VertexId, NodeKey>& hint) {
        PutI64(out, exp);
        PutU64(out, hint.first);
        PutNodeKey(out, hint.second);
      });

  PutU64(out, num_tree_nodes_);
  PutU64(out, empty_tree_candidates_.size());
  for (const VertexId v : empty_tree_candidates_) PutU64(out, v);
  out_coalescer_.SerializeState(out);
}

Status PathOpBase::DeserializeState(ByteReader* in) {
  if (!trees_.empty() || num_tree_nodes_ != 0) {
    return in->Fail("PATH operator not empty before restore");
  }
  const bool shared = in->U8() != 0;
  if (in->ok() && shared != shares_window()) {
    return in->Fail("window-sharing mismatch (checkpoint was taken with a "
                    "different plan topology)");
  }
  if (!shared) SGQ_RETURN_NOT_OK(owned_window_.DeserializeState(in));

  const std::uint64_t num_trees = in->U64();
  for (std::uint64_t t = 0; t < num_trees && in->ok(); ++t) {
    const VertexId root = in->U64();
    auto [it, inserted] = trees_.try_emplace(root);
    if (!inserted) return in->Fail("duplicate tree root");
    SpanningTree& tree = it->second;
    tree.root = root;
    const std::uint64_t num_nodes = in->U64();
    for (std::uint64_t n = 0; n < num_nodes && in->ok(); ++n) {
      const NodeKey key = GetNodeKey(in);
      TreeNode node;
      node.iv.ts = in->I64();
      node.iv.exp = in->I64();
      node.parent = GetNodeKey(in);
      node.via = GetEdgeRef(in);
      node.is_root = in->U8() != 0;
      const std::uint32_t num_children = in->U32();
      for (std::uint32_t c = 0; c < num_children && in->ok(); ++c) {
        node.children.push_back(&children_pool_, GetNodeKey(in));
      }
      if (!in->ok()) break;
      tree.nodes.emplace(key, std::move(node));
    }
  }

  const std::uint64_t num_inverted = in->U64();
  for (std::uint64_t k = 0; k < num_inverted && in->ok(); ++k) {
    const NodeKey key = GetNodeKey(in);
    const std::uint32_t n = in->U32();
    if (!in->ok()) break;
    auto& roots = inverted_[key];
    for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
      roots.push_back(&inverted_pool_, in->U64());
    }
  }

  const std::uint64_t num_hints = in->U64();
  for (std::uint64_t i = 0; i < num_hints && in->ok(); ++i) {
    const Timestamp exp = in->I64();
    const VertexId root = in->U64();
    const NodeKey key = GetNodeKey(in);
    node_expiry_.Add(exp, {root, key});
  }

  num_tree_nodes_ = in->U64();
  const std::uint64_t num_candidates = in->U64();
  for (std::uint64_t i = 0; i < num_candidates && in->ok(); ++i) {
    empty_tree_candidates_.push_back(in->U64());
  }
  SGQ_RETURN_NOT_OK(in->status());
  return out_coalescer_.DeserializeState(in);
}

std::size_t PathOpBase::StateSize() const {
  return window_->NumEntries() + out_coalescer_.NumKeys() + num_tree_nodes_;
}

std::size_t PathOpBase::StateBytes() const {
  std::size_t n = window_->StateBytes() + trees_.capacity_bytes() +
                  inverted_.capacity_bytes() +
                  inverted_pool_.reserved_bytes() +
                  children_pool_.reserved_bytes() +
                  node_expiry_.ApproxBytes() + out_coalescer_.ApproxBytes();
  for (const auto& [root, tree] : trees_) {
    (void)root;
    n += tree.nodes.capacity_bytes();
  }
  return n;
}

}  // namespace sgq
